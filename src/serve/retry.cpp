#include "serve/retry.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "protocol/recovery.hpp"

namespace dls::serve {

double BackoffSchedule::next_delay_s() {
  double delay = 0.0;
  if (policy_.decorrelated_jitter) {
    // AWS-style decorrelated jitter: uniform over [base, 3 * previous],
    // capped. The first delay collapses to the base.
    const double hi = std::max(prev_ * 3.0, policy_.base_delay_s);
    delay = hi <= policy_.base_delay_s
                ? policy_.base_delay_s
                : rng_.uniform(policy_.base_delay_s, hi);
    delay = std::min(delay, policy_.max_delay_s);
  } else {
    delay = protocol::exponential_backoff(policy_.base_delay_s,
                                          policy_.backoff_factor, attempt_,
                                          policy_.max_delay_s);
  }
  ++attempt_;
  prev_ = delay;
  return delay;
}

std::string to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

bool CircuitBreaker::allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen: {
      const auto elapsed = std::chrono::duration<double>(
          std::chrono::steady_clock::now() - opened_at_);
      if (elapsed.count() < config_.open_cooldown_s) {
        DLS_COUNT("serve.breaker.rejected");
        return false;
      }
      state_ = BreakerState::kHalfOpen;
      half_open_in_flight_ = 1;
      DLS_COUNT("serve.breaker.half_open");
      return true;
    }
    case BreakerState::kHalfOpen:
      if (half_open_in_flight_ < config_.half_open_probes) {
        ++half_open_in_flight_;
        return true;
      }
      DLS_COUNT("serve.breaker.rejected");
      return false;
  }
  return true;
}

void CircuitBreaker::record_success() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ != BreakerState::kClosed) DLS_COUNT("serve.breaker.closed");
  state_ = BreakerState::kClosed;
  consecutive_failures_ = 0;
  half_open_in_flight_ = 0;
}

void CircuitBreaker::record_failure() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: straight back to open, cooldown restarted.
    state_ = BreakerState::kOpen;
    opened_at_ = std::chrono::steady_clock::now();
    half_open_in_flight_ = 0;
    consecutive_failures_ = 0;
    DLS_COUNT("serve.breaker.opened");
    return;
  }
  if (state_ == BreakerState::kOpen) return;  // already tripped
  ++consecutive_failures_;
  if (consecutive_failures_ >= config_.failure_threshold) {
    state_ = BreakerState::kOpen;
    opened_at_ = std::chrono::steady_clock::now();
    consecutive_failures_ = 0;
    DLS_COUNT("serve.breaker.opened");
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

}  // namespace dls::serve
