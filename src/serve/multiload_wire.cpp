#include "serve/multiload_wire.hpp"

#include <cmath>

namespace dls::serve {

namespace {

constexpr std::string_view kMultiRequestMagic = "dls.serve.mreq.v1";
constexpr std::string_view kMultiResponseMagic = "dls.serve.mresp.v1";

/// Caps decoded counts so a malformed length cannot force a giant
/// allocation before the truncation check fires. Loads are richer than
/// bare doubles, so their cap is tighter than the vector cap.
constexpr std::uint64_t kMaxVectorLength = std::uint64_t{1} << 20;
constexpr std::uint64_t kMaxLoadCount = std::uint64_t{1} << 16;
/// The solver materialises loads × installments Installment objects,
/// each carrying per-processor vectors, so both the per-load count and
/// the product need caps a hostile frame cannot exceed.
constexpr std::uint64_t kMaxInstallments = std::uint64_t{1} << 12;
constexpr std::uint64_t kMaxTotalInstallments = std::uint64_t{1} << 20;

void expect_magic(codec::Reader& r, std::string_view magic) {
  const std::string found = r.string();
  if (found != magic) {
    throw codec::DecodeError("bad wire magic: expected '" +
                             std::string(magic) + "', got '" + found + "'");
  }
}

void put_f64_vector(codec::Writer& w, std::span<const double> values) {
  w.varint(values.size());
  w.f64_array(values);
}

std::vector<double> take_f64_vector(codec::Reader& r) {
  const std::uint64_t count = r.varint();
  if (count > kMaxVectorLength) {
    throw codec::DecodeError("vector length " + std::to_string(count) +
                             " exceeds the wire cap");
  }
  std::vector<double> values(static_cast<std::size_t>(count));
  r.f64_array(values);
  return values;
}

double take_finite_f64(codec::Reader& r, std::string_view field) {
  const double value = r.f64();
  if (!std::isfinite(value)) {
    throw codec::DecodeError("non-finite " + std::string(field) +
                             " on the wire");
  }
  return value;
}

bool take_bool(codec::Reader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) {
    throw codec::DecodeError("bad boolean byte " + std::to_string(v));
  }
  return v == 1;
}

}  // namespace

codec::Bytes encode_multi_schedule_request(
    const MultiScheduleRequest& request) {
  codec::Writer w;
  w.string(kMultiRequestMagic);
  w.u64(request.request_id);
  w.u8(request.policy);
  w.u32(request.installments);
  w.f64(request.ingress_z);
  w.f64(request.deadline_us);
  w.u8(request.want_payments ? 1 : 0);
  put_f64_vector(w, request.w);
  put_f64_vector(w, request.z);
  w.varint(request.loads.size());
  for (const MultiLoadItem& load : request.loads) {
    w.u64(load.load_id);
    w.f64(load.size);
    w.f64(load.release);
    w.f64(load.deadline);
  }
  return w.take();
}

MultiScheduleRequest decode_multi_schedule_request(
    std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  expect_magic(r, kMultiRequestMagic);
  MultiScheduleRequest request;
  request.request_id = r.u64();
  request.policy = r.u8();
  if (request.policy > 1) {
    throw codec::DecodeError("unknown dispatch policy " +
                             std::to_string(request.policy));
  }
  request.installments = r.u32();
  if (request.installments == 0) {
    throw codec::DecodeError("multi-load request asks for zero installments");
  }
  if (request.installments > kMaxInstallments) {
    throw codec::DecodeError("installment count " +
                             std::to_string(request.installments) +
                             " exceeds the wire cap");
  }
  request.ingress_z = take_finite_f64(r, "ingress_z");
  if (request.ingress_z < 0.0) {
    throw codec::DecodeError("negative ingress_z on the wire");
  }
  request.deadline_us = take_finite_f64(r, "deadline_us");
  request.want_payments = take_bool(r);
  request.w = take_f64_vector(r);
  request.z = take_f64_vector(r);
  const std::uint64_t count = r.varint();
  if (count > kMaxLoadCount) {
    throw codec::DecodeError("load count " + std::to_string(count) +
                             " exceeds the wire cap");
  }
  if (count * request.installments > kMaxTotalInstallments) {
    throw codec::DecodeError(
        "total installment budget exceeded: " + std::to_string(count) +
        " loads x " + std::to_string(request.installments) + " installments");
  }
  request.loads.resize(static_cast<std::size_t>(count));
  for (MultiLoadItem& load : request.loads) {
    load.load_id = r.u64();
    load.size = take_finite_f64(r, "load size");
    load.release = take_finite_f64(r, "load release");
    load.deadline = take_finite_f64(r, "load deadline");
  }
  r.expect_done();
  if (request.w.empty()) {
    throw codec::DecodeError("multi-load request carries an empty chain");
  }
  if (request.z.size() + 1 != request.w.size()) {
    throw codec::DecodeError(
        "multi-load request link count mismatch: " +
        std::to_string(request.w.size()) + " processors need " +
        std::to_string(request.w.size() - 1) + " links, got " +
        std::to_string(request.z.size()));
  }
  if (request.loads.empty()) {
    throw codec::DecodeError("multi-load request carries no loads");
  }
  return request;
}

codec::Bytes encode_multi_schedule_response(
    const MultiScheduleResponse& response) {
  codec::Writer w;
  w.string(kMultiResponseMagic);
  w.u64(response.request_id);
  w.u8(static_cast<std::uint8_t>(response.status));
  w.string(response.error);
  w.varint(response.loads.size());
  for (const MultiLoadResult& load : response.loads) {
    w.u64(load.load_id);
    w.f64(load.start);
    w.f64(load.completion);
    w.u8(load.deadline_met ? 1 : 0);
    w.f64(load.total_payment);
  }
  w.f64(response.makespan);
  w.f64(response.serialized_makespan);
  w.f64(response.total_payment);
  w.f64(response.retry_after_us);
  return w.take();
}

MultiScheduleResponse decode_multi_schedule_response(
    std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  expect_magic(r, kMultiResponseMagic);
  MultiScheduleResponse response;
  response.request_id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(ScheduleStatus::kDegraded)) {
    throw codec::DecodeError("unknown schedule status " +
                             std::to_string(status));
  }
  response.status = static_cast<ScheduleStatus>(status);
  response.error = r.string();
  const std::uint64_t count = r.varint();
  if (count > kMaxLoadCount) {
    throw codec::DecodeError("load count " + std::to_string(count) +
                             " exceeds the wire cap");
  }
  response.loads.resize(static_cast<std::size_t>(count));
  for (MultiLoadResult& load : response.loads) {
    load.load_id = r.u64();
    load.start = r.f64();
    load.completion = r.f64();
    load.deadline_met = take_bool(r);
    load.total_payment = r.f64();
  }
  response.makespan = r.f64();
  response.serialized_makespan = r.f64();
  response.total_payment = r.f64();
  response.retry_after_us = r.f64();
  r.expect_done();
  return response;
}

}  // namespace dls::serve
