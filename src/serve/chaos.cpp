#include "serve/chaos.hpp"

#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace dls::serve {

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartialWrite:
      return "partial_write";
    case FaultKind::kTruncate:
      return "truncate";
    case FaultKind::kCorrupt:
      return "corrupt";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDisconnect:
      return "disconnect";
    case FaultKind::kDuplicate:
      return "duplicate";
  }
  return "unknown";
}

ChaosConfig ChaosConfig::only(FaultKind kind, double p) {
  ChaosConfig config;
  switch (kind) {
    case FaultKind::kPartialWrite:
      config.partial_write = p;
      break;
    case FaultKind::kTruncate:
      config.truncate = p;
      break;
    case FaultKind::kCorrupt:
      config.corrupt = p;
      config.read_corrupt = p;
      break;
    case FaultKind::kDelay:
      config.delay = p;
      config.read_delay = p;
      break;
    case FaultKind::kDisconnect:
      config.disconnect = p;
      break;
    case FaultKind::kDuplicate:
      config.duplicate = p;
      break;
  }
  return config;
}

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner,
                               const ChaosConfig& config, std::uint64_t seed)
    : inner_(std::move(inner)), config_(config), rng_(seed) {
  DLS_REQUIRE(inner_ != nullptr, "ChaosTransport needs an inner transport");
}

void ChaosTransport::note(FaultKind kind) {
  // Callers hold mutex_. The obs counters mirror stats_ so soak traces
  // show injections alongside breaker and degradation activity.
  ++stats_.injected[static_cast<std::size_t>(kind)];
  switch (kind) {
    case FaultKind::kPartialWrite:
      DLS_COUNT("serve.fault.partial_write");
      break;
    case FaultKind::kTruncate:
      DLS_COUNT("serve.fault.truncate");
      break;
    case FaultKind::kCorrupt:
      DLS_COUNT("serve.fault.corrupt");
      break;
    case FaultKind::kDelay:
      DLS_COUNT("serve.fault.delay");
      break;
    case FaultKind::kDisconnect:
      DLS_COUNT("serve.fault.disconnect");
      break;
    case FaultKind::kDuplicate:
      DLS_COUNT("serve.fault.duplicate");
      break;
  }
}

ChaosTransport::WritePlan ChaosTransport::plan_write(std::size_t size) {
  WritePlan plan;
  ++stats_.writes;
  if (rng_.bernoulli(config_.disconnect)) {
    plan.disconnect = true;
    note(FaultKind::kDisconnect);
    return plan;  // terminal: nothing else fires on this write
  }
  if (size > 1 && rng_.bernoulli(config_.truncate)) {
    plan.truncate = true;
    plan.truncate_at = static_cast<std::size_t>(
        rng_.uniform_int(1, static_cast<std::int64_t>(size) - 1));
    note(FaultKind::kTruncate);
    return plan;  // terminal as well: the stream closes mid-unit
  }
  if (size > 0 && rng_.bernoulli(config_.corrupt)) {
    plan.corrupt = true;
    plan.corrupt_byte = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(size) - 1));
    plan.corrupt_mask =
        static_cast<std::uint8_t>(1U << rng_.uniform_int(0, 7));
    note(FaultKind::kCorrupt);
  }
  if (rng_.bernoulli(config_.delay)) {
    plan.delay = true;
    plan.delay_us = rng_.uniform01() * config_.max_delay_us;
    note(FaultKind::kDelay);
  }
  if (size > 1 && rng_.bernoulli(config_.partial_write)) {
    plan.partial = true;
    plan.split_at = static_cast<std::size_t>(
        rng_.uniform_int(1, static_cast<std::int64_t>(size) - 1));
    note(FaultKind::kPartialWrite);
  }
  if (rng_.bernoulli(config_.duplicate)) {
    plan.duplicate = true;
    note(FaultKind::kDuplicate);
  }
  return plan;
}

void ChaosTransport::write(std::span<const std::uint8_t> data) {
  WritePlan plan;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    plan = plan_write(data.size());
  }
  if (plan.delay) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(plan.delay_us));
  }
  if (plan.disconnect) {
    // The write "succeeds" from the caller's point of view but the
    // bytes vanish and the stream dies: silent frame loss. Readers on
    // the peer unblock with EOF instead of hanging.
    inner_->close();
    return;
  }
  if (plan.truncate) {
    inner_->write(data.first(plan.truncate_at));
    inner_->close();
    return;
  }
  std::vector<std::uint8_t> mutated;
  std::span<const std::uint8_t> unit = data;
  if (plan.corrupt) {
    mutated.assign(data.begin(), data.end());
    mutated[plan.corrupt_byte] ^= plan.corrupt_mask;
    unit = mutated;
  }
  if (plan.partial) {
    inner_->write(unit.first(plan.split_at));
    inner_->write(unit.subspan(plan.split_at));
  } else {
    inner_->write(unit);
  }
  if (plan.duplicate) inner_->write(unit);
}

void ChaosTransport::apply_read_faults(std::span<std::uint8_t> got) {
  bool corrupt = false;
  std::size_t byte = 0;
  std::uint8_t mask = 0;
  bool delay = false;
  double delay_us = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.reads;
    if (!got.empty() && rng_.bernoulli(config_.read_corrupt)) {
      corrupt = true;
      byte = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(got.size()) - 1));
      mask = static_cast<std::uint8_t>(1U << rng_.uniform_int(0, 7));
      note(FaultKind::kCorrupt);
    }
    if (rng_.bernoulli(config_.read_delay)) {
      delay = true;
      delay_us = rng_.uniform01() * config_.max_delay_us;
      note(FaultKind::kDelay);
    }
  }
  if (delay) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(delay_us));
  }
  if (corrupt) got[byte] ^= mask;
}

void ChaosTransport::maybe_first_read_delay() {
  // apply_read_faults only fires once bytes arrived, so a freshly
  // (re)constructed wrapper — the shape of every breaker half-open
  // probe, which reconnects and then waits for its probe response —
  // used to see zero injected latency until mid-stream. Sample the
  // delay once up front so the first read pays connection-establishment
  // latency like the rest of the stream does.
  bool delay = false;
  double delay_us = 0.0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!first_read_pending_) return;
    first_read_pending_ = false;
    if (rng_.bernoulli(config_.read_delay)) {
      delay = true;
      delay_us = rng_.uniform01() * config_.max_delay_us;
      note(FaultKind::kDelay);
    }
  }
  if (delay) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::micro>(delay_us));
  }
}

bool ChaosTransport::read_exact(std::span<std::uint8_t> out) {
  maybe_first_read_delay();
  if (!inner_->read_exact(out)) return false;
  apply_read_faults(out);
  return true;
}

ReadOutcome ChaosTransport::read_partial(std::span<std::uint8_t> out,
                                         double timeout_s) {
  maybe_first_read_delay();
  const ReadOutcome got = inner_->read_partial(out, timeout_s);
  if (got.received > 0) apply_read_faults(out.first(got.received));
  return got;
}

void ChaosTransport::close() noexcept { inner_->close(); }

bool ChaosTransport::valid() const noexcept { return inner_->valid(); }

FaultStats ChaosTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dls::serve
