// Wire format for the scheduling service's request/response pair.
//
// A ScheduleRequest carries a full problem instance — the chain topology
// (w, z), a round tag and per-request options — and a ScheduleResponse
// carries either the Algorithm-1 allocation (plus, on request, the
// Phase IV payment vector) or an explicit refusal: shed under admission
// pressure, expired past its deadline, or a decode/infeasibility error.
//
// Encodings follow the codec/wire discipline: canonical little-endian
// layout, strict decode (unknown magic, truncation, trailing bytes and
// malformed counts are rejected), and doubles travel as IEEE-754 bit
// patterns so a cached response is bit-identical to a fresh one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "codec/bytes.hpp"

namespace dls::serve {

/// Per-request knobs carried inside the request frame.
struct ScheduleOptions {
  /// Protocol round tag (diagnostic; echoed into nothing yet).
  std::uint64_t round = 1;
  /// Admission-relative deadline in microseconds; 0 defers to the
  /// service's default (which may itself be "none").
  double deadline_us = 0.0;
  /// When true the response also carries the Phase IV payment vector
  /// Q_0..Q_m for compliant truthful execution.
  bool want_payments = false;
};

/// One scheduling problem: solve DLS-LBL on the chain (w, z).
struct ScheduleRequest {
  std::uint64_t request_id = 0;
  std::vector<double> w;  ///< m+1 processing times (P_0..P_m)
  std::vector<double> z;  ///< m link times (l_1..l_m)
  ScheduleOptions options;
};

enum class ScheduleStatus : std::uint8_t {
  kOk = 0,       ///< alpha/makespan (and payments if asked) are valid
  kShed = 1,     ///< admission queue full — retry with backoff
  kExpired = 2,  ///< deadline passed before the solve started
  kError = 3,    ///< malformed or infeasible request; see `error`
  kDegraded = 4, ///< brown-out: cache miss shed under load; see
                 ///< `retry_after_us` for when to come back
};

std::string to_string(ScheduleStatus status);

struct ScheduleResponse {
  std::uint64_t request_id = 0;
  ScheduleStatus status = ScheduleStatus::kOk;
  bool cache_hit = false;
  std::string error;           ///< empty unless status is kError/kDegraded
  std::vector<double> alpha;   ///< load fractions α_0..α_m (kOk only)
  double makespan = 0.0;       ///< T(α*) (kOk only)
  std::vector<double> payments;  ///< Q_0..Q_m when want_payments (kOk)
  double total_payment = 0.0;    ///< Σ_{j>=1} Q_j (kOk + want_payments)
  /// Brown-out hint (kDegraded only): how long the client should wait
  /// before retrying, in microseconds; 0 when the server has no advice.
  double retry_after_us = 0.0;
};

codec::Bytes encode_schedule_request(const ScheduleRequest& request);
ScheduleRequest decode_schedule_request(std::span<const std::uint8_t> data);

codec::Bytes encode_schedule_response(const ScheduleResponse& response);
ScheduleResponse decode_schedule_response(std::span<const std::uint8_t> data);

/// Canonical cache key for a problem instance: the byte encoding of the
/// (w, z) vectors alone. Two requests with the same topology and bids
/// map to the same key regardless of request id, round or options, and
/// the solver is deterministic, so a cached solution is bit-identical
/// to a fresh one.
codec::Bytes canonical_topology_key(std::span<const double> w,
                                    std::span<const double> z);

/// Replay key for the ShardRouter's verbatim response cache: the bytes
/// of an encoded request AFTER the request_id field. They cover the
/// round tag, deadline, payments flag and the full (w, z) topology, so
/// two requests with equal suffixes must receive byte-identical
/// responses up to the echoed id. Returns an empty span when `payload`
/// is too short to carry a request_id at all.
std::span<const std::uint8_t> schedule_request_replay_key(
    std::span<const std::uint8_t> payload);

/// Reads the request_id of an encoded request without decoding the
/// rest; 0 when the payload is too short.
std::uint64_t schedule_request_id(std::span<const std::uint8_t> payload);

/// Overwrites the request_id field of an encoded response in place —
/// the id is a fixed-width u64 at a fixed offset, so a cached response
/// encoding can be replayed for a new request. Throws
/// codec::DecodeError when the payload is too short to patch.
void patch_schedule_response_id(codec::Bytes& payload,
                                std::uint64_t request_id);

}  // namespace dls::serve
