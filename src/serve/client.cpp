#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "serve/frame.hpp"

namespace dls::serve {

namespace {

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

std::string to_string(RobustOutcome outcome) {
  switch (outcome) {
    case RobustOutcome::kAnswered:
      return "answered";
    case RobustOutcome::kBudgetExhausted:
      return "budget_exhausted";
  }
  return "unknown";
}

ScheduleResponse SchedulerClient::schedule(std::span<const double> w,
                                           std::span<const double> z,
                                           const ScheduleOptions& options) {
  return round_trip(w, z, options);
}

ScheduleResponse SchedulerClient::schedule(const net::LinearNetwork& network,
                                           const ScheduleOptions& options) {
  return round_trip(network.processing_times(), network.link_times(),
                    options);
}

MultiScheduleResponse SchedulerClient::schedule_multi(
    MultiScheduleRequest request, double timeout_s) {
  request.request_id = ++next_id_;
  write_frame(*end_, Frame{FrameType::kMultiScheduleRequest,
                           encode_multi_schedule_request(request)});
  for (;;) {
    auto frame = read_frame(*end_, timeout_s);
    if (!frame) {
      throw TransportError("service closed the connection before answering");
    }
    if (frame->type != FrameType::kMultiScheduleResponse) {
      throw TransportError("unexpected frame type '" +
                           to_string(frame->type) +
                           "' while awaiting a multi-schedule response");
    }
    MultiScheduleResponse response =
        decode_multi_schedule_response(frame->payload);
    if (response.request_id == request.request_id ||
        response.request_id == 0) {
      return response;
    }
    if (response.request_id < request.request_id) {
      // A stale answer to an earlier attempt: skip past it, exactly as
      // the single-load round trip does.
      DLS_COUNT("serve.client.stale_responses");
      continue;
    }
    throw TransportError("response id " +
                         std::to_string(response.request_id) +
                         " does not match request id " +
                         std::to_string(request.request_id));
  }
}

ScheduleResponse SchedulerClient::schedule_with_retry(
    std::span<const double> w, std::span<const double> z,
    const ScheduleOptions& options, const protocol::HeartbeatConfig& policy,
    std::uint64_t jitter_seed) {
  ScheduleResponse response = round_trip(w, z, options);
  common::Rng rng(jitter_seed);
  for (std::size_t attempt = 0;
       response.status == ScheduleStatus::kShed &&
       attempt < policy.retry_budget;
       ++attempt) {
    const double wait = protocol::exponential_backoff(
        policy.period, policy.backoff_factor, attempt, policy.max_backoff);
    // Jitter spreads synchronized retriers: full backoff was lockstep —
    // every shed client slept the same ladder and collided again.
    sleep_seconds(wait * rng.uniform(0.5, 1.0));
    response = round_trip(w, z, options);
  }
  return response;
}

RobustResult SchedulerClient::schedule_robust(std::span<const double> w,
                                              std::span<const double> z,
                                              const ScheduleOptions& options,
                                              const RobustOptions& robust) {
  RobustResult result;
  BackoffSchedule backoff(robust.policy, robust.seed);
  const auto start = std::chrono::steady_clock::now();
  const auto in_budget = [&] {
    if (robust.policy.total_deadline_s <= 0.0) return true;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() < robust.policy.total_deadline_s;
  };

  for (std::size_t attempt = 0;
       attempt < robust.policy.max_attempts && in_budget(); ++attempt) {
    if (robust.breaker != nullptr && !robust.breaker->allow()) {
      // The breaker is open: back off without touching the wire. The
      // attempt still burns budget — an open breaker is not free time.
      ++result.stats.breaker_rejections;
      sleep_seconds(backoff.next_delay_s());
      continue;
    }
    if (end_ == nullptr || !end_->valid()) {
      if (!robust.reconnect) {
        result.stats.last_error = "transport closed and no reconnect hook";
        break;
      }
      end_ = robust.reconnect();
      ++result.stats.reconnects;
      DLS_COUNT("serve.client.reconnects");
    }
    ++result.stats.attempts;
    try {
      ScheduleResponse response =
          round_trip(w, z, options, robust.policy.attempt_deadline_s);
      if (robust.breaker != nullptr) robust.breaker->record_success();
      if (response.status == ScheduleStatus::kShed ||
          response.status == ScheduleStatus::kDegraded) {
        // Typed refusal: remember it (it becomes the report if the
        // budget runs out) and come back later — no sooner than the
        // server's own hint.
        result.response = std::move(response);
        double delay = backoff.next_delay_s();
        if (result.response.status == ScheduleStatus::kDegraded &&
            result.response.retry_after_us > 0.0) {
          delay = std::max(delay, result.response.retry_after_us * 1e-6);
        }
        sleep_seconds(delay);
        continue;
      }
      result.outcome = RobustOutcome::kAnswered;
      result.response = std::move(response);
      return result;
    } catch (const TransportError& e) {
      ++result.stats.wire_errors;
      result.stats.last_error = e.what();
      DLS_COUNT("serve.client.wire_errors");
      if (robust.breaker != nullptr) robust.breaker->record_failure();
      if (end_ != nullptr) end_->close();
      sleep_seconds(backoff.next_delay_s());
    } catch (const codec::DecodeError& e) {
      // A corrupted response: the bytes are untrustworthy, so the
      // connection is replaced like any other wire failure.
      ++result.stats.wire_errors;
      result.stats.last_error = e.what();
      DLS_COUNT("serve.client.wire_errors");
      if (robust.breaker != nullptr) robust.breaker->record_failure();
      if (end_ != nullptr) end_->close();
      sleep_seconds(backoff.next_delay_s());
    }
  }
  result.outcome = RobustOutcome::kBudgetExhausted;
  return result;
}

ScheduleResponse SchedulerClient::round_trip(std::span<const double> w,
                                             std::span<const double> z,
                                             const ScheduleOptions& options,
                                             double timeout_s) {
  ScheduleRequest request;
  request.request_id = ++next_id_;
  request.w.assign(w.begin(), w.end());
  request.z.assign(z.begin(), z.end());
  request.options = options;
  write_frame(*end_, Frame{FrameType::kScheduleRequest,
                           encode_schedule_request(request)});
  for (;;) {
    auto frame = read_frame(*end_, timeout_s);
    if (!frame) {
      throw TransportError("service closed the connection before answering");
    }
    if (frame->type != FrameType::kScheduleResponse) {
      throw TransportError("unexpected frame type '" +
                           to_string(frame->type) +
                           "' while awaiting a schedule response");
    }
    ScheduleResponse response = decode_schedule_response(frame->payload);
    if (response.request_id == request.request_id ||
        response.request_id == 0) {
      return response;
    }
    if (response.request_id < request.request_id) {
      // A stale answer to an earlier attempt (duplicated request frame
      // or a response that arrived after we gave up): skip past it.
      DLS_COUNT("serve.client.stale_responses");
      continue;
    }
    throw TransportError("response id " +
                         std::to_string(response.request_id) +
                         " does not match request id " +
                         std::to_string(request.request_id));
  }
}

}  // namespace dls::serve
