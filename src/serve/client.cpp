#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/frame.hpp"

namespace dls::serve {

ScheduleResponse SchedulerClient::schedule(std::span<const double> w,
                                           std::span<const double> z,
                                           const ScheduleOptions& options) {
  return round_trip(w, z, options);
}

ScheduleResponse SchedulerClient::schedule(const net::LinearNetwork& network,
                                           const ScheduleOptions& options) {
  return round_trip(network.processing_times(), network.link_times(),
                    options);
}

ScheduleResponse SchedulerClient::schedule_with_retry(
    std::span<const double> w, std::span<const double> z,
    const ScheduleOptions& options,
    const protocol::HeartbeatConfig& policy) {
  ScheduleResponse response = round_trip(w, z, options);
  double wait = policy.period;
  for (std::size_t attempt = 0;
       response.status == ScheduleStatus::kShed &&
       attempt < policy.retry_budget;
       ++attempt) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
    wait = std::min(wait * policy.backoff_factor, policy.max_backoff);
    response = round_trip(w, z, options);
  }
  return response;
}

ScheduleResponse SchedulerClient::round_trip(std::span<const double> w,
                                             std::span<const double> z,
                                             const ScheduleOptions& options) {
  ScheduleRequest request;
  request.request_id = ++next_id_;
  request.w.assign(w.begin(), w.end());
  request.z.assign(z.begin(), z.end());
  request.options = options;
  write_frame(end_, Frame{FrameType::kScheduleRequest,
                          encode_schedule_request(request)});
  auto frame = read_frame(end_);
  if (!frame) {
    throw TransportError("service closed the connection before answering");
  }
  if (frame->type != FrameType::kScheduleResponse) {
    throw TransportError("unexpected frame type '" + to_string(frame->type) +
                         "' while awaiting a schedule response");
  }
  ScheduleResponse response = decode_schedule_response(frame->payload);
  if (response.request_id != request.request_id && response.request_id != 0) {
    throw TransportError("response id " +
                         std::to_string(response.request_id) +
                         " does not match request id " +
                         std::to_string(request.request_id));
  }
  return response;
}

}  // namespace dls::serve
