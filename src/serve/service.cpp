#include "serve/service.hpp"

#include <algorithm>
#include <utility>

#include "common/discipline.hpp"
#include "multiload/payments.hpp"
#include "multiload/solver.hpp"
#include "net/networks.hpp"
#include "obs/obs.hpp"
#include "serve/frame.hpp"

namespace dls::serve {

namespace {

double elapsed_us(std::chrono::steady_clock::time_point since,
                  std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double, std::micro>(now - since).count();
}

}  // namespace

SchedulerService::SchedulerService(ServiceConfig config,
                                   exec::ThreadPool* pool)
    : config_(config),
      pool_(pool != nullptr ? pool : &exec::ThreadPool::global()),
      cache_(config.cache_capacity),
      paused_(config.start_paused) {
  DLS_REQUIRE(config_.queue_capacity >= 1,
              "service needs a queue of at least one request");
  DLS_REQUIRE(config_.max_batch >= 1, "max_batch must be at least 1");
  dispatcher_ = std::thread([this] { dispatch_loop(); });
}

SchedulerService::~SchedulerService() { stop(); }

PipeEnd SchedulerService::connect() {
  Pipe pipe = make_pipe();
  adopt(std::make_unique<PipeEnd>(std::move(pipe.a)));
  return std::move(pipe.b);
}

void SchedulerService::adopt(std::unique_ptr<Transport> transport) {
  DLS_REQUIRE(transport != nullptr, "adopt() needs a transport");
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  DLS_REQUIRE(accepting_, "adopt()/connect() on a stopped service");
  // Reap sessions whose reader has already returned (peer hung up or
  // was quarantined) so reconnect storms don't accumulate dead threads
  // for the lifetime of the service.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire) &&
        (*it)->pending.load(std::memory_order_acquire) == 0) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  auto session = std::make_unique<Session>();
  session->end = std::move(transport);
  Session* raw = session.get();
  session->reader = std::thread([this, raw] {
    session_loop(raw);
    raw->done.store(true, std::memory_order_release);
  });
  sessions_.push_back(std::move(session));
  DLS_COUNT("serve.sessions");
}

bool SchedulerService::try_serve_inline(const ScheduleRequest& request,
                                        ScheduleResponse& response) {
  if (request.options.want_payments) return false;
  // Deadline accounting is admission-relative and owned by the framed
  // path; serving such a request inline could answer where handle()
  // would expire it, so any effective deadline declines the fast path.
  double deadline_us = request.options.deadline_us;
  if (deadline_us <= 0.0) deadline_us = config_.default_deadline_us;
  if (deadline_us > 0.0) return false;
  codec::Bytes key;
  try {
    key = canonical_topology_key(request.w, request.z);
  } catch (const dls::Error&) {
    return false;  // malformed instance: the framed path owns kError
  }
  const SolveCache::Value solution = cache_.lookup(key);
  if (!solution) return false;
  response = ScheduleResponse{};
  response.request_id = request.request_id;
  response.status = ScheduleStatus::kOk;
  response.cache_hit = true;
  response.alpha = solution->alpha;
  response.makespan = solution->makespan;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.inline_hits;
  }
  DLS_COUNT("serve.inline_hits");
  return true;
}

void SchedulerService::pause() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  paused_ = true;
}

void SchedulerService::resume() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void SchedulerService::stop() {
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    accepting_ = false;
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    stopping_ = true;
    paused_ = false;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
  // Closing the server ends unblocks every reader (EOF) and makes any
  // late response write throw, which send_response absorbs.
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) session->end->close();
  for (auto& session : sessions) {
    if (session->reader.joinable()) session->reader.join();
  }
}

ServiceStats SchedulerService::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SchedulerService::session_loop(Session* session) {
  std::size_t poison = 0;
  try {
    for (;;) {
      std::size_t skipped = 0;
      std::optional<Frame> frame;
      try {
        frame = read_frame_resync(*session->end, config_.resync_scan_bytes,
                                  &skipped);
      } catch (const FrameTruncationError&) {
        // Peer vanished mid-frame (torn write / silent disconnect):
        // the connection is dead, nothing to salvage.
        return;
      } catch (const FrameChecksumError&) {
        // Payload corrupted in flight, but the announced length was
        // fully consumed so the stream is still frame-aligned: a
        // poison frame, not a dead connection.
        ++poison;
        DLS_COUNT("serve.fault.checksum_mismatches");
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.poison_frames;
        }
        if (poison > config_.poison_budget) {
          quarantine(session);
          return;
        }
        continue;
      } catch (const codec::DecodeError&) {
        // The resync scan gave up (budget exhausted or the stream died
        // while hunting): this peer is sending garbage, not frames.
        quarantine(session);
        return;
      }
      if (skipped > 0) {
        // A malformed header was skipped over: count the poison frame
        // and quarantine peers that keep sending them.
        ++poison;
        DLS_COUNT("serve.fault.poison_frames");
        DLS_COUNT("serve.fault.resync_bytes", skipped);
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.poison_frames;
        }
        if (poison > config_.poison_budget) {
          quarantine(session);
          return;
        }
      }
      if (!frame) return;  // clean EOF: the client hung up
      if (frame->type == FrameType::kMultiScheduleRequest) {
        MultiScheduleRequest request;
        try {
          request = decode_multi_schedule_request(frame->payload);
        } catch (const codec::DecodeError& e) {
          MultiScheduleResponse refusal;
          refusal.status = ScheduleStatus::kError;
          refusal.error = e.what();
          count_multi_response(refusal);
          send_multi_response(session, refusal);
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.received;
          ++stats_.multi_received;
        }
        DLS_COUNT("serve.multi.requests");
        Pending pending;
        pending.multi = std::move(request);
        pending.session = session;
        admit(std::move(pending));
        continue;
      }
      if (frame->type != FrameType::kScheduleRequest) {
        ScheduleResponse refusal;
        refusal.status = ScheduleStatus::kError;
        refusal.error = "unexpected frame type '" + to_string(frame->type) +
                        "' (expected schedule_request)";
        count_response(refusal);
        send_response(session, refusal);
        continue;
      }
      ScheduleRequest request;
      try {
        request = decode_schedule_request(frame->payload);
      } catch (const codec::DecodeError& e) {
        ScheduleResponse refusal;
        refusal.status = ScheduleStatus::kError;
        refusal.error = e.what();
        count_response(refusal);
        send_response(session, refusal);
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.received;
      }
      DLS_COUNT("serve.requests");
      Pending pending;
      pending.request = std::move(request);
      pending.session = session;
      admit(std::move(pending));
    }
  } catch (const TransportError&) {
    // Peer vanished; the connection is dead either way.
  }
}

void SchedulerService::quarantine(Session* session) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.quarantined;
  }
  DLS_COUNT("serve.quarantined");
  // Closing only this connection tears down the poisoned peer without
  // touching the dispatcher or any other session; the client observes
  // EOF for anything it still believes is in flight.
  session->end->close();
}

bool SchedulerService::try_brownout(const ScheduleRequest& request,
                                    Session* session) {
  if (config_.brownout_watermark == 0) return false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() < config_.brownout_watermark) return false;
  }
  // Above the watermark the solver pool is the bottleneck, so answer
  // what the cache already knows inline from the reader thread (the
  // bytes are identical to a queued solve) and refuse the rest with a
  // typed hint instead of letting the queue shed blindly.
  DLS_SPAN("serve.brownout");
  if (!request.options.want_payments) {
    const codec::Bytes key = canonical_topology_key(request.w, request.z);
    if (const SolveCache::Value solution = cache_.lookup(key)) {
      ScheduleResponse response;
      response.request_id = request.request_id;
      response.status = ScheduleStatus::kOk;
      response.cache_hit = true;
      response.alpha = solution->alpha;
      response.makespan = solution->makespan;
      DLS_COUNT("serve.brownout.cache_hits");
      count_response(response);
      send_response(session, response);
      return true;
    }
  }
  // Payments need the full mechanism run, never just cached bytes, so
  // want_payments traffic always degrades during a brown-out.
  ScheduleResponse degraded;
  degraded.request_id = request.request_id;
  degraded.status = ScheduleStatus::kDegraded;
  degraded.error = "service degraded: queue above brown-out watermark";
  degraded.retry_after_us = config_.degraded_retry_after_us;
  count_response(degraded);
  send_response(session, degraded);
  return true;
}

bool SchedulerService::try_brownout_multi(const MultiScheduleRequest& request,
                                          Session* session) {
  if (config_.brownout_watermark == 0) return false;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.size() < config_.brownout_watermark) return false;
  }
  // No cache fast path here: a multi-load answer depends on the whole
  // load mix, never on topology alone, so brown-out always refuses
  // with the typed hint.
  DLS_SPAN("serve.brownout");
  MultiScheduleResponse degraded;
  degraded.request_id = request.request_id;
  degraded.status = ScheduleStatus::kDegraded;
  degraded.error = "service degraded: queue above brown-out watermark";
  degraded.retry_after_us = config_.degraded_retry_after_us;
  count_multi_response(degraded);
  send_multi_response(session, degraded);
  return true;
}

void SchedulerService::admit(Pending pending) {
  if (pending.multi) {
    if (try_brownout_multi(*pending.multi, pending.session)) return;
  } else if (try_brownout(pending.request, pending.session)) {
    return;
  }
  Session* session = pending.session;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!stopping_ && queue_.size() < config_.queue_capacity) {
      session->pending.fetch_add(1, std::memory_order_relaxed);
      pending.admitted_at = std::chrono::steady_clock::now();
      queue_.push_back(std::move(pending));
      DLS_GAUGE_MAX("serve.queue_depth", static_cast<double>(queue_.size()));
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.admitted;
      }
      queue_cv_.notify_one();
      return;
    }
  }
  // Explicit backpressure: the client learns immediately and retries
  // with backoff instead of waiting on a silently growing queue.
  if (pending.multi) {
    MultiScheduleResponse shed;
    shed.request_id = pending.multi->request_id;
    shed.status = ScheduleStatus::kShed;
    count_multi_response(shed);
    send_multi_response(session, shed);
    return;
  }
  ScheduleResponse shed;
  shed.request_id = pending.request.request_id;
  shed.status = ScheduleStatus::kShed;
  count_response(shed);
  send_response(session, shed);
}

void SchedulerService::dispatch_loop() {
  std::vector<Pending> batch;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        return stopping_ || (!paused_ && !queue_.empty());
      });
      if (stopping_) break;
      const std::size_t take = std::min(config_.max_batch, queue_.size());
      batch.clear();
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    try {
      process_batch(batch);
    } catch (const std::exception&) {
      // Last-ditch backstop: process_batch guards its solve phase and
      // the response writes swallow transport errors, so this is
      // effectively unreachable — but an exception escaping here would
      // std::terminate the whole service from the dispatcher thread,
      // so the loop must never rethrow.
      DLS_COUNT("serve.dispatch.batch_dropped");
    }
  }
  // Drain on stop: everything still queued is answered, not dropped.
  std::deque<Pending> rest;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    rest.swap(queue_);
  }
  for (const Pending& pending : rest) {
    if (pending.multi) {
      MultiScheduleResponse refusal;
      refusal.request_id = pending.multi->request_id;
      refusal.status = ScheduleStatus::kError;
      refusal.error = "service stopped before the request was served";
      count_multi_response(refusal);
      send_multi_response(pending.session, refusal);
    } else {
      ScheduleResponse refusal;
      refusal.request_id = pending.request.request_id;
      refusal.status = ScheduleStatus::kError;
      refusal.error = "service stopped before the request was served";
      count_response(refusal);
      send_response(pending.session, refusal);
    }
    pending.session->pending.fetch_sub(1, std::memory_order_release);
  }
}

void SchedulerService::process_batch(std::vector<Pending>& batch) {
  DLS_SPAN_ARGS("serve.dispatch",
                "{\"batch\":" + std::to_string(batch.size()) + "}");
  DLS_OBSERVE("serve.batch_size", static_cast<double>(batch.size()),
              {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0});
  std::vector<ScheduleResponse> responses(batch.size());
  std::vector<MultiScheduleResponse> multi_responses(batch.size());
  std::vector<SingleTask> singles;
  std::vector<MissGroup> groups;
  classify_window(batch, responses, singles, groups);
  while (dispatch_scratch_.size() < groups.size()) {
    dispatch_scratch_.push_back(std::make_unique<DispatchScratch>());
  }
  const std::size_t group_count = groups.size();
  try {
    pool_->parallel_for(group_count + singles.size(), [&](std::size_t t) {
      if (t < group_count) {
        solve_group(groups[t], *dispatch_scratch_[t], batch, responses);
      } else {
        const SingleTask& task = singles[t - group_count];
        if (batch[task.index].multi) {
          multi_responses[task.index] = handle_multi(batch[task.index]);
        } else {
          responses[task.index] = handle(batch[task.index], &task);
        }
      }
    });
  } catch (const std::exception& e) {
    // handle()/handle_multi()/solve_group() absorb per-request failures
    // themselves, so only a failure outside them (response assignment,
    // pool plumbing) lands here. The pool reports the first exception
    // and the rest of the tasks still ran, but which entry it came from
    // is unknown — refuse every entry that was being computed in
    // parallel (classify_window results stand) and keep the dispatcher.
    DLS_COUNT("serve.dispatch.batch_failed");
    const auto refuse = [&](std::size_t i) {
      if (batch[i].multi) {
        MultiScheduleResponse& r = multi_responses[i];
        r = MultiScheduleResponse{};
        r.request_id = batch[i].multi->request_id;
        r.status = ScheduleStatus::kError;
        r.error = e.what();
      } else {
        ScheduleResponse& r = responses[i];
        r = ScheduleResponse{};
        r.request_id = batch[i].request.request_id;
        r.status = ScheduleStatus::kError;
        r.error = e.what();
      }
    };
    for (const SingleTask& task : singles) refuse(task.index);
    for (const MissGroup& group : groups) {
      for (const std::size_t i : group.members) refuse(i);
      for (const auto& [i, lane] : group.aliases) refuse(i);
    }
  }
  // Responses are written serially, in admission order, after the
  // parallel solve — frame writes are atomic either way, but serial
  // writes keep per-connection response order deterministic.
  // [[maybe_unused]]: the only consumer is DLS_OBSERVE, which compiles
  // out at DLS_OBS_LEVEL=0 and must not leave a warning behind.
  [[maybe_unused]] const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].multi) {
      count_multi_response(multi_responses[i]);
      send_multi_response(batch[i].session, multi_responses[i]);
      batch[i].session->pending.fetch_sub(1, std::memory_order_release);
      continue;
    }
    count_response(responses[i]);
    if (responses[i].status == ScheduleStatus::kOk) {
      DLS_OBSERVE("serve.request.latency_us",
                  elapsed_us(batch[i].admitted_at, now),
                  {10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
                   5000.0, 10000.0, 20000.0, 50000.0, 100000.0, 1000000.0});
    }
    send_response(batch[i].session, responses[i]);
    batch[i].session->pending.fetch_sub(1, std::memory_order_release);
  }
}

void SchedulerService::classify_window(const std::vector<Pending>& batch,
                                       std::vector<ScheduleResponse>& responses,
                                       std::vector<SingleTask>& singles,
                                       std::vector<MissGroup>& groups) {
  if (config_.batch_min_lanes == 0) {
    // Dispatch-window batching disabled: everything takes the classic
    // per-request path, untouched.
    singles.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      singles.push_back(SingleTask{i, /*looked_up=*/false, nullptr});
    }
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].multi) {
      // Multi-load requests always take the per-request path: the
      // answer depends on the whole load mix, so there is nothing to
      // look up or coalesce with batchmates.
      singles.push_back(SingleTask{i, /*looked_up=*/false, nullptr});
      continue;
    }
    const ScheduleRequest& request = batch[i].request;
    ScheduleResponse& response = responses[i];
    response.request_id = request.request_id;

    // Same deadline rule handle() applies before touching the solver:
    // an expired batchmate is answered here and never occupies a lane.
    double deadline_us = request.options.deadline_us;
    if (deadline_us <= 0.0) deadline_us = config_.default_deadline_us;
    if (deadline_us > 0.0 &&
        elapsed_us(batch[i].admitted_at, now) > deadline_us) {
      response.status = ScheduleStatus::kExpired;
      continue;
    }

    // Validate exactly as handle() would; invalid instances go to the
    // single path so their kError response is produced by the same code.
    try {
      [[maybe_unused]] const net::LinearNetwork probe(request.w, request.z);
    } catch (const dls::Error&) {
      singles.push_back(SingleTask{i, /*looked_up=*/false, nullptr});
      continue;
    }

    const codec::Bytes key = canonical_topology_key(request.w, request.z);
    if (SolveCache::Value solution = cache_.lookup(key)) {
      if (request.options.want_payments) {
        // Payments rerun the mechanism even on a solution hit; keep
        // that on the classic path (handing over the hit so the cache
        // is not consulted twice).
        singles.push_back(
            SingleTask{i, /*looked_up=*/true, std::move(solution)});
        continue;
      }
      response.status = ScheduleStatus::kOk;
      response.cache_hit = true;
      response.alpha = solution->alpha;
      response.makespan = solution->makespan;
      continue;
    }

    // Cache miss: group by chain length; identical topologies collapse
    // into one lane (payment-carrying requests keep their own lane so
    // each gets its own mechanism run).
    const std::size_t chain = request.w.size();
    MissGroup* group = nullptr;
    for (MissGroup& g : groups) {
      if (g.chain == chain) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.emplace_back();
      group = &groups.back();
      group->chain = chain;
    }
    if (!request.options.want_payments) {
      bool aliased = false;
      for (std::size_t lane = 0; lane < group->keys.size(); ++lane) {
        if (group->keys[lane] == key) {
          group->aliases.emplace_back(i, lane);
          aliased = true;
          break;
        }
      }
      if (aliased) continue;
    }
    group->members.push_back(i);
    group->keys.push_back(key);
  }

  // Undersized groups don't amortise the batch machinery; hand their
  // members back to the per-request path (aliases justify keeping a
  // group regardless — one solve still answers several requests).
  for (auto it = groups.begin(); it != groups.end();) {
    if (it->members.size() < config_.batch_min_lanes &&
        it->aliases.empty()) {
      for (const std::size_t i : it->members) {
        // Classification already looked these up (known misses).
        singles.push_back(SingleTask{i, /*looked_up=*/true, nullptr});
      }
      it = groups.erase(it);
    } else {
      ++it;
    }
  }
}

// The dispatcher's inner loop: stages every lane of a miss group into
// the warmed batch solver and runs it. Split from solve_group so the
// part that must stay allocation-free under load carries the
// DLS_HOT_NOALLOC contract, while the response fan-out above it is free
// to build strings and shared_ptrs.
DLS_HOT_NOALLOC
void SchedulerService::solve_group_lanes(const MissGroup& group,
                                         DispatchScratch& scratch,
                                         const std::vector<Pending>& batch) {
  const std::size_t lanes = group.members.size();
  scratch.solver.begin(group.chain, lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const ScheduleRequest& request = batch[group.members[lane]].request;
    scratch.solver.set_instance(lane, request.w, request.z);
  }
  scratch.solver.solve();
}

void SchedulerService::solve_group(const MissGroup& group,
                                   DispatchScratch& scratch,
                                   const std::vector<Pending>& batch,
                                   std::vector<ScheduleResponse>& responses) {
  const std::size_t lanes = group.members.size();
  DLS_SPAN_ARGS("serve.batch.solve",
                "{\"m\":" + std::to_string(group.chain) +
                    ",\"k\":" + std::to_string(lanes) + "}");
  DLS_COUNT("serve.batch.groups");
  DLS_COUNT("serve.batch.lanes", lanes);
  if (!group.aliases.empty()) {
    DLS_COUNT("serve.batch.dedup", group.aliases.size());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.batch_groups;
    stats_.batched += lanes + group.aliases.size();
    stats_.batch_deduped += group.aliases.size();
  }

  try {
    solve_group_lanes(group, scratch, batch);
  } catch (const std::exception& e) {
    // A contract violation (or allocation failure) mid-batch poisons
    // every lane equally; each member gets an error, aliases included.
    const auto fail = [&](std::size_t i) {
      ScheduleResponse& r = responses[i];
      r = ScheduleResponse{};
      r.request_id = batch[i].request.request_id;
      r.status = ScheduleStatus::kError;
      r.error = e.what();
    };
    for (const std::size_t i : group.members) fail(i);
    for (const auto& [i, lane] : group.aliases) fail(i);
    return;
  }

  std::vector<SolveCache::Value> solutions(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::size_t i = group.members[lane];
    const ScheduleRequest& request = batch[i].request;
    auto solved = std::make_shared<dlt::LinearSolution>();
    scratch.solver.extract(lane, *solved);
    solutions[lane] = std::move(solved);
    cache_.insert(group.keys[lane], solutions[lane]);

    ScheduleResponse& response = responses[i];
    response.status = ScheduleStatus::kOk;
    response.cache_hit = false;
    response.alpha = solutions[lane]->alpha;
    response.makespan = solutions[lane]->makespan;
    if (request.options.want_payments) {
      try {
        const net::LinearNetwork network(request.w, request.z);
        const core::DlsLblResult& assessment = core::assess_compliant_from_batch(
            network, scratch.solver, lane, network.processing_times(),
            config_.mechanism, scratch.assess);
        response.payments.clear();
        response.payments.reserve(assessment.processors.size());
        for (const core::Assessment& a : assessment.processors) {
          response.payments.push_back(a.money.payment);
        }
        response.total_payment = assessment.total_payment;
      } catch (const std::exception& e) {
        response = ScheduleResponse{};
        response.request_id = request.request_id;
        response.status = ScheduleStatus::kError;
        response.error = e.what();
      }
    }
  }

  for (const auto& [i, lane] : group.aliases) {
    ScheduleResponse& response = responses[i];
    response.request_id = batch[i].request.request_id;
    response.status = ScheduleStatus::kOk;
    response.cache_hit = false;
    response.alpha = solutions[lane]->alpha;
    response.makespan = solutions[lane]->makespan;
  }
}

ScheduleResponse SchedulerService::handle(const Pending& pending,
                                          const SingleTask* prefetched) {
  DLS_SPAN("serve.handle");
  const ScheduleRequest& request = pending.request;
  ScheduleResponse response;
  response.request_id = request.request_id;

  double deadline_us = request.options.deadline_us;
  if (deadline_us <= 0.0) deadline_us = config_.default_deadline_us;
  if (deadline_us > 0.0 &&
      elapsed_us(pending.admitted_at, std::chrono::steady_clock::now()) >
          deadline_us) {
    response.status = ScheduleStatus::kExpired;
    return response;
  }

  try {
    const net::LinearNetwork network(request.w, request.z);
    const codec::Bytes key = canonical_topology_key(request.w, request.z);
    SolveCache::Value solution = prefetched != nullptr && prefetched->looked_up
                                     ? prefetched->solution
                                     : cache_.lookup(key);
    response.cache_hit = solution != nullptr;
    if (!solution) {
      auto solved = std::make_shared<dlt::LinearSolution>();
      dlt::solve_linear_boundary_into(network, *solved,
                                      /*want_steps=*/false);
      solution = std::move(solved);
      cache_.insert(key, solution);
    }
    response.alpha = solution->alpha;
    response.makespan = solution->makespan;
    if (request.options.want_payments) {
      const core::DlsLblResult assessment = core::assess_compliant(
          network, network.processing_times(), config_.mechanism);
      response.payments.reserve(assessment.processors.size());
      for (const core::Assessment& a : assessment.processors) {
        response.payments.push_back(a.money.payment);
      }
      response.total_payment = assessment.total_payment;
    }
    response.status = ScheduleStatus::kOk;
  } catch (const dls::Error& e) {
    response = ScheduleResponse{};
    response.request_id = request.request_id;
    response.status = ScheduleStatus::kError;
    response.error = e.what();
  } catch (const std::exception& e) {
    // Untyped failure (e.g. bad_alloc): refuse rather than unwind into
    // the dispatcher thread and kill the service.
    response = ScheduleResponse{};
    response.request_id = request.request_id;
    response.status = ScheduleStatus::kError;
    response.error = e.what();
  }
  return response;
}

MultiScheduleResponse SchedulerService::handle_multi(const Pending& pending) {
  DLS_SPAN("serve.multi.handle");
  const MultiScheduleRequest& request = *pending.multi;
  MultiScheduleResponse response;
  response.request_id = request.request_id;

  double deadline_us = request.deadline_us;
  if (deadline_us <= 0.0) deadline_us = config_.default_deadline_us;
  if (deadline_us > 0.0 &&
      elapsed_us(pending.admitted_at, std::chrono::steady_clock::now()) >
          deadline_us) {
    // Expired before dispatch: answered without scheduling a single
    // installment, exactly like the single-load deadline rule.
    response.status = ScheduleStatus::kExpired;
    return response;
  }

  try {
    const net::LinearNetwork network(request.w, request.z);
    std::vector<multiload::LoadSpec> specs;
    specs.reserve(request.loads.size());
    for (const MultiLoadItem& item : request.loads) {
      specs.push_back(multiload::LoadSpec{item.load_id, item.size,
                                          item.release, item.deadline});
    }
    multiload::MultiLoadConfig config;
    config.policy = static_cast<multiload::DispatchPolicy>(request.policy);
    config.installments_per_load = request.installments;
    config.ingress_z = request.ingress_z;
    multiload::MultiLoadSolver solver(network);
    const multiload::MultiLoadSchedule schedule = solver.solve(specs, config);
    response.loads.reserve(schedule.loads.size());
    for (const multiload::LoadOutcome& outcome : schedule.loads) {
      MultiLoadResult result;
      result.load_id = outcome.spec.id;
      result.start = outcome.start;
      result.completion = outcome.completion;
      result.deadline_met = outcome.deadline_met;
      response.loads.push_back(result);
    }
    response.makespan = schedule.makespan;
    response.serialized_makespan = schedule.serialized_makespan;
    if (request.want_payments) {
      const multiload::MultiLoadAssessment assessment =
          multiload::assess_loads(network, network.processing_times(), specs,
                                  config_.mechanism);
      for (std::size_t i = 0; i < assessment.loads.size(); ++i) {
        response.loads[i].total_payment = assessment.loads[i].total_payment;
      }
      response.total_payment = assessment.total_payment;
    }
    response.status = ScheduleStatus::kOk;
  } catch (const dls::Error& e) {
    response = MultiScheduleResponse{};
    response.request_id = request.request_id;
    response.status = ScheduleStatus::kError;
    response.error = e.what();
  } catch (const std::exception& e) {
    // Untyped failure (bad_alloc, length_error from a hostile request
    // size): same refusal. Letting it escape would unwind through the
    // thread pool into the dispatcher thread and terminate the process.
    response = MultiScheduleResponse{};
    response.request_id = request.request_id;
    response.status = ScheduleStatus::kError;
    response.error = e.what();
  }
  return response;
}

void SchedulerService::send_response(Session* session,
                                     const ScheduleResponse& response) {
  try {
    write_frame(*session->end,
                Frame{FrameType::kScheduleResponse,
                      encode_schedule_response(response)});
  } catch (const TransportError&) {
    // The client hung up before its answer arrived; nothing to do.
  }
}

void SchedulerService::send_multi_response(
    Session* session, const MultiScheduleResponse& response) {
  try {
    write_frame(*session->end,
                Frame{FrameType::kMultiScheduleResponse,
                      encode_multi_schedule_response(response)});
  } catch (const TransportError&) {
    // The client hung up before its answer arrived; nothing to do.
  }
}

void SchedulerService::count_multi_response(
    const MultiScheduleResponse& response) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    switch (response.status) {
      case ScheduleStatus::kOk:
        ++stats_.ok;
        stats_.multi_loads += response.loads.size();
        break;
      case ScheduleStatus::kShed:
        ++stats_.shed;
        break;
      case ScheduleStatus::kExpired:
        ++stats_.expired;
        break;
      case ScheduleStatus::kError:
        ++stats_.errors;
        break;
      case ScheduleStatus::kDegraded:
        ++stats_.degraded;
        break;
    }
  }
  switch (response.status) {
    case ScheduleStatus::kOk:
      DLS_COUNT("serve.multi.responses.ok");
      DLS_COUNT("serve.multi.loads", response.loads.size());
      break;
    case ScheduleStatus::kShed:
      DLS_COUNT("serve.multi.responses.shed");
      break;
    case ScheduleStatus::kExpired:
      DLS_COUNT("serve.multi.responses.expired");
      break;
    case ScheduleStatus::kError:
      DLS_COUNT("serve.multi.responses.error");
      break;
    case ScheduleStatus::kDegraded:
      DLS_COUNT("serve.multi.responses.degraded");
      break;
  }
}

void SchedulerService::count_response(const ScheduleResponse& response) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    switch (response.status) {
      case ScheduleStatus::kOk:
        ++stats_.ok;
        break;
      case ScheduleStatus::kShed:
        ++stats_.shed;
        break;
      case ScheduleStatus::kExpired:
        ++stats_.expired;
        break;
      case ScheduleStatus::kError:
        ++stats_.errors;
        break;
      case ScheduleStatus::kDegraded:
        ++stats_.degraded;
        break;
    }
  }
  switch (response.status) {
    case ScheduleStatus::kOk:
      DLS_COUNT("serve.responses.ok");
      break;
    case ScheduleStatus::kShed:
      DLS_COUNT("serve.responses.shed");
      break;
    case ScheduleStatus::kExpired:
      DLS_COUNT("serve.responses.expired");
      break;
    case ScheduleStatus::kError:
      DLS_COUNT("serve.responses.error");
      break;
    case ScheduleStatus::kDegraded:
      DLS_COUNT("serve.degraded");
      break;
  }
}

}  // namespace dls::serve
