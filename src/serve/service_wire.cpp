#include "serve/service_wire.hpp"

namespace dls::serve {

namespace {

constexpr std::string_view kRequestMagic = "dls.serve.req.v1";
// v2 appended the retry_after_us brown-out hint to the response tail.
constexpr std::string_view kResponseMagic = "dls.serve.resp.v2";
constexpr std::string_view kKeyMagic = "dls.serve.key.v1";

/// Caps decoded vector lengths so a malformed count cannot force a
/// giant allocation before the truncation check fires.
constexpr std::uint64_t kMaxVectorLength = std::uint64_t{1} << 20;

void expect_magic(codec::Reader& r, std::string_view magic) {
  const std::string found = r.string();
  if (found != magic) {
    throw codec::DecodeError("bad wire magic: expected '" +
                             std::string(magic) + "', got '" + found + "'");
  }
}

void put_f64_vector(codec::Writer& w, std::span<const double> values) {
  w.varint(values.size());
  w.f64_array(values);
}

std::vector<double> take_f64_vector(codec::Reader& r) {
  const std::uint64_t count = r.varint();
  if (count > kMaxVectorLength) {
    throw codec::DecodeError("vector length " + std::to_string(count) +
                             " exceeds the wire cap");
  }
  std::vector<double> values(static_cast<std::size_t>(count));
  r.f64_array(values);
  return values;
}

bool take_bool(codec::Reader& r) {
  const std::uint8_t v = r.u8();
  if (v > 1) {
    throw codec::DecodeError("bad boolean byte " + std::to_string(v));
  }
  return v == 1;
}

}  // namespace

std::string to_string(ScheduleStatus status) {
  switch (status) {
    case ScheduleStatus::kOk:
      return "ok";
    case ScheduleStatus::kShed:
      return "shed";
    case ScheduleStatus::kExpired:
      return "expired";
    case ScheduleStatus::kError:
      return "error";
    case ScheduleStatus::kDegraded:
      return "degraded";
  }
  return "unknown";
}

codec::Bytes encode_schedule_request(const ScheduleRequest& request) {
  codec::Writer w;
  w.string(kRequestMagic);
  w.u64(request.request_id);
  w.u64(request.options.round);
  w.f64(request.options.deadline_us);
  w.u8(request.options.want_payments ? 1 : 0);
  put_f64_vector(w, request.w);
  put_f64_vector(w, request.z);
  return w.take();
}

ScheduleRequest decode_schedule_request(std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  expect_magic(r, kRequestMagic);
  ScheduleRequest request;
  request.request_id = r.u64();
  request.options.round = r.u64();
  request.options.deadline_us = r.f64();
  request.options.want_payments = take_bool(r);
  request.w = take_f64_vector(r);
  request.z = take_f64_vector(r);
  r.expect_done();
  if (request.w.empty()) {
    throw codec::DecodeError("schedule request carries an empty chain");
  }
  if (request.z.size() + 1 != request.w.size()) {
    throw codec::DecodeError(
        "schedule request link count mismatch: " +
        std::to_string(request.w.size()) + " processors need " +
        std::to_string(request.w.size() - 1) + " links, got " +
        std::to_string(request.z.size()));
  }
  return request;
}

codec::Bytes encode_schedule_response(const ScheduleResponse& response) {
  codec::Writer w;
  w.string(kResponseMagic);
  w.u64(response.request_id);
  w.u8(static_cast<std::uint8_t>(response.status));
  w.u8(response.cache_hit ? 1 : 0);
  w.string(response.error);
  put_f64_vector(w, response.alpha);
  w.f64(response.makespan);
  put_f64_vector(w, response.payments);
  w.f64(response.total_payment);
  w.f64(response.retry_after_us);
  return w.take();
}

ScheduleResponse decode_schedule_response(
    std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  expect_magic(r, kResponseMagic);
  ScheduleResponse response;
  response.request_id = r.u64();
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(ScheduleStatus::kDegraded)) {
    throw codec::DecodeError("unknown schedule status " +
                             std::to_string(status));
  }
  response.status = static_cast<ScheduleStatus>(status);
  response.cache_hit = take_bool(r);
  response.error = r.string();
  response.alpha = take_f64_vector(r);
  response.makespan = r.f64();
  response.payments = take_f64_vector(r);
  response.total_payment = r.f64();
  response.retry_after_us = r.f64();
  r.expect_done();
  return response;
}

codec::Bytes canonical_topology_key(std::span<const double> w,
                                    std::span<const double> z) {
  codec::Writer writer;
  writer.string(kKeyMagic);
  put_f64_vector(writer, w);
  put_f64_vector(writer, z);
  return writer.take();
}

namespace {

/// Size of a magic string's encoding — the request_id field starts
/// right after it in both payload layouts.
std::size_t encoded_magic_size(std::string_view magic) {
  codec::Writer writer;
  writer.string(magic);
  return writer.take().size();
}

}  // namespace

std::span<const std::uint8_t> schedule_request_replay_key(
    std::span<const std::uint8_t> payload) {
  static const std::size_t offset =
      encoded_magic_size(kRequestMagic) + sizeof(std::uint64_t);
  if (payload.size() < offset) return {};
  return payload.subspan(offset);
}

std::uint64_t schedule_request_id(std::span<const std::uint8_t> payload) {
  static const std::size_t offset = encoded_magic_size(kRequestMagic);
  if (payload.size() < offset + sizeof(std::uint64_t)) return 0;
  std::uint64_t id = 0;
  for (std::size_t i = 0; i < sizeof(std::uint64_t); ++i) {
    id |= static_cast<std::uint64_t>(payload[offset + i]) << (8 * i);
  }
  return id;
}

void patch_schedule_response_id(codec::Bytes& payload,
                                std::uint64_t request_id) {
  static const std::size_t offset = encoded_magic_size(kResponseMagic);
  if (payload.size() < offset + sizeof(std::uint64_t)) {
    throw codec::DecodeError(
        "response payload too short to patch a request id");
  }
  for (std::size_t i = 0; i < sizeof(std::uint64_t); ++i) {
    payload[offset + i] =
        static_cast<std::uint8_t>((request_id >> (8 * i)) & 0xffu);
  }
}

}  // namespace dls::serve
