// Typed client for the scheduling service.
//
// Wraps one end of a service connection in a synchronous call API:
// schedule() encodes a ScheduleRequest frame, writes it, and blocks for
// the matching ScheduleResponse. Three retry flavours layer on top:
//
//  * schedule_with_retry — the compatibility path: resends on kShed
//    with the recovery layer's HeartbeatConfig knobs (exponential
//    backoff via protocol::exponential_backoff), now jittered with a
//    seeded multiplier so synchronized clients do not retry in
//    lockstep;
//  * schedule_robust — the chaos-hardened path: a RetryPolicy with
//    decorrelated jitter, per-attempt read deadlines and a total
//    wall-clock budget, an optional shared CircuitBreaker, and an
//    optional reconnect hook so a dead transport is replaced instead of
//    reported. Every call ends in exactly one of {answer, typed
//    refusal, exhausted-budget report} — never a hang.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "net/networks.hpp"
#include "protocol/recovery.hpp"
#include "serve/multiload_wire.hpp"
#include "serve/pipe.hpp"
#include "serve/retry.hpp"
#include "serve/service_wire.hpp"
#include "serve/transport.hpp"

namespace dls::serve {

/// How a schedule_robust call ended.
enum class RobustOutcome : std::uint8_t {
  kAnswered = 0,         ///< the service answered (any ScheduleStatus)
  kBudgetExhausted = 1,  ///< attempts/deadline ran out first
};

std::string to_string(RobustOutcome outcome);

/// Wire-level accounting for one schedule_robust call.
struct RobustStats {
  std::size_t attempts = 0;            ///< round trips actually tried
  std::size_t wire_errors = 0;         ///< transport/decode failures
  std::size_t breaker_rejections = 0;  ///< attempts the breaker refused
  std::size_t reconnects = 0;          ///< transports replaced
  std::string last_error;              ///< most recent wire failure
};

struct RobustResult {
  RobustOutcome outcome = RobustOutcome::kBudgetExhausted;
  /// kAnswered: the service's answer. kBudgetExhausted: the last typed
  /// refusal seen, if any (status kShed/kDegraded), else default.
  ScheduleResponse response;
  RobustStats stats;
};

struct RobustOptions {
  RetryPolicy policy;
  /// Optional; shared across calls (and clients) of one connection.
  CircuitBreaker* breaker = nullptr;
  /// Replacement factory for a dead transport. Without one, a dead
  /// transport ends the call with kBudgetExhausted.
  std::function<std::unique_ptr<Transport>()> reconnect;
  /// Seeds the backoff jitter; vary per client for decorrelation.
  std::uint64_t seed = 1;
};

class SchedulerClient {
 public:
  /// Takes ownership of the client end returned by
  /// SchedulerService::connect().
  explicit SchedulerClient(PipeEnd end)
      : end_(std::make_unique<PipeEnd>(std::move(end))) {}

  /// Generalised flavour: any Transport (e.g. a ChaosTransport).
  explicit SchedulerClient(std::unique_ptr<Transport> transport)
      : end_(std::move(transport)) {}

  /// One synchronous request/response round trip. Throws TransportError
  /// when the service hung up before answering.
  ScheduleResponse schedule(std::span<const double> w,
                            std::span<const double> z,
                            const ScheduleOptions& options = {});

  /// Convenience flavour over a network description.
  ScheduleResponse schedule(const net::LinearNetwork& network,
                            const ScheduleOptions& options = {});

  /// One synchronous multi-load round trip: assigns the request id,
  /// writes a kMultiScheduleRequest frame and blocks for the matching
  /// response. The caller fills everything else (chain, loads, policy
  /// knobs). Throws TransportError when the service hung up and
  /// TransportTimeout when `timeout_s` > 0 elapses first.
  MultiScheduleResponse schedule_multi(MultiScheduleRequest request,
                                       double timeout_s = 0.0);

  /// schedule(), resending on kShed with exponential backoff per
  /// `policy`, each wait scaled by a seeded jitter factor in [0.5, 1)
  /// so synchronized clients spread apart. Returns the last response
  /// (still kShed when the budget ran out).
  ScheduleResponse schedule_with_retry(
      std::span<const double> w, std::span<const double> z,
      const ScheduleOptions& options, const protocol::HeartbeatConfig& policy,
      std::uint64_t jitter_seed = 0x6a69747465726564ull);

  /// The chaos-hardened call: retries kShed/kDegraded (honouring the
  /// server's retry-after hint), survives transport and decode failures
  /// by reconnecting, consults the circuit breaker before touching the
  /// wire, and always returns — never hangs, never throws for wire
  /// trouble. Problem-shape errors (kError/kExpired) are answers, not
  /// retries.
  RobustResult schedule_robust(std::span<const double> w,
                               std::span<const double> z,
                               const ScheduleOptions& options,
                               const RobustOptions& robust);

  /// Hangs up; the service session observes EOF and exits.
  void close() noexcept {
    if (end_) end_->close();
  }

 private:
  ScheduleResponse round_trip(std::span<const double> w,
                              std::span<const double> z,
                              const ScheduleOptions& options,
                              double timeout_s = 0.0);

  std::unique_ptr<Transport> end_;
  std::uint64_t next_id_ = 0;
};

}  // namespace dls::serve
