// Typed client for the scheduling service.
//
// Wraps one end of a service connection in a synchronous call API:
// schedule() encodes a ScheduleRequest frame, writes it, and blocks for
// the matching ScheduleResponse. Shed responses (admission queue full)
// can be retried transparently with the recovery layer's probe-backoff
// policy: attempt k sleeps period * backoff_factor^k seconds, capped at
// max_backoff, and gives up after retry_budget resends — the same
// HeartbeatConfig knobs the crash detector uses for its probes.
#pragma once

#include <cstdint>
#include <span>

#include "net/networks.hpp"
#include "protocol/recovery.hpp"
#include "serve/pipe.hpp"
#include "serve/service_wire.hpp"

namespace dls::serve {

class SchedulerClient {
 public:
  /// Takes ownership of the client end returned by
  /// SchedulerService::connect().
  explicit SchedulerClient(PipeEnd end) : end_(std::move(end)) {}

  /// One synchronous request/response round trip. Throws TransportError
  /// when the service hung up before answering.
  ScheduleResponse schedule(std::span<const double> w,
                            std::span<const double> z,
                            const ScheduleOptions& options = {});

  /// Convenience flavour over a network description.
  ScheduleResponse schedule(const net::LinearNetwork& network,
                            const ScheduleOptions& options = {});

  /// schedule(), resending on kShed with exponential backoff per
  /// `policy`. Returns the last response (still kShed when the budget
  /// ran out).
  ScheduleResponse schedule_with_retry(
      std::span<const double> w, std::span<const double> z,
      const ScheduleOptions& options,
      const protocol::HeartbeatConfig& policy);

  /// Hangs up; the service session observes EOF and exits.
  void close() noexcept { end_.close(); }

 private:
  ScheduleResponse round_trip(std::span<const double> w,
                              std::span<const double> z,
                              const ScheduleOptions& options);

  PipeEnd end_;
  std::uint64_t next_id_ = 0;
};

}  // namespace dls::serve
