// Fault-injecting transport decorator for chaos testing the serve
// layer.
//
// ChaosTransport wraps any Transport (a PipeEnd today, a socket
// tomorrow) and injects seeded, deterministic faults at the byte
// level — the layer where production failures actually happen:
//
//   kPartialWrite — one write split into two transport units (exercises
//                   reassembly; invisible over a stream, fatal over a
//                   datagram seam)
//   kTruncate     — a strict prefix is written, then the stream closes:
//                   the peer sees a torn frame (FrameTruncationError)
//   kCorrupt      — one bit of the written copy flipped (the caller's
//                   buffer is never touched): decode-side rejection
//   kDelay        — delivery delayed by a bounded random sleep
//   kDisconnect   — the write vanishes and the stream closes silently:
//                   frame loss that unblocks readers with EOF
//   kDuplicate    — the unit is delivered twice (stale-response
//                   handling on the client)
//
// All randomness flows through a seeded common::Rng, so a failing soak
// run replays bit-identically from its seed. Fault decisions serialize
// on an internal mutex; injected sleeps happen outside it.
//
// Metrics: serve.fault.{partial_write,truncate,corrupt,delay,
// disconnect,duplicate} count injections (per-instance FaultStats
// mirrors them without the obs runtime switch).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>

#include "common/rng.hpp"
#include "serve/pipe.hpp"
#include "serve/transport.hpp"

namespace dls::serve {

enum class FaultKind : std::uint8_t {
  kPartialWrite = 0,
  kTruncate = 1,
  kCorrupt = 2,
  kDelay = 3,
  kDisconnect = 4,
  kDuplicate = 5,
};

inline constexpr std::size_t kFaultKindCount = 6;

std::string to_string(FaultKind kind);

/// Per-write / per-read fault probabilities, each in [0, 1] and sampled
/// independently. kTruncate and kDisconnect end the stream, so at most
/// one terminal fault fires per write; the others compose.
struct ChaosConfig {
  double partial_write = 0.0;
  double truncate = 0.0;
  double corrupt = 0.0;
  double delay = 0.0;
  double disconnect = 0.0;
  double duplicate = 0.0;
  /// Read-side variants: corrupt/delay applied to inbound bytes.
  double read_corrupt = 0.0;
  double read_delay = 0.0;
  /// Injected sleeps are uniform in [0, max_delay_us] microseconds.
  double max_delay_us = 200.0;

  /// A config injecting exactly one fault kind with probability `p`
  /// (write-side; kCorrupt and kDelay also arm the read-side twin).
  static ChaosConfig only(FaultKind kind, double p);
};

/// Injection counts, indexed by FaultKind; kept unconditionally so
/// tests can assert determinism without the obs runtime switch.
struct FaultStats {
  std::array<std::uint64_t, kFaultKindCount> injected{};
  std::uint64_t writes = 0;  ///< write() calls that reached the wrapper
  std::uint64_t reads = 0;   ///< read_exact/read_partial calls

  std::uint64_t count(FaultKind kind) const noexcept {
    return injected[static_cast<std::size_t>(kind)];
  }
  std::uint64_t total_injected() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t n : injected) sum += n;
    return sum;
  }
};

class ChaosTransport final : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner, const ChaosConfig& config,
                 std::uint64_t seed);
  /// Convenience: wrap the client end returned by
  /// SchedulerService::connect().
  ChaosTransport(PipeEnd end, const ChaosConfig& config, std::uint64_t seed)
      : ChaosTransport(std::make_unique<PipeEnd>(std::move(end)), config,
                       seed) {}

  void write(std::span<const std::uint8_t> data) override;
  bool read_exact(std::span<std::uint8_t> out) override;
  ReadOutcome read_partial(std::span<std::uint8_t> out,
                           double timeout_s) override;
  void close() noexcept override;
  bool valid() const noexcept override;

  FaultStats stats() const;

 private:
  /// One write-side fault plan, sampled under the mutex.
  struct WritePlan {
    bool disconnect = false;
    bool truncate = false;
    std::size_t truncate_at = 0;
    bool corrupt = false;
    std::size_t corrupt_byte = 0;
    std::uint8_t corrupt_mask = 0;
    bool delay = false;
    double delay_us = 0.0;
    bool partial = false;
    std::size_t split_at = 0;
    bool duplicate = false;
  };

  WritePlan plan_write(std::size_t size);
  void apply_read_faults(std::span<std::uint8_t> got);
  /// Samples read_delay once before the very first read delegates, so
  /// a freshly (re)connected wrapper — e.g. a breaker half-open probe —
  /// sees realistic latency instead of a fault-free first read.
  void maybe_first_read_delay();
  void note(FaultKind kind);

  std::unique_ptr<Transport> inner_;
  ChaosConfig config_;
  mutable std::mutex mutex_;
  common::Rng rng_;
  FaultStats stats_;
  bool first_read_pending_ = true;
};

}  // namespace dls::serve
