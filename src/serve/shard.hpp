// Consistent-hash shard map over the canonical (w, z) keyspace.
//
// The federation tier partitions problem instances across N
// SchedulerService shards by hashing the canonical_topology_key bytes
// onto a virtual-node ring (FNV-1a 64, `vnodes` points per shard).
// Ownership of a key is the first alive shard clockwise from the key's
// ring position; replication walks further clockwise collecting the
// next distinct alive shards. Marking a shard dead therefore moves
// *only that shard's* arc onto its ring successors — the
// consistent-hash rebalance — while every other key keeps its owner,
// which is what keeps the per-shard solve caches warm across failures.
//
// ShardMap is a passive data structure (no locking, no I/O); the
// ShardRouter guards it with its health mutex and drives alive-ness
// from the heartbeat-style failure accounting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dls::serve {

/// FNV-1a 64 — the ring-point and key hash. Stable across platforms so
/// shard assignment is reproducible in tests and across processes.
std::uint64_t shard_hash(std::span<const std::uint8_t> data) noexcept;

struct ShardMapConfig {
  /// Virtual nodes per shard. More vnodes → smoother key distribution
  /// and finer-grained rebalance arcs, at ring-size cost.
  std::size_t vnodes = 64;
};

class ShardMap {
 public:
  explicit ShardMap(std::size_t shard_count,
                    ShardMapConfig config = ShardMapConfig{});

  std::size_t shard_count() const noexcept { return alive_.size(); }
  std::size_t alive_count() const noexcept;

  bool alive(std::size_t shard) const;
  /// Flips a shard's liveness. Returns true when the flag changed (the
  /// caller counts rebalances off these edges).
  bool set_alive(std::size_t shard, bool alive);

  /// The first `replicas` *distinct alive* shards clockwise from the
  /// key's ring position: owners[0] is the primary, the rest are
  /// replica holders. Shorter than `replicas` when fewer shards are
  /// alive; empty when none are.
  std::vector<std::size_t> owners(std::span<const std::uint8_t> key,
                                  std::size_t replicas) const;

  /// owners(key, 1) without the vector: the primary alive shard, or
  /// shard_count() when everything is dead.
  std::size_t primary(std::span<const std::uint8_t> key) const;

 private:
  struct VNode {
    std::uint64_t point;
    std::uint32_t shard;
  };

  /// Index into ring_ of the first vnode at/after the key's hash
  /// (wrapping), ignoring liveness.
  std::size_t ring_start(std::span<const std::uint8_t> key) const;

  std::vector<VNode> ring_;  ///< sorted by point
  std::vector<bool> alive_;
};

}  // namespace dls::serve
