#include "serve/pipe.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

namespace dls::serve {

namespace internal {

/// One direction of a pipe: an unbounded FIFO of bytes guarded by a
/// mutex, with a condition variable waking blocked readers. Unbounded
/// is deliberate — backpressure in the service layer is explicit (the
/// admission queue sheds), not implicit in the transport.
class ByteQueue {
 public:
  void append(std::span<const std::uint8_t> data) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) throw TransportError("write on closed pipe");
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    cv_.notify_all();
  }

  bool read_exact(std::span<std::uint8_t> out) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return closed_ || buffer_.size() - pos_ >= out.size();
    });
    const std::size_t available = buffer_.size() - pos_;
    if (available >= out.size()) {
      std::copy_n(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  out.size(), out.begin());
      pos_ += out.size();
      compact();
      return true;
    }
    // Closed with less than a full read buffered: EOF only at a clean
    // boundary, otherwise the stream was torn mid-unit.
    if (available == 0) return false;
    throw TransportError("pipe closed mid-read (" +
                         std::to_string(available) + " of " +
                         std::to_string(out.size()) + " bytes buffered)");
  }

  ReadOutcome read_partial(std::span<std::uint8_t> out, double timeout_s) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto ready = [&] {
      return closed_ || buffer_.size() - pos_ >= out.size();
    };
    if (timeout_s <= 0.0) {
      cv_.wait(lock, ready);
    } else if (!cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                             ready)) {
      // Deadline elapsed: consume nothing, so a healthy-but-slow stream
      // is left intact for the caller's next move.
      return ReadOutcome{};
    }
    const std::size_t available = buffer_.size() - pos_;
    const std::size_t take = std::min(available, out.size());
    std::copy_n(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_), take,
                out.begin());
    pos_ += take;
    compact();
    ReadOutcome outcome;
    outcome.received = take;
    outcome.complete = take == out.size();
    outcome.closed = !outcome.complete;  // ready() held, so not a timeout
    return outcome;
  }

  void close() noexcept {
    std::unique_lock<std::mutex> lock(mutex_);
    closed_.store(true, std::memory_order_release);
    cv_.notify_all();
  }

  bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

 private:
  /// Drops the consumed prefix once it dominates the buffer, keeping
  /// the queue O(live bytes) on long-lived connections.
  void compact() {
    if (pos_ >= 4096 && pos_ * 2 >= buffer_.size()) {
      buffer_.erase(buffer_.begin(),
                    buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
      pos_ = 0;
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::uint8_t> buffer_;
  std::size_t pos_ = 0;
  // Atomic so closed() can answer without the mutex; every write to it
  // still happens under the lock for cv_ predicate coherence.
  std::atomic<bool> closed_{false};
};

}  // namespace internal

PipeEnd::PipeEnd(std::shared_ptr<internal::ByteQueue> rx,
                 std::shared_ptr<internal::ByteQueue> tx)
    : rx_(std::move(rx)), tx_(std::move(tx)) {}

PipeEnd& PipeEnd::operator=(PipeEnd&& other) noexcept {
  if (this != &other) {
    close();
    rx_ = std::move(other.rx_);
    tx_ = std::move(other.tx_);
  }
  return *this;
}

PipeEnd::~PipeEnd() { close(); }

void PipeEnd::write(std::span<const std::uint8_t> data) {
  if (!tx_) throw TransportError("write on invalid pipe end");
  tx_->append(data);
}

bool PipeEnd::read_exact(std::span<std::uint8_t> out) {
  if (!rx_) throw TransportError("read on invalid pipe end");
  return rx_->read_exact(out);
}

ReadOutcome PipeEnd::read_partial(std::span<std::uint8_t> out,
                                  double timeout_s) {
  if (!rx_) throw TransportError("read on invalid pipe end");
  return rx_->read_partial(out, timeout_s);
}

void PipeEnd::close() noexcept {
  // Mark both directions closed but keep the queue references alive:
  // close() must be safe concurrently with a peer (or this end's own
  // reader on another thread) blocked inside a queue — dropping the
  // last reference here would free the queue out from under that
  // reader. The references are released by the destructor, once no
  // thread can be inside a read.
  if (tx_) tx_->close();
  if (rx_) rx_->close();
}

bool PipeEnd::valid() const noexcept {
  return tx_ != nullptr && !tx_->closed();
}

Pipe make_pipe() {
  auto a_to_b = std::make_shared<internal::ByteQueue>();
  auto b_to_a = std::make_shared<internal::ByteQueue>();
  Pipe pipe;
  pipe.a = PipeEnd(b_to_a, a_to_b);
  pipe.b = PipeEnd(a_to_b, b_to_a);
  return pipe;
}

}  // namespace dls::serve
