#include "serve/cache.hpp"

#include "obs/metrics.hpp"

namespace dls::serve {

SolveCache::SolveCache(std::size_t capacity) : capacity_(capacity) {}

SolveCache::Value SolveCache::lookup(const codec::Bytes& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(view_of(key));
  if (it == index_.end()) {
    ++misses_;
    DLS_COUNT("serve.cache.misses");
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  DLS_COUNT("serve.cache.hits");
  return it->second->value;
}

void SolveCache::insert(const codec::Bytes& key, Value value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(view_of(key));
  if (it != index_.end()) {
    // Deterministic solver: the resident value equals the offered one.
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    index_.erase(std::string_view(victim.key));
    lru_.pop_back();
    ++evictions_;
    DLS_COUNT("serve.cache.evictions");
  }
  lru_.push_front(Entry{std::string(view_of(key)), std::move(value)});
  index_.emplace(std::string_view(lru_.front().key), lru_.begin());
}

std::size_t SolveCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

std::uint64_t SolveCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t SolveCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t SolveCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

}  // namespace dls::serve
