#include "serve/shard.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dls::serve {

std::uint64_t shard_hash(std::span<const std::uint8_t> data) noexcept {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (const std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 1099511628211ull;  // FNV 64 prime
  }
  return hash;
}

namespace {

/// Ring point for one (shard, vnode) pair: hash the two indices as a
/// little-endian byte pair so the layout is platform-stable.
std::uint64_t vnode_point(std::uint32_t shard, std::uint32_t vnode) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<std::uint8_t>(shard >> (8 * i));
    bytes[4 + i] = static_cast<std::uint8_t>(vnode >> (8 * i));
  }
  return shard_hash(bytes);
}

}  // namespace

ShardMap::ShardMap(std::size_t shard_count, ShardMapConfig config) {
  DLS_REQUIRE(shard_count >= 1, "ShardMap needs at least one shard");
  DLS_REQUIRE(config.vnodes >= 1, "ShardMap needs at least one vnode");
  alive_.assign(shard_count, true);
  ring_.reserve(shard_count * config.vnodes);
  for (std::size_t shard = 0; shard < shard_count; ++shard) {
    for (std::size_t vnode = 0; vnode < config.vnodes; ++vnode) {
      ring_.push_back(VNode{
          vnode_point(static_cast<std::uint32_t>(shard),
                      static_cast<std::uint32_t>(vnode)),
          static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const VNode& a, const VNode& b) {
              if (a.point != b.point) return a.point < b.point;
              return a.shard < b.shard;  // deterministic tie-break
            });
}

std::size_t ShardMap::alive_count() const noexcept {
  std::size_t count = 0;
  for (const bool flag : alive_) count += flag ? 1 : 0;
  return count;
}

bool ShardMap::alive(std::size_t shard) const {
  DLS_REQUIRE(shard < alive_.size(), "shard index out of range");
  return alive_[shard];
}

bool ShardMap::set_alive(std::size_t shard, bool alive) {
  DLS_REQUIRE(shard < alive_.size(), "shard index out of range");
  if (alive_[shard] == alive) return false;
  alive_[shard] = alive;
  return true;
}

std::size_t ShardMap::ring_start(std::span<const std::uint8_t> key) const {
  const std::uint64_t point = shard_hash(key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const VNode& node, std::uint64_t p) { return node.point < p; });
  if (it == ring_.end()) return 0;  // wrap past the top of the ring
  return static_cast<std::size_t>(it - ring_.begin());
}

std::vector<std::size_t> ShardMap::owners(std::span<const std::uint8_t> key,
                                          std::size_t replicas) const {
  std::vector<std::size_t> found;
  if (replicas == 0) return found;
  const std::size_t want = std::min(replicas, alive_count());
  if (want == 0) return found;
  found.reserve(want);
  const std::size_t start = ring_start(key);
  for (std::size_t step = 0; step < ring_.size() && found.size() < want;
       ++step) {
    const VNode& node = ring_[(start + step) % ring_.size()];
    if (!alive_[node.shard]) continue;
    const std::size_t shard = node.shard;
    if (std::find(found.begin(), found.end(), shard) == found.end()) {
      found.push_back(shard);
    }
  }
  return found;
}

std::size_t ShardMap::primary(std::span<const std::uint8_t> key) const {
  const std::size_t start = ring_start(key);
  for (std::size_t step = 0; step < ring_.size(); ++step) {
    const VNode& node = ring_[(start + step) % ring_.size()];
    if (alive_[node.shard]) return node.shard;
  }
  return shard_count();  // nothing alive
}

}  // namespace dls::serve
