// Real-socket byte transport for the scheduling service.
//
// SocketTransport runs the Transport seam (transport.hpp) over a
// connected TCP or Unix-domain stream socket, so everything written
// against that seam — framing, SchedulerService, SchedulerClient,
// ChaosTransport, the circuit breaker — works unchanged over the wire.
//
// Contract mapping onto a real fd:
//  * write() delivers the whole span as one atomic unit under a write
//    mutex; the fd is non-blocking, so a peer that stops draining its
//    receive window turns into a bounded poll(POLLOUT) stall and then a
//    TransportError instead of a silent hang.
//  * read_partial() keeps a staging buffer: bytes received past a
//    deadline stay staged for the next call, preserving the seam's
//    "timeout consumes nothing" guarantee on a stream that cannot give
//    bytes back.
//  * Orderly shutdown and abrupt reset (ECONNRESET) both surface as the
//    `closed` outcome, which the framing layer maps onto the
//    FrameTruncationError taxonomy (peer-closed mid-frame) exactly as
//    it does for the in-memory Pipe.
//  * close() shuts both directions (waking any blocked poll) and is
//    idempotent; the fd itself is released by the destructor.
//
// SocketListener owns a listening fd (TCP on 127.0.0.1 with an
// ephemeral-port option, or a Unix path it unlinks on teardown) and
// hands out accepted SocketTransports. connect_tcp / connect_unix /
// connect_endpoint are the client-side counterparts.
// Metrics (serve.socket.*): see docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "serve/transport.hpp"

namespace dls::serve {

struct SocketConfig {
  /// How long one write() may sit in poll(POLLOUT) waiting for the
  /// peer to drain its window before the stalled send becomes a
  /// TransportError. This bounds the effective send buffer: kernel
  /// buffer plus at most this much stall per write.
  double write_stall_timeout_s = 5.0;
};

/// One end of a connected stream socket. Takes ownership of the fd.
class SocketTransport final : public Transport {
 public:
  /// Wraps a connected socket fd (made non-blocking here). `label` is
  /// carried into error messages ("tcp:127.0.0.1:4242", "unix:/tmp/x").
  explicit SocketTransport(int fd, std::string label = "socket",
                           SocketConfig config = SocketConfig{});
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;
  SocketTransport(SocketTransport&&) = delete;
  SocketTransport& operator=(SocketTransport&&) = delete;

  /// Sends `data` as one atomic unit (serialised against concurrent
  /// writers). Throws TransportError on close, peer reset, or a send
  /// stalled past SocketConfig::write_stall_timeout_s.
  void write(std::span<const std::uint8_t> data) override;

  /// Blocks until out.size() bytes arrived. Returns false on clean EOF
  /// at a unit boundary; throws TransportError on a close mid-unit.
  bool read_exact(std::span<std::uint8_t> out) override;

  /// Timed read; see Transport::read_partial. Bytes that arrive after
  /// the deadline lapses are staged internally, so a timeout consumes
  /// nothing from the caller's point of view.
  ReadOutcome read_partial(std::span<std::uint8_t> out,
                           double timeout_s) override;

  /// Shuts down both directions and wakes blocked reads/writes.
  /// Idempotent; the fd is closed by the destructor.
  void close() noexcept override;

  bool valid() const noexcept override;

  const std::string& label() const noexcept { return label_; }

 private:
  /// Pulls bytes off the socket into staged_ until it holds `want`
  /// bytes, the deadline lapses, or the stream ends. Caller holds
  /// read_mutex_. Returns false on deadline (peer may still be alive).
  bool stage_until(std::size_t want, double timeout_s);

  int fd_ = -1;
  std::string label_;
  SocketConfig config_;
  std::atomic<bool> closed_{false};

  std::mutex write_mutex_;

  std::mutex read_mutex_;
  std::vector<std::uint8_t> staged_;  ///< received, not yet consumed
  bool peer_eof_ = false;             ///< recv saw EOF / reset
};

/// A listening TCP or Unix-domain socket handing out accepted
/// SocketTransports. Move-only; closing unlinks a Unix socket path.
class SocketListener {
 public:
  SocketListener() = default;
  ~SocketListener();

  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;
  SocketListener(SocketListener&& other) noexcept;
  SocketListener& operator=(SocketListener&& other) noexcept;

  /// Listens on 127.0.0.1:`port`; port 0 binds an ephemeral port
  /// (readable via port() / endpoint()). Throws TransportError.
  static SocketListener listen_tcp(std::uint16_t port);

  /// Listens on a Unix-domain socket at `path`, replacing any stale
  /// socket file there. Throws TransportError.
  static SocketListener listen_unix(const std::string& path);

  /// Accepts one connection, waiting up to `timeout_s` seconds (<= 0
  /// waits forever). Returns nullptr on timeout or once the listener
  /// is closed; throws TransportError on an unexpected accept failure.
  std::unique_ptr<SocketTransport> accept(
      double timeout_s = -1.0, SocketConfig config = SocketConfig{});

  /// The bound TCP port (0 for Unix listeners).
  std::uint16_t port() const noexcept { return port_; }

  /// "tcp:127.0.0.1:PORT" or "unix:PATH" — accepted verbatim by
  /// connect_endpoint().
  const std::string& endpoint() const noexcept { return endpoint_; }

  /// Stops accepting and wakes a blocked accept(). Idempotent.
  void close() noexcept;

  bool valid() const noexcept { return fd_ >= 0 && !closed_; }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::string endpoint_;
  std::string unix_path_;  ///< unlinked on close when non-empty
  bool closed_ = false;
};

/// Connects to `host`:`port` (numeric IPv4, e.g. "127.0.0.1") within
/// `timeout_s` seconds. Throws TransportError on refusal or timeout.
std::unique_ptr<SocketTransport> connect_tcp(
    const std::string& host, std::uint16_t port, double timeout_s = 5.0,
    SocketConfig config = SocketConfig{});

/// Connects to the Unix-domain socket at `path`.
std::unique_ptr<SocketTransport> connect_unix(
    const std::string& path, double timeout_s = 5.0,
    SocketConfig config = SocketConfig{});

/// Connects to a SocketListener::endpoint() string — "tcp:HOST:PORT"
/// or "unix:PATH". Throws TransportError on a malformed endpoint.
std::unique_ptr<SocketTransport> connect_endpoint(
    const std::string& endpoint, double timeout_s = 5.0,
    SocketConfig config = SocketConfig{});

}  // namespace dls::serve
