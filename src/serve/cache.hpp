// LRU memo of Algorithm-1 solutions keyed by canonical topology bytes.
//
// The scheduling service sees heavy repetition — the same chain with
// the same bids re-submitted by many clients — and Algorithm 1 is
// deterministic, so a solved instance can be replayed bit-identically.
// Keys are serve::canonical_topology_key encodings (the (w, z) vectors
// and nothing else); values are shared immutable solutions, so a hit
// costs one map lookup and a list splice while the solver stays cold.
//
// Thread-safe: every operation takes the internal mutex. Hit/miss/evict
// counts are kept locally (readable regardless of the obs runtime
// switch) and mirrored into the serve.cache.* metrics.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "codec/bytes.hpp"
#include "dlt/linear.hpp"

namespace dls::serve {

class SolveCache {
 public:
  using Value = std::shared_ptr<const dlt::LinearSolution>;

  /// `capacity` is the maximum number of resident solutions; 0 disables
  /// the cache entirely (every lookup misses, inserts are dropped).
  explicit SolveCache(std::size_t capacity);

  /// Returns the cached solution and promotes it to most-recently-used,
  /// or nullptr on a miss.
  Value lookup(const codec::Bytes& key);

  /// Inserts (or touches) `key`. Evicts the least-recently-used entry
  /// when full. Re-inserting an existing key keeps the resident value —
  /// the solver is deterministic, so both values are identical.
  void insert(const codec::Bytes& key, Value value);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const;

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    Value value;
  };
  using EntryList = std::list<Entry>;

  static std::string_view view_of(const codec::Bytes& key) {
    return {reinterpret_cast<const char*>(key.data()), key.size()};
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  EntryList lru_;  ///< front = most recently used
  std::unordered_map<std::string_view, EntryList::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace dls::serve
