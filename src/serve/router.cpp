#include "serve/router.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"
#include "serve/frame.hpp"
#include "serve/service_wire.hpp"

namespace dls::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration seconds_of(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

/// Digest of a response with the per-hop fields zeroed, so two shards
/// that solved the same instance identically compare equal even though
/// they answered different request ids or cache states.
std::uint64_t normalized_digest(const ScheduleResponse& response) {
  ScheduleResponse normal = response;
  normal.request_id = 0;
  normal.cache_hit = false;
  const codec::Bytes bytes = encode_schedule_response(normal);
  return shard_hash(bytes);
}

}  // namespace

ShardRouter::ShardRouter(RouterConfig config)
    : config_(std::move(config)),
      map_(config_.shard_count, ShardMapConfig{config_.vnodes}),
      consecutive_failures_(config_.shard_count, 0),
      probe_attempts_(config_.shard_count, 0) {
  DLS_REQUIRE(config_.shard_count >= 1, "router needs at least one shard");
  DLS_REQUIRE(config_.connect != nullptr,
              "router needs a shard connect factory");
  DLS_REQUIRE(config_.replication >= 1, "replication must be at least 1");
  DLS_REQUIRE(
      config_.local.empty() || config_.local.size() == config_.shard_count,
      "RouterConfig::local must be empty or one entry per shard");
  if (config_.probe_dead_shards) {
    monitor_ = std::thread([this] { monitor_loop(); });
  }
}

ShardRouter::~ShardRouter() { stop(); }

PipeEnd ShardRouter::connect() {
  Pipe pipe = make_pipe();
  adopt(std::make_unique<PipeEnd>(std::move(pipe.a)));
  return std::move(pipe.b);
}

void ShardRouter::adopt(std::unique_ptr<Transport> transport) {
  DLS_REQUIRE(transport != nullptr, "adopt() needs a transport");
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  DLS_REQUIRE(accepting_, "adopt()/connect() on a stopped router");
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
  auto session = std::make_unique<Session>();
  session->end = std::move(transport);
  session->backends.resize(config_.shard_count);
  session->backend_next_id.assign(config_.shard_count, 1);
  Session* raw = session.get();
  session->reader = std::thread([this, raw] {
    session_loop(raw);
    raw->done.store(true, std::memory_order_release);
  });
  sessions_.push_back(std::move(session));
  DLS_COUNT("serve.shard.router_sessions");
}

void ShardRouter::stop() {
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  health_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    accepting_ = false;
    sessions.swap(sessions_);
  }
  // Closing the client end unblocks the reader's frame read; closing
  // the backends unblocks a reader parked inside a forward round trip.
  for (auto& session : sessions) {
    session->end->close();
    for (auto& backend : session->backends) {
      if (backend) backend->close();
    }
  }
  for (auto& session : sessions) {
    if (session->reader.joinable()) session->reader.join();
  }
}

RouterStats ShardRouter::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::vector<bool> ShardRouter::alive() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  std::vector<bool> flags(map_.shard_count());
  for (std::size_t shard = 0; shard < flags.size(); ++shard) {
    flags[shard] = map_.alive(shard);
  }
  return flags;
}

void ShardRouter::set_alive(std::size_t shard, bool alive) {
  bool flipped = false;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    flipped = map_.set_alive(shard, alive);
    if (flipped) {
      consecutive_failures_[shard] = 0;
      probe_attempts_[shard] = 0;
    }
  }
  if (!flipped) return;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.rebalances;
    if (alive) {
      ++stats_.shard_revivals;
    } else {
      ++stats_.shard_deaths;
    }
  }
  DLS_COUNT("serve.shard.rebalances");
  if (alive) {
    DLS_COUNT("serve.shard.revivals");
  } else {
    DLS_COUNT("serve.shard.deaths");
  }
  health_cv_.notify_all();
}

void ShardRouter::session_loop(Session* session) {
  std::size_t poison = 0;
  try {
    for (;;) {
      std::size_t skipped = 0;
      std::optional<Frame> frame;
      try {
        frame = read_frame_resync(*session->end, config_.resync_scan_bytes,
                                  &skipped);
      } catch (const FrameTruncationError&) {
        return;  // peer vanished mid-frame
      } catch (const FrameChecksumError&) {
        ++poison;
        DLS_COUNT("serve.shard.poison_frames");
        if (poison > config_.poison_budget) {
          session->end->close();
          return;
        }
        continue;
      } catch (const codec::DecodeError&) {
        session->end->close();  // resync gave up: quarantine
        return;
      }
      if (skipped > 0) {
        ++poison;
        DLS_COUNT("serve.shard.poison_frames");
        if (poison > config_.poison_budget) {
          session->end->close();
          return;
        }
      }
      if (!frame) return;  // clean EOF
      if (frame->type != FrameType::kScheduleRequest) {
        ScheduleResponse refusal;
        refusal.status = ScheduleStatus::kError;
        refusal.error = "unexpected frame type '" + to_string(frame->type) +
                        "' (expected schedule_request)";
        send_response(session, refusal);
        continue;
      }
      // Verbatim fast path: a payload byte-identical (modulo id) to
      // one already answered inline replays the cached encoding before
      // any decode work happens.
      if (config_.replay_cache_capacity > 0 &&
          try_replay(session, frame->payload)) {
        continue;
      }
      ScheduleRequest request;
      try {
        request = decode_schedule_request(frame->payload);
      } catch (const codec::DecodeError& e) {
        ScheduleResponse refusal;
        refusal.status = ScheduleStatus::kError;
        refusal.error = e.what();
        send_response(session, refusal);
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.received;
      }
      DLS_COUNT("serve.shard.requests");
      handle_request(session, request, frame->payload);
    }
  } catch (const TransportError&) {
    // Client connection died; nothing to salvage.
  }
}

bool ShardRouter::try_replay(Session* session,
                             std::span<const std::uint8_t> payload) {
  const std::span<const std::uint8_t> key =
      schedule_request_replay_key(payload);
  if (key.empty()) return false;
  const std::string_view whole(
      reinterpret_cast<const char*>(payload.data()), payload.size());
  const std::string_view needle(reinterpret_cast<const char*>(key.data()),
                                key.size());
  // Tier 1: an exact repeat (idempotent retry, id included) ships the
  // cached frame bytes untouched — one write, no hashing or encoding.
  const std::uint64_t request_id = schedule_request_id(payload);
  codec::Bytes wire;
  codec::Bytes encoded;
  bool verbatim = false;
  bool promote = false;
  {
    std::lock_guard<std::mutex> lock(replay_mutex_);
    const auto hit = verbatim_cache_.find(whole);
    if (hit != verbatim_cache_.end()) {
      wire = hit->second;
      verbatim = true;
    } else {
      const auto it = replay_cache_.find(needle);
      if (it == replay_cache_.end()) return false;
      encoded = it->second.encoded;
      promote = it->second.last_id == request_id;
      it->second.last_id = request_id;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.received;
    ++stats_.replayed;
    if (verbatim) ++stats_.replayed_verbatim;
    ++stats_.answered_ok;
  }
  DLS_COUNT("serve.shard.requests");
  DLS_COUNT("serve.shard.replays");
  if (!verbatim) {
    // Tier 2: same request under a fresh id — patch the echoed id into
    // the cached payload and re-frame. Promotion into tier 1 waits for
    // a repeat under the SAME id (an exact-frame replayer), so id-
    // incrementing clients don't churn the verbatim tier.
    patch_schedule_response_id(encoded, request_id);
    Frame frame;
    frame.type = FrameType::kScheduleResponse;
    frame.payload = std::move(encoded);
    wire = encode_frame(frame);
    if (promote) store_verbatim(payload, wire);
  } else {
    DLS_COUNT("serve.shard.replays_verbatim");
  }
  try {
    session->end->write(wire);
  } catch (const TransportError&) {
    // The client hung up before its answer landed; nothing to do.
  }
  return true;
}

void ShardRouter::store_replay(std::span<const std::uint8_t> payload,
                               const codec::Bytes& encoded,
                               const codec::Bytes& wire) {
  const std::span<const std::uint8_t> key =
      schedule_request_replay_key(payload);
  if (key.empty()) return;
  std::string owned(reinterpret_cast<const char*>(key.data()), key.size());
  {
    std::lock_guard<std::mutex> lock(replay_mutex_);
    if (replay_cache_.find(std::string_view(owned)) ==
        replay_cache_.end()) {
      while (replay_cache_.size() >= config_.replay_cache_capacity &&
             !replay_fifo_.empty()) {
        replay_cache_.erase(replay_fifo_.front());
        replay_fifo_.pop_front();
      }
      replay_fifo_.push_back(owned);
      replay_cache_.emplace(
          std::move(owned),
          ReplayEntry{encoded, schedule_request_id(payload)});
    }
  }
  store_verbatim(payload, wire);
}

void ShardRouter::store_verbatim(std::span<const std::uint8_t> payload,
                                 const codec::Bytes& wire) {
  std::string owned(reinterpret_cast<const char*>(payload.data()),
                    payload.size());
  std::lock_guard<std::mutex> lock(replay_mutex_);
  if (verbatim_cache_.find(std::string_view(owned)) !=
      verbatim_cache_.end()) {
    return;
  }
  while (verbatim_cache_.size() >= config_.replay_cache_capacity &&
         !verbatim_fifo_.empty()) {
    verbatim_cache_.erase(verbatim_fifo_.front());
    verbatim_fifo_.pop_front();
  }
  verbatim_fifo_.push_back(owned);
  verbatim_cache_.emplace(std::move(owned), wire);
}

void ShardRouter::handle_request(Session* session,
                                 const ScheduleRequest& request,
                                 std::span<const std::uint8_t> payload) {
  // Malformed instances hash over the full request encoding instead:
  // they still deserve a deterministic owner, whose solver will answer
  // with the canonical kError text.
  codec::Bytes key;
  try {
    key = canonical_topology_key(request.w, request.z);
  } catch (const dls::Error&) {
    key = encode_schedule_request(request);
  }
  std::vector<std::size_t> owners;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    owners = map_.owners(key, config_.replication);
  }
  if (owners.empty()) {
    ScheduleResponse refusal;
    refusal.request_id = request.request_id;
    refusal.status = ScheduleStatus::kDegraded;
    refusal.error = "no alive shard owns this key";
    refusal.retry_after_us = config_.degraded_retry_after_us;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.no_owner;
      ++stats_.refused;
    }
    DLS_COUNT("serve.shard.no_owner");
    send_response(session, refusal);
    return;
  }
  // Colocated fast path: with no replication to cross-check, a
  // payment-free cache hit on the primary's in-process service skips
  // the wire, the admission queue and the dispatcher entirely.
  if (config_.replication == 1 && !config_.local.empty()) {
    SchedulerService* local = config_.local[owners[0]];
    ScheduleResponse response;
    if (local != nullptr && local->try_serve_inline(request, response)) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.inline_hits;
        ++stats_.answered_ok;
      }
      DLS_COUNT("serve.shard.inline_hits");
      // Encode once: the frame bytes answer this client AND seed both
      // replay tiers, so the next identical request skips decode and
      // encode entirely. Only inline answers (payment-free,
      // deadline-free cache hits) ever populate them, which keeps
      // replays safe.
      Frame frame;
      frame.type = FrameType::kScheduleResponse;
      frame.payload = encode_schedule_response(response);
      const codec::Bytes wire = encode_frame(frame);
      if (config_.replay_cache_capacity > 0) {
        store_replay(payload, frame.payload, wire);
      }
      try {
        session->end->write(wire);
      } catch (const TransportError&) {
        // The client hung up before its answer landed; nothing to do.
      }
      return;
    }
  }
  std::vector<ForwardResult> results;
  results.reserve(owners.size());
  for (const std::size_t shard : owners) {
    results.push_back(forward(session, shard, request));
  }
  const ScheduleResponse merged = merge(request, results);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (merged.status == ScheduleStatus::kOk) {
      ++stats_.answered_ok;
    } else {
      ++stats_.refused;
    }
  }
  send_response(session, merged);
}

ShardRouter::ForwardResult ShardRouter::forward(
    Session* session, std::size_t shard, const ScheduleRequest& request) {
  ForwardResult result;
  Transport* link = session->backends[shard].get();
  if (link == nullptr || !link->valid()) {
    try {
      session->backends[shard] = config_.connect(shard);
      link = session->backends[shard].get();
    } catch (const dls::Error&) {
      link = nullptr;
    }
    if (link == nullptr) {
      note_forward_failure(shard);
      return result;
    }
  }
  ScheduleRequest copy = request;
  copy.request_id = session->backend_next_id[shard]++;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.forwarded;
  }
  DLS_COUNT("serve.shard.forwarded");
  try {
    Frame frame;
    frame.type = FrameType::kScheduleRequest;
    frame.payload = encode_schedule_request(copy);
    write_frame(*link, frame);
    // Bounded skip of stale responses (a chaos-duplicated frame from an
    // earlier round trip on this link).
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::optional<Frame> reply =
          read_frame(*link, config_.forward_timeout_s);
      if (!reply) break;  // shard hung up
      if (reply->type != FrameType::kScheduleResponse) continue;
      ScheduleResponse response = decode_schedule_response(reply->payload);
      if (response.request_id != copy.request_id) continue;  // stale
      result.delivered = true;
      result.response = std::move(response);
      note_forward_success(shard);
      return result;
    }
  } catch (const TransportError&) {
  } catch (const codec::DecodeError&) {
  }
  // Wire trouble: drop the link so the next request redials, and count
  // the failure against the shard's heartbeat retry budget.
  session->backends[shard]->close();
  session->backends[shard].reset();
  note_forward_failure(shard);
  return result;
}

ScheduleResponse ShardRouter::merge(const ScheduleRequest& request,
                                    const std::vector<ForwardResult>& results) {
  std::vector<const ScheduleResponse*> ok;
  for (const ForwardResult& result : results) {
    if (result.delivered && result.response.status == ScheduleStatus::kOk) {
      ok.push_back(&result.response);
    }
  }
  if (!ok.empty()) {
    if (ok.size() >= 2) {
      const std::uint64_t first = normalized_digest(*ok[0]);
      bool diverged = false;
      for (std::size_t i = 1; i < ok.size(); ++i) {
        if (normalized_digest(*ok[i]) != first) {
          diverged = true;
          break;
        }
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.quorum_checked;
        if (diverged) {
          ++stats_.quorum_divergence;
        } else {
          ++stats_.quorum_agreed;
        }
      }
      if (diverged) {
        // A typed incident, never a silently-chosen answer: replicas
        // disagreeing on a deterministic solve means corruption or a
        // miscomputing shard — the distributed twin of the src/check/
        // contract auditors.
        DLS_COUNT("serve.quorum.divergence");
        ScheduleResponse incident;
        incident.request_id = request.request_id;
        incident.status = ScheduleStatus::kError;
        incident.error = "quorum divergence: " + std::to_string(ok.size()) +
                         " replicas returned non-identical solutions";
        return incident;
      }
      DLS_COUNT("serve.quorum.agreed");
    } else {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.quorum_single;
    }
    ScheduleResponse chosen = *ok[0];
    chosen.request_id = request.request_id;
    return chosen;
  }
  // No solution landed: merge the backpressure. The largest retry-after
  // hint wins so the client backs off for the slowest replica.
  const ScheduleResponse* degraded = nullptr;
  const ScheduleResponse* shed = nullptr;
  const ScheduleResponse* error = nullptr;
  for (const ForwardResult& result : results) {
    if (!result.delivered) continue;
    const ScheduleResponse& r = result.response;
    if (r.status == ScheduleStatus::kDegraded &&
        (degraded == nullptr ||
         r.retry_after_us > degraded->retry_after_us)) {
      degraded = &r;
    } else if (r.status == ScheduleStatus::kShed && shed == nullptr) {
      shed = &r;
    } else if (error == nullptr) {
      error = &r;
    }
  }
  ScheduleResponse merged;
  if (degraded != nullptr) {
    merged = *degraded;
  } else if (shed != nullptr) {
    merged = *shed;
  } else if (error != nullptr) {
    merged = *error;
  } else {
    merged.status = ScheduleStatus::kDegraded;
    merged.error = "no owning shard reachable";
    merged.retry_after_us = config_.degraded_retry_after_us;
    DLS_COUNT("serve.shard.unreachable");
  }
  merged.request_id = request.request_id;
  return merged;
}

void ShardRouter::send_response(Session* session,
                                const ScheduleResponse& response) {
  try {
    Frame frame;
    frame.type = FrameType::kScheduleResponse;
    frame.payload = encode_schedule_response(response);
    write_frame(*session->end, frame);
  } catch (const TransportError&) {
    // The client hung up before its answer landed; nothing to do.
  }
}

void ShardRouter::note_forward_failure(std::size_t shard) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.forward_failures;
  }
  DLS_COUNT("serve.shard.forward_failures");
  bool died = false;
  {
    std::lock_guard<std::mutex> lock(health_mutex_);
    ++consecutive_failures_[shard];
    if (consecutive_failures_[shard] >= config_.heartbeat.retry_budget &&
        map_.alive(shard)) {
      map_.set_alive(shard, false);
      probe_attempts_[shard] = 0;
      died = true;
    }
  }
  if (!died) return;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.shard_deaths;
    ++stats_.rebalances;
  }
  DLS_COUNT("serve.shard.deaths");
  DLS_COUNT("serve.shard.rebalances");
  health_cv_.notify_all();  // wake the monitor to start probing
}

void ShardRouter::note_forward_success(std::size_t shard) {
  std::lock_guard<std::mutex> lock(health_mutex_);
  consecutive_failures_[shard] = 0;
}

void ShardRouter::monitor_loop() {
  std::vector<Clock::time_point> next_probe(config_.shard_count,
                                            Clock::now());
  for (;;) {
    std::vector<std::size_t> dead;
    {
      std::unique_lock<std::mutex> lock(health_mutex_);
      health_cv_.wait_for(lock, seconds_of(config_.heartbeat.period),
                          [this] { return stopping_; });
      if (stopping_) return;
      for (std::size_t shard = 0; shard < map_.shard_count(); ++shard) {
        if (!map_.alive(shard) && Clock::now() >= next_probe[shard]) {
          dead.push_back(shard);
        }
      }
    }
    for (const std::size_t shard : dead) {
      // The probe is a bare redial outside the health lock: a shard
      // that accepts a connection again is ready for traffic.
      bool revived = false;
      try {
        const std::unique_ptr<Transport> probe = config_.connect(shard);
        revived = probe != nullptr && probe->valid();
        if (probe) probe->close();
      } catch (const dls::Error&) {
        revived = false;
      }
      std::size_t attempt = 0;
      {
        std::lock_guard<std::mutex> lock(health_mutex_);
        if (revived) {
          map_.set_alive(shard, true);
          consecutive_failures_[shard] = 0;
          probe_attempts_[shard] = 0;
          next_probe[shard] = Clock::now();
        } else {
          attempt = ++probe_attempts_[shard];
        }
      }
      if (revived) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.shard_revivals;
          ++stats_.rebalances;
        }
        DLS_COUNT("serve.shard.revivals");
        DLS_COUNT("serve.shard.rebalances");
      } else {
        DLS_COUNT("serve.shard.probes");
        // Same backoff arithmetic the crash monitor uses, so probe
        // cadence is bit-identical for the same knobs.
        const double wait = protocol::exponential_backoff(
            config_.heartbeat.period, config_.heartbeat.backoff_factor,
            attempt, config_.heartbeat.max_backoff);
        next_probe[shard] = Clock::now() + seconds_of(wait);
      }
    }
  }
}

}  // namespace dls::serve
