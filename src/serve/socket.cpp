#include "serve/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>
#include <utility>

#include "common/error.hpp"
#include "obs/obs.hpp"

namespace dls::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::string errno_text(int err) {
  return std::generic_category().message(err);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw TransportError("fcntl(O_NONBLOCK) failed: " + errno_text(errno));
  }
}

void set_cloexec(int fd) { ::fcntl(fd, F_SETFD, FD_CLOEXEC); }

/// Disables Nagle so small request/response frames are not batched
/// behind delayed ACKs. No-op (EOPNOTSUPP) on Unix-domain sockets.
void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Remaining poll budget in whole milliseconds; -1 = wait forever.
/// Rounds up so a positive remainder never degenerates to a busy loop.
int poll_budget_ms(bool forever, Clock::time_point deadline) {
  if (forever) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  const auto ms = left.count();
  if (ms <= 0) return 0;
  return static_cast<int>(std::min<long long>(ms + 1, 60'000));
}

/// Waits for `events` on `fd`. Returns false when the deadline lapsed
/// first. EINTR restarts against the same deadline.
bool poll_for(int fd, short events, bool forever,
              Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = events;
    const int budget = poll_budget_ms(forever, deadline);
    if (budget == 0) return false;
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return true;
    if (rc == 0) {
      if (!forever) return false;
      continue;
    }
    if (errno == EINTR) continue;
    throw TransportError("poll failed: " + errno_text(errno));
  }
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
    throw TransportError("unix socket path unusable (empty or longer than " +
                         std::to_string(sizeof(addr.sun_path) - 1) +
                         " bytes): \"" + path + "\"");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Completes a non-blocking connect within the deadline and verifies
/// SO_ERROR. Closes `fd` and throws on failure.
void finish_connect(int fd, const std::string& label, double timeout_s) {
  const bool forever = timeout_s <= 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             forever ? 0.0 : timeout_s));
  if (!poll_for(fd, POLLOUT, forever, deadline)) {
    ::close(fd);
    throw TransportError("connect to " + label + " timed out");
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    err = errno;
  }
  if (err != 0) {
    ::close(fd);
    throw TransportError("connect to " + label +
                         " failed: " + errno_text(err));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// SocketTransport

SocketTransport::SocketTransport(int fd, std::string label,
                                 SocketConfig config)
    : fd_(fd), label_(std::move(label)), config_(config) {
  DLS_REQUIRE(fd_ >= 0, "SocketTransport needs a valid fd");
  set_nonblocking(fd_);
  set_cloexec(fd_);
  set_nodelay(fd_);
}

SocketTransport::~SocketTransport() {
  close();
  // Serialise against in-flight reads/writes before releasing the fd so
  // a concurrent recv/send never races a kernel fd-number reuse.
  std::scoped_lock lock(write_mutex_, read_mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void SocketTransport::write(std::span<const std::uint8_t> data) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  if (closed_.load(std::memory_order_acquire)) {
    throw TransportError("write on closed socket " + label_);
  }
  const bool forever = config_.write_stall_timeout_s <= 0.0;
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      DLS_COUNT("serve.socket.tx_bytes", static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // The send buffer is full: the bounded-stall wait. Each stall
      // gets a fresh budget so the bound is per-flow-control event,
      // not amortised over the whole (possibly large) span.
      const auto deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 forever ? 0.0
                                         : config_.write_stall_timeout_s));
      DLS_COUNT("serve.socket.write_stalls");
      if (poll_for(fd_, POLLOUT, forever, deadline)) continue;
      DLS_COUNT("serve.socket.write_stall_aborts");
      throw TransportError(
          "send on " + label_ + " stalled past " +
          std::to_string(config_.write_stall_timeout_s) +
          "s with the peer's receive window full (" +
          std::to_string(sent) + " of " + std::to_string(data.size()) +
          " bytes sent)");
    }
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      DLS_COUNT("serve.socket.peer_resets");
      throw TransportError("peer closed " + label_ + " during a write (" +
                           std::to_string(sent) + " of " +
                           std::to_string(data.size()) + " bytes sent)");
    }
    if (closed_.load(std::memory_order_acquire)) {
      throw TransportError("write on closed socket " + label_);
    }
    throw TransportError("send on " + label_ +
                         " failed: " + errno_text(errno));
  }
}

bool SocketTransport::stage_until(std::size_t want, double timeout_s) {
  const bool forever = timeout_s <= 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             forever ? 0.0 : timeout_s));
  while (staged_.size() < want && !peer_eof_) {
    if (closed_.load(std::memory_order_acquire)) {
      // Local close: whatever is already staged drains, then EOF —
      // the same discipline ByteQueue applies.
      peer_eof_ = true;
      break;
    }
    const std::size_t old = staged_.size();
    staged_.resize(want);
    const ssize_t n = ::recv(fd_, staged_.data() + old, want - old, 0);
    if (n > 0) {
      staged_.resize(old + static_cast<std::size_t>(n));
      DLS_COUNT("serve.socket.rx_bytes", static_cast<std::uint64_t>(n));
      continue;
    }
    staged_.resize(old);
    if (n == 0) {
      peer_eof_ = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_for(fd_, POLLIN, forever, deadline)) return false;
      continue;
    }
    if (errno == ECONNRESET) {
      // An abrupt reset ends the stream just like an orderly FIN; the
      // framing layer turns a mid-frame end into FrameTruncationError.
      DLS_COUNT("serve.socket.peer_resets");
      peer_eof_ = true;
      break;
    }
    if (closed_.load(std::memory_order_acquire)) {
      peer_eof_ = true;
      break;
    }
    throw TransportError("recv on " + label_ +
                         " failed: " + errno_text(errno));
  }
  return true;
}

ReadOutcome SocketTransport::read_partial(std::span<std::uint8_t> out,
                                          double timeout_s) {
  std::lock_guard<std::mutex> lock(read_mutex_);
  if (!stage_until(out.size(), timeout_s)) {
    return ReadOutcome{};  // deadline lapsed; staged bytes stay staged
  }
  ReadOutcome outcome;
  if (staged_.size() >= out.size()) {
    std::copy_n(staged_.begin(), out.size(), out.begin());
    staged_.erase(staged_.begin(),
                  staged_.begin() + static_cast<std::ptrdiff_t>(out.size()));
    outcome.received = out.size();
    outcome.complete = true;
    return outcome;
  }
  // Stream ended short of the span: consume what arrived and report it.
  std::copy(staged_.begin(), staged_.end(), out.begin());
  outcome.received = staged_.size();
  outcome.closed = true;
  staged_.clear();
  return outcome;
}

bool SocketTransport::read_exact(std::span<std::uint8_t> out) {
  const ReadOutcome got = read_partial(out, -1.0);
  if (got.complete) return true;
  if (got.received == 0) return false;  // clean EOF at a unit boundary
  throw TransportError("socket " + label_ + " closed mid-read (" +
                       std::to_string(got.received) + " of " +
                       std::to_string(out.size()) + " bytes arrived)");
}

void SocketTransport::close() noexcept {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  DLS_COUNT("serve.socket.closes");
  // Both directions: wakes a peer blocked on recv (it sees EOF) and any
  // local thread parked in poll. The fd stays open until destruction so
  // concurrent calls never touch a recycled descriptor.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

bool SocketTransport::valid() const noexcept {
  return fd_ >= 0 && !closed_.load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// SocketListener

SocketListener::~SocketListener() {
  close();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

SocketListener::SocketListener(SocketListener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      endpoint_(std::move(other.endpoint_)),
      unix_path_(std::move(other.unix_path_)),
      closed_(std::exchange(other.closed_, false)) {
  other.endpoint_.clear();
  other.unix_path_.clear();
}

SocketListener& SocketListener::operator=(SocketListener&& other) noexcept {
  if (this != &other) {
    close();
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    endpoint_ = std::move(other.endpoint_);
    unix_path_ = std::move(other.unix_path_);
    closed_ = std::exchange(other.closed_, false);
    other.endpoint_.clear();
    other.unix_path_.clear();
  }
  return *this;
}

SocketListener SocketListener::listen_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw TransportError("socket(AF_INET) failed: " + errno_text(errno));
  }
  set_cloexec(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw TransportError("bind(127.0.0.1:" + std::to_string(port) +
                         ") failed: " + errno_text(err));
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    throw TransportError("listen failed: " + errno_text(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd);
    throw TransportError("getsockname failed: " + errno_text(err));
  }
  SocketListener listener;
  listener.fd_ = fd;
  listener.port_ = ntohs(bound.sin_port);
  listener.endpoint_ =
      "tcp:127.0.0.1:" + std::to_string(listener.port_);
  DLS_COUNT("serve.socket.listeners");
  return listener;
}

SocketListener SocketListener::listen_unix(const std::string& path) {
  const sockaddr_un addr = make_unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw TransportError("socket(AF_UNIX) failed: " + errno_text(errno));
  }
  set_cloexec(fd);
  ::unlink(path.c_str());  // replace a stale socket file from a crash
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    throw TransportError("bind(unix:" + path +
                         ") failed: " + errno_text(err));
  }
  if (::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    ::unlink(path.c_str());
    throw TransportError("listen failed: " + errno_text(err));
  }
  SocketListener listener;
  listener.fd_ = fd;
  listener.endpoint_ = "unix:" + path;
  listener.unix_path_ = path;
  DLS_COUNT("serve.socket.listeners");
  return listener;
}

std::unique_ptr<SocketTransport> SocketListener::accept(
    double timeout_s, SocketConfig config) {
  if (fd_ < 0 || closed_) return nullptr;
  const bool forever = timeout_s <= 0.0;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             forever ? 0.0 : timeout_s));
  for (;;) {
    if (closed_) return nullptr;
    bool readable = false;
    try {
      readable = poll_for(fd_, POLLIN, forever, deadline);
    } catch (const TransportError&) {
      return nullptr;  // listener torn down under us
    }
    if (!readable) return nullptr;  // timeout
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      DLS_COUNT("serve.socket.accepts");
      return std::make_unique<SocketTransport>(
          fd, endpoint_ + "#accepted", config);
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;  // racing client went away; keep waiting
    }
    if (errno == EINVAL || errno == EBADF) return nullptr;  // closed
    throw TransportError("accept failed: " + errno_text(errno));
  }
}

void SocketListener::close() noexcept {
  if (closed_) return;
  closed_ = true;
  // shutdown() on a listening socket wakes a blocked accept()/poll on
  // Linux; the fd is released by the destructor.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

// ---------------------------------------------------------------------------
// Client-side connect helpers

std::unique_ptr<SocketTransport> connect_tcp(const std::string& host,
                                             std::uint16_t port,
                                             double timeout_s,
                                             SocketConfig config) {
  const std::string label = "tcp:" + host + ":" + std::to_string(port);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw TransportError("connect_tcp needs a numeric IPv4 host, got \"" +
                         host + "\"");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw TransportError("socket(AF_INET) failed: " + errno_text(errno));
  }
  set_cloexec(fd);
  set_nonblocking(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    const int err = errno;
    ::close(fd);
    throw TransportError("connect to " + label +
                         " failed: " + errno_text(err));
  }
  finish_connect(fd, label, timeout_s);
  DLS_COUNT("serve.socket.connects");
  return std::make_unique<SocketTransport>(fd, label, config);
}

std::unique_ptr<SocketTransport> connect_unix(const std::string& path,
                                              double timeout_s,
                                              SocketConfig config) {
  const std::string label = "unix:" + path;
  const sockaddr_un addr = make_unix_addr(path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw TransportError("socket(AF_UNIX) failed: " + errno_text(errno));
  }
  set_cloexec(fd);
  set_nonblocking(fd);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0 &&
      errno != EINPROGRESS && errno != EAGAIN) {
    const int err = errno;
    ::close(fd);
    throw TransportError("connect to " + label +
                         " failed: " + errno_text(err));
  }
  finish_connect(fd, label, timeout_s);
  DLS_COUNT("serve.socket.connects");
  return std::make_unique<SocketTransport>(fd, label, config);
}

std::unique_ptr<SocketTransport> connect_endpoint(const std::string& endpoint,
                                                  double timeout_s,
                                                  SocketConfig config) {
  if (endpoint.rfind("unix:", 0) == 0) {
    return connect_unix(endpoint.substr(5), timeout_s, config);
  }
  if (endpoint.rfind("tcp:", 0) == 0) {
    const std::string rest = endpoint.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon != std::string::npos) {
      const std::string host = rest.substr(0, colon);
      const int port = std::stoi(rest.substr(colon + 1));
      if (port > 0 && port <= 65535) {
        return connect_tcp(host, static_cast<std::uint16_t>(port),
                           timeout_s, config);
      }
    }
  }
  throw TransportError(
      "malformed endpoint \"" + endpoint +
      "\" (expected tcp:HOST:PORT or unix:PATH)");
}

}  // namespace dls::serve
