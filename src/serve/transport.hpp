// The duplex byte-transport seam of the serve layer.
//
// Everything above the byte stream — framing, the client, the service —
// is written against this interface, so the same code runs over the
// in-memory Pipe today, a fault-injecting ChaosTransport in the soak
// harness, and sockets in a deployment. Implementations must provide:
//
//  * write(): the whole span delivered as one atomic unit (concurrent
//    writers never interleave partial frames);
//  * read_exact(): block until the span is filled; clean EOF at a read
//    boundary returns false, a close mid-read throws TransportError;
//  * read_partial(): the timed flavour — fills as much of the span as
//    the deadline allows and reports how the read ended instead of
//    throwing, so framing can distinguish peer-closed from timed-out;
//  * close(): idempotent, both directions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "common/error.hpp"

namespace dls::serve {

/// A transport operation failed: write after close, or the peer hung up
/// in the middle of a read unit.
class TransportError : public dls::Error {
 public:
  explicit TransportError(const std::string& what) : Error(what) {}
};

/// A timed read's deadline elapsed before the requested bytes arrived.
/// Nothing was consumed; the stream itself may still be healthy.
class TransportTimeout : public TransportError {
 public:
  explicit TransportTimeout(const std::string& what)
      : TransportError(what) {}
};

/// How a read_partial() call ended. Exactly one of three shapes:
///   complete            — the whole span was filled;
///   closed              — the stream ended first; `received` bytes
///                         (possibly 0) were consumed into the span;
///   neither (timeout)   — the deadline elapsed; nothing was consumed.
struct ReadOutcome {
  std::size_t received = 0;  ///< bytes copied into the caller's span
  bool complete = false;     ///< the whole span was filled
  bool closed = false;       ///< the stream closed before completing
};

/// One end of a duplex byte stream. See the file comment for the
/// contract each method must honour.
class Transport {
 public:
  Transport() = default;
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;
  Transport(Transport&&) = default;
  Transport& operator=(Transport&&) = default;

  /// Appends `data` to the outbound stream as one atomic unit. Throws
  /// TransportError when this end or the peer's inbound side is closed.
  virtual void write(std::span<const std::uint8_t> data) = 0;

  /// Blocks until out.size() inbound bytes are available and copies
  /// them. Returns false on clean EOF (closed with nothing buffered);
  /// throws TransportError when the stream closed mid-read.
  virtual bool read_exact(std::span<std::uint8_t> out) = 0;

  /// Timed read: waits up to `timeout_s` seconds (<= 0 waits forever)
  /// for out.size() bytes. On close the remaining buffered bytes are
  /// consumed and reported; on timeout nothing is consumed.
  virtual ReadOutcome read_partial(std::span<std::uint8_t> out,
                                   double timeout_s) = 0;

  /// Closes both directions. Idempotent.
  virtual void close() noexcept = 0;

  /// True while the endpoint is connected (not default-constructed,
  /// moved-from or closed).
  virtual bool valid() const noexcept = 0;
};

}  // namespace dls::serve
