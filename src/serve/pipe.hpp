// In-memory duplex byte transport for the scheduling service.
//
// A Pipe is a pair of connected endpoints: bytes written to one end are
// read, in order, from the other. PipeEnd implements the Transport
// interface (transport.hpp) the service layer is written against —
// frames travel over PipeEnds today and over sockets in a deployment,
// with identical framing discipline either way.
//
// Semantics:
//  * write() appends its whole span as one atomic unit, so concurrent
//    writers (several service threads answering on one connection) never
//    interleave partial frames;
//  * read_exact() blocks until the requested byte count arrived; a
//    clean close at a read boundary reports EOF, a close mid-read
//    throws TransportError (a torn frame is an error, not an EOF);
//  * read_partial() is the timed flavour: on close it consumes whatever
//    is buffered and reports it, on timeout it consumes nothing;
//  * close() shuts both directions: the peer's reads drain buffered
//    bytes then observe EOF, and the peer's writes throw.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "serve/transport.hpp"

namespace dls::serve {

namespace internal {
class ByteQueue;
}  // namespace internal

struct Pipe;

/// One end of an in-memory duplex byte stream. Move-only; destroying an
/// end closes it, so a dropped endpoint never leaves the peer blocked.
class PipeEnd final : public Transport {
 public:
  PipeEnd() = default;
  PipeEnd(PipeEnd&& other) noexcept = default;
  PipeEnd& operator=(PipeEnd&& other) noexcept;
  ~PipeEnd() override;

  PipeEnd(const PipeEnd&) = delete;
  PipeEnd& operator=(const PipeEnd&) = delete;

  /// Appends `data` to the outbound stream as one atomic unit. Throws
  /// TransportError when this end or the peer's inbound side is closed.
  void write(std::span<const std::uint8_t> data) override;

  /// Blocks until out.size() inbound bytes are available and copies
  /// them. Returns false on clean EOF (closed with nothing buffered);
  /// throws TransportError when the stream closed mid-read.
  bool read_exact(std::span<std::uint8_t> out) override;

  /// Timed read; see Transport::read_partial.
  ReadOutcome read_partial(std::span<std::uint8_t> out,
                           double timeout_s) override;

  /// Closes both directions. Pending and future peer reads drain what
  /// was already written, then observe EOF; peer writes throw.
  /// Idempotent.
  void close() noexcept override;

  /// True while the endpoint is connected (not default-constructed,
  /// moved-from or closed).
  bool valid() const noexcept override;

 private:
  friend Pipe make_pipe();
  PipeEnd(std::shared_ptr<internal::ByteQueue> rx,
          std::shared_ptr<internal::ByteQueue> tx);

  std::shared_ptr<internal::ByteQueue> rx_;
  std::shared_ptr<internal::ByteQueue> tx_;
};

/// A connected endpoint pair: a.write -> b.read and b.write -> a.read.
struct Pipe {
  PipeEnd a;
  PipeEnd b;
};

Pipe make_pipe();

}  // namespace dls::serve
