// Unified retry policy and per-connection circuit breaker for the
// serve layer.
//
// RetryPolicy replaces the ad-hoc reuse of protocol::HeartbeatConfig in
// SchedulerClient with knobs named for what they do: exponential
// backoff sharing protocol::exponential_backoff as its core, optional
// decorrelated jitter (each delay drawn uniformly from
// [base, 3 * previous], capped) so synchronized clients spread out
// instead of retrying in lockstep, a per-attempt read deadline and a
// total wall-clock budget.
//
// CircuitBreaker guards one connection: closed while calls succeed,
// open after `failure_threshold` consecutive wire failures (allow()
// rejects without touching the transport), half-open after the
// cooldown — a bounded number of probe calls go through, one success
// re-closes the breaker, one failure re-opens it. A flapping server is
// probed, not hammered.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/rng.hpp"

namespace dls::serve {

/// Client-side retry knobs (seconds). Defaults suit the in-memory
/// transport; scale them up for anything that crosses a real wire.
struct RetryPolicy {
  double base_delay_s = 0.0005;  ///< first backoff delay
  double max_delay_s = 0.05;     ///< cap on any single delay
  double backoff_factor = 2.0;   ///< growth rate (deterministic mode)
  /// Draw each delay uniformly from [base, 3 * previous] instead of the
  /// deterministic ladder; spreads synchronized retriers apart.
  bool decorrelated_jitter = true;
  std::size_t max_attempts = 8;  ///< total tries, the first included
  /// Wall-clock budget across all attempts; <= 0 means unbounded.
  double total_deadline_s = 0.0;
  /// Per-attempt read deadline; <= 0 blocks until the peer answers.
  /// Required for liveness against a peer that swallows requests.
  double attempt_deadline_s = 0.0;
};

/// One retry loop's delay sequence: deterministic given (policy, seed).
class BackoffSchedule {
 public:
  BackoffSchedule(const RetryPolicy& policy, std::uint64_t seed)
      : policy_(policy), rng_(seed) {}

  /// The delay to sleep before the next attempt.
  double next_delay_s();

  /// Restarts the ladder (after a success, for reuse across calls).
  void reset() noexcept {
    attempt_ = 0;
    prev_ = 0.0;
  }

 private:
  RetryPolicy policy_;
  common::Rng rng_;
  std::size_t attempt_ = 0;
  double prev_ = 0.0;
};

struct BreakerConfig {
  /// Consecutive wire failures that trip the breaker open.
  std::size_t failure_threshold = 5;
  /// How long the open state rejects before probing (seconds).
  double open_cooldown_s = 0.01;
  /// Concurrent probe calls admitted while half-open.
  std::size_t half_open_probes = 1;
};

enum class BreakerState : std::uint8_t {
  kClosed = 0,    ///< healthy: every call admitted
  kOpen = 1,      ///< tripped: calls rejected until the cooldown passes
  kHalfOpen = 2,  ///< probing: a bounded number of calls admitted
};

std::string to_string(BreakerState state);

/// Thread-safe; share one instance across every client of a connection.
/// Metrics: serve.breaker.{opened,rejected,half_open,closed}.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerConfig config = {}) : config_(config) {}

  /// True when the caller may touch the wire. A rejected call must NOT
  /// be reported back via record_*: only real wire outcomes count.
  bool allow();

  /// Reports the outcome of an admitted call.
  void record_success();
  void record_failure();

  BreakerState state() const;

 private:
  BreakerConfig config_;
  mutable std::mutex mutex_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::size_t half_open_in_flight_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
};

}  // namespace dls::serve
