#include "serve/frame.hpp"

#include <algorithm>
#include <array>

namespace dls::serve {

namespace {

struct Header {
  FrameType type{};
  std::size_t length = 0;
  std::uint32_t checksum = 0;
};

/// Validates the fixed header fields and returns them decoded.
/// Factored out so the buffer and stream decoders reject identically.
Header take_header(codec::Reader& r) {
  const std::uint32_t magic = r.u32();
  if (magic != kFrameMagic) {
    throw codec::DecodeError("bad frame magic: expected " +
                             std::to_string(kFrameMagic) + ", got " +
                             std::to_string(magic));
  }
  const std::uint8_t version = r.u8();
  if (version != kFrameVersion) {
    throw FrameVersionError("unsupported frame version " +
                                std::to_string(version) + " (this build " +
                                "speaks version " +
                                std::to_string(kFrameVersion) + ")",
                            version);
  }
  const std::uint8_t type = r.u8();
  if (type < static_cast<std::uint8_t>(FrameType::kScheduleRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kMultiScheduleResponse)) {
    throw codec::DecodeError("unknown frame type " + std::to_string(type));
  }
  const std::uint32_t length = r.u32();
  if (length > kMaxFramePayload) {
    throw codec::DecodeError("frame payload of " + std::to_string(length) +
                             " bytes exceeds the " +
                             std::to_string(kMaxFramePayload) + " byte cap");
  }
  Header header;
  header.type = static_cast<FrameType>(type);
  header.length = static_cast<std::size_t>(length);
  header.checksum = r.u32();
  return header;
}

/// Rejects a fully-delivered payload whose bytes no longer hash to what
/// the sender announced — corruption in flight, not truncation.
void verify_checksum(const Frame& frame, std::uint32_t announced) {
  const std::uint32_t computed = frame_checksum(frame.payload);
  if (computed != announced) {
    throw FrameChecksumError(
        "frame payload checksum mismatch: header announced " +
            std::to_string(announced) + ", payload hashes to " +
            std::to_string(computed),
        announced, computed);
  }
}

/// Fills `out` from the stream or reports how the frame died: the typed
/// truncation error when the peer closed mid-frame, TransportTimeout
/// when the deadline elapsed first.
void read_or_report(Transport& end, std::span<std::uint8_t> out,
                    double timeout_s, const char* what,
                    std::size_t announced) {
  const ReadOutcome got = end.read_partial(out, timeout_s);
  if (got.complete) return;
  if (got.closed) {
    throw FrameTruncationError(
        "peer closed inside a " + std::string(what) + " (" +
            std::to_string(got.received) + " of " +
            std::to_string(announced) + " bytes arrived)",
        /*peer_closed=*/true, announced, got.received);
  }
  throw TransportTimeout("read of a " + std::string(what) + " timed out (" +
                         std::to_string(announced) + " bytes expected)");
}

}  // namespace

std::string to_string(FrameType type) {
  switch (type) {
    case FrameType::kScheduleRequest:
      return "schedule_request";
    case FrameType::kScheduleResponse:
      return "schedule_response";
    case FrameType::kBid:
      return "bid";
    case FrameType::kAllocation:
      return "allocation";
    case FrameType::kReport:
      return "report";
    case FrameType::kPayment:
      return "payment";
    case FrameType::kMultiScheduleRequest:
      return "multi_schedule_request";
    case FrameType::kMultiScheduleResponse:
      return "multi_schedule_response";
  }
  return "unknown";
}

std::uint32_t frame_checksum(std::span<const std::uint8_t> payload) noexcept {
  // v3: FNV-1a-64 over 8-byte words, bytewise tail, folded to 32 bits.
  // The v2 byte loop was a serial multiply chain (~3 cycles/byte) that
  // dominated frame handling on kilobyte payloads; hashing a word per
  // step keeps the same stability story at an eighth of the depth. The
  // explicit little-endian word assembly compiles to a plain load on
  // little-endian targets and keeps the value identical elsewhere.
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a-64 offset basis
  constexpr std::uint64_t kPrime = 1099511628211ull;  // FNV-1a-64 prime
  const std::uint8_t* cursor = payload.data();
  const std::size_t words = payload.size() / 8;
  for (std::size_t i = 0; i < words; ++i, cursor += 8) {
    std::uint64_t chunk = 0;
    for (std::size_t b = 0; b < 8; ++b) {
      chunk |= static_cast<std::uint64_t>(cursor[b]) << (8 * b);
    }
    hash = (hash ^ chunk) * kPrime;
  }
  for (std::size_t b = words * 8; b < payload.size(); ++b) {
    hash = (hash ^ payload[b]) * kPrime;
  }
  return static_cast<std::uint32_t>(hash ^ (hash >> 32));
}

codec::Bytes encode_frame(const Frame& frame) {
  DLS_REQUIRE(frame.payload.size() <= kMaxFramePayload,
              "frame payload exceeds kMaxFramePayload");
  codec::Writer w;
  w.u32(kFrameMagic);
  w.u8(kFrameVersion);
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.u32(frame_checksum(frame.payload));
  w.raw(frame.payload);
  return w.take();
}

Frame decode_frame(std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  const Header header = take_header(r);
  if (r.remaining() < header.length) {
    throw FrameTruncationError(
        "frame truncated: payload of " + std::to_string(header.length) +
            " bytes announced, " + std::to_string(r.remaining()) +
            " present",
        /*peer_closed=*/false, header.length, r.remaining());
  }
  Frame frame;
  frame.type = header.type;
  frame.payload.resize(header.length);
  for (auto& byte : frame.payload) byte = r.u8();
  r.expect_done();
  verify_checksum(frame, header.checksum);
  return frame;
}

void write_frame(Transport& end, const Frame& frame) {
  end.write(encode_frame(frame));
}

std::optional<Frame> read_frame(Transport& end, double timeout_s) {
  std::array<std::uint8_t, kFrameHeaderSize> header{};
  const ReadOutcome got = end.read_partial(header, timeout_s);
  if (!got.complete) {
    if (!got.closed) {
      throw TransportTimeout("read of a frame header timed out");
    }
    if (got.received == 0) return std::nullopt;  // clean EOF between frames
    throw FrameTruncationError(
        "peer closed inside a frame header (" +
            std::to_string(got.received) + " of " +
            std::to_string(kFrameHeaderSize) + " bytes arrived)",
        /*peer_closed=*/true, kFrameHeaderSize, got.received);
  }
  codec::Reader r(header);
  const Header parsed = take_header(r);
  r.expect_done();
  Frame frame;
  frame.type = parsed.type;
  frame.payload.resize(parsed.length);
  if (parsed.length > 0) {
    read_or_report(end, frame.payload, timeout_s, "frame payload",
                   parsed.length);
  }
  verify_checksum(frame, parsed.checksum);
  return frame;
}

std::optional<Frame> read_frame_resync(Transport& end,
                                       std::size_t max_scan_bytes,
                                       std::size_t* skipped,
                                       double timeout_s) {
  std::array<std::uint8_t, kFrameHeaderSize> header{};
  std::size_t discarded = 0;
  if (skipped != nullptr) *skipped = 0;

  const ReadOutcome got = end.read_partial(header, timeout_s);
  if (!got.complete) {
    if (!got.closed) {
      throw TransportTimeout("read of a frame header timed out");
    }
    if (got.received == 0) return std::nullopt;  // clean EOF between frames
    throw FrameTruncationError(
        "peer closed inside a frame header (" +
            std::to_string(got.received) + " of " +
            std::to_string(kFrameHeaderSize) + " bytes arrived)",
        /*peer_closed=*/true, kFrameHeaderSize, got.received);
  }

  for (;;) {
    Header parsed;
    try {
      codec::Reader r(header);
      parsed = take_header(r);
      r.expect_done();
    } catch (const codec::DecodeError&) {
      // Poison header: slide the window one byte and keep hunting for
      // the next frame boundary, up to the caller's scan budget.
      if (discarded >= max_scan_bytes) throw;
      ++discarded;
      if (skipped != nullptr) *skipped = discarded;
      std::copy(header.begin() + 1, header.end(), header.begin());
      const ReadOutcome one =
          end.read_partial(std::span(header).last(1), timeout_s);
      if (one.complete) continue;
      if (!one.closed) {
        throw TransportTimeout(
            "read of a frame header timed out while resynchronising (" +
            std::to_string(discarded) + " bytes discarded)");
      }
      throw codec::DecodeError(
          "stream ended while resynchronising past a malformed frame "
          "header (" +
          std::to_string(discarded) + " bytes discarded)");
    }
    // Payload read and checksum check happen outside the try: a torn or
    // corrupted payload is not a malformed header, so it must propagate
    // typed instead of re-entering the resync hunt.
    Frame frame;
    frame.type = parsed.type;
    frame.payload.resize(parsed.length);
    if (parsed.length > 0) {
      read_or_report(end, frame.payload, timeout_s, "frame payload",
                     parsed.length);
    }
    verify_checksum(frame, parsed.checksum);
    return frame;
  }
}

}  // namespace dls::serve
