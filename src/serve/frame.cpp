#include "serve/frame.hpp"

#include <array>
#include <utility>

namespace dls::serve {

namespace {

/// Validates the fixed header fields and returns (type, payload size).
/// Factored out so the buffer and stream decoders reject identically.
std::pair<FrameType, std::size_t> take_header(codec::Reader& r) {
  const std::uint32_t magic = r.u32();
  if (magic != kFrameMagic) {
    throw codec::DecodeError("bad frame magic: expected " +
                             std::to_string(kFrameMagic) + ", got " +
                             std::to_string(magic));
  }
  const std::uint8_t version = r.u8();
  if (version != kFrameVersion) {
    throw codec::DecodeError("unsupported frame version " +
                             std::to_string(version));
  }
  const std::uint8_t type = r.u8();
  if (type < static_cast<std::uint8_t>(FrameType::kScheduleRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kPayment)) {
    throw codec::DecodeError("unknown frame type " + std::to_string(type));
  }
  const std::uint32_t length = r.u32();
  if (length > kMaxFramePayload) {
    throw codec::DecodeError("frame payload of " + std::to_string(length) +
                             " bytes exceeds the " +
                             std::to_string(kMaxFramePayload) + " byte cap");
  }
  return {static_cast<FrameType>(type), static_cast<std::size_t>(length)};
}

}  // namespace

std::string to_string(FrameType type) {
  switch (type) {
    case FrameType::kScheduleRequest:
      return "schedule_request";
    case FrameType::kScheduleResponse:
      return "schedule_response";
    case FrameType::kBid:
      return "bid";
    case FrameType::kAllocation:
      return "allocation";
    case FrameType::kReport:
      return "report";
    case FrameType::kPayment:
      return "payment";
  }
  return "unknown";
}

codec::Bytes encode_frame(const Frame& frame) {
  DLS_REQUIRE(frame.payload.size() <= kMaxFramePayload,
              "frame payload exceeds kMaxFramePayload");
  codec::Writer w;
  w.u32(kFrameMagic);
  w.u8(kFrameVersion);
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.raw(frame.payload);
  return w.take();
}

Frame decode_frame(std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  const auto [type, length] = take_header(r);
  if (r.remaining() < length) {
    throw codec::DecodeError("frame truncated: payload of " +
                             std::to_string(length) + " bytes announced, " +
                             std::to_string(r.remaining()) + " present");
  }
  Frame frame;
  frame.type = type;
  frame.payload.resize(length);
  for (auto& byte : frame.payload) byte = r.u8();
  r.expect_done();
  return frame;
}

void write_frame(PipeEnd& end, const Frame& frame) {
  end.write(encode_frame(frame));
}

std::optional<Frame> read_frame(PipeEnd& end) {
  std::array<std::uint8_t, kFrameHeaderSize> header{};
  if (!end.read_exact(header)) return std::nullopt;
  codec::Reader r(header);
  const auto [type, length] = take_header(r);
  r.expect_done();
  Frame frame;
  frame.type = type;
  frame.payload.resize(length);
  if (length > 0 && !end.read_exact(frame.payload)) {
    throw TransportError("pipe closed inside a frame payload (" +
                         std::to_string(length) + " bytes announced)");
  }
  return frame;
}

}  // namespace dls::serve
