// Length-prefixed framing for the scheduling service transport.
//
// Every message crossing a connection travels inside one frame:
//
//   offset  size  field
//   0       4     magic    0x46534C44 ("DLSF" as little-endian bytes)
//   4       1     version  (kFrameVersion)
//   5       1     type     (FrameType, 1..8)
//   6       4     payload length N (little-endian; N <= kMaxFramePayload)
//   10      4     checksum (frame_checksum of the payload, little-endian)
//   14      N     payload  (a protocol/serve wire encoding, magic included)
//
// Decoding follows the codec/wire discipline: unknown magic, unsupported
// version, unknown type, oversized length, truncation and trailing bytes
// are all rejected with codec::DecodeError before any payload decode
// runs. The payload itself carries its own wire magic, so a frame whose
// type tag disagrees with its payload is caught by the payload decoder.
// Version 2 added the checksum: a payload that does not hash to the
// announced value is rejected with the typed FrameChecksumError, so
// in-flight corruption surfaces as a typed refusal, not silently wrong
// numbers. Version 3 swapped the byte-serial FNV-1a-32 for word-wise
// FNV-1a-64 folded to 32 bits — the byte loop's multiply chain capped
// framing at ~1 ns/byte, dominating the serve path on kB payloads.
//
// Truncation is reported with the typed FrameTruncationError so callers
// can tell a peer that hung up mid-frame from a header announcing more
// bytes than a captured buffer holds. read_frame_resync adds
// poison-frame recovery: on a malformed header it scans forward byte by
// byte to the next plausible boundary instead of abandoning the stream.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "codec/bytes.hpp"
#include "serve/transport.hpp"

namespace dls::serve {

/// Payload kind carried by a frame. Values are wire-stable; extend at
/// the tail only.
enum class FrameType : std::uint8_t {
  kScheduleRequest = 1,   ///< serve::ScheduleRequest
  kScheduleResponse = 2,  ///< serve::ScheduleResponse
  kBid = 3,               ///< protocol::BidMessage (Phase I)
  kAllocation = 4,        ///< protocol::AllocationMessage (Phase II)
  kReport = 5,            ///< protocol::ReportMessage (Phase III)
  kPayment = 6,           ///< protocol::PaymentMessage (Phase IV)
  kMultiScheduleRequest = 7,   ///< serve::MultiScheduleRequest
  kMultiScheduleResponse = 8,  ///< serve::MultiScheduleResponse
};

std::string to_string(FrameType type);

inline constexpr std::uint32_t kFrameMagic = 0x46534C44;  // "DLSF"
inline constexpr std::uint8_t kFrameVersion = 3;  // v3: word-wise checksum
/// Header bytes preceding the payload
/// (magic + version + type + length + checksum).
inline constexpr std::size_t kFrameHeaderSize = 14;
/// A header announcing a larger payload is rejected before allocating.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;

struct Frame {
  FrameType type{};
  codec::Bytes payload;
};

/// The frame header announced a version this build does not speak.
/// Carries the peer's version so a gateway can log or negotiate instead
/// of parsing it back out of the message text (v1/v2 peers are common
/// during rollouts; their version used to be lost in the what() string).
class FrameVersionError : public codec::DecodeError {
 public:
  FrameVersionError(const std::string& what, std::uint8_t received)
      : DecodeError(what), received_(received) {}

  /// The version byte the peer sent.
  std::uint8_t received() const noexcept { return received_; }
  /// The version this build speaks (kFrameVersion).
  std::uint8_t supported() const noexcept { return kFrameVersion; }

 private:
  std::uint8_t received_;
};

/// A frame ended before its announced length was reached. peer_closed()
/// distinguishes the two ways that happens:
///   true  — the stream closed mid-frame (torn write / silent
///           disconnect); the connection is finished;
///   false — a captured buffer holds fewer bytes than the header
///           announced (truncated capture or corrupted length field).
class FrameTruncationError : public codec::DecodeError {
 public:
  FrameTruncationError(const std::string& what, bool peer_closed,
                       std::size_t announced, std::size_t received)
      : DecodeError(what),
        peer_closed_(peer_closed),
        announced_(announced),
        received_(received) {}

  bool peer_closed() const noexcept { return peer_closed_; }
  std::size_t announced() const noexcept { return announced_; }
  std::size_t received() const noexcept { return received_; }

 private:
  bool peer_closed_;
  std::size_t announced_;
  std::size_t received_;
};

/// The payload arrived whole but does not hash to the checksum the
/// header announced: bytes were corrupted in flight. The stream is still
/// frame-aligned (the full announced length was consumed), so a server
/// may treat this as a poison frame and keep the connection alive.
class FrameChecksumError : public codec::DecodeError {
 public:
  FrameChecksumError(const std::string& what, std::uint32_t announced,
                     std::uint32_t computed)
      : DecodeError(what), announced_(announced), computed_(computed) {}

  std::uint32_t announced() const noexcept { return announced_; }
  std::uint32_t computed() const noexcept { return computed_; }

 private:
  std::uint32_t announced_;
  std::uint32_t computed_;
};

/// The hash the header's checksum field carries: FNV-1a-64 over
/// little-endian 64-bit words of the payload (bytewise FNV-1a-64 tail),
/// xor-folded to 32 bits. Platform-stable — words are assembled
/// little-endian explicitly. Exposed so tests can craft well-formed
/// frames by hand.
std::uint32_t frame_checksum(std::span<const std::uint8_t> payload) noexcept;

/// Frame <-> bytes. decode_frame is strict: the buffer must hold exactly
/// one well-formed frame. A buffer shorter than the announced payload
/// raises FrameTruncationError with peer_closed() == false.
codec::Bytes encode_frame(const Frame& frame);
Frame decode_frame(std::span<const std::uint8_t> data);

/// Writes one frame as a single atomic transport unit.
void write_frame(Transport& end, const Frame& frame);

/// Reads the next frame. Returns nullopt on clean EOF (the peer closed
/// between frames); throws codec::DecodeError on a malformed header,
/// FrameTruncationError (peer_closed() == true) when the stream ends
/// inside a frame, FrameChecksumError when the payload arrives whole
/// but corrupted, and TransportTimeout when `timeout_s` > 0 elapses
/// first.
std::optional<Frame> read_frame(Transport& end, double timeout_s = 0.0);

/// read_frame with poison-frame recovery: a malformed header does not
/// kill the stream — the decoder slides forward one byte at a time
/// until a plausible header lines up, discarding at most
/// `max_scan_bytes` along the way (then the original DecodeError is
/// rethrown so the caller can quarantine the connection). `skipped`
/// (optional) reports how many bytes were discarded before the
/// returned frame. Truncation and timeout behave as in read_frame.
std::optional<Frame> read_frame_resync(Transport& end,
                                       std::size_t max_scan_bytes,
                                       std::size_t* skipped = nullptr,
                                       double timeout_s = 0.0);

}  // namespace dls::serve
