// Length-prefixed framing for the scheduling service transport.
//
// Every message crossing a connection travels inside one frame:
//
//   offset  size  field
//   0       4     magic   0x46534C44 ("DLSF" as little-endian bytes)
//   4       1     version (kFrameVersion)
//   5       1     type    (FrameType, 1..6)
//   6       4     payload length N (little-endian; N <= kMaxFramePayload)
//   10      N     payload (a protocol/serve wire encoding, magic included)
//
// Decoding follows the codec/wire discipline: unknown magic, unsupported
// version, unknown type, oversized length, truncation and trailing bytes
// are all rejected with codec::DecodeError before any payload decode
// runs. The payload itself carries its own wire magic, so a frame whose
// type tag disagrees with its payload is caught by the payload decoder.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "codec/bytes.hpp"
#include "serve/pipe.hpp"

namespace dls::serve {

/// Payload kind carried by a frame. Values are wire-stable; extend at
/// the tail only.
enum class FrameType : std::uint8_t {
  kScheduleRequest = 1,   ///< serve::ScheduleRequest
  kScheduleResponse = 2,  ///< serve::ScheduleResponse
  kBid = 3,               ///< protocol::BidMessage (Phase I)
  kAllocation = 4,        ///< protocol::AllocationMessage (Phase II)
  kReport = 5,            ///< protocol::ReportMessage (Phase III)
  kPayment = 6,           ///< protocol::PaymentMessage (Phase IV)
};

std::string to_string(FrameType type);

inline constexpr std::uint32_t kFrameMagic = 0x46534C44;  // "DLSF"
inline constexpr std::uint8_t kFrameVersion = 1;
/// Header bytes preceding the payload (magic + version + type + length).
inline constexpr std::size_t kFrameHeaderSize = 10;
/// A header announcing a larger payload is rejected before allocating.
inline constexpr std::size_t kMaxFramePayload = std::size_t{1} << 26;

struct Frame {
  FrameType type{};
  codec::Bytes payload;
};

/// Frame <-> bytes. decode_frame is strict: the buffer must hold exactly
/// one well-formed frame.
codec::Bytes encode_frame(const Frame& frame);
Frame decode_frame(std::span<const std::uint8_t> data);

/// Writes one frame as a single atomic transport unit.
void write_frame(PipeEnd& end, const Frame& frame);

/// Reads the next frame. Returns nullopt on clean EOF (the peer closed
/// between frames); throws codec::DecodeError on a malformed header and
/// TransportError when the stream ends inside a frame.
std::optional<Frame> read_frame(PipeEnd& end);

}  // namespace dls::serve
