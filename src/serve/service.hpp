// The scheduling service: concurrent DLS-LBL sessions behind a framed
// transport, with admission control, per-request deadlines, solve cache.
//
// Shape (mirroring a BOINC-style scheduler front-end):
//
//   client ──Pipe── session reader ──bounded queue── dispatcher ── pool
//                       │                 │               │
//                       │ shed when full  │ expire past   │ batch solve
//                       ▼                 ▼ deadline      ▼ via cache
//                    responses written back on the request's connection
//
//  * connect() hands out one end of a fresh Pipe; adopt() runs the same
//    session machinery over any Transport (SocketTransport,
//    ChaosTransport, ...). A per-connection reader thread decodes
//    frames and admits *synchronously*: a full queue answers kShed
//    immediately — backpressure is explicit, never a silent stall.
//  * A dispatcher thread drains the queue in batches of at most
//    `max_batch` and solves them concurrently on the exec::ThreadPool.
//  * Each request's deadline (admission-relative, µs) is checked before
//    solving; an expired request is answered kExpired solver-untouched.
//  * Same-length cache misses of one dispatch window coalesce into one
//    SoA batch solve (dlt::BatchLinearSolver); responses stay
//    bit-identical to per-request solves.
//  * Solutions are memoised in a SolveCache keyed by canonical (w, z)
//    bytes. Metrics (serve.*): see docs/OBSERVABILITY.md.
//  * Multi-load requests (kMultiScheduleRequest) share the same queue
//    and shed/degraded/expired/stop semantics but solve via
//    multiload::MultiLoadSolver per request (the answer depends on the
//    whole mix — nothing to cache); single-load bytes are unchanged.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/dls_lbl.hpp"
#include "exec/thread_pool.hpp"
#include "serve/cache.hpp"
#include "serve/multiload_wire.hpp"
#include "serve/pipe.hpp"
#include "serve/service_wire.hpp"

namespace dls::serve {

struct ServiceConfig {
  /// Admission bound: requests beyond this many queued are shed.
  std::size_t queue_capacity = 64;
  /// Requests solved per dispatcher wake-up (concurrently, on the pool).
  std::size_t max_batch = 8;
  /// Batched-solve threshold: cache-miss requests in the same dispatch
  /// window whose chains have equal length are coalesced into one
  /// BatchLinearSolver solve when at least this many distinct instances
  /// group together (duplicate topologies are deduplicated into one
  /// lane regardless). Responses stay bit-identical to unbatched
  /// solves. 0 disables dispatch-window batching entirely.
  std::size_t batch_min_lanes = 2;
  /// Solve-cache capacity in resident solutions; 0 disables caching.
  std::size_t cache_capacity = 256;
  /// Deadline applied to requests that carry none; 0 = no deadline.
  double default_deadline_us = 0.0;
  /// Payment arithmetic for want_payments requests.
  core::MechanismConfig mechanism;
  /// Start with the dispatcher held: requests are admitted (or shed)
  /// but nothing is solved until resume(). Tests use this to provoke
  /// deterministic queue-full and deadline-expiry behaviour.
  bool start_paused = false;
  /// Brown-out watermark: when the queue holds at least this many
  /// requests, cache hits are answered inline from the reader thread
  /// and cache misses get a typed kDegraded refusal with a retry-after
  /// hint instead of queueing. 0 disables brown-out.
  std::size_t brownout_watermark = 0;
  /// The retry-after hint carried by kDegraded responses (µs).
  double degraded_retry_after_us = 1000.0;
  /// Poison-frame tolerance: how many resynchronised (garbled) frames
  /// a connection may send before it is quarantined (closed).
  std::size_t poison_budget = 8;
  /// Bytes the framing layer may discard hunting for the next frame
  /// boundary after a malformed header, per incident.
  std::size_t resync_scan_bytes = 65536;
};

/// Transport-independent response counts (kept regardless of whether
/// the obs runtime switch is on).
struct ServiceStats {
  std::uint64_t received = 0;  ///< well-formed requests read off the wire
  std::uint64_t admitted = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;
  std::uint64_t degraded = 0;       ///< kDegraded brown-out refusals
  std::uint64_t poison_frames = 0;  ///< frames recovered via resync
  std::uint64_t quarantined = 0;    ///< connections closed for poison
  std::uint64_t batched = 0;        ///< requests answered via batch solves
  std::uint64_t batch_groups = 0;   ///< batched solver runs dispatched
  std::uint64_t batch_deduped = 0;  ///< duplicate topologies answered
                                    ///< from a batchmate's lane
  std::uint64_t inline_hits = 0;    ///< try_serve_inline cache answers
  /// Well-formed multi-load requests read off the wire (also counted
  /// in `received`; responses land in the shared status counters).
  std::uint64_t multi_received = 0;
  std::uint64_t multi_loads = 0;  ///< loads inside kOk multi responses
};

class SchedulerService {
 public:
  /// `pool` defaults to exec::ThreadPool::global().
  explicit SchedulerService(ServiceConfig config,
                            exec::ThreadPool* pool = nullptr);
  ~SchedulerService();

  SchedulerService(const SchedulerService&) = delete;
  SchedulerService& operator=(const SchedulerService&) = delete;

  /// Opens an in-memory connection and returns the client end. Each
  /// connection is served by its own reader thread until the client
  /// closes or the service stops.
  PipeEnd connect();

  /// Serves an established transport (an accepted socket, a chaos
  /// wrapper, ...) with the same per-connection reader machinery that
  /// backs connect(). The service owns the transport from here on.
  void adopt(std::unique_ptr<Transport> transport);

  /// Colocated fast path for a router sharing this process: answers
  /// `request` from the solve cache without touching the wire, the
  /// admission queue or the dispatcher. Returns true (and fills
  /// `response`, bit-identical to a queued cache hit) only for
  /// payment-free cache hits on a valid instance; everything else —
  /// misses, payments, malformed requests — returns false so the caller
  /// falls back to the framed path and its full admission semantics.
  bool try_serve_inline(const ScheduleRequest& request,
                        ScheduleResponse& response);

  /// Holds / releases the dispatcher. Admission keeps running while
  /// paused, so the queue fills and sheds deterministically.
  void pause();
  void resume();

  /// Answers everything still queued with kError, closes every
  /// connection and joins all threads. Idempotent; the destructor
  /// calls it.
  void stop();

  ServiceStats stats() const;
  const SolveCache& cache() const noexcept { return cache_; }

 private:
  struct Session {
    std::unique_ptr<Transport> end;  ///< server side of the connection
    std::thread reader;
    std::atomic<bool> done{false};  ///< reader loop has returned
    /// Queued requests still holding a pointer to this session; the
    /// session may only be reaped once done and pending == 0.
    std::atomic<std::size_t> pending{0};
  };
  struct Pending {
    ScheduleRequest request;
    /// Engaged for multi-load traffic; `request` is then unused.
    std::optional<MultiScheduleRequest> multi;
    std::chrono::steady_clock::time_point admitted_at;
    Session* session = nullptr;
  };

  void session_loop(Session* session);
  /// Closes a connection that exhausted its poison budget (or sent a
  /// stream the resync scan could not rescue).
  void quarantine(Session* session);
  /// Shared admission for single- and multi-load traffic: one bounded
  /// queue, FIFO across both kinds, kShed in the request's own response
  /// type when full. Stamps admitted_at at the moment of queueing.
  void admit(Pending pending);
  /// Brown-out path: answers `request` inline (cache hit or kDegraded)
  /// when the queue is above the watermark. Returns false when the
  /// request should proceed to normal admission.
  bool try_brownout(const ScheduleRequest& request, Session* session);
  /// Multi-load brown-out: schedules are never cached (the answer
  /// depends on the full load mix), so above the watermark every
  /// multi-load request gets the typed kDegraded refusal.
  bool try_brownout_multi(const MultiScheduleRequest& request,
                          Session* session);
  void dispatch_loop();
  void process_batch(std::vector<Pending>& batch);

  /// Same-length cache misses of one dispatch window, coalesced into one
  /// BatchLinearSolver run. `members[lane]` is the batch index solved in
  /// `lane`; `aliases` are duplicate-topology requests answered from an
  /// existing lane's solution instead of their own.
  struct MissGroup {
    std::size_t chain = 0;  ///< processors per instance
    std::vector<std::size_t> members;
    std::vector<codec::Bytes> keys;  ///< cache key per lane
    std::vector<std::pair<std::size_t, std::size_t>> aliases;
  };
  /// Per-group reusable solver + assessment buffers, owned by the
  /// dispatcher and handed to pool tasks one group each.
  struct DispatchScratch {
    dlt::BatchLinearSolver solver;
    core::AssessWorkspace assess;
  };

  /// A request routed to the per-request path. When classification
  /// already consulted the cache, its result rides along so handle()
  /// does not look up (and count) a second time.
  struct SingleTask {
    std::size_t index = 0;
    bool looked_up = false;
    SolveCache::Value solution;  ///< null = known miss
  };

  /// Dispatcher-thread triage of one window: answers expired requests
  /// and payment-free cache hits in place (into `responses`), groups
  /// batchable cache misses by chain length, and routes everything else
  /// (validation failures, cache hits wanting payments, leftovers of
  /// undersized groups) to `singles` for the classic handle() path.
  void classify_window(const std::vector<Pending>& batch,
                       std::vector<ScheduleResponse>& responses,
                       std::vector<SingleTask>& singles,
                       std::vector<MissGroup>& groups);
  /// Solves one miss group on the pool; fills member and alias
  /// responses (bit-identical to handle() on each request alone).
  void solve_group_lanes(const MissGroup& group, DispatchScratch& scratch,
                         const std::vector<Pending>& batch);
  void solve_group(const MissGroup& group, DispatchScratch& scratch,
                   const std::vector<Pending>& batch,
                   std::vector<ScheduleResponse>& responses);
  /// Solves (or refuses) one admitted request; pure apart from cache
  /// and metric updates, so batch items run concurrently on the pool.
  /// `prefetched` carries classification's cache-lookup result when one
  /// was made (so every request is looked up exactly once).
  ScheduleResponse handle(const Pending& pending,
                          const SingleTask* prefetched = nullptr);
  /// Solves (or refuses) one admitted multi-load request via
  /// multiload::MultiLoadSolver; expired requests are answered without
  /// scheduling a single installment.
  MultiScheduleResponse handle_multi(const Pending& pending);
  void send_response(Session* session, const ScheduleResponse& response);
  void send_multi_response(Session* session,
                           const MultiScheduleResponse& response);
  void count_response(const ScheduleResponse& response);
  void count_multi_response(const MultiScheduleResponse& response);

  ServiceConfig config_;
  exec::ThreadPool* pool_;
  SolveCache cache_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool paused_ = false;
  bool stopping_ = false;

  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  bool accepting_ = true;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;

  /// Grown to the window's group count and reused across windows; only
  /// the dispatcher (and the pool tasks it fans out per window) touch it.
  std::vector<std::unique_ptr<DispatchScratch>> dispatch_scratch_;

  std::thread dispatcher_;
};

}  // namespace dls::serve
