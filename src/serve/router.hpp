// The sharded-federation front-end: routes schedule requests across N
// SchedulerService shards, replicates solves, and quorum-checks the
// answers.
//
// Shape (BOINC-style dispatch, sched/ exemplar in ROADMAP):
//
//   client ──frames── router session ──frames── shard 0..N-1 backends
//                        │     │
//         inline cache ──┘     └── ShardMap (consistent hash, liveness)
//         (colocated shard)          │
//                               health monitor (heartbeat-style probes)
//
//  * Each client connection gets a reader thread and lazy backend links.
//  * A request's owners are the first R distinct alive shards clockwise
//    from its canonical_topology_key ring position (shard.hpp). The
//    primary owner's colocated service (RouterConfig::local) answers
//    payment-free cache hits inline, no wire; the replay byte-cache
//    answers repeats without decoding at all.
//  * Replication: the request goes to every owner; kOk answers are
//    normalised (id and cache-hit flag zeroed) and byte-compared.
//    Divergence is a typed incident — the client gets a kError
//    refusal, never a divergent answer. With no kOk, the most
//    actionable refusal wins: kDegraded with the largest retry-after,
//    else kShed, else the first kError.
//  * Shard death: forward failures count against the reused
//    protocol::HeartbeatConfig retry budget; exhausting it marks the
//    shard dead (a consistent-hash rebalance — only that arc moves). A
//    monitor probes dead shards with exponential backoff to revive.
// Metrics (serve.shard.* / serve.quorum.*): see docs/OBSERVABILITY.md.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "codec/bytes.hpp"

#include "protocol/recovery.hpp"
#include "serve/pipe.hpp"
#include "serve/service.hpp"
#include "serve/shard.hpp"
#include "serve/transport.hpp"

namespace dls::serve {

struct RouterConfig {
  /// Number of shards in the federation (ring size).
  std::size_t shard_count = 1;
  /// Opens a fresh connection to shard `i`. Called lazily per client
  /// session and from the health monitor's revival probes; may throw
  /// TransportError (counted as a forward failure). Required.
  std::function<std::unique_ptr<Transport>(std::size_t shard)> connect;
  /// Colocated shard services, indexed by shard; entries may be null.
  /// Used only for the inline cache fast path — forwarding still goes
  /// through `connect` so chaos wrappers stay in the loop.
  std::vector<SchedulerService*> local;
  /// Replication factor R: how many distinct owners each request is
  /// sent to (clamped to the alive shard count).
  std::size_t replication = 1;
  /// Heartbeat-style failure accounting, reused from the recovery
  /// layer: retry_budget consecutive forward failures confirm a shard
  /// dead; the monitor re-probes with exponential backoff derived from
  /// period/backoff_factor/max_backoff (seconds here).
  protocol::HeartbeatConfig heartbeat{
      /*period=*/0.02, /*timeout=*/0.02, /*retry_budget=*/3,
      /*backoff_factor=*/2.0, /*max_backoff=*/0.5};
  /// Run the dead-shard revival monitor thread. Off, revival only
  /// happens when a test flips the map by hand.
  bool probe_dead_shards = true;
  /// Per-forward response deadline (seconds); <= 0 waits forever.
  double forward_timeout_s = 5.0;
  /// Retry-after hint (µs) on router-originated kDegraded refusals
  /// (no alive owner / every forward failed).
  double degraded_retry_after_us = 2000.0;
  /// Client-facing framing discipline, mirroring ServiceConfig.
  std::size_t poison_budget = 8;
  std::size_t resync_scan_bytes = 65536;
  /// Ring granularity (ShardMapConfig::vnodes).
  std::size_t vnodes = 64;
  /// Capacity (entries per tier; 0 disables) of the two-tier replay
  /// byte-cache. Tier 1 keys the WHOLE request payload and holds the
  /// complete encoded response frame: an exact repeat — an idempotent
  /// retry reusing its request id — is answered with one buffer write
  /// and no hashing, decoding or encoding at all. Tier 2 keys the
  /// payload after the request_id field and holds the response payload
  /// encoding: a repeat under a fresh id replays it with only the
  /// echoed id patched, then promotes the re-framed bytes into tier 1.
  /// Both tiers are populated only downstream of the colocated inline
  /// fast path, so every entry is a payment-free, deadline-free cache
  /// hit — the only traffic whose response is a pure function of the
  /// request bytes. Keying on the full payload (suffix) means any
  /// change to the round tag, deadline, payments flag or topology
  /// misses and takes the full path. Bounded, FIFO-evicted per tier.
  std::size_t replay_cache_capacity = 128;
};

/// Transport-independent routing counts (kept regardless of the obs
/// runtime switch).
struct RouterStats {
  std::uint64_t received = 0;      ///< well-formed requests read
  std::uint64_t inline_hits = 0;   ///< answered from a colocated cache
  std::uint64_t replayed = 0;      ///< byte-cache replays (both tiers)
  std::uint64_t replayed_verbatim = 0;  ///< tier-1 whole-frame replays
  std::uint64_t forwarded = 0;     ///< request copies sent to shards
  std::uint64_t forward_failures = 0;  ///< wire/decode failures talking
                                       ///< to a shard
  std::uint64_t answered_ok = 0;   ///< kOk answers returned to clients
  std::uint64_t refused = 0;       ///< typed non-kOk answers returned
  std::uint64_t no_owner = 0;      ///< no alive shard owned the key
  std::uint64_t quorum_checked = 0;    ///< merges with >= 2 kOk answers
  std::uint64_t quorum_agreed = 0;     ///< all compared answers matched
  std::uint64_t quorum_divergence = 0; ///< mismatch → typed incident
  std::uint64_t quorum_single = 0;     ///< lone kOk accepted unchecked
  std::uint64_t shard_deaths = 0;      ///< retry budget exhausted
  std::uint64_t shard_revivals = 0;    ///< monitor probe reconnected
  std::uint64_t rebalances = 0;        ///< liveness edges (death+revival)
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterConfig config);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Opens an in-memory client connection (the SchedulerClient-facing
  /// end is returned). Mirrors SchedulerService::connect().
  PipeEnd connect();

  /// Serves an established client-facing transport (an accepted
  /// socket, a chaos wrapper, ...). The router owns it from here on.
  void adopt(std::unique_ptr<Transport> transport);

  /// Closes every session and backend link, stops the monitor, joins
  /// all threads. Idempotent; the destructor calls it.
  void stop();

  RouterStats stats() const;

  /// Liveness snapshot, indexed by shard.
  std::vector<bool> alive() const;

  /// Marks a shard dead/alive by hand (tests, draining for deploys).
  /// Counted as a rebalance when the flag actually flips.
  void set_alive(std::size_t shard, bool alive);

 private:
  struct Session {
    std::unique_ptr<Transport> end;
    std::thread reader;
    std::atomic<bool> done{false};
    /// Lazily-opened backend link per shard, private to this session.
    std::vector<std::unique_ptr<Transport>> backends;
    std::vector<std::uint64_t> backend_next_id;
  };

  /// One shard's reply to a forwarded request, or why it has none.
  struct ForwardResult {
    bool delivered = false;  ///< a decoded response came back
    ScheduleResponse response;
  };

  void session_loop(Session* session);
  /// `payload` is the raw encoded request (for the replay byte-cache).
  void handle_request(Session* session, const ScheduleRequest& request,
                      std::span<const std::uint8_t> payload);
  /// Answers a request frame from the replay byte-cache when an
  /// identical payload (modulo request_id) was served inline before.
  /// Returns true when the response went out.
  bool try_replay(Session* session,
                  std::span<const std::uint8_t> payload);
  /// Stores an inline answer under both replay tiers: the response
  /// payload `encoded` under the request's id-less suffix, and the
  /// complete response frame `wire` under the whole request payload.
  void store_replay(std::span<const std::uint8_t> payload,
                    const codec::Bytes& encoded, const codec::Bytes& wire);
  /// Tier-1 insert alone (replay promotion). Caller holds no locks.
  void store_verbatim(std::span<const std::uint8_t> payload,
                      const codec::Bytes& wire);
  /// Sends `request` to `shard` on the session's backend link and
  /// blocks for the reply. A wire/decode failure drops the link (next
  /// request reconnects) and counts against the shard's retry budget.
  ForwardResult forward(Session* session, std::size_t shard,
                        const ScheduleRequest& request);
  /// Merges the owners' replies per the quorum/backpressure policy.
  ScheduleResponse merge(const ScheduleRequest& request,
                         const std::vector<ForwardResult>& results);
  void send_response(Session* session, const ScheduleResponse& response);

  void note_forward_failure(std::size_t shard);
  void note_forward_success(std::size_t shard);
  void monitor_loop();

  RouterConfig config_;

  mutable std::mutex health_mutex_;
  ShardMap map_;
  std::vector<std::size_t> consecutive_failures_;
  std::vector<std::size_t> probe_attempts_;  ///< per dead shard
  std::condition_variable health_cv_;
  bool stopping_ = false;

  mutable std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  bool accepting_ = true;

  mutable std::mutex stats_mutex_;
  RouterStats stats_;

  /// Heterogeneous-lookup hash so replay lookups hash the raw payload
  /// suffix without materialising a std::string first.
  struct ReplayKeyHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view key) const {
      return std::hash<std::string_view>{}(key);
    }
  };
  /// Tier-2 entry: the cached response payload plus the request id the
  /// suffix was last asked under. A repeat under the SAME id marks the
  /// client as an exact-frame replayer, which is what gates promotion
  /// into tier 1 — clients that increment ids never repeat one, so
  /// they never churn the verbatim tier with single-use entries.
  struct ReplayEntry {
    codec::Bytes encoded;
    std::uint64_t last_id = 0;
  };

  /// Leaf lock: never held together with any other router mutex.
  /// Guards both replay tiers.
  mutable std::mutex replay_mutex_;
  /// Tier 2: request payload after the id -> response payload encoding.
  std::unordered_map<std::string, ReplayEntry, ReplayKeyHash,
                     std::equal_to<>>
      replay_cache_;
  std::deque<std::string> replay_fifo_;  ///< insertion order, for eviction
  /// Tier 1: whole request payload -> complete response frame bytes.
  std::unordered_map<std::string, codec::Bytes, ReplayKeyHash,
                     std::equal_to<>>
      verbatim_cache_;
  std::deque<std::string> verbatim_fifo_;

  std::thread monitor_;
};

}  // namespace dls::serve
