// Wire format for the multi-load scheduling request/response pair.
//
// A MultiScheduleRequest carries one chain topology plus a batch of
// loads to run on it concurrently (per-load size, release and model
// deadline) and the dispatch policy knobs of
// multiload::MultiLoadConfig. The response echoes per-load outcomes
// (start, completion, deadline verdict, and on request the per-load
// payment total) plus the schedule's makespan against the serialized
// baseline — or a typed refusal with exactly the single-load semantics:
// kShed under admission pressure, kDegraded during brown-out (with a
// retry-after hint), kExpired past the admission deadline, kError for
// malformed or infeasible batches.
//
// Encodings follow the codec/wire discipline: canonical little-endian
// layout, strict decode (unknown magic, truncation, trailing bytes and
// malformed counts rejected), doubles as IEEE-754 bit patterns.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "codec/bytes.hpp"
#include "serve/service_wire.hpp"

namespace dls::serve {

/// One load of a multi-load batch as it crosses the wire.
struct MultiLoadItem {
  std::uint64_t load_id = 0;
  double size = 1.0;
  double release = 0.0;   ///< model time the load becomes available
  double deadline = 0.0;  ///< model-time completion target; 0 = none
};

/// One multi-load scheduling problem.
struct MultiScheduleRequest {
  std::uint64_t request_id = 0;
  std::vector<double> w;  ///< m+1 processing times (P_0..P_m)
  std::vector<double> z;  ///< m link times (l_1..l_m)
  std::vector<MultiLoadItem> loads;
  std::uint8_t policy = 0;          ///< multiload::DispatchPolicy value
  std::uint32_t installments = 1;   ///< chunks per load (>= 1)
  double ingress_z = 0.0;           ///< staging link unit time
  /// Admission-relative deadline in microseconds (same semantics as
  /// ScheduleOptions::deadline_us); 0 defers to the service default.
  double deadline_us = 0.0;
  bool want_payments = false;       ///< per-load DLS-LBL payment totals
};

/// Per-load slice of the answer.
struct MultiLoadResult {
  std::uint64_t load_id = 0;
  double start = 0.0;         ///< comm_start of the load's first chunk
  double completion = 0.0;    ///< compute finish of its last chunk
  bool deadline_met = true;
  double total_payment = 0.0; ///< Σ_{j>=1} Q_j for this load (on request)
};

struct MultiScheduleResponse {
  std::uint64_t request_id = 0;
  ScheduleStatus status = ScheduleStatus::kOk;
  std::string error;        ///< empty unless kError/kDegraded
  std::vector<MultiLoadResult> loads;  ///< kOk only, request order
  double makespan = 0.0;               ///< last completion (kOk only)
  double serialized_makespan = 0.0;    ///< strict-rounds baseline (kOk)
  double total_payment = 0.0;          ///< Σ loads (kOk + want_payments)
  double retry_after_us = 0.0;         ///< kDegraded hint
};

codec::Bytes encode_multi_schedule_request(const MultiScheduleRequest& request);
MultiScheduleRequest decode_multi_schedule_request(
    std::span<const std::uint8_t> data);

codec::Bytes encode_multi_schedule_response(
    const MultiScheduleResponse& response);
MultiScheduleResponse decode_multi_schedule_response(
    std::span<const std::uint8_t> data);

}  // namespace dls::serve
