#include "payment/ledger.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace dls::payment {

std::string to_string(TransferKind kind) {
  switch (kind) {
    case TransferKind::kCompensation:
      return "compensation";
    case TransferKind::kRecompense:
      return "recompense";
    case TransferKind::kBonus:
      return "bonus";
    case TransferKind::kSolutionBonus:
      return "solution-bonus";
    case TransferKind::kFine:
      return "fine";
    case TransferKind::kReward:
      return "reward";
    case TransferKind::kAuditPenalty:
      return "audit-penalty";
    case TransferKind::kAdjustment:
      return "adjustment";
  }
  return "unknown";
}

void Ledger::open_account(AccountId id) {
  DLS_REQUIRE(id != kTreasury, "the treasury account is built in");
  DLS_REQUIRE(!has_account(id), "account already open");
  accounts_.emplace_back(id, 0.0);
}

bool Ledger::has_account(AccountId id) const noexcept {
  if (id == kTreasury) return true;
  return std::any_of(accounts_.begin(), accounts_.end(),
                     [id](const auto& a) { return a.first == id; });
}

double& Ledger::balance_ref(AccountId id) {
  if (id == kTreasury) return treasury_;
  for (auto& [aid, bal] : accounts_) {
    if (aid == id) return bal;
  }
  throw PreconditionError("unknown account " + std::to_string(id));
}

void Ledger::post(Transfer transfer) {
  DLS_REQUIRE(std::isfinite(transfer.amount) && transfer.amount >= 0.0,
              "transfer amount must be finite and non-negative");
  double& from = balance_ref(transfer.from);
  double& to = balance_ref(transfer.to);
  from -= transfer.amount;
  to += transfer.amount;
  history_.push_back(std::move(transfer));
}

double Ledger::balance(AccountId id) const {
  if (id == kTreasury) return treasury_;
  for (const auto& [aid, bal] : accounts_) {
    if (aid == id) return bal;
  }
  throw PreconditionError("unknown account " + std::to_string(id));
}

double Ledger::net_of_kind(AccountId id, TransferKind kind) const {
  double net = 0.0;
  for (const auto& t : history_) {
    if (t.kind != kind) continue;
    if (t.to == id) net += t.amount;
    if (t.from == id) net -= t.amount;
  }
  return net;
}

double Ledger::conservation_residual() const noexcept {
  double total = treasury_;
  for (const auto& [id, bal] : accounts_) total += bal;
  return total;
}

void Ledger::print(std::ostream& os) const {
  os << "ledger: " << history_.size() << " transfers, treasury "
     << treasury_ << '\n';
  for (const auto& t : history_) {
    os << "  " << to_string(t.kind) << ' ' << t.amount << " : ";
    if (t.from == kTreasury) os << "treasury";
    else os << 'P' << t.from;
    os << " -> ";
    if (t.to == kTreasury) os << "treasury";
    else os << 'P' << t.to;
    if (!t.memo.empty()) os << "  (" << t.memo << ')';
    os << '\n';
  }
}

}  // namespace dls::payment
