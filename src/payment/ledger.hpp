// The payment infrastructure the paper assumes: accounts for every
// processor plus the mechanism's treasury, double-entry postings for
// every transfer kind the mechanism makes (compensation, bonus, fines,
// rewards, reimbursements, audit penalties), and a queryable history.
//
// Invariant: money is conserved — the sum of all balances (treasury
// included) is zero at all times. Fines move money from a deviant to the
// reporter through the treasury so both legs are on the books.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dls::payment {

using AccountId = std::uint32_t;

/// The mechanism's own account (source of payments, sink of fines).
inline constexpr AccountId kTreasury = 0xffffffffu;

enum class TransferKind : std::uint8_t {
  kCompensation,   ///< C_j: reimbursement of processing cost
  kRecompense,     ///< E_j: extra pay for dumped load absorbed
  kBonus,          ///< B_j: the strategyproofness-inducing bonus
  kSolutionBonus,  ///< S: reward for a verified solution (Thm 5.2 variant)
  kFine,           ///< F (or F/q) taken from a deviant
  kReward,         ///< F handed to the reporting processor
  kAuditPenalty,   ///< F/q for failing a Phase IV proof challenge
  kAdjustment,     ///< miscellaneous (tests, manual corrections)
};

std::string to_string(TransferKind kind);

struct Transfer {
  AccountId from = kTreasury;
  AccountId to = kTreasury;
  TransferKind kind = TransferKind::kAdjustment;
  double amount = 0.0;  ///< always >= 0; direction is from -> to
  std::string memo;
};

class Ledger {
 public:
  /// Opens an account with zero balance; reopening is an error.
  void open_account(AccountId id);
  bool has_account(AccountId id) const noexcept;

  /// Posts a transfer; both accounts must exist (kTreasury always does)
  /// and the amount must be non-negative and finite.
  void post(Transfer transfer);

  double balance(AccountId id) const;
  double treasury_balance() const noexcept { return treasury_; }

  /// Net amount account `id` has received of the given kind (credits
  /// minus debits).
  double net_of_kind(AccountId id, TransferKind kind) const;

  const std::vector<Transfer>& history() const noexcept { return history_; }

  /// Sum of every balance including the treasury; 0 modulo rounding.
  double conservation_residual() const noexcept;

  /// The mechanism's net outlay (negative treasury balance).
  double mechanism_outlay() const noexcept { return -treasury_; }

  void print(std::ostream& os) const;

 private:
  double& balance_ref(AccountId id);

  std::vector<std::pair<AccountId, double>> accounts_;
  double treasury_ = 0.0;
  std::vector<Transfer> history_;
};

}  // namespace dls::payment
