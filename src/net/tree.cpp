#include "net/tree.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dls::net {

TreeNetwork::TreeNetwork(std::vector<double> w, std::vector<double> z,
                         std::vector<std::size_t> parent)
    : w_(std::move(w)), z_(std::move(z)), parent_(std::move(parent)) {
  DLS_REQUIRE(!w_.empty(), "tree needs at least one node");
  DLS_REQUIRE(z_.size() == w_.size() && parent_.size() == w_.size(),
              "w, z and parent must have one entry per node");
  children_.resize(w_.size());
  for (std::size_t i = 0; i < w_.size(); ++i) {
    if (!(w_[i] > 0.0)) {
      throw dls::InfeasibleError("processing time must be positive");
    }
    if (i == 0) continue;
    if (!(z_[i] > 0.0)) {
      throw dls::InfeasibleError("link time must be positive");
    }
    DLS_REQUIRE(parent_[i] < i,
                "parents must precede children (topological numbering)");
    children_[parent_[i]].push_back(i);
  }
}

double TreeNetwork::w(std::size_t i) const {
  DLS_REQUIRE(i < w_.size(), "node index out of range");
  return w_[i];
}

double TreeNetwork::z(std::size_t i) const {
  DLS_REQUIRE(i >= 1 && i < z_.size(), "link index out of range");
  return z_[i];
}

std::size_t TreeNetwork::parent(std::size_t i) const {
  DLS_REQUIRE(i >= 1 && i < parent_.size(), "node index out of range");
  return parent_[i];
}

std::span<const std::size_t> TreeNetwork::children(std::size_t i) const {
  DLS_REQUIRE(i < children_.size(), "node index out of range");
  return children_[i];
}

std::size_t TreeNetwork::depth(std::size_t i) const {
  DLS_REQUIRE(i < w_.size(), "node index out of range");
  std::size_t d = 0;
  while (i != 0) {
    i = parent_[i];
    ++d;
  }
  return d;
}

std::size_t TreeNetwork::height() const {
  std::size_t h = 0;
  for (std::size_t i = 0; i < w_.size(); ++i) h = std::max(h, depth(i));
  return h;
}

TreeNetwork TreeNetwork::chain(std::vector<double> w, std::vector<double> z) {
  DLS_REQUIRE(z.size() + 1 == w.size(),
              "chain needs one link per non-root node");
  const std::size_t n = w.size();
  std::vector<double> zz(n, 1.0);
  std::vector<std::size_t> parent(n, 0);
  for (std::size_t i = 1; i < n; ++i) {
    zz[i] = z[i - 1];
    parent[i] = i - 1;
  }
  return TreeNetwork(std::move(w), std::move(zz), std::move(parent));
}

TreeNetwork TreeNetwork::star(double root_w, std::vector<double> worker_w,
                              std::vector<double> worker_z) {
  DLS_REQUIRE(worker_w.size() == worker_z.size(), "one link per worker");
  const std::size_t n = worker_w.size() + 1;
  std::vector<double> w(n), z(n, 1.0);
  std::vector<std::size_t> parent(n, 0);
  w[0] = root_w;
  for (std::size_t i = 1; i < n; ++i) {
    w[i] = worker_w[i - 1];
    z[i] = worker_z[i - 1];
  }
  return TreeNetwork(std::move(w), std::move(z), std::move(parent));
}

TreeNetwork TreeNetwork::balanced(std::size_t arity, std::size_t levels,
                                  double w, double z) {
  DLS_REQUIRE(arity >= 1, "arity must be at least 1");
  std::vector<double> ws = {w};
  std::vector<double> zs = {1.0};
  std::vector<std::size_t> parent = {0};
  std::size_t level_begin = 0;
  std::size_t level_end = 1;
  for (std::size_t level = 0; level < levels; ++level) {
    const std::size_t next_begin = ws.size();
    for (std::size_t p = level_begin; p < level_end; ++p) {
      for (std::size_t c = 0; c < arity; ++c) {
        parent.push_back(p);
        ws.push_back(w);
        zs.push_back(z);
      }
    }
    level_begin = next_begin;
    level_end = ws.size();
  }
  return TreeNetwork(std::move(ws), std::move(zs), std::move(parent));
}

TreeNetwork TreeNetwork::random(std::size_t nodes, common::Rng& rng,
                                double w_lo, double w_hi, double z_lo,
                                double z_hi) {
  DLS_REQUIRE(nodes >= 1, "tree needs at least one node");
  std::vector<double> w(nodes), z(nodes, 1.0);
  std::vector<std::size_t> parent(nodes, 0);
  for (std::size_t i = 0; i < nodes; ++i) {
    w[i] = rng.log_uniform(w_lo, w_hi);
    if (i == 0) continue;
    z[i] = rng.log_uniform(z_lo, z_hi);
    parent[i] = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
  }
  return TreeNetwork(std::move(w), std::move(z), std::move(parent));
}

}  // namespace dls::net
