// Network descriptions for the DLT solvers and the simulator.
//
// Conventions (Sect. 2 of the paper):
//  * w_i is the time processor P_i needs to compute one unit of load
//    (smaller = faster machine);
//  * z_j is the time link l_j needs to move one unit of load from P_{j-1}
//    to P_j (smaller = faster link);
//  * the total load is normalised to 1.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace dls::net {

/// An (m+1)-processor daisy chain P_0 - l_1 - P_1 - ... - l_m - P_m with
/// the load originating at P_0 (boundary origination, Figure 1).
class LinearNetwork {
 public:
  /// `w` has m+1 entries (P_0..P_m); `z` has m entries where z[j-1] is the
  /// unit communication time of link l_j. All values must be positive.
  LinearNetwork(std::vector<double> w, std::vector<double> z);

  /// Number of processors, m+1.
  std::size_t size() const noexcept { return w_.size(); }
  /// Number of strategic (non-root) processors, m.
  std::size_t workers() const noexcept { return w_.size() - 1; }

  /// Unit processing time of P_i, i in [0, m].
  double w(std::size_t i) const;
  /// Unit communication time of link l_j (P_{j-1} -> P_j), j in [1, m].
  double z(std::size_t j) const;

  std::span<const double> processing_times() const noexcept { return w_; }
  std::span<const double> link_times() const noexcept { return z_; }

  /// Copy with processor i's processing time replaced — the building block
  /// for "what if P_i had bid differently" counterfactuals.
  LinearNetwork with_processing_time(std::size_t i, double w) const;

  /// The sub-chain (P_i, ..., P_m) as its own boundary-origination network.
  LinearNetwork suffix(std::size_t i) const;

  /// Uniform chain: every processor at `w`, every link at `z`.
  static LinearNetwork uniform(std::size_t processors, double w, double z);

  /// Random chain with w ~ LogUniform[w_lo, w_hi], z ~ LogUniform[z_lo,
  /// z_hi]; deterministic given `rng`.
  static LinearNetwork random(std::size_t processors, common::Rng& rng,
                              double w_lo, double w_hi, double z_lo,
                              double z_hi);

  std::string describe() const;

 private:
  std::vector<double> w_;
  std::vector<double> z_;
};

/// A linear chain whose root sits at an interior position (the paper's
/// "interior load origination" variant, listed as future work). The root
/// splits the load between the left and right sub-chains, each of which is
/// a boundary-origination chain rooted at the origin.
class InteriorLinearNetwork {
 public:
  /// `root` must satisfy 0 < root < w.size()-1 (a true interior node).
  InteriorLinearNetwork(std::vector<double> w, std::vector<double> z,
                        std::size_t root);

  std::size_t size() const noexcept { return w_.size(); }
  std::size_t root() const noexcept { return root_; }
  double w(std::size_t i) const;
  /// z(j) is the link between P_{j-1} and P_j, j in [1, size()-1].
  double z(std::size_t j) const;

  /// Left arm (root, root-1, ..., 0) as a boundary chain rooted at the
  /// origin node.
  LinearNetwork left_chain() const;
  /// Right arm (root, root+1, ..., m) as a boundary chain.
  LinearNetwork right_chain() const;

 private:
  std::vector<double> w_;
  std::vector<double> z_;
  std::size_t root_;
};

/// A single-level star (root + m workers over dedicated links); the shape
/// used by the authors' companion tree-network mechanism [9]. The root can
/// optionally compute a share itself.
class StarNetwork {
 public:
  /// `worker_w` and `worker_z` have one entry per worker; `root_w` <= 0
  /// means the root does not compute.
  StarNetwork(double root_w, std::vector<double> worker_w,
              std::vector<double> worker_z);

  std::size_t workers() const noexcept { return w_.size(); }
  bool root_computes() const noexcept { return root_w_ > 0.0; }
  double root_w() const noexcept { return root_w_; }
  double w(std::size_t i) const;
  double z(std::size_t i) const;

  /// Workers sorted by ascending link time (the optimal service order for
  /// linear cost models).
  std::vector<std::size_t> order_by_link_speed() const;

  static StarNetwork random(std::size_t workers, common::Rng& rng,
                            double w_lo, double w_hi, double z_lo,
                            double z_hi, bool root_computes);

 private:
  double root_w_;
  std::vector<double> w_;
  std::vector<double> z_;
};

/// A bus network: root + m workers sharing one channel of unit time `z`
/// (the shape of the authors' companion bus-network mechanism [14]).
class BusNetwork {
 public:
  BusNetwork(double root_w, std::vector<double> worker_w, double bus_z);

  std::size_t workers() const noexcept { return w_.size(); }
  bool root_computes() const noexcept { return root_w_ > 0.0; }
  double root_w() const noexcept { return root_w_; }
  double w(std::size_t i) const;
  double bus_z() const noexcept { return z_; }

  /// Equivalent star: every link has the shared bus time.
  StarNetwork as_star() const;

  static BusNetwork random(std::size_t workers, common::Rng& rng,
                           double w_lo, double w_hi, double bus_z,
                           bool root_computes);

 private:
  double root_w_;
  std::vector<double> w_;
  double z_;
};

}  // namespace dls::net
