// Tree networks — the topology of the authors' companion mechanism
// "A Strategyproof Mechanism for Scheduling Divisible Loads in Tree
// Networks" [9]. The linear chain (unary tree) and the star (depth-1
// tree) are degenerate cases, which gives strong cross-checks against
// the other solvers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace dls::net {

/// A rooted tree of processors. Node 0 is the root and originates the
/// load; node i > 0 has a parent and a link of unit time z_i from it.
class TreeNetwork {
 public:
  /// `w[i]` — unit processing time of node i (> 0);
  /// `z[i]` — unit link time from parent(i) to i (> 0; z[0] is ignored);
  /// `parent[i]` — parent of node i (parent[0] is ignored). Parents must
  /// precede children (parent[i] < i), which guarantees a valid tree.
  TreeNetwork(std::vector<double> w, std::vector<double> z,
              std::vector<std::size_t> parent);

  std::size_t size() const noexcept { return w_.size(); }
  double w(std::size_t i) const;
  double z(std::size_t i) const;
  std::size_t parent(std::size_t i) const;
  std::span<const std::size_t> children(std::size_t i) const;
  bool is_leaf(std::size_t i) const { return children(i).empty(); }

  /// Number of edges on the path from the root to i.
  std::size_t depth(std::size_t i) const;
  /// max over depth(i).
  std::size_t height() const;

  /// A path P0 - P1 - ... - P{n-1} (matches a LinearNetwork).
  static TreeNetwork chain(std::vector<double> w, std::vector<double> z);

  /// Root plus `m` children over dedicated links (matches a computing-
  /// root StarNetwork).
  static TreeNetwork star(double root_w, std::vector<double> worker_w,
                          std::vector<double> worker_z);

  /// Complete `arity`-ary tree with `levels` levels below the root,
  /// uniform rates.
  static TreeNetwork balanced(std::size_t arity, std::size_t levels,
                              double w, double z);

  /// Random tree on `nodes` nodes: each new node attaches to a uniformly
  /// random earlier node; rates log-uniform.
  static TreeNetwork random(std::size_t nodes, common::Rng& rng, double w_lo,
                            double w_hi, double z_lo, double z_hi);

 private:
  std::vector<double> w_;
  std::vector<double> z_;
  std::vector<std::size_t> parent_;
  std::vector<std::vector<std::size_t>> children_;
};

}  // namespace dls::net
