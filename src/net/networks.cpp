#include "net/networks.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.hpp"

namespace dls::net {

namespace {

void require_positive(std::span<const double> values, const char* what) {
  for (const double v : values) {
    if (!(v > 0.0)) {
      throw dls::InfeasibleError(std::string(what) +
                                 " must be positive, got " +
                                 std::to_string(v));
    }
  }
}

}  // namespace

LinearNetwork::LinearNetwork(std::vector<double> w, std::vector<double> z)
    : w_(std::move(w)), z_(std::move(z)) {
  DLS_REQUIRE(w_.size() >= 1, "linear network needs at least one processor");
  DLS_REQUIRE(z_.size() + 1 == w_.size(),
              "linear network needs exactly one link per non-root processor");
  require_positive(w_, "processing time w");
  require_positive(z_, "link time z");
}

double LinearNetwork::w(std::size_t i) const {
  DLS_REQUIRE(i < w_.size(), "processor index out of range");
  return w_[i];
}

double LinearNetwork::z(std::size_t j) const {
  DLS_REQUIRE(j >= 1 && j <= z_.size(), "link index out of range");
  return z_[j - 1];
}

LinearNetwork LinearNetwork::with_processing_time(std::size_t i,
                                                  double w) const {
  DLS_REQUIRE(i < w_.size(), "processor index out of range");
  std::vector<double> nw = w_;
  nw[i] = w;
  return LinearNetwork(std::move(nw), z_);
}

LinearNetwork LinearNetwork::suffix(std::size_t i) const {
  DLS_REQUIRE(i < w_.size(), "suffix start out of range");
  std::vector<double> nw(w_.begin() + static_cast<std::ptrdiff_t>(i),
                         w_.end());
  std::vector<double> nz(z_.begin() + static_cast<std::ptrdiff_t>(i),
                         z_.end());
  return LinearNetwork(std::move(nw), std::move(nz));
}

LinearNetwork LinearNetwork::uniform(std::size_t processors, double w,
                                     double z) {
  DLS_REQUIRE(processors >= 1, "need at least one processor");
  return LinearNetwork(std::vector<double>(processors, w),
                       std::vector<double>(processors - 1, z));
}

LinearNetwork LinearNetwork::random(std::size_t processors, common::Rng& rng,
                                    double w_lo, double w_hi, double z_lo,
                                    double z_hi) {
  DLS_REQUIRE(processors >= 1, "need at least one processor");
  std::vector<double> w(processors);
  std::vector<double> z(processors - 1);
  for (auto& wi : w) wi = rng.log_uniform(w_lo, w_hi);
  for (auto& zj : z) zj = rng.log_uniform(z_lo, z_hi);
  return LinearNetwork(std::move(w), std::move(z));
}

std::string LinearNetwork::describe() const {
  std::ostringstream os;
  os << "LinearNetwork(m+1=" << size() << "; w=[";
  for (std::size_t i = 0; i < w_.size(); ++i) {
    if (i) os << ", ";
    os << w_[i];
  }
  os << "]; z=[";
  for (std::size_t i = 0; i < z_.size(); ++i) {
    if (i) os << ", ";
    os << z_[i];
  }
  os << "])";
  return os.str();
}

InteriorLinearNetwork::InteriorLinearNetwork(std::vector<double> w,
                                             std::vector<double> z,
                                             std::size_t root)
    : w_(std::move(w)), z_(std::move(z)), root_(root) {
  DLS_REQUIRE(w_.size() >= 3,
              "interior origination needs at least three processors");
  DLS_REQUIRE(z_.size() + 1 == w_.size(), "one link per adjacent pair");
  DLS_REQUIRE(root_ > 0 && root_ + 1 < w_.size(),
              "root must be an interior processor");
  require_positive(w_, "processing time w");
  require_positive(z_, "link time z");
}

double InteriorLinearNetwork::w(std::size_t i) const {
  DLS_REQUIRE(i < w_.size(), "processor index out of range");
  return w_[i];
}

double InteriorLinearNetwork::z(std::size_t j) const {
  DLS_REQUIRE(j >= 1 && j <= z_.size(), "link index out of range");
  return z_[j - 1];
}

LinearNetwork InteriorLinearNetwork::left_chain() const {
  // Chain (P_root, P_root-1, ..., P_0): reverse the prefix.
  std::vector<double> w(root_ + 1);
  std::vector<double> z(root_);
  for (std::size_t i = 0; i <= root_; ++i) w[i] = w_[root_ - i];
  for (std::size_t j = 1; j <= root_; ++j) z[j - 1] = z_[root_ - j];
  return LinearNetwork(std::move(w), std::move(z));
}

LinearNetwork InteriorLinearNetwork::right_chain() const {
  std::vector<double> w(w_.begin() + static_cast<std::ptrdiff_t>(root_),
                        w_.end());
  std::vector<double> z(z_.begin() + static_cast<std::ptrdiff_t>(root_),
                        z_.end());
  return LinearNetwork(std::move(w), std::move(z));
}

StarNetwork::StarNetwork(double root_w, std::vector<double> worker_w,
                         std::vector<double> worker_z)
    : root_w_(root_w), w_(std::move(worker_w)), z_(std::move(worker_z)) {
  DLS_REQUIRE(!w_.empty(), "star network needs at least one worker");
  DLS_REQUIRE(w_.size() == z_.size(), "one link per worker");
  require_positive(w_, "worker processing time w");
  require_positive(z_, "worker link time z");
}

double StarNetwork::w(std::size_t i) const {
  DLS_REQUIRE(i < w_.size(), "worker index out of range");
  return w_[i];
}

double StarNetwork::z(std::size_t i) const {
  DLS_REQUIRE(i < z_.size(), "worker index out of range");
  return z_[i];
}

std::vector<std::size_t> StarNetwork::order_by_link_speed() const {
  std::vector<std::size_t> order(w_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return z_[a] < z_[b]; });
  return order;
}

StarNetwork StarNetwork::random(std::size_t workers, common::Rng& rng,
                                double w_lo, double w_hi, double z_lo,
                                double z_hi, bool root_computes) {
  DLS_REQUIRE(workers >= 1, "need at least one worker");
  std::vector<double> w(workers);
  std::vector<double> z(workers);
  for (auto& wi : w) wi = rng.log_uniform(w_lo, w_hi);
  for (auto& zi : z) zi = rng.log_uniform(z_lo, z_hi);
  const double root_w = root_computes ? rng.log_uniform(w_lo, w_hi) : 0.0;
  return StarNetwork(root_w, std::move(w), std::move(z));
}

BusNetwork::BusNetwork(double root_w, std::vector<double> worker_w,
                       double bus_z)
    : root_w_(root_w), w_(std::move(worker_w)), z_(bus_z) {
  DLS_REQUIRE(!w_.empty(), "bus network needs at least one worker");
  DLS_REQUIRE(z_ > 0.0, "bus time must be positive");
  require_positive(w_, "worker processing time w");
}

double BusNetwork::w(std::size_t i) const {
  DLS_REQUIRE(i < w_.size(), "worker index out of range");
  return w_[i];
}

StarNetwork BusNetwork::as_star() const {
  return StarNetwork(root_w_, w_, std::vector<double>(w_.size(), z_));
}

BusNetwork BusNetwork::random(std::size_t workers, common::Rng& rng,
                              double w_lo, double w_hi, double bus_z,
                              bool root_computes) {
  DLS_REQUIRE(workers >= 1, "need at least one worker");
  std::vector<double> w(workers);
  for (auto& wi : w) wi = rng.log_uniform(w_lo, w_hi);
  const double root_w = root_computes ? rng.log_uniform(w_lo, w_hi) : 0.0;
  return BusNetwork(root_w, std::move(w), bus_z);
}

}  // namespace dls::net
