#include "codec/bytes.hpp"

#include <bit>
#include <cstring>

namespace dls::codec {

void Writer::u8(std::uint8_t v) { buffer_.push_back(v); }

void Writer::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buffer_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::f64_array(std::span<const double> values) {
  if (values.empty()) return;
  if constexpr (std::endian::native == std::endian::little) {
    // A double's object representation already is its little-endian
    // IEEE-754 bit pattern here, so the canonical encoding is a single
    // bulk append instead of eight branchy pushes per element.
    const auto* first = reinterpret_cast<const std::uint8_t*>(values.data());
    buffer_.insert(buffer_.end(), first,
                   first + values.size() * sizeof(double));
  } else {
    for (const double v : values) f64(v);
  }
}

void Writer::string(std::string_view s) {
  varint(s.size());
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  varint(data.size());
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Writer::raw(std::span<const std::uint8_t> data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) {
    throw DecodeError("truncated buffer: need " + std::to_string(n) +
                      " bytes, have " + std::to_string(remaining()));
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    v |= static_cast<std::uint32_t>(data_[pos_++]) << shift;
  }
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    v |= static_cast<std::uint64_t>(data_[pos_++]) << shift;
  }
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    need(1);
    const std::uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0x7e) != 0) {
      throw DecodeError("varint overflows 64 bits");
    }
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
    if (shift > 63) throw DecodeError("varint too long");
  }
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

void Reader::f64_array(std::span<double> out) {
  // An empty span may carry a null data() (e.g. a default vector); the
  // bulk memcpy below is declared nonnull even for a zero-byte copy.
  if (out.empty()) return;
  need(out.size() * sizeof(double));
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), data_.data() + pos_,
                out.size() * sizeof(double));
    pos_ += out.size() * sizeof(double);
  } else {
    for (double& v : out) v = f64();
  }
}

std::string Reader::string() {
  const std::uint64_t len = varint();
  need(len);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

Bytes Reader::bytes() {
  const std::uint64_t len = varint();
  need(len);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += static_cast<std::size_t>(len);
  return out;
}

void Reader::expect_done() const {
  if (!done()) {
    throw DecodeError("trailing bytes after message: " +
                      std::to_string(remaining()));
  }
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (const std::uint8_t byte : data) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0f]);
  }
  return out;
}

}  // namespace dls::codec
