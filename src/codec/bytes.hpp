// Canonical byte-level serialisation.
//
// Protocol messages are signed over their serialised form, so encoding has
// to be deterministic: fixed little-endian layout for integers, IEEE-754
// bit patterns for doubles, length-prefixed strings, and LEB128 varints
// for counts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace dls::codec {

using Bytes = std::vector<std::uint8_t>;

/// A decode failed: truncated buffer, malformed varint, bad tag.
class DecodeError : public dls::Error {
 public:
  explicit DecodeError(const std::string& what) : Error(what) {}
};

/// Append-only encoder.
class Writer {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  /// Unsigned LEB128.
  void varint(std::uint64_t v);
  /// IEEE-754 bit pattern, little-endian.
  void f64(double v);
  /// Bulk f64: byte-identical to calling f64 per element, but one
  /// buffer append on little-endian hosts (the serve transport moves
  /// multi-thousand-element vectors; per-byte appends dominate there).
  void f64_array(std::span<const double> values);
  /// varint length + raw bytes.
  void string(std::string_view s);
  /// varint length + raw bytes.
  void bytes(std::span<const std::uint8_t> data);
  /// Raw bytes with no length prefix (caller knows the framing).
  void raw(std::span<const std::uint8_t> data);

  const Bytes& data() const noexcept { return buffer_; }
  Bytes take() noexcept { return std::move(buffer_); }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Sequential decoder over a borrowed buffer.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  std::uint64_t varint();
  double f64();
  /// Bulk f64: fills `out`, equivalent to one f64() per element.
  void f64_array(std::span<double> out);
  std::string string();
  Bytes bytes();

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool done() const noexcept { return pos_ == data_.size(); }

  /// Throws DecodeError unless the whole buffer was consumed.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Hex rendering for diagnostics and token identifiers.
std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace dls::codec
