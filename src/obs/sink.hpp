// The global trace sink: where every finished span ends up.
//
// Producers append to a thread-local buffer (guarded by a per-thread
// mutex that is only ever contended by a drain); full buffers are sealed
// into chunks and pushed onto a lock-free Treiber stack shared by all
// threads, so steady-state emission never takes a global lock. drain()
// collects the chunk stack with one atomic exchange, then steals each
// registered thread's residual buffer.
//
// Determinism: events carry a per-thread sequence number and the sink
// assigns stable small thread indices in registration order, so a
// single-threaded run drains an identical event list every time (with
// the logical clock installed, timestamps included).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dls::obs {

/// Which Chrome-trace "process" lane an event renders in.
enum class Track : std::uint8_t {
  kRuntime = 0,     ///< real threads doing real work (solver, protocol, pool)
  kSimulation = 1,  ///< simulated Phase III activity (sim::Trace bridge)
};

/// One completed span. `name` must point at a string literal (every
/// emitter uses compile-time names); `args` is an optional JSON object
/// fragment, e.g. R"({"m":3})".
struct SpanEvent {
  const char* name = "";
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint64_t seq = 0;     ///< per-thread emission index
  std::uint32_t thread = 0;  ///< sink-assigned stable thread index
  std::uint32_t depth = 0;   ///< nesting depth at emission (0 = top level)
  Track track = Track::kRuntime;
  std::string args;
};

class TraceSink {
 public:
  /// The process-wide sink every DLS_SPAN writes to.
  static TraceSink& global();

  TraceSink();
  ~TraceSink();
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Master runtime switch for *all* instrumentation (spans and
  /// metrics). Off by default so instrumented release builds stay at
  /// one relaxed load per site.
  void set_active(bool active) noexcept {
    active_.store(active, std::memory_order_relaxed);
  }
  bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Appends a finished span from the calling thread. Thread-safe.
  void record(SpanEvent event);

  /// Collects and clears everything recorded so far, ordered by
  /// (track, thread, seq). Callers must ensure no other thread is
  /// emitting concurrently if they need a *complete* drain (the usual
  /// quiescent points — after a parallel_for barrier, after a protocol
  /// run — provide the necessary happens-before edges).
  std::vector<SpanEvent> drain();

  /// drain() with the result thrown away.
  void clear() { static_cast<void>(drain()); }

 private:
  struct Chunk {
    std::vector<SpanEvent> events;
    Chunk* next = nullptr;
  };

  /// One producer thread's buffer. The mutex is uncontended except when
  /// a drain steals the residual.
  struct ThreadBuffer {
    std::mutex mutex;
    std::vector<SpanEvent> events;
    std::uint32_t index = 0;
    std::uint64_t next_seq = 0;
  };

  ThreadBuffer& local_buffer();
  void push_chunk(std::vector<SpanEvent> events);

  /// Unique per instance; lets the thread-local buffer cache distinguish
  /// sinks even if a destroyed sink's address is reused.
  const std::uint64_t id_;

  std::atomic<bool> active_{false};
  std::atomic<Chunk*> chunks_{nullptr};

  std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::uint32_t next_thread_index_ = 0;
};

/// True when instrumentation should fire right now: compiled in (caller
/// checks the level) and runtime-enabled on the global sink.
inline bool active() noexcept { return TraceSink::global().active(); }

/// Flips the global master switch.
void set_active(bool active) noexcept;

}  // namespace dls::obs
