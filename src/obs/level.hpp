// Compile-time observability level.
//
//   DLS_OBS_LEVEL=0  every DLS_SPAN / metric helper compiles to nothing;
//                    the binary carries no instrumentation at all.
//   DLS_OBS_LEVEL=1  coarse spans and the metric registry: per-solve,
//                    per-phase, per-dispatch instrumentation.
//   DLS_OBS_LEVEL=2  adds detail spans (per-reduction-step, per-payment
//                    evaluation, per-pool-chunk).
//
// Orthogonally to the compile-time level, instrumentation is inert at
// runtime until obs::set_active(true): a disabled site costs one relaxed
// atomic load, so default builds keep the level compiled in without
// perturbing benchmarks.
#pragma once

#ifndef DLS_OBS_LEVEL
#ifdef NDEBUG
#define DLS_OBS_LEVEL 1
#else
#define DLS_OBS_LEVEL 2
#endif
#endif

#if DLS_OBS_LEVEL < 0 || DLS_OBS_LEVEL > 2
#error "DLS_OBS_LEVEL must be 0, 1 or 2"
#endif

#define DLS_OBS_CONCAT_IMPL(a, b) a##b
#define DLS_OBS_CONCAT(a, b) DLS_OBS_CONCAT_IMPL(a, b)

namespace dls::obs {

/// True when instrumentation gated at `level` is compiled in. Use with
/// `if constexpr` so the disabled branch costs nothing.
constexpr bool compiled(int level) noexcept { return DLS_OBS_LEVEL >= level; }

}  // namespace dls::obs
