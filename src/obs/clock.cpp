#include "obs/clock.hpp"

#include <atomic>
#include <chrono>

namespace dls::obs {

namespace {

std::uint64_t steady_now() noexcept {
  // Anchor at the first call so timestamps are small, positive offsets
  // into the run rather than epoch-sized numbers.
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - anchor)
          .count());
}

std::atomic<std::uint64_t> g_logical_tick{0};

std::uint64_t logical_now() noexcept {
  return g_logical_tick.fetch_add(1, std::memory_order_relaxed);
}

std::atomic<ClockFn> g_clock{&steady_now};

}  // namespace

std::uint64_t now_ns() noexcept {
  return g_clock.load(std::memory_order_relaxed)();
}

void use_steady_clock() noexcept {
  g_clock.store(&steady_now, std::memory_order_relaxed);
}

void use_logical_clock() noexcept {
  g_logical_tick.store(0, std::memory_order_relaxed);
  g_clock.store(&logical_now, std::memory_order_relaxed);
}

void install_clock(ClockFn fn) noexcept {
  g_clock.store(fn, std::memory_order_relaxed);
}

}  // namespace dls::obs
