#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace dls::obs {

using internal::append_json_string;
using internal::json_double;

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  DLS_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()),
              "histogram bucket edges must be ascending");
}

void Histogram::observe(double x) noexcept {
  if (!active()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());  // overflow = last
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(x, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double histogram_quantile(const HistogramSnapshot& h, double q) {
  DLS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must lie in [0, 1]");
  if (h.count == 0 || h.counts.empty()) return 0.0;
  // Rank of the q-th observation, 1-based, clamped into [1, count].
  const auto rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(h.count))));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    const std::uint64_t in_bucket = h.counts[i];
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    const double lo = i == 0 ? 0.0 : h.bounds[i - 1];
    if (i >= h.bounds.size()) return lo;  // overflow bucket
    const double hi = h.bounds[i];
    const double fraction =
        in_bucket == 0
            ? 1.0
            : static_cast<double>(rank - cumulative) /
                  static_cast<double>(in_bucket);
    return lo + (hi - lo) * fraction;
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  const std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::vector<double>(
                          bounds.begin(), bounds.end())))
             .first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.bounds = histogram->bounds();
    h.counts = histogram->bucket_counts();
    h.count = histogram->count();
    h.sum = histogram->sum();
    snap.histograms.emplace(name, std::move(h));
  }
  return snap;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock(mutex_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, histogram] : histograms_) histogram->reset();
}

std::string MetricsSnapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ':';
    out += json_double(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, name);
    out += ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i != 0) out += ',';
      out += json_double(h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "],\"count\":" + std::to_string(h.count);
    out += ",\"sum\":" + json_double(h.sum);
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace dls::obs
