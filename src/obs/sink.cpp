#include "obs/sink.hpp"

#include <algorithm>
#include <utility>

namespace dls::obs {

namespace {

/// Events buffered per thread before a chunk is sealed and pushed onto
/// the lock-free stack.
constexpr std::size_t kFlushThreshold = 256;

/// Unique ids distinguish sink instances even across address reuse, so
/// the thread-local slot cache can never match a stale sink.
std::atomic<std::uint64_t> g_next_sink_id{1};

}  // namespace

TraceSink::TraceSink()
    : id_(g_next_sink_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

TraceSink::~TraceSink() {
  Chunk* chunk = chunks_.exchange(nullptr, std::memory_order_acquire);
  while (chunk != nullptr) {
    Chunk* next = chunk->next;
    delete chunk;
    chunk = next;
  }
}

TraceSink::ThreadBuffer& TraceSink::local_buffer() {
  struct Slot {
    std::uint64_t owner_id = 0;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  // One entry per sink this thread has emitted into; almost always just
  // the global sink, so the linear scan is one comparison.
  thread_local std::vector<Slot> slots;
  for (Slot& slot : slots) {
    if (slot.owner_id == id_) return *slot.buffer;
  }

  auto buffer = std::make_shared<ThreadBuffer>();
  {
    const std::scoped_lock lock(registry_mutex_);
    buffer->index = next_thread_index_++;
    buffers_.push_back(buffer);
  }
  slots.push_back(Slot{id_, buffer});
  return *slots.back().buffer;
}

void TraceSink::record(SpanEvent event) {
  ThreadBuffer& buffer = local_buffer();
  std::vector<SpanEvent> sealed;
  {
    const std::scoped_lock lock(buffer.mutex);
    // Runtime spans get the emitting thread's lane; simulation-track
    // events keep the caller's lane (the simulated processor index).
    if (event.track == Track::kRuntime) event.thread = buffer.index;
    event.seq = buffer.next_seq++;
    buffer.events.push_back(std::move(event));
    if (buffer.events.size() >= kFlushThreshold) {
      sealed = std::move(buffer.events);
      buffer.events = {};
      buffer.events.reserve(kFlushThreshold);
    }
  }
  if (!sealed.empty()) push_chunk(std::move(sealed));
}

void TraceSink::push_chunk(std::vector<SpanEvent> events) {
  auto* chunk = new Chunk{std::move(events), nullptr};
  Chunk* head = chunks_.load(std::memory_order_relaxed);
  do {
    chunk->next = head;
  } while (!chunks_.compare_exchange_weak(head, chunk,
                                          std::memory_order_release,
                                          std::memory_order_relaxed));
}

std::vector<SpanEvent> TraceSink::drain() {
  std::vector<SpanEvent> out;

  // The sealed chunks: one atomic exchange detaches the whole stack.
  Chunk* chunk = chunks_.exchange(nullptr, std::memory_order_acquire);
  while (chunk != nullptr) {
    out.insert(out.end(), std::make_move_iterator(chunk->events.begin()),
               std::make_move_iterator(chunk->events.end()));
    Chunk* next = chunk->next;
    delete chunk;
    chunk = next;
  }

  // Residuals still sitting in per-thread buffers.
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    const std::scoped_lock lock(registry_mutex_);
    buffers = buffers_;
  }
  for (const auto& buffer : buffers) {
    const std::scoped_lock lock(buffer->mutex);
    out.insert(out.end(), std::make_move_iterator(buffer->events.begin()),
               std::make_move_iterator(buffer->events.end()));
    buffer->events.clear();
    // Each drain starts a fresh sequence space, so two identical runs
    // separated by a drain produce identical event lists.
    buffer->next_seq = 0;
  }

  // Canonical order: the chunk stack is LIFO and threads interleave, so
  // re-sort by (track, thread, seq) — a total order, since seq is
  // unique per thread.
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.track != b.track) return a.track < b.track;
              if (a.thread != b.thread) return a.thread < b.thread;
              return a.seq < b.seq;
            });
  return out;
}

void set_active(bool active) noexcept {
  TraceSink::global().set_active(active);
}

}  // namespace dls::obs
