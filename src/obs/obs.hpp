// Umbrella header for instrumented layers: spans, metrics, clock and
// the runtime switch in one include. Exporters (trace_export.hpp) are
// separate — only trace consumers need them.
#pragma once

#include "obs/clock.hpp"
#include "obs/level.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/span.hpp"
