// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Instruments cache the handle once and update lock-free:
//
//   static obs::Counter& steals =
//       obs::MetricsRegistry::global().counter("exec.steals");
//   steals.add();
//
// Updates are relaxed atomics gated on obs::active(), so a disabled
// process pays one load per site. snapshot() captures every metric into
// plain structs (deterministically ordered by name) and renders to JSON
// for dashboards or trace sidecars.
//
// Naming scheme (see docs/OBSERVABILITY.md): dotted lowercase paths,
// `<layer>.<what>` — e.g. solver.solves, mechanism.bonus_paid,
// exec.steals, protocol.msgs_by_type.bid, recovery.resolves.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/level.hpp"
#include "obs/sink.hpp"

namespace dls::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (!active()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept {
    if (!active()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  /// Tracks the running maximum (queue depths, high-water marks).
  void max(double v) noexcept {
    if (!active()) return;
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bucket edges;
/// one implicit overflow bucket catches everything above the last edge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double x) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Quantile estimate from bucket counts, q in [0, 1]. Interpolates
/// linearly inside the bucket holding the q-th observation (the first
/// bucket's lower edge is 0, the overflow bucket collapses to its lower
/// edge — a known underestimate there). Returns 0 for an empty
/// histogram. Resolution is bounded by the bucket edges; perf gates
/// that consume these values must use matching edges on both sides.
double histogram_quantile(const HistogramSnapshot& h, double q);

/// Point-in-time copy of every registered metric, ordered by name.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Deterministic JSON rendering (sorted keys, %.17g doubles).
  std::string to_json() const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global();

  /// Finds or creates. References stay valid for the registry's
  /// lifetime, so call sites may cache them in static locals.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` (ascending upper edges) are fixed by the first caller;
  /// later callers get the existing histogram regardless of bounds.
  Histogram& histogram(std::string_view name, std::span<const double> bounds);
  Histogram& histogram(std::string_view name,
                       std::initializer_list<double> bounds) {
    return histogram(name,
                     std::span<const double>(bounds.begin(), bounds.size()));
  }

  MetricsSnapshot snapshot() const;

  /// Zeroes every value; registrations (and cached references) survive.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace dls::obs

// One-line instrumentation helpers. The registry lookup happens once
// (static local); the update is a relaxed atomic gated on obs::active().
// All of them compile to nothing at DLS_OBS_LEVEL=0.
#if DLS_OBS_LEVEL >= 1
#define DLS_COUNT(name, ...)                                               \
  do {                                                                     \
    static ::dls::obs::Counter& DLS_OBS_CONCAT(dls_obs_counter_,           \
                                               __LINE__) =                 \
        ::dls::obs::MetricsRegistry::global().counter(name);               \
    DLS_OBS_CONCAT(dls_obs_counter_, __LINE__).add(__VA_ARGS__);           \
  } while (false)
#define DLS_GAUGE_SET(name, value)                                         \
  do {                                                                     \
    static ::dls::obs::Gauge& DLS_OBS_CONCAT(dls_obs_gauge_, __LINE__) =   \
        ::dls::obs::MetricsRegistry::global().gauge(name);                 \
    DLS_OBS_CONCAT(dls_obs_gauge_, __LINE__).set(value);                   \
  } while (false)
#define DLS_GAUGE_MAX(name, value)                                         \
  do {                                                                     \
    static ::dls::obs::Gauge& DLS_OBS_CONCAT(dls_obs_gauge_, __LINE__) =   \
        ::dls::obs::MetricsRegistry::global().gauge(name);                 \
    DLS_OBS_CONCAT(dls_obs_gauge_, __LINE__).max(value);                   \
  } while (false)
/// DLS_OBSERVE("name", value, {b0, b1, ...}) — bounds fix the histogram
/// on first use.
#define DLS_OBSERVE(name, value, ...)                                     \
  do {                                                                    \
    static ::dls::obs::Histogram& DLS_OBS_CONCAT(dls_obs_hist_,           \
                                                 __LINE__) =              \
        ::dls::obs::MetricsRegistry::global().histogram(                  \
            name, std::initializer_list<double> __VA_ARGS__);             \
    DLS_OBS_CONCAT(dls_obs_hist_, __LINE__).observe(value);               \
  } while (false)
#else
#define DLS_COUNT(...) static_cast<void>(0)
#define DLS_GAUGE_SET(...) static_cast<void>(0)
#define DLS_GAUGE_MAX(...) static_cast<void>(0)
#define DLS_OBSERVE(...) static_cast<void>(0)
#endif
