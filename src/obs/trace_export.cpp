#include "obs/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>

#include "common/table.hpp"
#include "obs/json.hpp"

namespace dls::obs {

using internal::json_micros;
using internal::json_string;

namespace {

const char* track_name(Track track) {
  switch (track) {
    case Track::kRuntime: return "runtime";
    case Track::kSimulation: return "simulation";
  }
  return "unknown";
}

double to_micros(std::uint64_t ns) {
  return static_cast<double>(ns) / 1000.0;
}

/// One trace-event line for a track's process-name metadata.
std::string chrome_track_metadata(Track track) {
  return "{\"ph\":\"M\",\"pid\":" +
         std::to_string(static_cast<unsigned>(track)) +
         ",\"name\":\"process_name\",\"args\":{\"name\":" +
         json_string(track_name(track)) + "}}";
}

/// One complete ("X" phase) trace-event line; shared by the batch and
/// streaming writers so both emit byte-identical events.
std::string chrome_event_line(const SpanEvent& e) {
  std::string line = "{\"name\":" + json_string(e.name) +
                     ",\"ph\":\"X\",\"pid\":" +
                     std::to_string(static_cast<unsigned>(e.track)) +
                     ",\"tid\":" + std::to_string(e.thread) +
                     ",\"ts\":" + json_micros(to_micros(e.start_ns)) +
                     ",\"dur\":" +
                     json_micros(to_micros(e.end_ns - e.start_ns));
  if (!e.args.empty()) line += ",\"args\":" + e.args;
  line += '}';
  return line;
}

}  // namespace

void write_chrome_trace(std::ostream& out, std::span<const SpanEvent> events,
                        const MetricsSnapshot* metrics) {
  out << "{\"displayTimeUnit\":\"ms\"";
  if (metrics != nullptr) {
    out << ",\"otherData\":{\"metrics\":" << metrics->to_json() << "}";
  }
  out << ",\"traceEvents\":[\n";

  bool first = true;
  const auto emit = [&](const std::string& line) {
    if (!first) out << ",\n";
    first = false;
    out << line;
  };

  // Process-name metadata for every track that actually has events.
  std::set<Track> tracks;
  for (const SpanEvent& e : events) tracks.insert(e.track);
  for (const Track track : tracks) emit(chrome_track_metadata(track));

  for (const SpanEvent& e : events) emit(chrome_event_line(e));
  out << "\n]}\n";
}

StreamingChromeTrace::StreamingChromeTrace(std::ostream& out) : out_(out) {
  out_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
}

StreamingChromeTrace::~StreamingChromeTrace() {
  if (!finished_) finish(nullptr);
}

void StreamingChromeTrace::emit(const std::string& line) {
  if (!first_) out_ << ",\n";
  first_ = false;
  out_ << line;
}

void StreamingChromeTrace::append(std::span<const SpanEvent> events) {
  for (const SpanEvent& e : events) {
    if (seen_tracks_.insert(e.track).second) {
      emit(chrome_track_metadata(e.track));
    }
    emit(chrome_event_line(e));
  }
}

std::size_t StreamingChromeTrace::drain_global() {
  const std::vector<SpanEvent> events = TraceSink::global().drain();
  append(events);
  return events.size();
}

void StreamingChromeTrace::finish(const MetricsSnapshot* metrics) {
  if (finished_) return;
  finished_ = true;
  out_ << "\n]";
  if (metrics != nullptr) {
    out_ << ",\"otherData\":{\"metrics\":" << metrics->to_json() << "}";
  }
  out_ << "}\n";
}

void write_jsonl(std::ostream& out, std::span<const SpanEvent> events) {
  for (const SpanEvent& e : events) {
    out << "{\"name\":" << json_string(e.name)
        << ",\"track\":" << json_string(track_name(e.track))
        << ",\"thread\":" << e.thread << ",\"depth\":" << e.depth
        << ",\"seq\":" << e.seq << ",\"start_ns\":" << e.start_ns
        << ",\"end_ns\":" << e.end_ns;
    if (!e.args.empty()) out << ",\"args\":" << e.args;
    out << "}\n";
  }
}

void dump_summary(std::ostream& out, std::span<const SpanEvent> events,
                  const MetricsSnapshot& metrics) {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t max_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const SpanEvent& e : events) {
    Agg& agg = by_name[e.name];
    const std::uint64_t dur = e.end_ns - e.start_ns;
    ++agg.count;
    agg.total_ns += dur;
    agg.max_ns = std::max(agg.max_ns, dur);
  }

  out << "spans (" << events.size() << " events):\n";
  common::Table spans({{"span", common::Align::kLeft},
                       {"count"},
                       {"total us"},
                       {"mean us"},
                       {"max us"}});
  for (const auto& [name, agg] : by_name) {
    spans.add_row({name, agg.count, common::Cell(to_micros(agg.total_ns), 3),
                   common::Cell(to_micros(agg.total_ns) /
                                    static_cast<double>(agg.count),
                                3),
                   common::Cell(to_micros(agg.max_ns), 3)});
  }
  spans.print(out);

  out << "\ncounters:\n";
  common::Table counters({{"counter", common::Align::kLeft}, {"value"}});
  for (const auto& [name, value] : metrics.counters) {
    counters.add_row({name, common::Cell(static_cast<std::size_t>(value))});
  }
  counters.print(out);

  if (!metrics.gauges.empty()) {
    out << "\ngauges:\n";
    common::Table gauges({{"gauge", common::Align::kLeft}, {"value"}});
    for (const auto& [name, value] : metrics.gauges) {
      gauges.add_row({name, common::Cell(value, 6)});
    }
    gauges.print(out);
  }

  if (!metrics.histograms.empty()) {
    out << "\nhistograms:\n";
    common::Table histograms({{"histogram", common::Align::kLeft},
                              {"count"},
                              {"sum"},
                              {"mean"}});
    for (const auto& [name, h] : metrics.histograms) {
      const double mean =
          h.count == 0 ? 0.0 : h.sum / static_cast<double>(h.count);
      histograms.add_row({name, common::Cell(static_cast<std::size_t>(h.count)),
                          common::Cell(h.sum, 6), common::Cell(mean, 6)});
    }
    histograms.print(out);
  }
}

bool export_chrome_trace_file(const std::string& path) {
  const std::vector<SpanEvent> events = TraceSink::global().drain();
  const MetricsSnapshot metrics = MetricsRegistry::global().snapshot();
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out, events, &metrics);
  return static_cast<bool>(out);
}

}  // namespace dls::obs
