// RAII tracing spans and the DLS_SPAN macros.
//
//   void phase1(...) {
//     DLS_SPAN("protocol.phase1");           // coarse (level >= 1)
//     ...
//   }
//   for (...) {
//     DLS_SPAN_DETAIL("solve.reduce.step");  // detail (level >= 2)
//   }
//
// A span stamps start on construction and records a SpanEvent into the
// global sink on destruction. Construction checks obs::active() first:
// when tracing is off the whole span is one relaxed atomic load, and at
// DLS_OBS_LEVEL=0 the macros expand to nothing at all.
//
// Nesting is tracked per thread; the recorded depth plus the timestamps
// give Chrome/Perfetto correctly nested flame graphs.
#pragma once

#include <string>
#include <utility>

#include "obs/clock.hpp"
#include "obs/level.hpp"
#include "obs/sink.hpp"

namespace dls::obs {

namespace internal {
/// Current span nesting depth of this thread.
inline thread_local std::uint32_t t_span_depth = 0;
}  // namespace internal

class Span {
 public:
  /// `name` must be a string literal (it is stored by pointer).
  explicit Span(const char* name) : Span(name, std::string()) {}

  /// `args` is a JSON object fragment, e.g. R"({"m":3})"; it is only
  /// worth building when obs::active() — pass through note() for values
  /// that are expensive to format.
  Span(const char* name, std::string args) {
    if (!active()) return;
    live_ = true;
    name_ = name;
    args_ = std::move(args);
    depth_ = internal::t_span_depth++;
    start_ = now_ns();
  }

  ~Span() {
    if (!live_) return;
    const std::uint64_t end = now_ns();
    --internal::t_span_depth;
    TraceSink::global().record(SpanEvent{.name = name_,
                                         .start_ns = start_,
                                         .end_ns = end,
                                         .depth = depth_,
                                         .track = Track::kRuntime,
                                         .args = std::move(args_)});
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches (or replaces) the args payload after construction; no-op
  /// when the span is inert, so formatting can be guarded by live().
  void note(std::string args) {
    if (live_) args_ = std::move(args);
  }
  bool live() const noexcept { return live_; }

 private:
  bool live_ = false;
  const char* name_ = "";
  std::uint64_t start_ = 0;
  std::uint32_t depth_ = 0;
  std::string args_;
};

/// Records an already-timed span (bridges: simulated activity, replayed
/// logs). Timestamps are the caller's; track/lane are explicit. For
/// Track::kSimulation the `thread` is kept as the event's lane (e.g. the
/// simulated processor index); for Track::kRuntime the sink replaces it
/// with the emitting thread's lane.
inline void record_span(const char* name, std::uint64_t start_ns,
                        std::uint64_t end_ns, Track track,
                        std::uint32_t thread = 0, std::string args = {}) {
  if (!active()) return;
  TraceSink::global().record(SpanEvent{.name = name,
                                       .start_ns = start_ns,
                                       .end_ns = end_ns,
                                       .thread = thread,
                                       .track = track,
                                       .args = std::move(args)});
}

}  // namespace dls::obs

#if DLS_OBS_LEVEL >= 1
#define DLS_SPAN(name) \
  const ::dls::obs::Span DLS_OBS_CONCAT(dls_obs_span_, __LINE__)(name)
/// Args flavour: the args expression is only evaluated when collection
/// is active, so formatting costs nothing on the disabled path.
#define DLS_SPAN_ARGS(name, ...)                           \
  const ::dls::obs::Span DLS_OBS_CONCAT(dls_obs_span_,     \
                                        __LINE__)(         \
      name, ::dls::obs::active() ? std::string(__VA_ARGS__) \
                                 : std::string())
#else
#define DLS_SPAN(...) static_cast<void>(0)
#define DLS_SPAN_ARGS(...) static_cast<void>(0)
#endif

#if DLS_OBS_LEVEL >= 2
#define DLS_SPAN_DETAIL(name) \
  const ::dls::obs::Span DLS_OBS_CONCAT(dls_obs_span_, __LINE__)(name)
#else
#define DLS_SPAN_DETAIL(...) static_cast<void>(0)
#endif
