// Exporters for drained trace events and metric snapshots.
//
//   * write_chrome_trace — the Chrome trace-event JSON format; load the
//     file in chrome://tracing or https://ui.perfetto.dev. Runtime spans
//     render under pid 0 ("runtime", one tid per emitting thread) and
//     bridged simulation activity under pid 1 ("simulation", one tid per
//     simulated processor). Metric totals ride along in "otherData".
//   * write_jsonl — one flat JSON object per line, for grep/jq pipelines.
//   * dump_summary — a human table: per-span-name count/total/mean/max
//     plus every counter, gauge and histogram.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"

namespace dls::obs {

/// Events should come straight from TraceSink::drain() (canonically
/// ordered); `metrics` is optional.
void write_chrome_trace(std::ostream& out, std::span<const SpanEvent> events,
                        const MetricsSnapshot* metrics = nullptr);

void write_jsonl(std::ostream& out, std::span<const SpanEvent> events);

void dump_summary(std::ostream& out, std::span<const SpanEvent> events,
                  const MetricsSnapshot& metrics);

/// One-stop shutdown flush: drains the global sink, snapshots the global
/// metrics registry and writes a Chrome trace to `path`. Returns false
/// (leaving the drained state consumed) if the file cannot be opened.
bool export_chrome_trace_file(const std::string& path);

}  // namespace dls::obs
