// Exporters for drained trace events and metric snapshots.
//
//   * write_chrome_trace — the Chrome trace-event JSON format; load the
//     file in chrome://tracing or https://ui.perfetto.dev. Runtime spans
//     render under pid 0 ("runtime", one tid per emitting thread) and
//     bridged simulation activity under pid 1 ("simulation", one tid per
//     simulated processor). Metric totals ride along in "otherData".
//   * StreamingChromeTrace — the in-flight flavour: events are appended
//     to the stream in batches as they are drained, so a long soak run
//     never buffers its whole span history in memory before export.
//   * write_jsonl — one flat JSON object per line, for grep/jq pipelines.
//   * dump_summary — a human table: per-span-name count/total/mean/max
//     plus every counter, gauge and histogram.
#pragma once

#include <iosfwd>
#include <set>
#include <span>
#include <string>

#include "obs/metrics.hpp"
#include "obs/sink.hpp"

namespace dls::obs {

/// Events should come straight from TraceSink::drain() (canonically
/// ordered); `metrics` is optional.
void write_chrome_trace(std::ostream& out, std::span<const SpanEvent> events,
                        const MetricsSnapshot* metrics = nullptr);

/// Incremental Chrome-trace writer. Construction writes the JSON
/// preamble; append() emits each batch immediately (periodically drain
/// the sink and feed the batches here instead of accumulating them);
/// finish() closes the event array and attaches the metric snapshot as
/// "otherData". The destructor finishes without metrics if the caller
/// never did. Events within one batch should come from
/// TraceSink::drain() (canonically ordered); ordering across batches is
/// not required by the trace-event format.
class StreamingChromeTrace {
 public:
  explicit StreamingChromeTrace(std::ostream& out);
  ~StreamingChromeTrace();

  StreamingChromeTrace(const StreamingChromeTrace&) = delete;
  StreamingChromeTrace& operator=(const StreamingChromeTrace&) = delete;

  void append(std::span<const SpanEvent> events);

  /// Drains the global sink into the stream: the periodic flush a soak
  /// loop calls so spans never pile up. Returns the batch size.
  std::size_t drain_global();

  void finish(const MetricsSnapshot* metrics = nullptr);

 private:
  void emit(const std::string& line);

  std::ostream& out_;
  std::set<Track> seen_tracks_;
  bool first_ = true;
  bool finished_ = false;
};

void write_jsonl(std::ostream& out, std::span<const SpanEvent> events);

void dump_summary(std::ostream& out, std::span<const SpanEvent> events,
                  const MetricsSnapshot& metrics);

/// One-stop shutdown flush: drains the global sink, snapshots the global
/// metrics registry and writes a Chrome trace to `path`. Returns false
/// (leaving the drained state consumed) if the file cannot be opened.
bool export_chrome_trace_file(const std::string& path);

}  // namespace dls::obs
