// Injectable trace clock.
//
// Spans are stamped by a process-global clock function. The default is
// the steady clock (nanoseconds since the first call), which is what a
// production trace wants. Tests install the *logical* clock — a plain
// monotonically increasing counter — so two identical runs produce
// bit-identical timestamps and trace files can be compared or checked
// in as goldens.
#pragma once

#include <cstdint>

namespace dls::obs {

/// Signature of a trace clock: returns a monotonically non-decreasing
/// nanosecond (or tick) count.
using ClockFn = std::uint64_t (*)();

/// Current trace time from whichever clock is installed.
std::uint64_t now_ns() noexcept;

/// Installs the wall (steady) clock — the default.
void use_steady_clock() noexcept;

/// Installs the deterministic logical clock and resets it to zero.
/// Each now_ns() call returns the next integer tick; with a fixed call
/// sequence the timestamps are reproducible bit-for-bit.
void use_logical_clock() noexcept;

/// Installs an arbitrary clock (for tests that need custom timelines).
void install_clock(ClockFn fn) noexcept;

}  // namespace dls::obs
