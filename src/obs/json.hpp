// Internal JSON formatting helpers shared by the metrics and trace
// exporters. Deliberately tiny: the exporters only ever *write* JSON,
// and determinism matters more than generality (goldens are diffed
// byte-for-byte).
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace dls::obs::internal {

/// Shortest round-trippable rendering; stable across platforms for the
/// value ranges traces produce.
inline std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Fixed-precision microsecond timestamps for Chrome traces.
inline std::string json_micros(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

inline void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

inline std::string json_string(std::string_view s) {
  std::string out;
  append_json_string(out, s);
  return out;
}

}  // namespace dls::obs::internal
