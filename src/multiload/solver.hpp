// MultiLoadSolver: pipelined multi-installment dispatch of concurrent
// divisible loads over one linear chain.
//
// Every installment reuses the chain's Algorithm-1 fractions (scaled by
// installment size), so intra-installment distribution is optimal by
// Theorem 2.1 and a single 1-unit load reproduces solve_linear_boundary
// bit for bit. Across installments the solver pipelines the one-port
// links: installment t+1's data follows t's down each link as soon as
// the link frees, overlapping t's computation. The Comments-paper
// corrections (store-and-forward causality, one-port non-overlap, size
// conservation) are replayed per installment by
// check::check_multiload_schedule at DLS_CHECK_LEVEL >= 1.
#pragma once

#include <cstddef>
#include <vector>

#include "multiload/types.hpp"
#include "net/networks.hpp"

namespace dls::multiload {

struct MultiLoadConfig {
  DispatchPolicy policy = DispatchPolicy::kFifo;
  /// Chunks each load is cut into (>= 1). Sizes are size/I for the
  /// first I-1 chunks and the exact remainder for the last, so the
  /// pieces sum to the load size bit-exactly.
  std::size_t installments_per_load = 1;
  /// Unit time of the one-port ingress link staging a load's data from
  /// the admission queue into the root before distribution. 0 (default)
  /// means loads are resident at the root from their release — exactly
  /// the single-load model, where MultiLoadSolver is bit-identical to
  /// solve_linear_boundary for one load. With ingress_z > 0, serialized
  /// rounds idle the chain while each load stages; pipelined dispatch
  /// stages load k+1 during load k's computation — the multi-load
  /// makespan win measured by bench/bm_multiload_*.
  double ingress_z = 0.0;
};

/// Solves the chain once at construction, then schedules any sequence
/// of loads over it without re-running Algorithm 1. Reusable: solve()
/// may be called repeatedly (fresh link/processor timelines each call).
class MultiLoadSolver {
 public:
  explicit MultiLoadSolver(const net::LinearNetwork& network);

  /// Pipelined multi-installment schedule for `loads` under `config`.
  /// Loads may carry release times and deadlines; a deadline is
  /// advisory (reported via LoadOutcome::deadline_met), it does not
  /// change the dispatch order.
  MultiLoadSchedule solve(const std::vector<LoadSpec>& loads,
                          const MultiLoadConfig& config = {});

  /// The serialized baseline alone (load k+1 starts after load k
  /// completes, FIFO order): what today's serve layer produces. No
  /// ingress cost; equals serialized_makespan_with_ingress(loads, 0).
  double serialized_makespan(const std::vector<LoadSpec>& loads) const;

  /// Serialized strict rounds including per-round ingress staging: each
  /// load is staged into the root (size · ingress_z) and then executed,
  /// with the next round starting only at completion. The chain idles
  /// during every stage — the gap pipelined dispatch closes.
  double serialized_makespan_with_ingress(const std::vector<LoadSpec>& loads,
                                          double ingress_z) const;

  const dlt::LinearSolution& chain() const noexcept { return chain_; }
  const net::LinearNetwork& network() const noexcept { return network_; }

  /// Unit arrival offset A_i: time after an installment's comm_start at
  /// which P_i holds its full share of a size-1 installment
  /// (store-and-forward over links 1..i). A_0 = 0.
  double unit_arrival(std::size_t i) const noexcept {
    return unit_arrival_[i];
  }

 private:
  net::LinearNetwork network_;
  dlt::LinearSolution chain_;
  std::vector<double> unit_arrival_;   ///< A_i per processor
  std::vector<double> unit_compute_;   ///< alpha_i * w_i per processor
  // Scratch timelines, reset per solve().
  std::vector<double> link_free_;  ///< link j (1-based j-1) busy-until
  std::vector<double> proc_free_;  ///< processor i busy-until
};

/// Dispatch order for `loads` under `config`: indices into `loads`
/// paired with installment numbers, in the exact order the root pushes
/// them onto link 1. Exposed so the checker and the sim replay the same
/// order the solver used.
std::vector<std::pair<std::size_t, std::size_t>> dispatch_order(
    const std::vector<LoadSpec>& loads, const MultiLoadConfig& config);

/// Exact installment chunk size: chunk `index` (0-based) of `total`
/// split into `count` pieces — total/count for all but the last, which
/// takes the exact remainder so the sum reproduces `total` bitwise.
double installment_size(double total, std::size_t count, std::size_t index);

}  // namespace dls::multiload
