#include "multiload/payments.hpp"

#include <string>
#include <utility>

#include "common/error.hpp"

namespace dls::multiload {

namespace {

/// size · (x − flat) + flat: the linear part of a unit quantity scaled
/// to the load, with the flat solution-bonus part carried unscaled. At
/// size == 1 this is bit-identical to x (1·(x−f)+f == x only up to
/// rounding in general, so the scaler special-cases it).
double scale_with_flat(double unit_value, double flat, double size) {
  if (size == 1.0) return unit_value;
  return size * (unit_value - flat) + flat;
}

void fill_load(const core::DlsLblResult& unit, const LoadSpec& spec,
               LoadPayments& out) {
  const std::size_t n = unit.processors.size();
  out.load_id = spec.id;
  out.size = spec.size;
  out.payment.assign(n, 0.0);
  out.compensation.assign(n, 0.0);
  out.bonus.assign(n, 0.0);
  out.solution_bonus.assign(n, 0.0);
  out.total_payment = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    const core::PaymentBreakdown& money = unit.processors[j].money;
    out.compensation[j] = spec.size * money.compensation;
    out.bonus[j] = spec.size * money.bonus;
    out.solution_bonus[j] = money.solution_bonus;
    if (j > 0) {
      out.payment[j] =
          scale_with_flat(money.payment, money.solution_bonus, spec.size);
      out.total_payment += out.payment[j];
    }
  }
  out.mechanism_cost = out.total_payment + out.compensation[0];
}

}  // namespace

MultiLoadAssessment assess_loads(const net::LinearNetwork& bid_network,
                                 std::span<const double> actual_rates,
                                 const std::vector<LoadSpec>& loads,
                                 const core::MechanismConfig& config) {
  core::AssessWorkspace ws;
  return assess_loads(bid_network, actual_rates, loads, config, ws);
}

MultiLoadAssessment assess_loads(const net::LinearNetwork& bid_network,
                                 std::span<const double> actual_rates,
                                 const std::vector<LoadSpec>& loads,
                                 const core::MechanismConfig& config,
                                 core::AssessWorkspace& ws) {
  DLS_REQUIRE(!loads.empty(), "assess_loads needs at least one load");
  MultiLoadAssessment result;
  result.unit = core::assess_compliant(bid_network, actual_rates, config, ws);
  result.loads.resize(loads.size());
  for (std::size_t k = 0; k < loads.size(); ++k) {
    DLS_REQUIRE(loads[k].size > 0.0, "load sizes must be positive");
    fill_load(result.unit, loads[k], result.loads[k]);
    result.total_payment += result.loads[k].total_payment;
    result.mechanism_cost += result.loads[k].mechanism_cost;
  }
  return result;
}

void post_to_ledger(payment::Ledger& ledger,
                    const MultiLoadAssessment& assessment,
                    payment::AccountId first_account) {
  const std::size_t n = assessment.unit.processors.size();
  for (std::size_t j = 0; j < n; ++j) {
    const payment::AccountId account =
        first_account + static_cast<payment::AccountId>(j);
    if (!ledger.has_account(account)) ledger.open_account(account);
  }
  for (const LoadPayments& load : assessment.loads) {
    const std::string memo = "load " + std::to_string(load.load_id);
    for (std::size_t j = 0; j < n; ++j) {
      const payment::AccountId account =
          first_account + static_cast<payment::AccountId>(j);
      // The root is reimbursed its compute cost; strategic processors
      // are paid Q_j = C_j + B_j (+ S). Zero-amount legs are skipped so
      // the statement stays readable.
      if (load.compensation[j] > 0.0) {
        ledger.post({payment::kTreasury, account,
                     payment::TransferKind::kCompensation,
                     load.compensation[j], memo});
      }
      if (j > 0 && load.bonus[j] > 0.0) {
        ledger.post({payment::kTreasury, account,
                     payment::TransferKind::kBonus, load.bonus[j], memo});
      }
      if (j > 0 && load.solution_bonus[j] > 0.0) {
        ledger.post({payment::kTreasury, account,
                     payment::TransferKind::kSolutionBonus,
                     load.solution_bonus[j], memo});
      }
    }
  }
}

MultiLoadMechanism::MultiLoadMechanism(const net::LinearNetwork& bid_base,
                                       std::span<const double> actual_rates,
                                       const core::MechanismConfig& config)
    : mechanism_(bid_base, actual_rates, config), config_(config) {}

double MultiLoadMechanism::scale(double unit_utility, double size) const {
  const double flat =
      config_.solution_bonus_enabled ? config_.solution_bonus : 0.0;
  if (size == 1.0) return unit_utility;
  return size * (unit_utility - flat) + flat;
}

double MultiLoadMechanism::utility(std::size_t index, double bid,
                                   double actual_rate, double size) {
  DLS_REQUIRE(size > 0.0, "load sizes must be positive");
  return scale(mechanism_.utility(index, bid, actual_rate), size);
}

void MultiLoadMechanism::utility_curve(std::size_t index,
                                       std::span<const double> bids,
                                       double size,
                                       std::span<double> utilities) {
  DLS_REQUIRE(size > 0.0, "load sizes must be positive");
  DLS_REQUIRE(bids.size() == utilities.size(),
              "utility_curve output span must match the bid count");
  mechanism_.utility_curve(index, bids, utilities);
  for (double& u : utilities) u = scale(u, size);
}

}  // namespace dls::multiload
