// Multi-load scheduling on one chain: the problem and schedule types.
//
// The repo's single-load pipeline answers one divisible load per round;
// Gallet–Robert–Vivien ("Scheduling multiple divisible loads on a
// linear processor network", PAPERS.md) treat the same topology with
// several loads in flight, distributed in installments over pipelined
// one-port links. This module makes installments first-class objects:
// every chunk of every load carries its own size, dispatch time and a
// full per-processor timeline, so the check layer can replay the
// schedule recurrence installment by installment (the Comments paper's
// corrections to the original multi-load strategies, stated as
// auditable invariants — see check/multiload_invariants.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dlt/linear.hpp"

namespace dls::multiload {

/// One divisible load queued for the chain.
struct LoadSpec {
  std::uint64_t id = 0;   ///< caller-chosen tag, echoed in results
  double size = 1.0;      ///< load units (the single-load problem is 1)
  double release = 0.0;   ///< earliest instant distribution may start
  double deadline = 0.0;  ///< completion target in schedule time; 0 = none
};

/// How queued loads are cut into installments and ordered on the wire.
enum class DispatchPolicy : std::uint8_t {
  /// Loads in release order, every installment of a load before the
  /// next load's first. With one installment per load this is the
  /// serialized order — but still pipelined: load k+1's distribution
  /// overlaps load k's computation.
  kFifo = 0,
  /// Round-robin across released loads: installment r of every active
  /// load before installment r+1 of any. Smaller chunks start every
  /// load earlier at the cost of more pipeline turnarounds.
  kInterleaved = 1,
};

/// One installment: a chunk of one load pushed down the chain as a
/// scaled Algorithm-1 distribution.
struct Installment {
  std::size_t load = 0;          ///< index into the input load vector
  std::size_t index_in_load = 0; ///< 0-based installment number
  double size = 0.0;             ///< load units carried
  /// Ingress staging: the chunk's data travels from the admission queue
  /// into the root over a one-port ingress link (MultiLoadConfig::
  /// ingress_z per load unit) before the chain may distribute it. With
  /// ingress_z == 0 the chunk is resident at the root from its release
  /// (stage_done == the load's release time).
  double stage_start = 0.0;
  double stage_done = 0.0;
  double comm_start = 0.0;       ///< when link l_1 starts carrying it
  double completion = 0.0;       ///< last compute finish of the chunk
  bool blocked = false;          ///< some processor started past arrival
  /// Per-processor timeline (network.size() entries each): when the
  /// chunk's data has fully arrived at P_i (store-and-forward), when
  /// P_i starts computing it (>= arrival; later only when P_i was
  /// still busy with an earlier installment), and when it finishes.
  std::vector<double> arrival;
  std::vector<double> compute_start;
  std::vector<double> finish;
};

/// Per-load outcome aggregated over its installments.
struct LoadOutcome {
  LoadSpec spec;
  std::size_t installments = 0;
  double start = 0.0;        ///< comm_start of the first installment
  double completion = 0.0;   ///< compute finish of the last installment
  bool deadline_met = true;  ///< completion <= deadline (or no deadline)
};

/// A complete multi-load schedule.
struct MultiLoadSchedule {
  /// Algorithm 1 on the chain; every installment reuses these fractions
  /// (scaled by installment size), so a one-load one-installment
  /// schedule is bit-identical to solve_linear_boundary.
  dlt::LinearSolution chain;
  std::vector<LoadOutcome> loads;        ///< input order
  std::vector<Installment> installments; ///< dispatch order
  double makespan = 0.0;             ///< last completion over all loads
  /// Baseline the serve layer produces today: load k+1's distribution
  /// starts only after load k fully completed. Pipelined dispatch never
  /// exceeds this (asserted by the invariant checker).
  double serialized_makespan = 0.0;
};

}  // namespace dls::multiload
