// Per-load DLS-LBL payments for multi-load schedules.
//
// The paper's mechanism (Sect. 4) prices one unit load; a multi-load
// round prices each load separately so every client is billed for its
// own traffic and every processor is paid per load it computed. The
// payment rules are linear in the load size — α, V, C, E, B all scale
// with the units processed — except the flat Theorem 5.2 solution
// bonus, which is a fixed reward per verified solution. So one unit
// assessment of the bid network (core::assess_compliant) prices every
// load: Q_j(load) = size · (Q_j(unit) − S) + S.
//
// MultiLoadMechanism answers per-load counterfactual utilities the same
// way: one shared dlt::CounterfactualSolver (inside
// core::CounterfactualMechanism) makes a "what if P_j had bid w for
// this load" query an O(j) incremental rebid, not a full re-solve.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dls_lbl.hpp"
#include "multiload/types.hpp"
#include "net/networks.hpp"
#include "payment/ledger.hpp"

namespace dls::multiload {

/// Monetary outcome of one load, per processor (index 0..m; the root's
/// payment entry is 0, its compensation is the mechanism's
/// reimbursement of the root's own compute cost).
struct LoadPayments {
  std::uint64_t load_id = 0;
  double size = 0.0;
  std::vector<double> payment;        ///< size-scaled Q_j
  std::vector<double> compensation;   ///< size-scaled C_j
  std::vector<double> bonus;          ///< size-scaled B_j
  std::vector<double> solution_bonus; ///< flat S per processor (unscaled)
  double total_payment = 0.0;         ///< Σ_{j>=1} payment[j]
  double mechanism_cost = 0.0;        ///< total + root reimbursement
};

/// The shared unit assessment plus its per-load scalings.
struct MultiLoadAssessment {
  core::DlsLblResult unit;  ///< assess_compliant on the bid network
  std::vector<LoadPayments> loads;  ///< one entry per input load
  double total_payment = 0.0;
  double mechanism_cost = 0.0;
};

/// Prices every load of a multi-load round with ONE unit assessment
/// (reused via `ws` when provided). `actual_rates` are the metered
/// rates, as in core::assess_compliant.
MultiLoadAssessment assess_loads(const net::LinearNetwork& bid_network,
                                 std::span<const double> actual_rates,
                                 const std::vector<LoadSpec>& loads,
                                 const core::MechanismConfig& config);

MultiLoadAssessment assess_loads(const net::LinearNetwork& bid_network,
                                 std::span<const double> actual_rates,
                                 const std::vector<LoadSpec>& loads,
                                 const core::MechanismConfig& config,
                                 core::AssessWorkspace& ws);

/// Posts every load's transfers to `ledger`, double-entry against the
/// treasury: compensation (root reimbursement included) and bonus per
/// processor per load, plus the flat solution bonus when paid. The
/// account of P_i is `first_account + i` (accounts are opened if
/// missing); memos carry the load id so a statement can be split per
/// client. Conservation (Σ balances == 0) holds by construction and is
/// asserted by the ledger itself.
void post_to_ledger(payment::Ledger& ledger,
                    const MultiLoadAssessment& assessment,
                    payment::AccountId first_account);

/// Per-load counterfactual utilities over one shared incremental
/// solver. Wraps core::CounterfactualMechanism with the same size
/// scaling as assess_loads, so
///   utility(j, bid, actual, size) == size · (U_j(unit) − S) + S
/// bit-for-bit with the unscaled mechanism at size 1.
class MultiLoadMechanism {
 public:
  MultiLoadMechanism(const net::LinearNetwork& bid_base,
                     std::span<const double> actual_rates,
                     const core::MechanismConfig& config);

  /// U_index for a load of `size` when bidding `bid` and executing at
  /// `actual_rate`; everyone else per the base profile. index >= 1.
  double utility(std::size_t index, double bid, double actual_rate,
                 double size);

  /// Batched bid sweep for one load: utilities[k] = utility(index,
  /// bids[k], base actual rate, size), via one SoA rebid pass.
  void utility_curve(std::size_t index, std::span<const double> bids,
                     double size, std::span<double> utilities);

 private:
  double scale(double unit_utility, double size) const;

  core::CounterfactualMechanism mechanism_;
  core::MechanismConfig config_;
};

}  // namespace dls::multiload
