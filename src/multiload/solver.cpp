#include "multiload/solver.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <utility>

#include "check/contracts.hpp"
#include "check/multiload_invariants.hpp"
#include "common/error.hpp"

namespace dls::multiload {

std::vector<std::pair<std::size_t, std::size_t>> dispatch_order(
    const std::vector<LoadSpec>& loads, const MultiLoadConfig& config) {
  const std::size_t chunks = std::max<std::size_t>(1, config.installments_per_load);
  // Ties on release break by input index, so the order is a pure
  // function of the inputs and the checker can replay it.
  std::vector<std::size_t> by_release(loads.size());
  std::iota(by_release.begin(), by_release.end(), std::size_t{0});
  std::stable_sort(by_release.begin(), by_release.end(),
                   [&loads](std::size_t a, std::size_t b) {
                     return loads[a].release < loads[b].release;
                   });

  std::vector<std::pair<std::size_t, std::size_t>> order;
  order.reserve(loads.size() * chunks);
  if (config.policy == DispatchPolicy::kFifo) {
    for (std::size_t load : by_release) {
      for (std::size_t c = 0; c < chunks; ++c) order.emplace_back(load, c);
    }
  } else {
    for (std::size_t c = 0; c < chunks; ++c) {
      for (std::size_t load : by_release) order.emplace_back(load, c);
    }
  }
  return order;
}

double installment_size(double total, std::size_t count, std::size_t index) {
  DLS_REQUIRE(count >= 1 && index < count, "installment index out of range");
  if (count == 1) return total;  // a single chunk carries the exact size
  const double even = total / static_cast<double>(count);
  if (index + 1 < count) return even;
  // Last chunk takes the exact remainder so the pieces sum to `total`
  // bit-for-bit (the checker and the payment scaler both rely on it).
  return total - even * static_cast<double>(count - 1);
}

MultiLoadSolver::MultiLoadSolver(const net::LinearNetwork& network)
    : network_(network) {
  // Algorithm 1 once; every installment is this solution scaled. The
  // chain keeps its reduction trace so callers can inspect it.
  dlt::solve_linear_boundary_into(network_, chain_, /*want_steps=*/true);
  const std::size_t n = network_.size();
  unit_arrival_.assign(n, 0.0);
  unit_compute_.assign(n, 0.0);
  unit_compute_[0] = chain_.alpha[0] * network_.w(0);
  for (std::size_t i = 1; i < n; ++i) {
    // Store-and-forward: link l_i forwards only after receiving all of
    // its transit load D_i, so P_i's data lands at Σ_{k<=i} D_k z_k.
    unit_arrival_[i] = unit_arrival_[i - 1] + chain_.received[i] * network_.z(i);
    unit_compute_[i] = chain_.alpha[i] * network_.w(i);
  }
}

double MultiLoadSolver::serialized_makespan(
    const std::vector<LoadSpec>& loads) const {
  // Today's serve behaviour: strict rounds in release order. Each round
  // stages the load into the root (one-port ingress shared with
  // nothing, since nothing else runs) and then executes the Algorithm 1
  // schedule; the next round starts only after the round completes.
  // Note with ingress_z == 0 this is simply back-to-back execution.
  return serialized_makespan_with_ingress(loads, 0.0);
}

MultiLoadSchedule MultiLoadSolver::solve(const std::vector<LoadSpec>& loads,
                                         const MultiLoadConfig& config) {
  DLS_REQUIRE(!loads.empty(), "multi-load solve needs at least one load");
  DLS_REQUIRE(config.installments_per_load >= 1,
              "installments_per_load must be >= 1");
  DLS_REQUIRE(std::isfinite(config.ingress_z) && config.ingress_z >= 0.0,
              "ingress_z must be finite and non-negative");
  for (const LoadSpec& load : loads) {
    // NaN fails every ordered comparison, so each predicate is written
    // to *accept* good values; anything else — including NaN and ±inf,
    // which arrive unchecked from embedding callers — is rejected.
    if (!(std::isfinite(load.size) && load.size > 0.0)) {
      throw InfeasibleError("multi-load: load " + std::to_string(load.id) +
                            " has a non-positive or non-finite size");
    }
    if (!(std::isfinite(load.release) && load.release >= 0.0) ||
        !(std::isfinite(load.deadline) && load.deadline >= 0.0)) {
      throw InfeasibleError("multi-load: load " + std::to_string(load.id) +
                            " has a negative or non-finite release/deadline");
    }
  }

  const std::size_t n = network_.size();
  const std::size_t chunks = config.installments_per_load;

  MultiLoadSchedule schedule;
  schedule.chain = chain_;
  schedule.loads.resize(loads.size());
  for (std::size_t k = 0; k < loads.size(); ++k) {
    schedule.loads[k].spec = loads[k];
    schedule.loads[k].installments = chunks;
  }

  link_free_.assign(network_.workers(), 0.0);
  proc_free_.assign(n, 0.0);
  double ingress_free = 0.0;

  const auto order = dispatch_order(loads, config);
  schedule.installments.reserve(order.size());

  for (const auto& [load_index, chunk] : order) {
    const LoadSpec& load = loads[load_index];
    Installment inst;
    inst.load = load_index;
    inst.index_in_load = chunk;
    inst.size = installment_size(load.size, chunks, chunk);
    const double s = inst.size;

    // Ingress staging: the chunk's bytes reach the root over the
    // one-port admission link. With ingress_z == 0 the chunk is
    // resident from its release and staging is the identity.
    if (config.ingress_z > 0.0) {
      inst.stage_start = std::max(load.release, ingress_free);
      inst.stage_done = inst.stage_start + s * config.ingress_z;
      ingress_free = inst.stage_done;
    } else {
      inst.stage_start = load.release;
      inst.stage_done = load.release;
    }

    // One-port links: link l_j may start this chunk only after it
    // finished the previous chunk. The chunk occupies l_j during
    // [C + s·A_{j-1}, C + s·A_j], so C >= link_free_j − s·A_{j-1}.
    double comm_start = inst.stage_done;
    for (std::size_t j = 1; j <= network_.workers(); ++j) {
      comm_start =
          std::max(comm_start, link_free_[j - 1] - s * unit_arrival_[j - 1]);
    }
    inst.comm_start = comm_start;
    for (std::size_t j = 1; j <= network_.workers(); ++j) {
      link_free_[j - 1] = comm_start + s * unit_arrival_[j];
    }

    // Per-processor timeline. The root computes its share once the
    // chunk is staged (its data is local; distribution runs on the
    // send port concurrently); P_i (i >= 1) computes once the chunk
    // fully arrives, store-and-forward.
    inst.arrival.resize(n);
    inst.compute_start.resize(n);
    inst.finish.resize(n);
    inst.blocked = false;
    double max_finish = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      inst.arrival[i] =
          i == 0 ? inst.stage_done : comm_start + s * unit_arrival_[i];
      const double start = std::max(inst.arrival[i], proc_free_[i]);
      if (start > inst.arrival[i]) inst.blocked = true;
      inst.compute_start[i] = start;
      inst.finish[i] = start + s * unit_compute_[i];
      proc_free_[i] = inst.finish[i];
      max_finish = std::max(max_finish, inst.finish[i]);
    }
    // Theorem 2.1 closed form: an unblocked chunk finishes everywhere
    // at comm_start + s·makespan. One load of unit size starting at 0
    // therefore completes at exactly chain_.makespan, bit for bit. A
    // single-processor chain has no T_i = makespan participant beyond
    // the root, so it reports the root recurrence directly (still
    // bit-identical: α_0 = α̂_0 = 1 makes them the same product).
    const bool closed_form = !inst.blocked && network_.workers() > 0;
    inst.completion =
        closed_form ? comm_start + s * chain_.makespan : max_finish;

    LoadOutcome& outcome = schedule.loads[load_index];
    if (chunk == 0) outcome.start = inst.comm_start;
    outcome.completion = std::max(outcome.completion, inst.completion);
    schedule.installments.push_back(std::move(inst));
  }

  for (LoadOutcome& outcome : schedule.loads) {
    outcome.deadline_met = outcome.spec.deadline <= 0.0 ||
                           outcome.completion <= outcome.spec.deadline;
    schedule.makespan = std::max(schedule.makespan, outcome.completion);
  }
  schedule.serialized_makespan =
      serialized_makespan_with_ingress(loads, config.ingress_z);

  if constexpr (check::enabled(1)) {
    check::check_multiload_schedule(network_, loads, config, schedule);
  }
  return schedule;
}

double MultiLoadSolver::serialized_makespan_with_ingress(
    const std::vector<LoadSpec>& loads, double ingress_z) const {
  std::vector<std::size_t> by_release(loads.size());
  std::iota(by_release.begin(), by_release.end(), std::size_t{0});
  std::stable_sort(by_release.begin(), by_release.end(),
                   [&loads](std::size_t a, std::size_t b) {
                     return loads[a].release < loads[b].release;
                   });
  double clock = 0.0;
  for (std::size_t k : by_release) {
    const double start = std::max(loads[k].release, clock);
    clock = start + loads[k].size * (ingress_z + chain_.makespan);
  }
  return clock;
}

}  // namespace dls::multiload
