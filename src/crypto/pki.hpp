// Key material and the PKI registry.
//
// Trust model. The paper assumes a public key infrastructure with
// unforgeable digital signatures: every processor holds a private key
// SK_i, and dsm_i(m) = (m, sig_i(m)) can be verified by anyone. Inside
// the simulation we realise sig_i(m) as HMAC-SHA256(SK_i, m) and route
// verification through a KeyRegistry that holds the registered secrets —
// the registry plays the PKI's role of binding identities to keys and
// provides the "public verifiability" the mechanism needs. Agents never
// see each other's secrets (the Signer handed to an agent only exposes
// signing under its own key), so the unforgeability assumption of
// Lemma 5.2 holds by construction: producing a valid tag for another
// identity requires that identity's secret. A real deployment would swap
// HMAC+registry for Ed25519 behind the same interfaces.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>

#include "codec/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace dls::crypto {

/// Identity of a protocol participant (processor index in this system).
using AgentId = std::uint32_t;

/// 256-bit signing secret.
struct SecretKey {
  std::array<std::uint8_t, 32> bytes{};
};

/// Public fingerprint of a secret key (SHA-256 of the secret); identifies
/// the key in the registry without revealing it.
struct KeyFingerprint {
  Digest digest{};
  bool operator==(const KeyFingerprint&) const = default;
};

/// A detached signature tag.
struct Signature {
  Digest tag{};
  bool operator==(const Signature&) const = default;
};

/// Generates a fresh secret from the deterministic RNG (simulation) —
/// stands in for the key-generation ceremony.
SecretKey generate_secret(common::Rng& rng) noexcept;

KeyFingerprint fingerprint_of(const SecretKey& secret) noexcept;

/// Signs a byte string under `secret`.
Signature sign(const SecretKey& secret,
               std::span<const std::uint8_t> message) noexcept;

/// Signing capability scoped to a single identity. This is the only
/// signing interface handed to agent code.
class Signer {
 public:
  Signer(AgentId id, SecretKey secret) noexcept
      : id_(id), secret_(secret) {}

  AgentId id() const noexcept { return id_; }
  Signature sign(std::span<const std::uint8_t> message) const noexcept {
    return crypto::sign(secret_, message);
  }

 private:
  AgentId id_;
  SecretKey secret_;
};

/// The PKI: binds AgentIds to keys and verifies signatures.
class KeyRegistry {
 public:
  /// Registers `id`; replaces any previous binding. Returns the public
  /// fingerprint.
  KeyFingerprint register_agent(AgentId id, const SecretKey& secret);

  /// Generates, registers and returns a Signer for `id`.
  Signer enroll(AgentId id, common::Rng& rng);

  bool is_registered(AgentId id) const noexcept;

  std::optional<KeyFingerprint> fingerprint(AgentId id) const noexcept;

  /// True iff `sig` is a valid tag by `signer` over `message`. Unknown
  /// signers verify as false.
  bool verify(AgentId signer, std::span<const std::uint8_t> message,
              const Signature& sig) const noexcept;

  std::size_t size() const noexcept { return keys_.size(); }

 private:
  std::unordered_map<AgentId, SecretKey> keys_;
};

}  // namespace dls::crypto
