// SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104).
//
// The DLS-LBL protocol signs every message (`dsm_i(m)` in the paper). The
// simulation realises signatures as HMAC tags verified through the PKI
// registry (see pki.hpp for the trust model); the hash itself is a full,
// test-vector-checked SHA-256 so the unforgeability assumption rests on a
// real primitive rather than a toy hash.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace dls::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() noexcept;

  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept;

  /// Finalises and returns the digest. The object must not be reused
  /// afterwards without calling reset().
  Digest finish() noexcept;

  void reset() noexcept;

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data) noexcept;
  static Digest hash(std::string_view data) noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA256 over `data` with `key`.
Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> data) noexcept;

/// Constant-time digest comparison.
bool digest_equal(const Digest& a, const Digest& b) noexcept;

}  // namespace dls::crypto
