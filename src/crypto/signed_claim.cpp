#include "crypto/signed_claim.hpp"

namespace dls::crypto {

std::string to_string(ClaimKind kind) {
  switch (kind) {
    case ClaimKind::kEquivalentBid:
      return "equivalent-bid";
    case ClaimKind::kReceivedLoad:
      return "received-load";
    case ClaimKind::kBidRate:
      return "bid-rate";
    case ClaimKind::kMeteredRate:
      return "metered-rate";
    case ClaimKind::kLoadTokenCount:
      return "load-token-count";
  }
  return "unknown";
}

codec::Bytes encode(const Claim& claim) {
  codec::Writer w;
  w.string("dls.claim.v1");
  w.u8(static_cast<std::uint8_t>(claim.kind));
  w.u32(claim.subject);
  w.u64(claim.round);
  w.f64(claim.value);
  return w.take();
}

Claim decode_claim(std::span<const std::uint8_t> bytes) {
  codec::Reader r(bytes);
  const std::string magic = r.string();
  if (magic != "dls.claim.v1") {
    throw codec::DecodeError("bad claim magic: " + magic);
  }
  Claim claim;
  claim.kind = static_cast<ClaimKind>(r.u8());
  claim.subject = r.u32();
  claim.round = r.u64();
  claim.value = r.f64();
  r.expect_done();
  return claim;
}

SignedClaim make_signed(const Signer& signer, const Claim& claim) {
  const codec::Bytes body = encode(claim);
  return SignedClaim{claim, signer.id(), signer.sign(body)};
}

bool verify(const KeyRegistry& registry, const SignedClaim& sc) noexcept {
  const codec::Bytes body = encode(sc.claim);
  return registry.verify(sc.signer, body, sc.sig);
}

bool contradicts(const SignedClaim& a, const SignedClaim& b) noexcept {
  return a.signer == b.signer && a.claim.kind == b.claim.kind &&
         a.claim.subject == b.claim.subject &&
         a.claim.round == b.claim.round && a.claim.value != b.claim.value;
}

}  // namespace dls::crypto
