// Digitally signed scalar claims — the paper's dsm_i(m).
//
// Every value exchanged by the DLS-LBL protocol (bids w̄_i, received-load
// fractions D_j, bid rates w_j, metered rates w̃_j) is a *claim*: a typed,
// scalar statement about a subject processor in a given protocol round.
// Signing the canonical encoding binds kind/subject/round/value together,
// which is what lets the root arbitrate "contradictory messages": two
// valid signatures by the same signer over the same (kind, subject, round)
// with different values.
#pragma once

#include <cstdint>
#include <string>

#include "codec/bytes.hpp"
#include "crypto/pki.hpp"

namespace dls::crypto {

/// Claim categories used by the protocol.
enum class ClaimKind : std::uint8_t {
  kEquivalentBid = 1,  ///< w̄_i, the equivalent processing time bid (Phase I)
  kReceivedLoad = 2,   ///< D_j, fraction of load arriving at P_j (Phase II)
  kBidRate = 3,        ///< w_j, the per-unit processing time bid (Phase II)
  kMeteredRate = 4,    ///< w̃_j, actual rate reported by the meter (Phase IV)
  kLoadTokenCount = 5, ///< |Λ_j|, number of data tokens received (Phase III)
};

/// Human-readable name for diagnostics.
std::string to_string(ClaimKind kind);

/// A typed scalar statement about processor `subject` in protocol round
/// `round`.
struct Claim {
  ClaimKind kind{};
  AgentId subject = 0;
  std::uint64_t round = 0;
  double value = 0.0;

  bool operator==(const Claim&) const = default;
};

/// Canonical byte encoding (the string that gets signed).
codec::Bytes encode(const Claim& claim);

/// Decodes; throws codec::DecodeError on malformed input.
Claim decode_claim(std::span<const std::uint8_t> bytes);

/// dsm_signer(claim) = (claim, sig_signer(encode(claim))).
struct SignedClaim {
  Claim claim;
  AgentId signer = 0;
  Signature sig;

  bool operator==(const SignedClaim&) const = default;
};

/// Signs `claim` under the signer's key.
SignedClaim make_signed(const Signer& signer, const Claim& claim);

/// True iff the signature verifies against the registered key of
/// `sc.signer` over the canonical encoding of `sc.claim`.
bool verify(const KeyRegistry& registry, const SignedClaim& sc) noexcept;

/// True when `a` and `b` are *contradictory* in the paper's sense: same
/// signer, same (kind, subject, round), both valid signatures, different
/// values. Validity must be checked by the caller first.
bool contradicts(const SignedClaim& a, const SignedClaim& b) noexcept;

}  // namespace dls::crypto
