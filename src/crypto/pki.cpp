#include "crypto/pki.hpp"

namespace dls::crypto {

SecretKey generate_secret(common::Rng& rng) noexcept {
  SecretKey key;
  for (std::size_t i = 0; i < key.bytes.size(); i += 8) {
    const std::uint64_t word = rng.bits();
    for (std::size_t b = 0; b < 8; ++b) {
      key.bytes[i + b] = static_cast<std::uint8_t>(word >> (8 * b));
    }
  }
  return key;
}

KeyFingerprint fingerprint_of(const SecretKey& secret) noexcept {
  return KeyFingerprint{Sha256::hash(secret.bytes)};
}

Signature sign(const SecretKey& secret,
               std::span<const std::uint8_t> message) noexcept {
  return Signature{hmac_sha256(secret.bytes, message)};
}

KeyFingerprint KeyRegistry::register_agent(AgentId id,
                                           const SecretKey& secret) {
  keys_[id] = secret;
  return fingerprint_of(secret);
}

Signer KeyRegistry::enroll(AgentId id, common::Rng& rng) {
  const SecretKey secret = generate_secret(rng);
  register_agent(id, secret);
  return Signer(id, secret);
}

bool KeyRegistry::is_registered(AgentId id) const noexcept {
  return keys_.contains(id);
}

std::optional<KeyFingerprint> KeyRegistry::fingerprint(
    AgentId id) const noexcept {
  const auto it = keys_.find(id);
  if (it == keys_.end()) return std::nullopt;
  return fingerprint_of(it->second);
}

bool KeyRegistry::verify(AgentId signer,
                         std::span<const std::uint8_t> message,
                         const Signature& sig) const noexcept {
  const auto it = keys_.find(signer);
  if (it == keys_.end()) return false;
  const Signature expected = crypto::sign(it->second, message);
  return digest_equal(expected.tag, sig.tag);
}

}  // namespace dls::crypto
