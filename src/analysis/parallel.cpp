#include "analysis/parallel.hpp"

#include <thread>

#include "exec/thread_pool.hpp"

namespace dls::analysis {

std::size_t default_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers) {
  exec::ThreadPool::global().parallel_for(count, body,
                                          {.max_workers = workers});
}

}  // namespace dls::analysis
