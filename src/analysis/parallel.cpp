#include "analysis/parallel.hpp"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace dls::analysis {

std::size_t default_workers() noexcept {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers) {
  DLS_REQUIRE(static_cast<bool>(body), "parallel_for requires a body");
  if (count == 0) return;
  if (workers == 0) workers = default_workers();
  workers = std::min(workers, count);
  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::atomic<bool> failed{false};

  auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(work);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace dls::analysis
