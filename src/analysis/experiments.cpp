#include "analysis/experiments.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "dlt/baselines.hpp"
#include "dlt/linear.hpp"

namespace dls::analysis {

UtilityCurve utility_vs_bid(const net::LinearNetwork& true_network,
                            std::size_t index,
                            const std::vector<double>& bid_grid,
                            const core::MechanismConfig& config) {
  DLS_REQUIRE(!bid_grid.empty(), "bid grid must not be empty");
  UtilityCurve curve;
  curve.true_rate = true_network.w(index);
  curve.bids = bid_grid;
  curve.utilities.resize(bid_grid.size());
  // Case (i) of Lemma 5.3: execution at full capacity regardless of bid.
  // The batched engine re-solves only the reduction prefix per point.
  core::CounterfactualMechanism mech(true_network,
                                     true_network.processing_times(), config);
  mech.utility_curve(index, curve.bids, curve.utilities);
  curve.utility_at_truth = mech.utility(index, curve.true_rate,
                                        curve.true_rate);
  return curve;
}

UtilityCurve utility_vs_speed(const net::LinearNetwork& true_network,
                              std::size_t index,
                              const std::vector<double>& rate_multipliers,
                              const core::MechanismConfig& config) {
  DLS_REQUIRE(!rate_multipliers.empty(), "multiplier grid must not be empty");
  UtilityCurve curve;
  curve.true_rate = true_network.w(index);
  curve.bids.reserve(rate_multipliers.size());
  curve.utilities.reserve(rate_multipliers.size());
  core::CounterfactualMechanism mech(true_network,
                                     true_network.processing_times(), config);
  for (const double mult : rate_multipliers) {
    DLS_REQUIRE(mult >= 1.0, "cannot execute faster than capacity");
    const double actual = curve.true_rate * mult;
    curve.bids.push_back(actual);
    // Case (ii): truthful bid, deviant execution speed.
    curve.utilities.push_back(mech.utility(index, curve.true_rate, actual));
  }
  curve.utility_at_truth = mech.utility(index, curve.true_rate,
                                        curve.true_rate);
  return curve;
}

double max_truth_advantage_gap(const UtilityCurve& curve) {
  double best = -std::numeric_limits<double>::infinity();
  for (const double u : curve.utilities) best = std::max(best, u);
  return best - curve.utility_at_truth;
}

ParticipationSample truthful_participation(
    const net::LinearNetwork& true_network,
    const core::MechanismConfig& config) {
  std::vector<double> actual(true_network.processing_times().begin(),
                             true_network.processing_times().end());
  const core::DlsLblResult result =
      core::assess_compliant(true_network, actual, config);
  ParticipationSample sample;
  sample.total_payment = result.total_payment;
  sample.makespan = result.solution.makespan;
  bool first = true;
  double sum = 0.0;
  for (std::size_t j = 1; j < result.processors.size(); ++j) {
    const double u = result.processors[j].money.utility;
    sum += u;
    if (first) {
      sample.min_utility = sample.max_utility = u;
      first = false;
    } else {
      sample.min_utility = std::min(sample.min_utility, u);
      sample.max_utility = std::max(sample.max_utility, u);
    }
  }
  sample.mean_utility =
      sum / static_cast<double>(result.processors.size() - 1);
  return sample;
}

BaselineComparison compare_baselines(const net::LinearNetwork& network) {
  BaselineComparison cmp;
  cmp.optimal = dlt::solve_linear_boundary(network).makespan;
  cmp.equal_split =
      dlt::makespan(network, dlt::baseline_equal(network.size()));
  cmp.speed_proportional =
      dlt::makespan(network, dlt::baseline_speed_proportional(network));
  cmp.root_only =
      dlt::makespan(network, dlt::baseline_root_only(network.size()));
  return cmp;
}

}  // namespace dls::analysis
