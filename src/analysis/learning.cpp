#include "analysis/learning.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dls::analysis {

namespace {

/// Bid network for the profile t_j * mult_j (the root keeps its truth).
net::LinearNetwork bid_network_of(const net::LinearNetwork& truth,
                                  const std::vector<double>& multipliers) {
  const std::size_t n = truth.size();
  std::vector<double> w(n);
  w[0] = truth.w(0);
  for (std::size_t j = 1; j < n; ++j) w[j] = truth.w(j) * multipliers[j - 1];
  return net::LinearNetwork(
      std::move(w), {truth.link_times().begin(), truth.link_times().end()});
}

}  // namespace

LearningTrace run_best_response_dynamics(const net::LinearNetwork& truth,
                                         const LearningConfig& config) {
  DLS_REQUIRE(std::find(config.candidates.begin(), config.candidates.end(),
                        1.0) != config.candidates.end(),
              "candidate set must contain the truthful multiplier 1.0");
  for (const double c : config.candidates) {
    DLS_REQUIRE(c > 0.0, "multipliers must be positive");
  }
  const std::size_t m = truth.workers();
  DLS_REQUIRE(m >= 1, "need at least one strategic agent");

  common::Rng rng(config.seed);
  std::vector<double> mult(m);
  for (auto& x : mult) {
    x = config.candidates[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(config.candidates.size()) - 1))];
  }

  LearningTrace trace;
  for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
    trace.multipliers.push_back(mult);
    std::vector<double> epoch_utilities(m, 0.0);
    // Round-robin revisions: each agent best-responds to the CURRENT
    // profile (including earlier revisions this epoch). Probing candidate
    // bids against a fixed rest-of-population is exactly the incremental
    // counterfactual pattern: one base solve per revision, O(i) per probe.
    for (std::size_t i = 0; i < m; ++i) {
      const net::LinearNetwork bids = bid_network_of(truth, mult);
      core::CounterfactualMechanism mech(bids, truth.processing_times(),
                                         config.mechanism);
      double best_u = -1e300;
      double best_c = mult[i];
      for (const double c : config.candidates) {
        const double u =
            mech.utility(i + 1, truth.w(i + 1) * c, truth.w(i + 1));
        if (u > best_u + 1e-12) {
          best_u = u;
          best_c = c;
        }
      }
      mult[i] = best_c;
      epoch_utilities[i] = best_u;
    }
    trace.utilities.push_back(std::move(epoch_utilities));
    ++trace.epochs_run;
    if (std::all_of(mult.begin(), mult.end(),
                    [](double x) { return x == 1.0; })) {
      trace.converged_to_truth = true;
      trace.epochs_to_truth = epoch + 1;
      break;
    }
  }
  return trace;
}

}  // namespace dls::analysis
