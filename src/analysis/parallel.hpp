// Threaded sweep driver for the experiment harness.
//
// Monte-Carlo certification sweeps (hundreds of independent instances)
// are embarrassingly parallel; this runs them across hardware threads
// while keeping results deterministic — each index writes to its own
// pre-allocated slot and randomness comes from per-index spawned RNG
// streams, so the output is identical at any worker count.
//
// This header is a thin forwarding shim kept for source compatibility:
// the execution itself happens on the persistent work-stealing pool in
// exec/thread_pool.hpp (no per-call thread spawn/join). Use the pool's
// chunked API directly for new hot paths.
#pragma once

#include <cstddef>
#include <functional>

namespace dls::analysis {

/// Number of workers parallel_for uses by default (hardware concurrency,
/// at least 1).
std::size_t default_workers() noexcept;

/// Invokes body(i) for every i in [0, count), distributed over
/// `workers` threads (0 = default_workers()). The body must only touch
/// index-owned state. The first exception thrown by any body is
/// rethrown on the caller's thread after all workers join.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body,
                  std::size_t workers = 0);

}  // namespace dls::analysis
