// Chaos-sweep harness: drives the fault-tolerant protocol across a grid
// of crash rates and measures what fault tolerance costs —
//   * makespan degradation (degraded / fault-free ratio),
//   * crash-detection latency of the heartbeat/probe machinery,
//   * payment conservation under partial settlement (ledger residual),
//   * recovery success (did survivors absorb the full unit load).
// Deterministic: every trial derives from the config seed, so a sweep
// replays bit-identically.
#pragma once

#include <cstdint>
#include <vector>

#include "protocol/recovery.hpp"

namespace dls::analysis {

struct FaultSweepConfig {
  std::size_t processors = 8;  ///< chain size m+1
  std::size_t trials = 32;     ///< random instances per crash rate
  std::vector<double> crash_rates = {0.0, 0.05, 0.1, 0.2, 0.4};
  std::uint64_t seed = 20260806;
  protocol::HeartbeatConfig heartbeat;
  core::MechanismConfig mechanism;
};

struct FaultSweepRow {
  double crash_rate = 0.0;
  double mean_crashes = 0.0;            ///< confirmed crashes per run
  double mean_makespan_ratio = 1.0;     ///< degraded / fault-free
  double max_makespan_ratio = 1.0;
  double mean_detection_latency = 0.0;  ///< over confirmed crashes
  double max_detection_latency = 0.0;
  double recovery_rate = 1.0;           ///< fraction with full coverage
  double max_conservation_residual = 0.0;
  double mean_settlement = 0.0;         ///< E_j paid per crashed node
  std::size_t runs = 0;
};

/// Runs the sweep; one row per crash rate, in config order.
std::vector<FaultSweepRow> run_fault_sweep(const FaultSweepConfig& config);

}  // namespace dls::analysis
