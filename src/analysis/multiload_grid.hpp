// Multi-load scenario grid: makespan/throughput of the pipelined
// MultiLoadSolver against the serialized strict-rounds baseline, swept
// over load mix x arrival process x chain length on the process-wide
// pool (the same engine behind the sweep drivers).
//
// Every cell is deterministic: instance randomness comes from an RNG
// seeded by (grid seed, cell index, trial), so the report is identical
// at any worker count and across runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "multiload/types.hpp"

namespace dls::analysis {

/// One point of the scenario grid.
struct MultiLoadScenario {
  std::size_t processors = 3;
  std::size_t load_count = 2;
  /// Load mix: sizes drawn log-uniform on [size_lo, size_hi].
  double size_lo = 0.5;
  double size_hi = 2.0;
  /// Arrival process: releases are a Poisson stream with this mean
  /// inter-arrival time; 0 means every load is released at time 0
  /// (a batch arrival).
  double mean_interarrival = 0.0;
  multiload::DispatchPolicy policy = multiload::DispatchPolicy::kFifo;
  std::size_t installments = 2;
  double ingress_z = 0.1;
};

/// Aggregated trial results for one scenario. Speedup is
/// serialized_makespan / makespan (> 1 when pipelining wins).
struct MultiLoadCellStats {
  MultiLoadScenario scenario;
  std::size_t trials = 0;
  double mean_speedup = 0.0;
  double min_speedup = 0.0;
  double max_speedup = 0.0;
  double mean_makespan = 0.0;
  double mean_serialized = 0.0;
  /// Loads completed per unit time under pipelined dispatch, averaged
  /// over trials (load_count / makespan).
  double mean_throughput = 0.0;
};

/// The swept axes. Defaults give a 3x3x3x2-cell grid small enough for
/// a test yet wide enough to separate the dispatch policies.
struct MultiLoadGridConfig {
  std::vector<std::size_t> chain_lengths = {3, 5, 9};
  std::vector<std::size_t> load_counts = {2, 4, 8};
  std::vector<double> mean_interarrivals = {0.0, 0.5, 2.0};
  std::vector<multiload::DispatchPolicy> policies = {
      multiload::DispatchPolicy::kFifo,
      multiload::DispatchPolicy::kInterleaved};
  std::size_t trials = 8;
  std::size_t installments = 2;
  double ingress_z = 0.1;
  double size_lo = 0.5;
  double size_hi = 2.0;
  std::uint64_t seed = 0x4d4c4752ull;  // "MLGR"
};

/// Runs every cell of the grid (chain_lengths x load_counts x
/// mean_interarrivals x policies) on the process-wide pool and returns
/// the cells in deterministic axis order.
std::vector<MultiLoadCellStats> run_multiload_grid(
    const MultiLoadGridConfig& config);

/// Renders the grid as an aligned text table (one row per cell).
void print_multiload_grid(std::ostream& os,
                          const std::vector<MultiLoadCellStats>& cells);

}  // namespace dls::analysis
