// Shared experiment drivers: the computations behind the bench binaries
// and several property tests, factored here so tests and benches report
// the same numbers.
#pragma once

#include <cstddef>
#include <vector>

#include "core/dls_lbl.hpp"
#include "common/rng.hpp"
#include "net/networks.hpp"

namespace dls::analysis {

/// Defaults used to draw random instances throughout the experiments:
/// processing times log-uniform on [kWLo, kWHi], link times on
/// [kZLo, kZHi] (times per unit load).
inline constexpr double kWLo = 0.5;
inline constexpr double kWHi = 5.0;
inline constexpr double kZLo = 0.05;
inline constexpr double kZHi = 0.5;

/// Utility of processor `index` as a function of its bid, everyone else
/// truthful and compliant (experiment THM5.3a).
struct UtilityCurve {
  std::vector<double> bids;
  std::vector<double> utilities;
  double true_rate = 0.0;
  double utility_at_truth = 0.0;
};

UtilityCurve utility_vs_bid(const net::LinearNetwork& true_network,
                            std::size_t index,
                            const std::vector<double>& bid_grid,
                            const core::MechanismConfig& config);

/// Utility of `index` bidding truthfully but executing at
/// `rate_multiplier * t_i` >= t_i (experiment THM5.3b).
UtilityCurve utility_vs_speed(const net::LinearNetwork& true_network,
                              std::size_t index,
                              const std::vector<double>& rate_multipliers,
                              const core::MechanismConfig& config);

/// Largest advantage over truth-telling (max over grid of
/// U(bid) − U(truth)); <= 0 certifies strategyproofness on the grid.
double max_truth_advantage_gap(const UtilityCurve& curve);

/// Summary of a whole-population truthful run (experiment THM5.4).
struct ParticipationSample {
  double min_utility = 0.0;
  double mean_utility = 0.0;
  double max_utility = 0.0;
  double total_payment = 0.0;
  double makespan = 0.0;
};

ParticipationSample truthful_participation(
    const net::LinearNetwork& true_network,
    const core::MechanismConfig& config);

/// Makespans of the optimal allocation against the baselines on one
/// instance (experiment THM2.1).
struct BaselineComparison {
  double optimal = 0.0;
  double equal_split = 0.0;
  double speed_proportional = 0.0;
  double root_only = 0.0;
};

BaselineComparison compare_baselines(const net::LinearNetwork& network);

}  // namespace dls::analysis
