#include "analysis/multiload_grid.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <ostream>

#include "analysis/experiments.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "multiload/solver.hpp"
#include "net/networks.hpp"

namespace dls::analysis {

namespace {

MultiLoadCellStats run_cell(const MultiLoadScenario& scenario,
                            std::size_t trials, std::uint64_t cell_seed) {
  MultiLoadCellStats stats;
  stats.scenario = scenario;
  stats.trials = trials;
  stats.min_speedup = std::numeric_limits<double>::infinity();
  stats.max_speedup = -std::numeric_limits<double>::infinity();

  multiload::MultiLoadConfig config;
  config.policy = scenario.policy;
  config.installments_per_load = scenario.installments;
  config.ingress_z = scenario.ingress_z;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    // One independent stream per (cell, trial): identical results at
    // any worker count.
    std::uint64_t state = cell_seed + trial;
    common::Rng rng(common::splitmix64_next(state));
    const net::LinearNetwork network = net::LinearNetwork::random(
        scenario.processors, rng, kWLo, kWHi, kZLo, kZHi);

    std::vector<multiload::LoadSpec> loads(scenario.load_count);
    double release = 0.0;
    for (std::size_t k = 0; k < loads.size(); ++k) {
      loads[k].id = k + 1;
      loads[k].size = rng.log_uniform(scenario.size_lo, scenario.size_hi);
      if (scenario.mean_interarrival > 0.0 && k > 0) {
        release += rng.exponential(1.0 / scenario.mean_interarrival);
      }
      loads[k].release = release;
    }

    multiload::MultiLoadSolver solver(network);
    const multiload::MultiLoadSchedule schedule = solver.solve(loads, config);
    DLS_REQUIRE(schedule.makespan > 0.0, "degenerate makespan in grid cell");
    const double speedup = schedule.serialized_makespan / schedule.makespan;
    stats.mean_speedup += speedup;
    stats.min_speedup = std::min(stats.min_speedup, speedup);
    stats.max_speedup = std::max(stats.max_speedup, speedup);
    stats.mean_makespan += schedule.makespan;
    stats.mean_serialized += schedule.serialized_makespan;
    stats.mean_throughput +=
        static_cast<double>(scenario.load_count) / schedule.makespan;
  }
  const double inv = 1.0 / static_cast<double>(trials);
  stats.mean_speedup *= inv;
  stats.mean_makespan *= inv;
  stats.mean_serialized *= inv;
  stats.mean_throughput *= inv;
  return stats;
}

}  // namespace

std::vector<MultiLoadCellStats> run_multiload_grid(
    const MultiLoadGridConfig& config) {
  DLS_REQUIRE(config.trials > 0, "grid needs at least one trial per cell");
  std::vector<MultiLoadScenario> scenarios;
  for (const std::size_t processors : config.chain_lengths) {
    for (const std::size_t load_count : config.load_counts) {
      for (const double mean_interarrival : config.mean_interarrivals) {
        for (const multiload::DispatchPolicy policy : config.policies) {
          MultiLoadScenario scenario;
          scenario.processors = processors;
          scenario.load_count = load_count;
          scenario.size_lo = config.size_lo;
          scenario.size_hi = config.size_hi;
          scenario.mean_interarrival = mean_interarrival;
          scenario.policy = policy;
          scenario.installments = config.installments;
          scenario.ingress_z = config.ingress_z;
          scenarios.push_back(scenario);
        }
      }
    }
  }

  std::vector<MultiLoadCellStats> cells(scenarios.size());
  exec::ThreadPool::global().parallel_for(
      scenarios.size(), [&](std::size_t i) {
        // Cells are seeded far apart so trial streams never collide
        // across cells.
        const std::uint64_t cell_seed =
            config.seed + (i + 1) * 0x9e3779b97f4a7c15ull;
        cells[i] = run_cell(scenarios[i], config.trials, cell_seed);
      });
  return cells;
}

void print_multiload_grid(std::ostream& os,
                          const std::vector<MultiLoadCellStats>& cells) {
  os << std::setw(6) << "m" << std::setw(7) << "loads" << std::setw(10)
     << "arrival" << std::setw(13) << "policy" << std::setw(11) << "speedup"
     << std::setw(9) << "min" << std::setw(9) << "max" << std::setw(12)
     << "makespan" << std::setw(12) << "thruput" << '\n';
  for (const MultiLoadCellStats& cell : cells) {
    os << std::setw(6) << cell.scenario.processors << std::setw(7)
       << cell.scenario.load_count << std::setw(10) << std::fixed
       << std::setprecision(2) << cell.scenario.mean_interarrival
       << std::setw(13)
       << (cell.scenario.policy == multiload::DispatchPolicy::kFifo
               ? "fifo"
               : "interleaved")
       << std::setw(11) << std::setprecision(3) << cell.mean_speedup
       << std::setw(9) << cell.min_speedup << std::setw(9) << cell.max_speedup
       << std::setw(12) << cell.mean_makespan << std::setw(12)
       << cell.mean_throughput << '\n';
    os.unsetf(std::ios::fixed);
  }
}

}  // namespace dls::analysis
