// Multi-installment (multi-round) star scheduling — the extension of
// single-round DLT studied by Yang, van der Raadt & Casanova [21].
//
// A single-installment schedule forces every worker to sit idle until
// its entire share has crossed the one-port root; splitting each share
// into R installments lets late workers start computing much earlier.
// This module parameterises schedules as: worker shares proportional to
// the single-round optimum within each round, per-round totals geometric
// with ratio θ (γ_r ∝ θ^r), plus the root's own share; θ and the root
// share are tuned by golden-section search against the *exact*
// event-driven evaluator (sim::execute_star). For R = 1 the family
// contains the single-round optimum, so the optimiser reproduces
// solve_star; for comm-heavy instances larger R strictly shortens the
// schedule with the classic diminishing returns.
#pragma once

#include <cstddef>

#include "net/networks.hpp"
#include "sim/star_execution.hpp"

namespace dls::analysis {

struct MultiRoundSolution {
  sim::StarSchedule schedule;
  std::size_t rounds = 1;
  double theta = 1.0;        ///< geometric per-round growth ratio chosen
  double makespan = 0.0;     ///< exact, from the event-driven evaluator
};

/// Optimises an R-round schedule for the star. Requires rounds >= 1.
MultiRoundSolution solve_multiround_star(const net::StarNetwork& network,
                                         std::size_t rounds);

}  // namespace dls::analysis
