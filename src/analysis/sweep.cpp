#include "analysis/sweep.hpp"

#include <cmath>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"

namespace dls::analysis {

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  DLS_REQUIRE(count >= 2, "linspace needs at least two points");
  DLS_REQUIRE(lo < hi, "linspace requires lo < hi");
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // avoid accumulated rounding at the endpoint
  return out;
}

std::vector<double> logspace(double lo, double hi, std::size_t count) {
  DLS_REQUIRE(count >= 2, "logspace needs at least two points");
  DLS_REQUIRE(lo > 0.0 && lo < hi, "logspace requires 0 < lo < hi");
  std::vector<double> out = linspace(std::log(lo), std::log(hi), count);
  for (double& x : out) x = std::exp(x);
  out.back() = hi;
  return out;
}

std::vector<std::size_t> int_ladder(std::size_t lo, std::size_t hi,
                                    double factor) {
  DLS_REQUIRE(lo >= 1 && lo <= hi, "int_ladder requires 1 <= lo <= hi");
  DLS_REQUIRE(factor > 1.0, "int_ladder factor must exceed 1");
  std::vector<std::size_t> out;
  double x = static_cast<double>(lo);
  while (static_cast<std::size_t>(x) < hi) {
    const auto v = static_cast<std::size_t>(x);
    if (out.empty() || out.back() != v) out.push_back(v);
    x *= factor;
  }
  if (out.empty() || out.back() != hi) out.push_back(hi);
  return out;
}

std::vector<double> parallel_map(const std::vector<double>& grid,
                                 const std::function<double(double)>& fn) {
  DLS_REQUIRE(static_cast<bool>(fn), "parallel_map requires a function");
  DLS_SPAN_ARGS("analysis.sweep",
                "{\"points\":" + std::to_string(grid.size()) + "}");
  DLS_COUNT("analysis.grid_points", grid.size());
  std::vector<double> out(grid.size());
  exec::ThreadPool::global().parallel_for(
      grid.size(), [&](std::size_t i) { out[i] = fn(grid[i]); });
  return out;
}

}  // namespace dls::analysis
