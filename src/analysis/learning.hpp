// Best-response dynamics over repeated DLS-LBL rounds: every strategic
// processor repeatedly revises its bid multiplier to the best performer
// against the others' current bids. Strategyproofness (Theorem 5.3) is a
// *dominant-strategy* property, so the dynamics must collapse to
// all-truthful from any starting point — and in one revision per agent,
// since the best response never depends on the others.
#pragma once

#include <cstdint>
#include <vector>

#include "core/dls_lbl.hpp"
#include "net/networks.hpp"

namespace dls::analysis {

struct LearningConfig {
  /// Bid multipliers each agent may try; must contain 1.0.
  std::vector<double> candidates = {0.4, 0.6, 0.8, 0.9, 1.0,
                                    1.1, 1.3, 1.7, 2.5};
  std::size_t max_epochs = 12;
  std::uint64_t seed = 1;  ///< randomises the starting multipliers
  core::MechanismConfig mechanism;
};

struct LearningTrace {
  /// multipliers[e][i] — agent (i+1)'s multiplier entering epoch e.
  std::vector<std::vector<double>> multipliers;
  /// utilities[e][i] — the utility agent (i+1) earned in epoch e.
  std::vector<std::vector<double>> utilities;
  bool converged_to_truth = false;
  std::size_t epochs_run = 0;
  /// First epoch after which every multiplier equals 1 (valid only when
  /// converged_to_truth).
  std::size_t epochs_to_truth = 0;
};

/// Runs the dynamics on `truth` (w(0) = the obedient root). Agents
/// start at random candidate multipliers and revise round-robin within
/// each epoch; the run stops early once everyone sits at 1.0.
LearningTrace run_best_response_dynamics(const net::LinearNetwork& truth,
                                         const LearningConfig& config);

}  // namespace dls::analysis
