#include "analysis/faultsweep.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/experiments.hpp"
#include "common/error.hpp"

namespace dls::analysis {

std::vector<FaultSweepRow> run_fault_sweep(const FaultSweepConfig& config) {
  DLS_REQUIRE(config.processors >= 2, "sweep needs a root and a worker");
  DLS_REQUIRE(config.trials >= 1, "sweep needs at least one trial");

  common::Rng master(config.seed);
  std::vector<FaultSweepRow> rows;
  rows.reserve(config.crash_rates.size());

  for (std::size_t r = 0; r < config.crash_rates.size(); ++r) {
    const double rate = config.crash_rates[r];
    DLS_REQUIRE(rate >= 0.0 && rate <= 1.0, "crash rate must lie in [0, 1]");

    FaultSweepRow row;
    row.crash_rate = rate;
    row.runs = config.trials;

    double crashes = 0.0;
    double ratio_sum = 0.0;
    double latency_sum = 0.0;
    std::size_t latency_count = 0;
    std::size_t recovered = 0;
    double settlement_sum = 0.0;
    std::size_t settlement_count = 0;

    for (std::size_t t = 0; t < config.trials; ++t) {
      common::Rng rng = master.spawn(r * 0x10001ull + t);

      const auto network = net::LinearNetwork::random(
          config.processors, rng, kWLo, kWHi, kZLo, kZHi);
      std::vector<agents::StrategicAgent> roster;
      roster.reserve(config.processors - 1);
      for (std::size_t i = 1; i < config.processors; ++i) {
        roster.push_back(agents::StrategicAgent{
            i, network.w(i), agents::Behavior::truthful()});
      }

      protocol::ProtocolOptions options;
      options.mechanism = config.mechanism;
      options.round = t + 1;
      options.seed = rng.bits() | 1ull;

      protocol::FaultToleranceOptions ft;
      ft.heartbeat = config.heartbeat;
      ft.faults =
          sim::FaultPlan::random_crashes(config.processors, rate, rng);

      const protocol::FtRunReport report = protocol::run_protocol_ft(
          network, agents::Population(std::move(roster)), options, ft);

      // Makespan degradation relative to the fault-free prediction of the
      // very same instance (Algorithm 1 on the truthful bids).
      const double baseline = report.round.solution.makespan;
      const double ratio =
          baseline > 0.0 ? report.degraded_makespan / baseline : 1.0;
      ratio_sum += ratio;
      row.max_makespan_ratio = std::max(row.max_makespan_ratio, ratio);

      crashes += static_cast<double>(report.crashes.size());
      for (const protocol::CrashSettlement& settlement : report.crashes) {
        latency_sum += settlement.detection.latency();
        ++latency_count;
        row.max_detection_latency = std::max(
            row.max_detection_latency, settlement.detection.latency());
        settlement_sum += settlement.settlement_paid;
        ++settlement_count;
      }

      if (report.recovered) ++recovered;
      row.max_conservation_residual =
          std::max(row.max_conservation_residual,
                   std::abs(report.round.ledger.conservation_residual()));
    }

    const double n = static_cast<double>(config.trials);
    row.mean_crashes = crashes / n;
    row.mean_makespan_ratio = ratio_sum / n;
    row.mean_detection_latency =
        latency_count == 0 ? 0.0
                           : latency_sum / static_cast<double>(latency_count);
    row.recovery_rate = static_cast<double>(recovered) / n;
    row.mean_settlement =
        settlement_count == 0
            ? 0.0
            : settlement_sum / static_cast<double>(settlement_count);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace dls::analysis
