#include "analysis/faultsweep.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/experiments.hpp"
#include "common/error.hpp"
#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"

namespace dls::analysis {

namespace {

/// Raw measurements of one chaos trial, written into an index-owned slot
/// so the trial grid can run on the work-stealing pool.
struct TrialOutcome {
  std::size_t crashes = 0;
  double makespan_ratio = 1.0;
  double latency_sum = 0.0;
  double latency_max = 0.0;
  std::size_t latency_count = 0;
  double settlement_sum = 0.0;
  std::size_t settlement_count = 0;
  bool recovered = false;
  double residual = 0.0;
};

/// Order-independent per-trial stream: every (rate index, trial) pair
/// derives its RNG from the config seed alone, so the sweep is
/// bit-identical at any worker count and trial execution order.
common::Rng trial_rng(std::uint64_t seed, std::size_t r, std::size_t t) {
  std::uint64_t mix =
      seed ^ (0x9e3779b97f4a7c15ull * (r * 0x10001ull + t + 1));
  return common::Rng(common::splitmix64_next(mix));
}

TrialOutcome run_trial(const FaultSweepConfig& config, std::size_t r,
                       std::size_t t) {
  common::Rng rng = trial_rng(config.seed, r, t);
  const double rate = config.crash_rates[r];

  const auto network = net::LinearNetwork::random(config.processors, rng,
                                                  kWLo, kWHi, kZLo, kZHi);
  std::vector<agents::StrategicAgent> roster;
  roster.reserve(config.processors - 1);
  for (std::size_t i = 1; i < config.processors; ++i) {
    roster.push_back(agents::StrategicAgent{i, network.w(i),
                                            agents::Behavior::truthful()});
  }

  protocol::ProtocolOptions options;
  options.mechanism = config.mechanism;
  options.round = t + 1;
  options.seed = rng.bits() | 1ull;

  protocol::FaultToleranceOptions ft;
  ft.heartbeat = config.heartbeat;
  ft.faults = sim::FaultPlan::random_crashes(config.processors, rate, rng);

  const protocol::FtRunReport report = protocol::run_protocol_ft(
      network, agents::Population(std::move(roster)), options, ft);

  TrialOutcome out;
  // Makespan degradation relative to the fault-free prediction of the
  // very same instance (Algorithm 1 on the truthful bids).
  const double baseline = report.round.solution.makespan;
  out.makespan_ratio =
      baseline > 0.0 ? report.degraded_makespan / baseline : 1.0;
  out.crashes = report.crashes.size();
  for (const protocol::CrashSettlement& settlement : report.crashes) {
    out.latency_sum += settlement.detection.latency();
    out.latency_max = std::max(out.latency_max,
                               settlement.detection.latency());
    ++out.latency_count;
    out.settlement_sum += settlement.settlement_paid;
    ++out.settlement_count;
  }
  out.recovered = report.recovered;
  out.residual = std::abs(report.round.ledger.conservation_residual());
  return out;
}

}  // namespace

std::vector<FaultSweepRow> run_fault_sweep(const FaultSweepConfig& config) {
  DLS_REQUIRE(config.processors >= 2, "sweep needs a root and a worker");
  DLS_REQUIRE(config.trials >= 1, "sweep needs at least one trial");
  for (const double rate : config.crash_rates) {
    DLS_REQUIRE(rate >= 0.0 && rate <= 1.0, "crash rate must lie in [0, 1]");
  }

  // The whole (crash rate x trial) grid runs as one pool dispatch; each
  // trial owns its output slot, the reduction below is serial and in
  // fixed order, so results do not depend on the worker count.
  const std::size_t rates = config.crash_rates.size();
  std::vector<TrialOutcome> outcomes(rates * config.trials);
  DLS_SPAN_ARGS("analysis.faultsweep",
                "{\"rates\":" + std::to_string(rates) +
                    ",\"trials\":" + std::to_string(config.trials) + "}");
  DLS_COUNT("analysis.grid_points", outcomes.size());
  exec::ThreadPool::global().parallel_for(
      outcomes.size(),
      [&](std::size_t k) {
        outcomes[k] = run_trial(config, k / config.trials, k % config.trials);
      },
      {.grain = 1});

  std::vector<FaultSweepRow> rows;
  rows.reserve(rates);
  for (std::size_t r = 0; r < rates; ++r) {
    FaultSweepRow row;
    row.crash_rate = config.crash_rates[r];
    row.runs = config.trials;

    double crashes = 0.0;
    double ratio_sum = 0.0;
    double latency_sum = 0.0;
    std::size_t latency_count = 0;
    std::size_t recovered = 0;
    double settlement_sum = 0.0;
    std::size_t settlement_count = 0;

    for (std::size_t t = 0; t < config.trials; ++t) {
      const TrialOutcome& out = outcomes[r * config.trials + t];
      crashes += static_cast<double>(out.crashes);
      ratio_sum += out.makespan_ratio;
      row.max_makespan_ratio =
          std::max(row.max_makespan_ratio, out.makespan_ratio);
      latency_sum += out.latency_sum;
      latency_count += out.latency_count;
      row.max_detection_latency =
          std::max(row.max_detection_latency, out.latency_max);
      settlement_sum += out.settlement_sum;
      settlement_count += out.settlement_count;
      if (out.recovered) ++recovered;
      row.max_conservation_residual =
          std::max(row.max_conservation_residual, out.residual);
    }

    const double n = static_cast<double>(config.trials);
    row.mean_crashes = crashes / n;
    row.mean_makespan_ratio = ratio_sum / n;
    row.mean_detection_latency =
        latency_count == 0 ? 0.0
                           : latency_sum / static_cast<double>(latency_count);
    row.recovery_rate = static_cast<double>(recovered) / n;
    row.mean_settlement =
        settlement_count == 0
            ? 0.0
            : settlement_sum / static_cast<double>(settlement_count);
    rows.push_back(row);
  }
  return rows;
}

}  // namespace dls::analysis
