// Parameter-sweep utilities shared by the bench binaries.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace dls::analysis {

/// `count` evenly spaced values over [lo, hi] inclusive; count >= 2.
std::vector<double> linspace(double lo, double hi, std::size_t count);

/// `count` logarithmically spaced values over [lo, hi]; 0 < lo < hi.
std::vector<double> logspace(double lo, double hi, std::size_t count);

/// Roughly geometric integer ladder from lo to hi (inclusive, deduped),
/// e.g. {2, 4, 8, ..., hi}. Requires 1 <= lo <= hi.
std::vector<std::size_t> int_ladder(std::size_t lo, std::size_t hi,
                                    double factor = 2.0);

/// out[i] = fn(grid[i]), evaluated on the process-wide work-stealing
/// pool. fn must be safe to call concurrently (pure functions of the
/// grid point qualify); results are index-owned, so the output is
/// identical at any worker count.
std::vector<double> parallel_map(const std::vector<double>& grid,
                                 const std::function<double(double)>& fn);

}  // namespace dls::analysis
