#include "analysis/multiround.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/optimize.hpp"
#include "dlt/star.hpp"

namespace dls::analysis {

namespace {

/// Builds the R-round schedule for given root share and ratio θ: within
/// each round workers get chunks proportional to the single-round
/// optimal proportions, rounds scale as θ^r, everything normalised to
/// cover 1 − root_share.
sim::StarSchedule build_schedule(const dlt::StarSolution& base,
                                 std::size_t rounds, double root_share,
                                 double theta) {
  sim::StarSchedule schedule;
  schedule.root_share = root_share;
  double worker_total = 0.0;
  for (const double a : base.alpha) worker_total += a;
  if (worker_total <= 0.0) return schedule;

  double geo_total = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    geo_total += std::pow(theta, static_cast<double>(r));
  }
  const double budget = 1.0 - root_share;
  for (std::size_t r = 0; r < rounds; ++r) {
    const double round_budget =
        budget * std::pow(theta, static_cast<double>(r)) / geo_total;
    for (const std::size_t idx : base.order) {
      const double proportion = base.alpha[idx] / worker_total;
      const double chunk = round_budget * proportion;
      if (chunk > 0.0) {
        schedule.sends.push_back(sim::Installment{idx, chunk});
      }
    }
  }
  // Absorb any rounding residue into the final chunk.
  const double residue = 1.0 - schedule.total();
  if (!schedule.sends.empty()) {
    schedule.sends.back().chunk += residue;
  } else {
    schedule.root_share += residue;
  }
  return schedule;
}

}  // namespace

MultiRoundSolution solve_multiround_star(const net::StarNetwork& network,
                                         std::size_t rounds) {
  DLS_REQUIRE(rounds >= 1, "need at least one round");
  const dlt::StarSolution base = dlt::solve_star(network);

  auto evaluate = [&](double root_share, double theta) {
    const sim::StarSchedule schedule =
        build_schedule(base, rounds, root_share, theta);
    return sim::execute_star(network, schedule).makespan;
  };

  const double theta_lo = 0.25, theta_hi = 4.0;
  double best_root = 0.0;
  double best_theta = 1.0;
  if (network.root_computes()) {
    // Nested search: outer over the root share, inner over θ.
    const auto outer = dls::common::golden_minimize(
        [&](double root_share) {
          return dls::common::golden_minimize(
                     [&](double theta) {
                       return evaluate(root_share, theta);
                     },
                     theta_lo, theta_hi, 40)
              .value;
        },
        0.0, 0.9, 40);
    best_root = outer.x;
    best_theta = dls::common::golden_minimize(
                     [&](double theta) { return evaluate(best_root, theta); },
                     theta_lo, theta_hi, 60)
                     .x;
  } else {
    best_theta = dls::common::golden_minimize(
                     [&](double theta) { return evaluate(0.0, theta); },
                     theta_lo, theta_hi, 60)
                     .x;
  }

  MultiRoundSolution sol;
  sol.rounds = rounds;
  sol.theta = best_theta;
  sol.schedule =
      build_schedule(base, rounds, best_root, best_theta);
  sol.makespan = sim::execute_star(network, sol.schedule).makespan;

  // The single-round optimum is always a candidate; never return a
  // schedule worse than it.
  const sim::StarSchedule single = sim::single_installment(
      network, base.alpha_root, base.alpha, base.order);
  const double single_makespan = sim::execute_star(network, single).makespan;
  if (single_makespan < sol.makespan) {
    sol.schedule = single;
    sol.theta = 1.0;
    sol.makespan = single_makespan;
  }
  return sol;
}

}  // namespace dls::analysis
