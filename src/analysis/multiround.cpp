#include "analysis/multiround.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/sweep.hpp"
#include "common/error.hpp"
#include "common/optimize.hpp"
#include "dlt/star.hpp"
#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"

namespace dls::analysis {

namespace {

/// Builds the R-round schedule for given root share and ratio θ: within
/// each round workers get chunks proportional to the single-round
/// optimal proportions, rounds scale as θ^r, everything normalised to
/// cover 1 − root_share.
sim::StarSchedule build_schedule(const dlt::StarSolution& base,
                                 std::size_t rounds, double root_share,
                                 double theta) {
  sim::StarSchedule schedule;
  schedule.root_share = root_share;
  double worker_total = 0.0;
  for (const double a : base.alpha) worker_total += a;
  if (worker_total <= 0.0) return schedule;

  double geo_total = 0.0;
  for (std::size_t r = 0; r < rounds; ++r) {
    geo_total += std::pow(theta, static_cast<double>(r));
  }
  const double budget = 1.0 - root_share;
  for (std::size_t r = 0; r < rounds; ++r) {
    const double round_budget =
        budget * std::pow(theta, static_cast<double>(r)) / geo_total;
    for (const std::size_t idx : base.order) {
      const double proportion = base.alpha[idx] / worker_total;
      const double chunk = round_budget * proportion;
      if (chunk > 0.0) {
        schedule.sends.push_back(sim::Installment{idx, chunk});
      }
    }
  }
  // Absorb any rounding residue into the final chunk.
  const double residue = 1.0 - schedule.total();
  if (!schedule.sends.empty()) {
    schedule.sends.back().chunk += residue;
  } else {
    schedule.root_share += residue;
  }
  return schedule;
}

}  // namespace

MultiRoundSolution solve_multiround_star(const net::StarNetwork& network,
                                         std::size_t rounds) {
  DLS_REQUIRE(rounds >= 1, "need at least one round");
  DLS_SPAN_ARGS("analysis.multiround",
                "{\"rounds\":" + std::to_string(rounds) + "}");
  const dlt::StarSolution base = dlt::solve_star(network);

  auto evaluate = [&](double root_share, double theta) {
    const sim::StarSchedule schedule =
        build_schedule(base, rounds, root_share, theta);
    return sim::execute_star(network, schedule).makespan;
  };

  const double theta_lo = 0.25, theta_hi = 4.0;
  double best_root = 0.0;
  double best_theta = 1.0;
  if (network.root_computes()) {
    // Coarse (root share x θ) grid evaluated on the work-stealing pool —
    // every cell is an independent event-driven simulation — followed by
    // a golden-section polish of each coordinate inside the bracketing
    // grid cells. Replaces the serial nested golden search (1600+
    // sequential simulations) at equal or better schedule quality.
    const auto roots = linspace(0.0, 0.9, 13);
    const auto thetas = logspace(theta_lo, theta_hi, 17);
    std::vector<double> cost(roots.size() * thetas.size());
    DLS_COUNT("analysis.grid_points", cost.size());
    exec::ThreadPool::global().parallel_for(
        cost.size(),
        [&](std::size_t k) {
          cost[k] = evaluate(roots[k / thetas.size()],
                             thetas[k % thetas.size()]);
        },
        {.grain = 1});
    const std::size_t best_cell = static_cast<std::size_t>(
        std::min_element(cost.begin(), cost.end()) - cost.begin());
    const std::size_t ri = best_cell / thetas.size();
    const std::size_t ti = best_cell % thetas.size();

    const double r_lo = roots[ri == 0 ? 0 : ri - 1];
    const double r_hi = roots[std::min(ri + 1, roots.size() - 1)];
    const double t_lo = thetas[ti == 0 ? 0 : ti - 1];
    const double t_hi = thetas[std::min(ti + 1, thetas.size() - 1)];
    best_theta = thetas[ti];
    best_root = dls::common::golden_minimize(
                    [&](double root_share) {
                      return evaluate(root_share, best_theta);
                    },
                    r_lo, r_hi, 40)
                    .x;
    best_theta = dls::common::golden_minimize(
                     [&](double theta) { return evaluate(best_root, theta); },
                     t_lo, t_hi, 40)
                     .x;
  } else {
    const auto thetas = logspace(theta_lo, theta_hi, 17);
    std::vector<double> cost(thetas.size());
    DLS_COUNT("analysis.grid_points", cost.size());
    exec::ThreadPool::global().parallel_for(
        cost.size(), [&](std::size_t k) { cost[k] = evaluate(0.0, thetas[k]); },
        {.grain = 1});
    const std::size_t ti = static_cast<std::size_t>(
        std::min_element(cost.begin(), cost.end()) - cost.begin());
    best_theta = dls::common::golden_minimize(
                     [&](double theta) { return evaluate(0.0, theta); },
                     thetas[ti == 0 ? 0 : ti - 1],
                     thetas[std::min(ti + 1, thetas.size() - 1)], 40)
                     .x;
  }

  MultiRoundSolution sol;
  sol.rounds = rounds;
  sol.theta = best_theta;
  sol.schedule =
      build_schedule(base, rounds, best_root, best_theta);
  sol.makespan = sim::execute_star(network, sol.schedule).makespan;

  // The single-round optimum is always a candidate; never return a
  // schedule worse than it.
  const sim::StarSchedule single = sim::single_installment(
      network, base.alpha_root, base.alpha, base.order);
  const double single_makespan = sim::execute_star(network, single).makespan;
  if (single_makespan < sol.makespan) {
    sol.schedule = single;
    sol.theta = 1.0;
    sol.makespan = single_makespan;
  }
  return sol;
}

}  // namespace dls::analysis
