#include "agents/behavior.hpp"

#include "common/error.hpp"

namespace dls::agents {

Behavior Behavior::truthful() { return Behavior{}; }

Behavior Behavior::overbid(double factor) {
  DLS_REQUIRE(factor >= 1.0, "overbid factor must be >= 1");
  Behavior b;
  b.name = "overbid";
  b.bid_multiplier = factor;
  return b;
}

Behavior Behavior::underbid(double factor) {
  DLS_REQUIRE(factor > 0.0 && factor <= 1.0,
              "underbid factor must be in (0, 1]");
  Behavior b;
  b.name = "underbid";
  b.bid_multiplier = factor;
  return b;
}

Behavior Behavior::slow_execution(double factor) {
  DLS_REQUIRE(factor >= 1.0, "slowdown factor must be >= 1");
  Behavior b;
  b.name = "slow-execution";
  b.slowdown = factor;
  return b;
}

Behavior Behavior::load_shedder(double shed_fraction) {
  DLS_REQUIRE(shed_fraction > 0.0 && shed_fraction <= 1.0,
              "shed fraction must be in (0, 1]");
  Behavior b;
  b.name = "load-shedder";
  b.shed_fraction = shed_fraction;
  return b;
}

Behavior Behavior::contradictor() {
  Behavior b;
  b.name = "contradictor";
  b.contradictory_messages = true;
  return b;
}

Behavior Behavior::miscomputer() {
  Behavior b;
  b.name = "miscomputer";
  b.miscompute_allocation = true;
  return b;
}

Behavior Behavior::overcharger(double amount) {
  DLS_REQUIRE(amount > 0.0, "overcharge amount must be positive");
  Behavior b;
  b.name = "overcharger";
  b.overcharge = amount;
  return b;
}

Behavior Behavior::false_accuser() {
  Behavior b;
  b.name = "false-accuser";
  b.false_accusation = true;
  return b;
}

Behavior Behavior::colluding_victim() {
  Behavior b;
  b.name = "colluding-victim";
  b.suppress_grievance = true;
  return b;
}

Behavior Behavior::data_corruptor() {
  Behavior b;
  b.name = "data-corruptor";
  b.corrupt_data = true;
  return b;
}

}  // namespace dls::agents
