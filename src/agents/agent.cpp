#include "agents/agent.hpp"

#include "common/error.hpp"

namespace dls::agents {

Population::Population(std::vector<StrategicAgent> agents)
    : agents_(std::move(agents)) {
  DLS_REQUIRE(!agents_.empty(), "population must not be empty");
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    DLS_REQUIRE(agents_[i].index == i + 1,
                "agents must be indexed 1..m contiguously");
    DLS_REQUIRE(agents_[i].true_rate > 0.0, "true rates must be positive");
  }
}

const StrategicAgent& Population::agent(AgentIndex index) const {
  DLS_REQUIRE(index >= 1 && index <= agents_.size(),
              "agent index out of range");
  return agents_[index - 1];
}

StrategicAgent& Population::agent(AgentIndex index) {
  DLS_REQUIRE(index >= 1 && index <= agents_.size(),
              "agent index out of range");
  return agents_[index - 1];
}

std::vector<double> Population::bids() const {
  std::vector<double> out;
  out.reserve(agents_.size());
  for (const auto& a : agents_) out.push_back(a.bid());
  return out;
}

std::vector<double> Population::actual_rates() const {
  std::vector<double> out;
  out.reserve(agents_.size());
  for (const auto& a : agents_) out.push_back(a.actual_rate());
  return out;
}

Population Population::random_truthful(std::size_t m, common::Rng& rng,
                                       double lo, double hi) {
  DLS_REQUIRE(m >= 1, "population must not be empty");
  std::vector<StrategicAgent> agents;
  agents.reserve(m);
  for (std::size_t i = 1; i <= m; ++i) {
    agents.push_back(StrategicAgent{i, rng.log_uniform(lo, hi),
                                    Behavior::truthful()});
  }
  return Population(std::move(agents));
}

}  // namespace dls::agents
