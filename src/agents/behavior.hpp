// Strategic behaviour models.
//
// The paper's agents are one-parameter: private true unit time t_i. In
// the autonomous-node model they control *both* their inputs (the bid
// w_i) and their execution of the algorithm. Behavior captures every
// deviation class enumerated in Lemma 5.1:
//   (i)   contradictory messages in Phase I/II,
//   (ii)  miscomputing w̄_i / D_{i+1},
//   (iii) shedding load in Phase III (α̃_i < α_i),
//   (iv)  overcharging in Phase IV,
//   (v)   false accusations,
// plus the bid/rate manipulations of Lemma 5.3 (misreporting w_i,
// computing slower than capacity) and the "selfish-and-annoying" data
// corruption of Theorem 5.2.
#pragma once

#include <string>

namespace dls::agents {

struct Behavior {
  std::string name = "truthful";

  /// Bid manipulation: w_i = t_i * bid_multiplier (1.0 = truthful).
  double bid_multiplier = 1.0;

  /// Execution speed: w̃_i = max(t_i, t_i * slowdown). Values < 1 are
  /// clamped — nobody can run faster than capacity (w̃_i >= t_i).
  double slowdown = 1.0;

  /// Phase III load shedding: retains α̂_i * (1 - shed_fraction) of the
  /// received load instead of α̂_i, dumping the rest on the successor.
  double shed_fraction = 0.0;

  /// Phase I/II: send different signed values to different parties.
  bool contradictory_messages = false;

  /// Phase II: forward a miscomputed D_{i+1} to the successor.
  bool miscompute_allocation = false;

  /// Phase IV: inflate the submitted bill by this amount (> 0 cheats).
  double overcharge = 0.0;

  /// Phase I-III: accuse the predecessor without evidence.
  bool false_accusation = false;

  /// Selfish-and-annoying: corrupt the data it forwards (destroys the
  /// solution without direct profit).
  bool corrupt_data = false;

  /// Collusion probe: stay silent about a predecessor's deviation
  /// instead of filing the grievance. Used to demonstrate that DLS-LBL
  /// is strategyproof against *unilateral* deviations only — a shedding
  /// predecessor plus a silent successor beats the mechanism (a known
  /// limitation; the paper claims no collusion resistance).
  bool suppress_grievance = false;

  /// True when every field is at its compliant default (the bid may still
  /// be untruthful — bidding is an input, not an algorithm deviation).
  bool follows_algorithm() const noexcept {
    return slowdown <= 1.0 && shed_fraction == 0.0 &&
           !contradictory_messages && !miscompute_allocation &&
           overcharge == 0.0 && !false_accusation && !corrupt_data &&
           !suppress_grievance;
  }

  bool is_truthful_bid() const noexcept { return bid_multiplier == 1.0; }

  /// The bid this behaviour produces for a true rate `t`.
  double bid(double t) const noexcept { return t * bid_multiplier; }

  /// The actual execution rate for a true rate `t`.
  double actual_rate(double t) const noexcept {
    return slowdown > 1.0 ? t * slowdown : t;
  }

  // Named constructors for the experiment code.
  static Behavior truthful();
  static Behavior overbid(double factor);
  static Behavior underbid(double factor);
  static Behavior slow_execution(double factor);
  static Behavior load_shedder(double shed_fraction);
  static Behavior contradictor();
  static Behavior miscomputer();
  static Behavior overcharger(double amount);
  static Behavior false_accuser();
  static Behavior data_corruptor();
  static Behavior colluding_victim();
};

}  // namespace dls::agents
