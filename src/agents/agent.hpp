// Strategic processors: identity + private type + behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "agents/behavior.hpp"
#include "common/rng.hpp"

namespace dls::agents {

using AgentIndex = std::size_t;

/// One strategic processor P_i (i >= 1; P_0 is the obedient root and has
/// no Behavior).
struct StrategicAgent {
  AgentIndex index = 0;  ///< position in the chain
  double true_rate = 1.0;  ///< t_i, privately known unit processing time
  Behavior behavior = Behavior::truthful();

  double bid() const noexcept { return behavior.bid(true_rate); }
  double actual_rate() const noexcept {
    return behavior.actual_rate(true_rate);
  }
};

/// A population of m strategic agents for a chain of m+1 processors.
class Population {
 public:
  /// Agents must be indexed 1..m contiguously.
  explicit Population(std::vector<StrategicAgent> agents);

  std::size_t size() const noexcept { return agents_.size(); }
  const StrategicAgent& agent(AgentIndex index) const;
  StrategicAgent& agent(AgentIndex index);
  const std::vector<StrategicAgent>& all() const noexcept { return agents_; }

  /// Vector of bids w_1..w_m (index 0 = agent 1).
  std::vector<double> bids() const;
  /// Vector of actual rates w̃_1..w̃_m.
  std::vector<double> actual_rates() const;

  /// All-truthful population with rates drawn LogUniform[lo, hi].
  static Population random_truthful(std::size_t m, common::Rng& rng,
                                    double lo, double hi);

 private:
  std::vector<StrategicAgent> agents_;
};

}  // namespace dls::agents
