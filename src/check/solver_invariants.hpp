// Machine-checked statements of the paper's solver guarantees.
//
// check_linear_solution audits a LinearSolution against every closed
// form Sect. 2 proves about Algorithm 1's output:
//   * the local/global fraction bookkeeping of steps 7-10
//     (D_0 = 1, D_{i+1} = (1 - α̂_i) D_i, α_i = α̂_i D_i, Σα_i = 1);
//   * the collapse equations (2.4)/(2.7) at every reduction step,
//     including w̄_i = α̂_i w_i and w̄_i < z_{i+1} + w̄_{i+1};
//   * Theorem 2.1: every participating processor finishes at the same
//     instant, and that instant is the reported makespan w̄_0;
//   * the w-ordering monotonicity that follows from equal finish times
//     on a chain: the compute-time profile α_i w_i is non-increasing
//     from the root outward (so a processor no slower than its
//     successor always receives at least as much load).
//
// check_counterfactual_identity audits CounterfactualSolver's headline
// claim — rebidding a processor's *own base rate* reproduces the base
// solution bit-for-bit (exact ==, not approximate), for every index.
//
// The checkers throw check::ContractViolation on the first violated
// identity and are deliberately independent re-derivations: they
// recompute each quantity from the network rather than trusting the
// producer's intermediate state.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "check/contracts.hpp"
#include "common/tolerance.hpp"
#include "dlt/counterfactual.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

namespace dls::check {

/// Default relative tolerance for solution audits. Slightly looser than
/// common::kDefaultRelTol: the finish-time recursion compounds one
/// rounding per hop, so 64-processor chains with 18-decade w/z spreads
/// legitimately drift a few ulps past 1e-9's headroom.
inline constexpr double kSolverAuditTol = 1e-7;

/// Throws ContractViolation unless `sol` is a valid Algorithm 1 output
/// for `network` (see file comment for the audited identities).
inline void check_linear_solution(const net::LinearNetwork& network,
                                  const dlt::LinearSolution& sol,
                                  double tol = kSolverAuditTol) {
  const std::size_t n = network.size();
  const auto at = [](const char* name, std::size_t i) {
    return std::string(name) + " at index " + std::to_string(i);
  };
  DLS_CHECK(sol.alpha.size() == n && sol.alpha_hat.size() == n &&
                sol.equivalent_w.size() == n && sol.received.size() == n,
            "solution arrays must match the network size");

  // Terminal collapse seed: α̂_m = 1, w̄_m = w_m.
  DLS_CHECK(common::approx_equal(sol.alpha_hat[n - 1], 1.0, tol),
            "terminal local fraction must be 1");
  DLS_CHECK(common::approx_equal(sol.equivalent_w[n - 1], network.w(n - 1),
                                 tol),
            "terminal equivalent time must be w_m");

  // Backward pass: eqs. (2.4)/(2.7) at every step.
  for (std::size_t i = 0; i < n; ++i) {
    DLS_CHECK(sol.alpha_hat[i] > 0.0 && sol.alpha_hat[i] <= 1.0,
              at("local fraction out of (0, 1]", i));
    DLS_CHECK(common::approx_equal(sol.equivalent_w[i],
                                   sol.alpha_hat[i] * network.w(i), tol),
              at("equivalent time must equal alpha_hat * w", i));
    if (i + 1 == n) continue;
    const double expect = dlt::pair_alpha_hat(network.w(i), network.z(i + 1),
                                              sol.equivalent_w[i + 1]);
    DLS_CHECK(common::approx_equal(sol.alpha_hat[i], expect, tol),
              at("collapse equation (2.7) violated", i));
    // Collapsing always beats shipping everything onward.
    DLS_CHECK(common::approx_le(sol.equivalent_w[i],
                                network.z(i + 1) + sol.equivalent_w[i + 1],
                                tol),
              at("equivalent time must improve on the bare tail", i));
  }

  // Forward pass: the D_i / α_i bookkeeping and Σα = 1.
  DLS_CHECK(sol.received[0] == 1.0, "the root receives the full unit load");
  double alpha_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    DLS_CHECK(sol.alpha[i] >= 0.0, at("negative load fraction", i));
    DLS_CHECK(common::approx_equal(sol.alpha[i],
                                   sol.received[i] * sol.alpha_hat[i], tol),
              at("alpha must equal alpha_hat * received", i));
    if (i + 1 < n) {
      DLS_CHECK(
          common::approx_equal(sol.received[i + 1],
                               sol.received[i] * (1.0 - sol.alpha_hat[i]),
                               tol),
          at("received-load recursion violated", i + 1));
    }
    alpha_sum += sol.alpha[i];
  }
  DLS_CHECK(common::approx_equal(alpha_sum, 1.0, tol),
            "load fractions must sum to 1");
  DLS_CHECK(common::approx_equal(sol.makespan, sol.equivalent_w[0], tol),
            "makespan must be the root equivalent time w̄_0");

  // Theorem 2.1: equal finish times among participants, equal to the
  // makespan; and the monotone compute-time profile it implies.
  DLS_CHECK(dlt::finish_time_spread(network, sol.alpha) <= tol,
            "participating processors must finish simultaneously");
  const std::vector<double> finish = dlt::finish_times(network, sol.alpha);
  double prev_work = -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (sol.alpha[i] <= 0.0) continue;
    DLS_CHECK(common::approx_equal(finish[i], sol.makespan, tol),
              at("participant finish time must equal the makespan", i));
    const double work = sol.alpha[i] * network.w(i);
    DLS_CHECK(prev_work < 0.0 || common::approx_ge(prev_work, work, tol),
              at("compute-time profile must be non-increasing", i));
    prev_work = work;
  }

  // Reduction trace, when the producer recorded one.
  if (!sol.steps.empty()) {
    DLS_CHECK(sol.steps.size() == n - 1,
              "reduction trace must hold one step per collapsed processor");
    for (std::size_t k = 0; k < sol.steps.size(); ++k) {
      const dlt::ReductionStep& step = sol.steps[k];
      const std::size_t i = n - 2 - k;  // far end first
      DLS_CHECK(step.index == i, at("reduction trace out of order", k));
      DLS_CHECK(step.alpha_hat == sol.alpha_hat[i] &&
                    step.equivalent_w == sol.equivalent_w[i] &&
                    step.tail_w == sol.equivalent_w[i + 1] &&
                    step.link_z == network.z(i + 1),
                at("reduction trace disagrees with the solution", k));
    }
  }
}

/// Replays the full Algorithm 1 recurrence for ONE lane of a batched
/// SoA solve and compares every stored quantity with exact == — the
/// batch engine's contract is bit-identity with the scalar solver, so
/// a miscompiled or misindexed SIMD lane surfaces here as a
/// ContractViolation instead of a silently wrong answer.
///
/// Pointers are pre-offset to the lane. `w` advances `w_stride` doubles
/// per chain row and `z` advances `z_stride` (the batch engine keeps
/// instance data lane-major, stride 1, and solution state
/// lane-interleaved, stride = number of lanes). `z` may be null when
/// n == 1.
inline void check_batch_lane(const double* w, std::size_t w_stride,
                             const double* z, std::size_t z_stride,
                             const double* alpha, const double* alpha_hat,
                             const double* equivalent_w,
                             const double* received, double makespan_value,
                             std::size_t n, std::size_t stride,
                             std::size_t lane) {
  const auto at = [lane](const char* name, std::size_t i) {
    return std::string(name) + " at lane " + std::to_string(lane) +
           ", index " + std::to_string(i);
  };
  // Backward pass replay: exact scalar arithmetic, compared bit-for-bit.
  double eqw = w[(n - 1) * w_stride];
  DLS_CHECK(alpha_hat[(n - 1) * stride] == 1.0,
            at("batch lane terminal fraction must be exactly 1", n - 1));
  DLS_CHECK(equivalent_w[(n - 1) * stride] == eqw,
            at("batch lane terminal equivalent time must be w_m", n - 1));
  for (std::size_t i = n - 1; i-- > 0;) {
    const double ah =
        dlt::pair_alpha_hat(w[i * w_stride], z[i * z_stride], eqw);
    eqw = ah * w[i * w_stride];
    DLS_CHECK(alpha_hat[i * stride] == ah,
              at("batch lane diverges from scalar alpha_hat", i));
    DLS_CHECK(equivalent_w[i * stride] == eqw,
              at("batch lane diverges from scalar equivalent_w", i));
  }
  DLS_CHECK(makespan_value == eqw,
            "batch lane " + std::to_string(lane) +
                " makespan diverges from the scalar reduction");
  // Forward pass replay.
  double remaining = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double ah = alpha_hat[i * stride];
    DLS_CHECK(received[i * stride] == remaining,
              at("batch lane diverges from scalar received", i));
    DLS_CHECK(alpha[i * stride] == remaining * ah,
              at("batch lane diverges from scalar alpha", i));
    remaining *= (1.0 - ah);
  }
}

/// Throws ContractViolation unless rebidding every processor's own base
/// rate reproduces the base solution exactly (the incremental solver's
/// bit-identity claim). O(n^2); meant for DCHECK-tier wiring and tests.
inline void check_counterfactual_identity(dlt::CounterfactualSolver& solver) {
  const dlt::LinearSolution& base = solver.base();
  for (std::size_t i = 0; i < solver.size(); ++i) {
    const dlt::CounterfactualSolver::Rebid r = solver.rebid(i, solver.w(i));
    const double pred = i > 0 ? base.alpha_hat[i - 1] : 0.0;
    DLS_CHECK(r.alpha == base.alpha[i] && r.alpha_hat == base.alpha_hat[i] &&
                  r.equivalent_w == base.equivalent_w[i] &&
                  r.alpha_hat_pred == pred && r.makespan == base.makespan,
              "identity rebid of P" + std::to_string(i) +
                  " must reproduce the base solution bit-for-bit");
  }
}

}  // namespace dls::check
