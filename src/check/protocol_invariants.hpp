// Machine-checked protocol-state legality.
//
// PhaseOrderChecker encodes the paper's four-phase message order as a
// tiny state machine: a round moves strictly forward through
// bids (I) -> allocation (II) -> execution (III) -> settlement (IV),
// and the only legal shortcut is the abort the paper prescribes when a
// Phase I/II grievance is substantiated. Any other transition is a
// protocol-implementation bug and throws ContractViolation.
//
// check_token_split encodes the Λ-token rule of footnote 1: when a
// processor retains part of an identified batch and forwards the rest,
// the two parts must exactly partition what it received, in order, with
// every identifier valid — conservation of proof-of-receipt.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "check/contracts.hpp"
#include "protocol/tokens.hpp"

namespace dls::check {

/// The stations of one protocol round, in legal order.
enum class ProtocolPhase {
  kSetup,       ///< PKI enrolment, ledger accounts, bid solution
  kBids,        ///< Phase I: equivalent bids flow toward the root
  kAllocation,  ///< Phase II: allocation messages flow outward
  kExecution,   ///< Phase III: load distribution and computation
  kSettlement,  ///< Phase IV: metering, billing, audits
  kDone,        ///< round finalised (normally or by abort)
};

inline std::string to_string(ProtocolPhase phase) {
  switch (phase) {
    case ProtocolPhase::kSetup:
      return "setup";
    case ProtocolPhase::kBids:
      return "bids";
    case ProtocolPhase::kAllocation:
      return "allocation";
    case ProtocolPhase::kExecution:
      return "execution";
    case ProtocolPhase::kSettlement:
      return "settlement";
    case ProtocolPhase::kDone:
      return "done";
  }
  return "unknown";
}

/// Forward-only phase tracker. advance() throws ContractViolation on an
/// illegal transition; the only non-adjacent move it accepts is the
/// substantiated-grievance abort from Phase I/II straight to kDone.
class PhaseOrderChecker {
 public:
  ProtocolPhase current() const noexcept { return phase_; }

  void advance(ProtocolPhase next) {
    const bool adjacent =
        static_cast<int>(next) == static_cast<int>(phase_) + 1;
    const bool abort = next == ProtocolPhase::kDone &&
                       (phase_ == ProtocolPhase::kBids ||
                        phase_ == ProtocolPhase::kAllocation);
    DLS_CHECK(adjacent || abort, "illegal protocol phase transition " +
                                     to_string(phase_) + " -> " +
                                     to_string(next));
    phase_ = next;
  }

 private:
  ProtocolPhase phase_ = ProtocolPhase::kSetup;
};

/// Throws ContractViolation unless (retained, forwarded) is a legal
/// split of `received`: the retained prefix plus the forwarded suffix
/// reproduce the received batch identifier-for-identifier, and every
/// identifier was genuinely issued by `authority`.
inline void check_token_split(const protocol::TokenAuthority& authority,
                              const protocol::TokenBatch& received,
                              const protocol::TokenBatch& retained,
                              const protocol::TokenBatch& forwarded) {
  DLS_CHECK(retained.blocks() + forwarded.blocks() == received.blocks(),
            "token split must conserve the received block count");
  for (std::size_t k = 0; k < received.ids.size(); ++k) {
    const std::uint64_t expect =
        k < retained.ids.size() ? retained.ids[k]
                                : forwarded.ids[k - retained.ids.size()];
    DLS_CHECK(received.ids[k] == expect,
              "token split must partition the batch in order");
  }
  DLS_CHECK(authority.validate(received),
            "every identifier in a split batch must have been issued");
}

}  // namespace dls::check
