#include "check/contracts.hpp"

#include <atomic>
#include <sstream>

namespace dls::check {

namespace {

std::atomic<std::size_t> g_violations{0};

}  // namespace

std::size_t violation_count() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

namespace detail {

void fail(const char* expr, const std::string& message,
          const std::source_location& loc) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": contract `" << expr
     << "` violated";
  if (!message.empty()) os << ": " << message;
  throw ContractViolation(os.str());
}

}  // namespace detail

}  // namespace dls::check
