// Contract-checking macros for the dlsmech libraries.
//
// DLS_REQUIRE (common/error.hpp) guards *caller* mistakes at API
// boundaries and is always on. The macros here guard *our own*
// arithmetic — the closed-form identities the paper proves (equal
// finish times, the Q = C + B decomposition, ledger conservation) —
// and are graded by cost:
//
//   DLS_CHECK(expr, msg)   O(1)-ish internal invariants. On unless the
//                          build sets DLS_CHECK_LEVEL=0.
//   DLS_DCHECK(expr, msg)  Potentially O(n) or O(n^2) validation (full
//                          solution audits, counterfactual bit-identity
//                          sweeps). On in Debug and CI builds
//                          (DLS_CHECK_LEVEL >= 2), compiled out of
//                          release binaries.
//
// The severity switch is the compile-time constant DLS_CHECK_LEVEL:
//   0 — everything off (benchmarking emergencies only; never CI)
//   1 — DLS_CHECK on (default for optimised builds)
//   2 — DLS_CHECK and DLS_DCHECK on (default when NDEBUG is not
//       defined; forced on in the sanitizer CI jobs)
// CMake exposes it as the DLS_CHECK_LEVEL cache variable and applies it
// project-wide so every translation unit agrees on the level.
//
// A failed contract throws dls::check::ContractViolation (a dls::Error)
// carrying the expression, message and source location, and bumps a
// process-wide counter that tests use to assert a checker actually
// fired. Disabled macros still parse their arguments (inside sizeof)
// so a level change cannot bit-rot call sites.
#pragma once

#include <cstddef>
#include <source_location>
#include <string>

#include "common/error.hpp"

#ifndef DLS_CHECK_LEVEL
#ifdef NDEBUG
#define DLS_CHECK_LEVEL 1
#else
#define DLS_CHECK_LEVEL 2
#endif
#endif

namespace dls::check {

/// An internal invariant did not hold: the library computed something
/// inconsistent with the paper's closed forms. Always a bug in dlsmech
/// (or memory corruption), never a caller error.
class ContractViolation : public Error {
 public:
  explicit ContractViolation(const std::string& what) : Error(what) {}
};

/// The level this binary was compiled with.
constexpr int compiled_level() noexcept { return DLS_CHECK_LEVEL; }

/// True when contracts of the given level are compiled in.
constexpr bool enabled(int level) noexcept { return DLS_CHECK_LEVEL >= level; }

/// Number of ContractViolations thrown so far in this process (atomic).
std::size_t violation_count() noexcept;

namespace detail {

/// Formats and throws; also bumps violation_count().
[[noreturn]] void fail(const char* expr, const std::string& message,
                       const std::source_location& loc);

}  // namespace detail

}  // namespace dls::check

#if DLS_CHECK_LEVEL >= 1
#define DLS_CHECK(expr, message)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      ::dls::check::detail::fail(#expr, (message),                    \
                                 std::source_location::current());    \
    }                                                                 \
  } while (false)
#else
#define DLS_CHECK(expr, message)                                      \
  do {                                                                \
    (void)sizeof(!(expr));                                            \
    (void)sizeof((message));                                          \
  } while (false)
#endif

#if DLS_CHECK_LEVEL >= 2
#define DLS_DCHECK(expr, message) DLS_CHECK(expr, message)
#else
#define DLS_DCHECK(expr, message)                                     \
  do {                                                                \
    (void)sizeof(!(expr));                                            \
    (void)sizeof((message));                                          \
  } while (false)
#endif
