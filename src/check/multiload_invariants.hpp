// Machine-checked statements of the multi-load scheduling guarantees.
//
// check_multiload_schedule replays the MultiLoadSolver recurrence
// installment by installment and audits the Comments-paper corrections
// to multi-load chain scheduling as hard invariants:
//   * conservation — every installment's size is the exact chunking of
//     its load (bit-for-bit), and a load's chunks sum back to its size;
//   * dispatch legality — the installment sequence is exactly the
//     policy's dispatch order (FIFO or round-robin over release order);
//   * ingress causality — staging is one-port and starts no earlier
//     than the load's release; distribution starts no earlier than the
//     chunk finished staging;
//   * store-and-forward causality — P_i computes a chunk only after the
//     chunk's data fully arrived at P_i (compute_start >= arrival);
//   * one-port non-overlap — consecutive chunks never overlap on any
//     link, and compute intervals never overlap on any processor;
//   * the completion rule — an unblocked chunk completes at the
//     Theorem 2.1 closed form comm_start + size·makespan (which is also
//     within tolerance of its max finish time); a blocked chunk
//     completes at its replayed max finish, exactly;
//   * the serialized baseline replay, and pipelined <= serialized
//     (asserted for FIFO always, and for interleaved dispatch when all
//     releases coincide — a late-release load can legitimately wedge
//     between an interleaved peer's chunks and lose to strict rounds).
//
// Replayed quantities are compared with exact == (the checker mirrors
// the solver's arithmetic expression for expression, like
// check_batch_lane does for SoA lanes); genuinely independent
// identities (closed form vs recurrence) use kSolverAuditTol.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <vector>

#include "check/contracts.hpp"
#include "check/solver_invariants.hpp"
#include "common/tolerance.hpp"
#include "multiload/solver.hpp"
#include "multiload/types.hpp"
#include "net/networks.hpp"

namespace dls::check {

/// Throws ContractViolation unless `schedule` is a valid MultiLoadSolver
/// output for (network, loads, config). See the file comment for the
/// audited invariants.
inline void check_multiload_schedule(const net::LinearNetwork& network,
                                     const std::vector<multiload::LoadSpec>& loads,
                                     const multiload::MultiLoadConfig& config,
                                     const multiload::MultiLoadSchedule& schedule,
                                     double tol = kSolverAuditTol) {
  namespace ml = dls::multiload;
  const std::size_t n = network.size();
  const std::size_t chunks = std::max<std::size_t>(1, config.installments_per_load);
  const auto at = [](const char* name, std::size_t t) {
    return std::string(name) + " at installment " + std::to_string(t);
  };

  DLS_CHECK(schedule.loads.size() == loads.size(),
            "schedule must report one outcome per load");
  DLS_CHECK(schedule.installments.size() == loads.size() * chunks,
            "schedule must hold installments_per_load chunks per load");

  // Replay the solver's unit-offset precomputation expression for
  // expression (exact == downstream depends on it).
  std::vector<double> unit_arrival(n, 0.0);
  std::vector<double> unit_compute(n, 0.0);
  unit_compute[0] = schedule.chain.alpha[0] * network.w(0);
  for (std::size_t i = 1; i < n; ++i) {
    unit_arrival[i] =
        unit_arrival[i - 1] + schedule.chain.received[i] * network.z(i);
    unit_compute[i] = schedule.chain.alpha[i] * network.w(i);
  }

  const auto order = ml::dispatch_order(loads, config);
  std::vector<double> link_free(network.workers(), 0.0);
  std::vector<double> proc_free(n, 0.0);
  std::vector<double> size_sum(loads.size(), 0.0);
  std::vector<ml::LoadOutcome> outcomes(loads.size());
  double ingress_free = 0.0;

  for (std::size_t t = 0; t < order.size(); ++t) {
    const ml::Installment& inst = schedule.installments[t];
    const auto [load_index, chunk] = order[t];
    const ml::LoadSpec& load = loads[load_index];
    DLS_CHECK(inst.load == load_index && inst.index_in_load == chunk,
              at("dispatch order diverges from the policy", t));
    DLS_CHECK(inst.arrival.size() == n && inst.compute_start.size() == n &&
                  inst.finish.size() == n,
              at("installment timeline must cover every processor", t));

    // Conservation: the exact chunking, bit for bit.
    const double s = ml::installment_size(load.size, chunks, chunk);
    DLS_CHECK(inst.size == s, at("installment size diverges from chunking", t));
    DLS_CHECK(inst.size > 0.0, at("installment size must be positive", t));
    size_sum[load_index] += inst.size;

    // Ingress staging: one-port, release-respecting.
    double stage_start = load.release;
    double stage_done = load.release;
    if (config.ingress_z > 0.0) {
      stage_start = std::max(load.release, ingress_free);
      stage_done = stage_start + s * config.ingress_z;
      ingress_free = stage_done;
    }
    DLS_CHECK(inst.stage_start == stage_start,
              at("stage_start diverges from the ingress replay", t));
    DLS_CHECK(inst.stage_done == stage_done,
              at("stage_done diverges from the ingress replay", t));

    // One-port links: the chunk may not enter link l_j before the link
    // finished the previous chunk.
    double comm_start = stage_done;
    for (std::size_t j = 1; j <= network.workers(); ++j) {
      comm_start =
          std::max(comm_start, link_free[j - 1] - s * unit_arrival[j - 1]);
    }
    DLS_CHECK(inst.comm_start == comm_start,
              at("comm_start diverges from the one-port replay", t));
    for (std::size_t j = 1; j <= network.workers(); ++j) {
      // Tolerance, not ==: comm_start folds link_free through a
      // subtract-then-re-add (max over link_free − s·A, plus s·A back),
      // which can land one ulp below link_free — an independent
      // identity, not a replayed expression.
      const double link_begin = comm_start + s * unit_arrival[j - 1];
      DLS_CHECK(common::approx_ge(link_begin, link_free[j - 1], tol),
                at("one-port link overlap", t) + " on link " + std::to_string(j));
      link_free[j - 1] = comm_start + s * unit_arrival[j];
    }

    // Per-processor causality, non-overlap and the finish recurrence.
    bool blocked = false;
    double max_finish = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double arrival =
          i == 0 ? stage_done : comm_start + s * unit_arrival[i];
      DLS_CHECK(inst.arrival[i] == arrival,
                at("arrival diverges from store-and-forward replay", t));
      const double start = std::max(arrival, proc_free[i]);
      DLS_CHECK(inst.compute_start[i] == start,
                at("compute_start diverges from the replay", t));
      DLS_CHECK(inst.compute_start[i] >= arrival,
                at("causality: compute before full arrival", t));
      DLS_CHECK(inst.compute_start[i] >= proc_free[i],
                at("one-port processor overlap", t));
      if (start > arrival) blocked = true;
      const double finish = start + s * unit_compute[i];
      DLS_CHECK(inst.finish[i] == finish,
                at("finish diverges from the replay", t));
      proc_free[i] = finish;
      max_finish = std::max(max_finish, finish);
    }
    DLS_CHECK(inst.blocked == blocked, at("blocked flag diverges", t));

    // Completion rule: closed form when unblocked, recurrence otherwise;
    // the two must agree within tolerance whenever the closed form
    // applies (Theorem 2.1 scaled to the chunk).
    const bool closed_form = !blocked && network.workers() > 0;
    const double completion =
        closed_form ? comm_start + s * schedule.chain.makespan : max_finish;
    DLS_CHECK(inst.completion == completion,
              at("completion diverges from the completion rule", t));
    if (closed_form) {
      DLS_CHECK(common::approx_equal(completion, max_finish, tol),
                at("closed-form completion diverges from finish times", t));
    }

    ml::LoadOutcome& outcome = outcomes[load_index];
    if (chunk == 0) outcome.start = inst.comm_start;
    outcome.completion = std::max(outcome.completion, inst.completion);
  }

  double makespan = 0.0;
  for (std::size_t k = 0; k < loads.size(); ++k) {
    const auto lk = [&](const char* name) {
      return std::string(name) + " for load " + std::to_string(k);
    };
    DLS_CHECK(common::approx_equal(size_sum[k], loads[k].size, tol),
              lk("installment sizes must sum to the load size"));
    const ml::LoadOutcome& got = schedule.loads[k];
    DLS_CHECK(got.installments == chunks, lk("installment count diverges"));
    DLS_CHECK(got.start == outcomes[k].start, lk("load start diverges"));
    DLS_CHECK(got.completion == outcomes[k].completion,
              lk("load completion diverges"));
    const bool met = loads[k].deadline <= 0.0 ||
                     outcomes[k].completion <= loads[k].deadline;
    DLS_CHECK(got.deadline_met == met, lk("deadline verdict diverges"));
    DLS_CHECK(got.completion >= got.start, lk("completion before start"));
    makespan = std::max(makespan, outcomes[k].completion);
  }
  DLS_CHECK(schedule.makespan == makespan,
            "makespan must be the max load completion");

  // Serialized strict-rounds replay (release order, stage then run).
  std::vector<std::size_t> by_release(loads.size());
  for (std::size_t k = 0; k < loads.size(); ++k) by_release[k] = k;
  std::stable_sort(by_release.begin(), by_release.end(),
                   [&loads](std::size_t a, std::size_t b) {
                     return loads[a].release < loads[b].release;
                   });
  double clock = 0.0;
  for (std::size_t k : by_release) {
    const double start = std::max(loads[k].release, clock);
    clock = start +
            loads[k].size * (config.ingress_z + schedule.chain.makespan);
  }
  DLS_CHECK(schedule.serialized_makespan == clock,
            "serialized baseline diverges from the strict-rounds replay");

  // Serialized baseline replay, and the pipelining guarantee. A FIFO
  // pipeline only ever starts chunks earlier than strict rounds would,
  // so it can never lose; interleaved dispatch shares that guarantee
  // only when no load is released mid-schedule.
  bool releases_equal = true;
  for (const ml::LoadSpec& load : loads) {
    releases_equal = releases_equal && load.release == loads.front().release;
  }
  if (config.policy == ml::DispatchPolicy::kFifo || releases_equal) {
    DLS_CHECK(common::approx_le(schedule.makespan,
                                schedule.serialized_makespan, tol),
              "pipelined dispatch must not lose to serialized rounds");
  }
}

}  // namespace dls::check
