// Machine-checked statements of the mechanism's payment guarantees.
//
// check_assessment audits a DlsLblResult against the Sect. 4 payment
// decomposition, identity by identity:
//   * the root (4.3): reimbursed exactly its cost, zero utility;
//   * valuation V_j = -α̃_j w̃_j (4.5) and recompense E_j (4.8);
//   * compensation C_j = α_j w̃_j + E_j (4.7);
//   * bonus B_j = w_{j-1} - w̄_{j-1}(α(bids), actuals) (4.9), with
//     ŵ_j per (4.10)/(4.11) — or ŵ_j = w̄_j under the verification
//     ablation;
//   * payment Q_j = C_j + B_j [+ S] when α̃_j > 0, else Q_j = 0
//     (4.6)/(4.13), and utility U_j = V_j + Q_j (4.4);
//   * bonus non-negativity for truthful executors: a processor whose
//     metered rate matches its bid can never see B_j < 0 (the Lemma 5.3
//     direction that makes truthful bidding safe);
//   * the totals: Σ Q_j and the mechanism's cost including the root.
//
// check_ledger_conservation audits the double-entry ledger: money is
// conserved (all balances, treasury included, sum to zero) and every
// posted transfer is a finite non-negative amount.
//
// Like the solver checkers, these re-derive every quantity from the bid
// network and the per-processor inputs instead of trusting the
// producer's intermediates.
#pragma once

#include <cmath>
#include <cstddef>
#include <string>

#include "check/contracts.hpp"
#include "check/solver_invariants.hpp"
#include "common/tolerance.hpp"
#include "core/dls_lbl.hpp"
#include "core/payment_rules.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "payment/ledger.hpp"

namespace dls::check {

/// Default relative tolerance for payment audits (same headroom
/// rationale as kSolverAuditTol).
inline constexpr double kPaymentAuditTol = 1e-7;

/// Throws ContractViolation unless `result` is internally consistent
/// with the Sect. 4 payment rules for `bid_network` under `config`.
/// Pass check_solution = false when the embedded LinearSolution was
/// already audited by the producer (avoids the double O(n) sweep).
inline void check_assessment(const net::LinearNetwork& bid_network,
                             const core::DlsLblResult& result,
                             const core::MechanismConfig& config,
                             double tol = kPaymentAuditTol,
                             bool check_solution = true) {
  const std::size_t n = bid_network.size();
  const auto at = [](const char* name, std::size_t j) {
    return std::string(name) + " for P" + std::to_string(j);
  };
  DLS_CHECK(n >= 2, "an assessment needs at least one strategic worker");
  DLS_CHECK(result.processors.size() == n,
            "assessment must cover every processor");
  if (check_solution) {
    check_linear_solution(bid_network, result.solution, tol);
  }

  // The obedient root (4.3).
  {
    const core::Assessment& root = result.processors[0];
    const double cost = root.computed * root.actual_rate;
    DLS_CHECK(root.index == 0, "root assessment must carry index 0");
    DLS_CHECK(common::approx_equal(root.money.valuation, -cost, tol),
              "root valuation must be its computing cost");
    DLS_CHECK(common::approx_equal(root.money.payment, cost, tol) &&
                  common::approx_equal(root.money.compensation, cost, tol),
              "root must be reimbursed exactly its cost");
    DLS_CHECK(common::approx_equal(root.money.utility, 0.0, tol),
              "the obedient root's utility must be zero");
  }

  double total_payment = 0.0;
  for (std::size_t j = 1; j < n; ++j) {
    const core::Assessment& a = result.processors[j];
    const core::PaymentBreakdown& m = a.money;
    DLS_CHECK(a.index == j, at("assessment index mismatch", j));
    DLS_CHECK(common::approx_equal(a.alpha, result.solution.alpha[j], tol) &&
                  common::approx_equal(a.alpha_hat,
                                       result.solution.alpha_hat[j], tol) &&
                  common::approx_equal(a.equivalent_bid,
                                       result.solution.equivalent_w[j], tol),
              at("assessment disagrees with the bid solution", j));

    // ŵ_j per (4.10)/(4.11), or the ablated bid-trusting variant.
    const double expect_w_hat =
        config.verify_actual_rates
            ? core::w_hat(j + 1 == n, a.bid_rate, a.actual_rate, a.alpha_hat,
                          a.equivalent_bid)
            : a.equivalent_bid;
    DLS_CHECK(common::approx_equal(a.w_hat, expect_w_hat, tol),
              at("verified rate ŵ disagrees with (4.10)/(4.11)", j));

    // Valuation (4.5) and recompense (4.8).
    DLS_CHECK(common::approx_equal(m.valuation,
                                   -a.computed * a.actual_rate, tol),
              at("valuation must be -α̃ w̃", j));
    DLS_CHECK(m.recompense >= 0.0, at("negative recompense", j));
    const double expect_recompense =
        a.computed >= a.alpha ? (a.computed - a.alpha) * a.actual_rate : 0.0;

    if (a.computed <= 0.0) {
      // Q_j = 0: no work, no pay (4.6).
      DLS_CHECK(m.payment == 0.0 && m.compensation == 0.0 &&
                    m.bonus == 0.0 && m.solution_bonus == 0.0,
                at("a processor that computed nothing must be paid nothing",
                   j));
      DLS_CHECK(common::approx_equal(m.utility, m.valuation, tol),
                at("utility must collapse to the valuation", j));
      continue;
    }

    DLS_CHECK(common::approx_equal(m.recompense, expect_recompense, tol),
              at("recompense disagrees with (4.8)", j));
    DLS_CHECK(common::approx_equal(
                  m.compensation, a.alpha * a.actual_rate + m.recompense,
                  tol),
              at("compensation disagrees with (4.7)", j));

    // Bonus (4.9) through the realised two-processor reduction.
    const double realized = dlt::pair_realized_w(
        result.solution.alpha_hat[j - 1], bid_network.w(j - 1),
        bid_network.z(j), a.w_hat);
    DLS_CHECK(common::approx_equal(m.realized_equivalent, realized, tol),
              at("realised equivalent time disagrees with (2.3)", j));
    DLS_CHECK(common::approx_equal(m.bonus,
                                   bid_network.w(j - 1) - realized, tol),
              at("bonus disagrees with (4.9)", j));
    if (common::approx_equal(a.actual_rate, a.bid_rate, tol)) {
      DLS_CHECK(common::approx_ge(m.bonus, 0.0, tol),
                at("truthful execution must never forfeit bonus", j));
    }

    // Solution bonus (4.13) and the Q/U assembly (4.4)/(4.6).
    DLS_CHECK(m.solution_bonus == 0.0 ||
                  (config.solution_bonus_enabled &&
                   common::approx_equal(m.solution_bonus,
                                        config.solution_bonus, tol)),
              at("unexpected solution bonus", j));
    DLS_CHECK(common::approx_equal(
                  m.payment, m.compensation + m.bonus + m.solution_bonus,
                  tol),
              at("payment must decompose as Q = C + B + S", j));
    DLS_CHECK(common::approx_equal(m.utility, m.valuation + m.payment, tol),
              at("utility must decompose as U = V + Q", j));
    total_payment += m.payment;
  }

  DLS_CHECK(common::approx_equal(result.total_payment, total_payment, tol),
            "total payment must be the sum over strategic processors");
  DLS_CHECK(common::approx_equal(
                result.mechanism_cost,
                total_payment + result.processors[0].money.compensation,
                tol),
            "mechanism cost must add the root reimbursement");
}

/// Throws ContractViolation unless the ledger conserves money and every
/// posted transfer is well-formed. Scale-aware: the residual is compared
/// against the total transferred volume.
inline void check_ledger_conservation(const payment::Ledger& ledger,
                                      double tol = kPaymentAuditTol) {
  double volume = 0.0;
  for (const payment::Transfer& t : ledger.history()) {
    DLS_CHECK(std::isfinite(t.amount) && t.amount >= 0.0,
              "transfer amounts must be finite and non-negative");
    volume += t.amount;
  }
  DLS_CHECK(std::abs(ledger.conservation_residual()) <=
                tol * std::max(volume, 1.0),
            "ledger must conserve money across all accounts");
}

}  // namespace dls::check
