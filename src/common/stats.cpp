#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dls::common {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

Summary OnlineStats::summary() const noexcept {
  return Summary{n_, mean(), stddev(), min_, max_, sum_};
}

Summary summarize(std::span<const double> xs) noexcept {
  OnlineStats acc;
  for (const double x : xs) acc.add(x);
  return acc.summary();
}

double percentile(std::span<const double> xs, double p) {
  DLS_REQUIRE(!xs.empty(), "percentile of empty sample");
  DLS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p must be in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  DLS_REQUIRE(xs.size() == ys.size(), "fit_linear requires paired samples");
  DLS_REQUIRE(xs.size() >= 2, "fit_linear requires >= 2 points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  DLS_REQUIRE(sxx > 0.0, "fit_linear requires non-constant xs");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r2 = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

std::size_t argmax(std::span<const double> xs) {
  DLS_REQUIRE(!xs.empty(), "argmax of empty sample");
  std::size_t best = 0;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] > xs[best]) best = i;
  }
  return best;
}

}  // namespace dls::common
