#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dls::common {

std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

Xoshiro256::result_type Xoshiro256::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256::long_jump() noexcept {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x76e15d3efefdcbbfull, 0xc5004e441c522fb3ull, 0x77710069854ee241ull,
      0x39109bb02acbe635ull};
  std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
  for (const std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (std::uint64_t{1} << b)) {
        for (std::size_t i = 0; i < 4; ++i) acc[i] ^= s_[i];
      }
      (*this)();
    }
  }
  s_ = acc;
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DLS_REQUIRE(lo < hi, "uniform requires lo < hi");
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DLS_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(gen_());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % span;
  std::uint64_t draw;
  do {
    draw = gen_();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal(double mean, double stddev) {
  DLS_REQUIRE(stddev >= 0.0, "normal requires stddev >= 0");
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double mag =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
  return mean + stddev * mag;
}

double Rng::exponential(double lambda) {
  DLS_REQUIRE(lambda > 0.0, "exponential requires lambda > 0");
  double u = 0.0;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

double Rng::log_uniform(double lo, double hi) {
  DLS_REQUIRE(lo > 0.0 && lo < hi, "log_uniform requires 0 < lo < hi");
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

bool Rng::bernoulli(double p) {
  DLS_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli requires p in [0,1]");
  return uniform01() < p;
}

Rng Rng::spawn(std::uint64_t index) noexcept {
  // Mix the child index through SplitMix64 so adjacent indices give
  // decorrelated seeds, then offset by fresh bits from the parent.
  std::uint64_t mix = index ^ 0xa0761d6478bd642full;
  const std::uint64_t child_seed = splitmix64_next(mix) ^ gen_();
  return Rng(child_seed);
}

}  // namespace dls::common
