// Aligned console tables for the bench binaries and examples. The bench
// harness prints the same rows the paper's evaluation would, so the output
// has to be stable and diff-friendly.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <variant>
#include <vector>

namespace dls::common {

/// How a column's cells are aligned.
enum class Align { kLeft, kRight };

/// One cell: text, integer, or fixed-precision double.
class Cell {
 public:
  Cell(std::string text) : value_(std::move(text)) {}          // NOLINT
  Cell(const char* text) : value_(std::string(text)) {}        // NOLINT
  Cell(std::int64_t n) : value_(n) {}                          // NOLINT
  Cell(int n) : value_(static_cast<std::int64_t>(n)) {}        // NOLINT
  Cell(std::size_t n) : value_(static_cast<std::int64_t>(n)) {}  // NOLINT
  Cell(double x, int precision = 6) : value_(Real{x, precision}) {}  // NOLINT

  /// Rendered contents of the cell.
  std::string str() const;

 private:
  struct Real {
    double x;
    int precision;
  };
  std::variant<std::string, std::int64_t, Real> value_;
};

/// A simple fixed-schema table: declare columns, append rows, print.
class Table {
 public:
  struct Column {
    std::string header;
    Align align = Align::kRight;
  };

  explicit Table(std::vector<Column> columns);

  /// Appends a row; the number of cells must equal the number of columns.
  void add_row(std::vector<Cell> cells);

  std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with a header rule, two-space column gutters.
  void print(std::ostream& os) const;

  /// Renders as CSV (no alignment, comma-separated, quoted when needed).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<Column> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats `x` with `precision` digits after the point.
std::string format_double(double x, int precision);

}  // namespace dls::common
