#include "common/optimize.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dls::common {

GoldenResult golden_minimize(const std::function<double(double)>& f,
                             double lo, double hi, int iterations) {
  DLS_REQUIRE(lo < hi, "golden_minimize requires lo < hi");
  DLS_REQUIRE(iterations >= 1, "need at least one iteration");
  constexpr double kPhi = 0.6180339887498949;  // 1/golden ratio
  double a = lo, b = hi;
  double x1 = b - kPhi * (b - a);
  double x2 = a + kPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int iter = 0; iter < iterations; ++iter) {
    if (f1 <= f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kPhi * (b - a);
      f2 = f(x2);
    }
  }
  const double x = f1 <= f2 ? x1 : x2;
  return GoldenResult{x, std::min(f1, f2)};
}

}  // namespace dls::common
