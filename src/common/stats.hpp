// Streaming and batch descriptive statistics used by the experiment
// harness and the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dls::common {

/// Batch summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
};

/// Welford online accumulator: numerically stable mean/variance without
/// storing the sample.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1); 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return sum_; }
  Summary summary() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch summary of `xs`; empty input yields a zeroed Summary.
Summary summarize(std::span<const double> xs) noexcept;

/// Linearly-interpolated percentile, p in [0, 100]. Sorts a copy.
/// Requires a non-empty sample.
double percentile(std::span<const double> xs, double p);

/// Ordinary least squares y = a + b*x over paired samples.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;  ///< coefficient of determination
};

/// Requires xs.size() == ys.size() >= 2 and non-constant xs.
LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Index of the maximum element; requires non-empty input. Ties resolve to
/// the first maximum.
std::size_t argmax(std::span<const double> xs);

}  // namespace dls::common
