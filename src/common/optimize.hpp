// Tiny derivative-free 1-D minimisation used by schedule optimisers.
#pragma once

#include <functional>

namespace dls::common {

struct GoldenResult {
  double x = 0.0;
  double value = 0.0;
};

/// Golden-section search for a (quasi-)unimodal f on [lo, hi].
/// `iterations` halves the bracket ~0.69x each step; 60 iterations give
/// machine-precision brackets on unit-scale intervals.
GoldenResult golden_minimize(const std::function<double(double)>& f,
                             double lo, double hi, int iterations = 60);

}  // namespace dls::common
