#include "common/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace dls::common {

namespace {

std::string short_number(double x) {
  std::ostringstream os;
  const double ax = std::abs(x);
  if (x == 0.0) {
    os << "0";
  } else if (ax >= 1e5 || ax < 1e-3) {
    os << std::scientific << std::setprecision(2) << x;
  } else {
    os << std::fixed << std::setprecision(ax < 1.0 ? 4 : 2) << x;
  }
  return os.str();
}

}  // namespace

void plot(std::ostream& os, std::span<const Series> series,
          const PlotOptions& options) {
  DLS_REQUIRE(options.width >= 16 && options.height >= 4,
              "plot area too small");
  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin, ymin = xmin, ymax = -xmin;
  bool any = false;
  for (const auto& s : series) {
    DLS_REQUIRE(s.xs.size() == s.ys.size(),
                "series x/y lengths must match");
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) continue;
      xmin = std::min(xmin, s.xs[i]);
      xmax = std::max(xmax, s.xs[i]);
      ymin = std::min(ymin, s.ys[i]);
      ymax = std::max(ymax, s.ys[i]);
      any = true;
    }
  }
  if (!any) {
    os << "(no finite data to plot)\n";
    return;
  }
  if (xmax == xmin) {
    xmin -= 0.5;
    xmax += 0.5;
  }
  if (ymax == ymin) {
    ymin -= 0.5;
    ymax += 0.5;
  }
  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.xs.size(); ++i) {
      if (!std::isfinite(s.xs[i]) || !std::isfinite(s.ys[i])) continue;
      const double fx = (s.xs[i] - xmin) / (xmax - xmin);
      const double fy = (s.ys[i] - ymin) / (ymax - ymin);
      const int col = std::clamp(
          static_cast<int>(std::lround(fx * (w - 1))), 0, w - 1);
      const int row = std::clamp(
          static_cast<int>(std::lround((1.0 - fy) * (h - 1))), 0, h - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] =
          s.marker;
    }
  }

  if (!options.title.empty()) os << options.title << '\n';
  const std::string ytop = short_number(ymax);
  const std::string ybot = short_number(ymin);
  const std::size_t margin = std::max(ytop.size(), ybot.size());
  for (int row = 0; row < h; ++row) {
    std::string label;
    if (row == 0) label = ytop;
    else if (row == h - 1) label = ybot;
    os << std::string(margin - label.size(), ' ') << label << " |"
       << grid[static_cast<std::size_t>(row)] << '\n';
  }
  os << std::string(margin + 1, ' ') << '+'
     << std::string(static_cast<std::size_t>(w), '-') << '\n';
  const std::string xlo = short_number(xmin);
  const std::string xhi = short_number(xmax);
  os << std::string(margin + 2, ' ') << xlo;
  const auto used = xlo.size() + xhi.size();
  if (used < static_cast<std::size_t>(w)) {
    os << std::string(static_cast<std::size_t>(w) - used, ' ');
  }
  os << xhi << '\n';
  if (!options.x_label.empty() || !options.y_label.empty()) {
    os << std::string(margin + 2, ' ') << "x: " << options.x_label;
    if (!options.y_label.empty()) os << "   y: " << options.y_label;
    os << '\n';
  }
  bool legend = false;
  for (const auto& s : series) {
    if (!s.name.empty()) legend = true;
  }
  if (legend) {
    os << std::string(margin + 2, ' ');
    bool first = true;
    for (const auto& s : series) {
      if (s.name.empty()) continue;
      if (!first) os << "   ";
      os << '[' << s.marker << "] " << s.name;
      first = false;
    }
    os << '\n';
  }
}

void plot(std::ostream& os, const Series& series, const PlotOptions& options) {
  plot(os, std::span<const Series>(&series, 1), options);
}

}  // namespace dls::common
