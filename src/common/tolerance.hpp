// Floating-point comparison helpers. The DLT closed forms are exact up to
// rounding, so tight relative tolerances are the norm in both library
// invariant checks and tests.
#pragma once

#include <algorithm>
#include <cmath>

namespace dls::common {

/// Default relative tolerance for solver invariants.
inline constexpr double kDefaultRelTol = 1e-9;

/// Relative difference |a-b| / max(|a|, |b|, 1).
inline double relative_error(double a, double b) noexcept {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) / scale;
}

/// True when a and b agree within relative tolerance `tol`.
inline bool approx_equal(double a, double b,
                         double tol = kDefaultRelTol) noexcept {
  return relative_error(a, b) <= tol;
}

/// True when a <= b up to tolerance (allows tiny numeric overshoot).
inline bool approx_le(double a, double b,
                      double tol = kDefaultRelTol) noexcept {
  return a <= b || approx_equal(a, b, tol);
}

/// True when a >= b up to tolerance.
inline bool approx_ge(double a, double b,
                      double tol = kDefaultRelTol) noexcept {
  return a >= b || approx_equal(a, b, tol);
}

}  // namespace dls::common
