// Deterministic pseudo-random number generation.
//
// Experiments must be reproducible bit-for-bit across runs and platforms,
// so we implement the generators ourselves instead of relying on
// implementation-defined std::default_random_engine behaviour:
//   * splitmix64  — seed expansion,
//   * xoshiro256** — the workhorse generator (Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace dls::common {

/// SplitMix64 step; used to expand a single 64-bit seed into generator
/// state. Returns the next output and advances `state`.
std::uint64_t splitmix64_next(std::uint64_t& state) noexcept;

/// xoshiro256** generator with a std::uniform_random_bit_generator
/// compatible interface.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state from `seed` via SplitMix64.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Advances the generator 2^128 steps; yields independent streams for
  /// parallel experiments.
  void long_jump() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Convenience sampling wrapper around Xoshiro256.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept : gen_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (deterministic; no cached spare).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Exponential with rate `lambda` > 0.
  double exponential(double lambda);

  /// Log-uniform in [lo, hi]; handy for sweeping rate parameters across
  /// orders of magnitude. Requires 0 < lo < hi.
  double log_uniform(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Raw 64 random bits.
  std::uint64_t bits() noexcept { return gen_(); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child RNG; children of distinct indices are
  /// decorrelated streams.
  Rng spawn(std::uint64_t index) noexcept;

  Xoshiro256& generator() noexcept { return gen_; }

 private:
  Xoshiro256 gen_;
};

}  // namespace dls::common
