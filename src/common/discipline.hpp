#pragma once

// Engineering-discipline annotations consumed by tools/dls_analyze.
//
// The repo's performance story rests on properties that dynamic tests
// can only sample: "0 heap allocations per warmed solve" is asserted by
// bench_perf_micro's alloc counters on the inputs the bench happens to
// run, and TSan sees a deadlock only when the bad interleaving fires.
// The whole-program analyzer (tools/dls_analyze/, a compile-commands
// driven call-graph walk — see docs/STATIC_ANALYSIS.md) promotes them
// to machine-checked static facts. This header defines the source
// annotations it consumes.
//
// DLS_HOT_NOALLOC — placed on the DEFINITION of a hot-path function
// (the line directly above the return type, or at the start of the
// declarator). The analyzer proves that no call path from an annotated
// function reaches operator new / malloc / an allocating std container
// member, modulo the sanctioned cold branches enumerated (with reasons)
// in tools/dls_analyze/waivers.conf. The proof runs against the
// production configuration (DLS_CHECK_LEVEL=0, DLS_OBS_LEVEL=0): the
// contract auditors and span macros have their own compile-time gates
// and are allowed to allocate when compiled in.
//
// Discipline for annotated functions:
//   * Precondition messages must be string literals. A formatted
//     message (std::to_string + concatenation) lives in the failure
//     branch but is still statically reachable; route it through a
//     named [[noreturn]] helper so the waiver can name the cold path.
//   * Growth of reused buffers (assign/resize/reserve/push_back on a
//     warmed workspace vector) is sanctioned by the default waivers —
//     the steady-state guarantee is "no un-amortized allocation", and
//     the alloc-counter benches remain the dynamic complement.
//   * Everything else that allocates — std::string construction,
//     make_shared/make_unique, node-based container inserts, iostream —
//     fails the analyze job with the offending call path.
//
// The macro itself only decorates codegen: `hot` moves the function
// into the hot text section; under clang an `annotate` attribute makes
// the marker visible to AST tooling (the libclang engine keys on it).
// GCC builds carry no AST marker — the analyzer's GCC engine locates
// annotations by scanning the source text for this macro's name, which
// is why it must appear verbatim at the definition site (never spelled
// through another macro).

#if defined(__clang__)
#define DLS_HOT_NOALLOC __attribute__((annotate("dls_hot_noalloc"), hot))
#elif defined(__GNUC__)
#define DLS_HOT_NOALLOC __attribute__((hot))
#else
#define DLS_HOT_NOALLOC
#endif
