// Text-mode line/scatter plots so the bench binaries can show the *shape*
// of each reproduced figure (utility peaks, makespan curves) directly in
// the terminal output that gets tee'd into bench_output.txt.
#pragma once

#include <ostream>
#include <span>
#include <string>
#include <vector>

namespace dls::common {

/// One named series of (x, y) points.
struct Series {
  std::string name;
  std::vector<double> xs;
  std::vector<double> ys;
  char marker = '*';
};

/// Plot configuration.
struct PlotOptions {
  int width = 72;    ///< interior columns
  int height = 18;   ///< interior rows
  std::string x_label;
  std::string y_label;
  std::string title;
};

/// Renders all series on a shared axis box. Series with mismatched x/y
/// lengths are rejected; empty series are skipped.
void plot(std::ostream& os, std::span<const Series> series,
          const PlotOptions& options);

/// Convenience single-series overload.
void plot(std::ostream& os, const Series& series, const PlotOptions& options);

}  // namespace dls::common
