// Error handling primitives shared by every dlsmech library.
//
// Precondition violations are programmer errors and throw
// dls::PreconditionError; domain failures (infeasible instance, malformed
// message, ...) throw more specific exceptions derived from dls::Error.
#pragma once

#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dls {

/// Root of the dlsmech exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An algorithm received an instance it cannot solve (e.g. non-positive
/// processing rate, empty network).
class InfeasibleError : public Error {
 public:
  explicit InfeasibleError(const std::string& what) : Error(what) {}
};

/// A protocol message failed authentication, integrity or consistency
/// checks.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

namespace detail {

// Overloaded on the message type so a literal message never materializes
// a std::string temporary in the CALLER: DLS_HOT_NOALLOC functions (see
// common/discipline.hpp) use literal messages, and the temporary would
// be a heap allocation charged to the hot function itself rather than to
// this waivable cold helper.
[[noreturn]] inline void throw_precondition(const char* expr,
                                            const char* message,
                                            const std::source_location& loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << ": precondition `" << expr
     << "` failed";
  if (message != nullptr && message[0] != '\0') os << ": " << message;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_precondition(const char* expr,
                                            const std::string& message,
                                            const std::source_location& loc) {
  throw_precondition(expr, message.c_str(), loc);
}

}  // namespace detail

}  // namespace dls

/// Check a documented precondition; throws dls::PreconditionError on
/// failure. Always enabled (the cost is trivial next to the numeric work).
#define DLS_REQUIRE(expr, message)                               \
  do {                                                           \
    if (!(expr)) {                                               \
      ::dls::detail::throw_precondition(                         \
          #expr, (message), std::source_location::current());    \
    }                                                            \
  } while (false)
