#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace dls::common {

std::string format_double(double x, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << x;
  return os.str();
}

std::string Cell::str() const {
  if (const auto* text = std::get_if<std::string>(&value_)) return *text;
  if (const auto* n = std::get_if<std::int64_t>(&value_)) {
    return std::to_string(*n);
  }
  const auto& real = std::get<Real>(value_);
  return format_double(real.x, real.precision);
}

Table::Table(std::vector<Column> columns) : columns_(std::move(columns)) {
  DLS_REQUIRE(!columns_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  DLS_REQUIRE(cells.size() == columns_.size(),
              "row width must match column count");
  std::vector<std::string> row;
  row.reserve(cells.size());
  for (const auto& cell : cells) row.push_back(cell.str());
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].header.size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::string& text, std::size_t c) {
    const auto pad = widths[c] - text.size();
    if (columns_[c].align == Align::kRight) os << std::string(pad, ' ');
    os << text;
    if (columns_[c].align == Align::kLeft) os << std::string(pad, ' ');
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << "  ";
    emit(columns_[c].header, c);
  }
  os << '\n';
  std::size_t total = 0;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      if (c) os << "  ";
      emit(row[c], c);
    }
    os << '\n';
  }
}

namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    if (c) os << ',';
    os << csv_escape(columns_[c].header);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  }
}

}  // namespace dls::common
