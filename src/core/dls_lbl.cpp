#include "core/dls_lbl.hpp"

#include "check/mechanism_invariants.hpp"
#include "common/discipline.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace dls::core {

namespace {

/// Shared body of every assess flavour: `result.solution` must already
/// hold Algorithm 1 on the bid network; fills the per-processor
/// assessments and totals, reusing result's buffers. When
/// `computed_loads` is empty, compliant execution (α̃ = α) is assumed.
void fill_assessments(const net::LinearNetwork& bid_network,
                      std::span<const double> actual_rates,
                      std::span<const double> computed_loads,
                      const MechanismConfig& config, bool solution_found,
                      DlsLblResult& result) {
  const std::size_t n = bid_network.size();
  DLS_REQUIRE(n >= 2, "the mechanism needs at least one strategic worker");
  DLS_REQUIRE(actual_rates.size() == n, "actual_rates size mismatch");
  DLS_REQUIRE(computed_loads.empty() || computed_loads.size() == n,
              "computed_loads size mismatch");
  DLS_SPAN_ARGS("payment.assess", "{\"m\":" + std::to_string(n - 1) + "}");
  DLS_COUNT("mechanism.assessments");

  const dlt::LinearSolution& sol = result.solution;
  if (computed_loads.empty()) computed_loads = sol.alpha;

  result.processors.resize(n);
  result.total_payment = 0.0;
  result.mechanism_cost = 0.0;

  // The obedient root: reimbursed exactly its cost, zero utility (4.3).
  {
    Assessment& root = result.processors[0];
    root.index = 0;
    root.bid_rate = bid_network.w(0);
    root.actual_rate = actual_rates[0];
    root.alpha = sol.alpha[0];
    root.alpha_hat = sol.alpha_hat[0];
    root.equivalent_bid = sol.equivalent_w[0];
    root.computed = computed_loads[0];
    root.w_hat = actual_rates[0];
    root.money.valuation = -root.computed * root.actual_rate;
    root.money.compensation = root.computed * root.actual_rate;
    root.money.payment = root.money.compensation;
    root.money.utility = 0.0;
  }

  for (std::size_t j = 1; j < n; ++j) {
    DLS_SPAN_DETAIL("payment.evaluate");
    Assessment& a = result.processors[j];
    a.index = j;
    a.bid_rate = bid_network.w(j);
    a.actual_rate = actual_rates[j];
    a.alpha = sol.alpha[j];
    a.alpha_hat = sol.alpha_hat[j];
    a.equivalent_bid = sol.equivalent_w[j];
    a.computed = computed_loads[j];
    a.w_hat = config.verify_actual_rates
                  ? w_hat(/*terminal=*/j + 1 == n, a.bid_rate,
                          a.actual_rate, a.alpha_hat, a.equivalent_bid)
                  : a.equivalent_bid;  // ablation: trust the bids blindly

    PaymentInputs in;
    in.predecessor_bid = bid_network.w(j - 1);
    in.link_z = bid_network.z(j);
    in.alpha_hat_pred = sol.alpha_hat[j - 1];
    in.alpha = a.alpha;
    in.computed = a.computed;
    in.actual_rate = a.actual_rate;
    in.w_hat = a.w_hat;
    in.solution_found = solution_found;
    a.money = evaluate_payment(in, config);

    // Term-level metrics live here, on real mechanism runs — NOT in
    // evaluate_payment, which is shared with the ns-scale counterfactual
    // rebid path.
    DLS_OBSERVE("mechanism.bonus_paid", a.money.bonus,
                {0.0, 0.01, 0.1, 0.5, 1.0, 5.0});
    DLS_OBSERVE("mechanism.compensation_paid", a.money.compensation,
                {0.0, 0.01, 0.1, 0.5, 1.0, 5.0});
    DLS_OBSERVE("mechanism.recompense_paid", a.money.recompense,
                {0.0, 0.01, 0.1, 0.5, 1.0, 5.0});
    if (a.money.solution_bonus > 0.0) {
      DLS_COUNT("mechanism.solution_bonus_paid");
    }

    result.total_payment += a.money.payment;
  }
  result.mechanism_cost =
      result.total_payment + result.processors[0].money.compensation;

  // Debug/CI builds audit the payment decomposition (4.5)-(4.13). The
  // embedded solution was already audited by the solver's own wiring at
  // the same level, so skip the duplicate O(n) sweep.
  if constexpr (check::enabled(2)) {
    check::check_assessment(bid_network, result, config,
                            check::kPaymentAuditTol,
                            /*check_solution=*/false);
  }
}

}  // namespace

DlsLblResult assess_dls_lbl(const net::LinearNetwork& bid_network,
                            std::span<const double> actual_rates,
                            std::span<const double> computed_loads,
                            const MechanismConfig& config,
                            bool solution_found) {
  DLS_REQUIRE(computed_loads.size() == bid_network.size(),
              "computed_loads size mismatch");
  DlsLblResult result;
  dlt::solve_linear_boundary_into(bid_network, result.solution);
  fill_assessments(bid_network, actual_rates, computed_loads, config,
                   solution_found, result);
  return result;
}

DlsLblResult assess_compliant(const net::LinearNetwork& bid_network,
                              std::span<const double> actual_rates,
                              const MechanismConfig& config) {
  DlsLblResult result;
  dlt::solve_linear_boundary_into(bid_network, result.solution);
  fill_assessments(bid_network, actual_rates, /*computed_loads=*/{}, config,
                   /*solution_found=*/true, result);
  return result;
}

DLS_HOT_NOALLOC
const DlsLblResult& assess_dls_lbl(const net::LinearNetwork& bid_network,
                                   std::span<const double> actual_rates,
                                   std::span<const double> computed_loads,
                                   const MechanismConfig& config,
                                   bool solution_found, AssessWorkspace& ws) {
  DLS_REQUIRE(computed_loads.size() == bid_network.size(),
              "computed_loads size mismatch");
  dlt::solve_linear_boundary_into(bid_network, ws.result.solution,
                                  /*want_steps=*/false);
  fill_assessments(bid_network, actual_rates, computed_loads, config,
                   solution_found, ws.result);
  return ws.result;
}

DLS_HOT_NOALLOC
const DlsLblResult& assess_compliant(const net::LinearNetwork& bid_network,
                                     std::span<const double> actual_rates,
                                     const MechanismConfig& config,
                                     AssessWorkspace& ws) {
  dlt::solve_linear_boundary_into(bid_network, ws.result.solution,
                                  /*want_steps=*/false);
  fill_assessments(bid_network, actual_rates, /*computed_loads=*/{}, config,
                   /*solution_found=*/true, ws.result);
  return ws.result;
}

DLS_HOT_NOALLOC
const DlsLblResult& assess_compliant_from_batch(
    const net::LinearNetwork& bid_network, const dlt::BatchLinearSolver& batch,
    std::size_t lane, std::span<const double> actual_rates,
    const MechanismConfig& config, AssessWorkspace& ws) {
  DLS_REQUIRE(batch.processors() == bid_network.size(),
              "batch lane does not match the bid network's chain length");
  batch.extract(lane, ws.result.solution);
  fill_assessments(bid_network, actual_rates, /*computed_loads=*/{}, config,
                   /*solution_found=*/true, ws.result);
  return ws.result;
}

double utility_under_bid(const net::LinearNetwork& true_network,
                         std::size_t index, double bid, double actual_rate,
                         const MechanismConfig& config) {
  DLS_REQUIRE(actual_rate >= true_network.w(index) - 1e-12,
              "cannot execute faster than the true rate");
  CounterfactualMechanism mech(true_network,
                               true_network.processing_times(), config);
  return mech.utility(index, bid, actual_rate);
}

CounterfactualMechanism::CounterfactualMechanism(
    const net::LinearNetwork& bid_base, std::span<const double> actual_rates,
    const MechanismConfig& config)
    : solver_(bid_base),
      actual_(actual_rates.begin(), actual_rates.end()),
      config_(config) {
  DLS_REQUIRE(bid_base.size() >= 2,
              "the mechanism needs at least one strategic worker");
  DLS_REQUIRE(actual_.size() == bid_base.size(),
              "actual_rates size mismatch");
}

// Mirror of assess_dls_lbl for one queried processor under compliant
// execution (α̃ = α from the counterfactual bid solution). Shared by the
// single-bid and batched paths so they stay bit-identical by
// construction.
double CounterfactualMechanism::utility_from_rebid(
    const dlt::CounterfactualSolver::Rebid& r, double actual_rate) const {
  const std::size_t index = r.index;
  PaymentInputs in;
  in.predecessor_bid = solver_.w(index - 1);
  in.link_z = solver_.z(index);
  in.alpha_hat_pred = r.alpha_hat_pred;
  in.alpha = r.alpha;
  in.computed = r.alpha;
  in.actual_rate = actual_rate;
  in.w_hat = config_.verify_actual_rates
                 ? w_hat(/*terminal=*/index + 1 == solver_.size(), r.bid,
                         actual_rate, r.alpha_hat, r.equivalent_w)
                 : r.equivalent_w;  // ablation: trust the bids blindly
  return evaluate_payment(in, config_).utility;
}

double CounterfactualMechanism::utility(std::size_t index, double bid,
                                        double actual_rate) {
  const std::size_t n = solver_.size();
  DLS_REQUIRE(index >= 1 && index < n, "index must name a strategic worker");
  DLS_REQUIRE(actual_rate > 0.0, "actual rate must be positive");
  return utility_from_rebid(solver_.rebid(index, bid), actual_rate);
}

void CounterfactualMechanism::utility_curve(std::size_t index,
                                            std::span<const double> bids,
                                            std::span<double> utilities) {
  const std::size_t n = solver_.size();
  DLS_REQUIRE(index >= 1 && index < n, "index must name a strategic worker");
  DLS_REQUIRE(bids.size() == utilities.size(),
              "utility_curve output size mismatch");
  const double actual_rate = actual_[index];
  DLS_REQUIRE(actual_rate > 0.0, "actual rate must be positive");
  rebid_scratch_.resize(bids.size());
  solver_.rebid_batch(index, bids, rebid_scratch_);
  for (std::size_t k = 0; k < bids.size(); ++k) {
    utilities[k] = utility_from_rebid(rebid_scratch_[k], actual_rate);
  }
}

double cheating_profit_bound(const net::LinearNetwork& bid_network) {
  double bound = 0.0;
  for (std::size_t j = 1; j < bid_network.size(); ++j) {
    bound += bid_network.w(j) + bid_network.w(j - 1);
  }
  return bound;
}

}  // namespace dls::core
