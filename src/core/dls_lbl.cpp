#include "core/dls_lbl.hpp"

#include "common/error.hpp"

namespace dls::core {

DlsLblResult assess_dls_lbl(const net::LinearNetwork& bid_network,
                            std::span<const double> actual_rates,
                            std::span<const double> computed_loads,
                            const MechanismConfig& config,
                            bool solution_found) {
  const std::size_t n = bid_network.size();
  DLS_REQUIRE(n >= 2, "the mechanism needs at least one strategic worker");
  DLS_REQUIRE(actual_rates.size() == n, "actual_rates size mismatch");
  DLS_REQUIRE(computed_loads.size() == n, "computed_loads size mismatch");

  DlsLblResult result;
  result.solution = dlt::solve_linear_boundary(bid_network);
  const dlt::LinearSolution& sol = result.solution;

  result.processors.resize(n);

  // The obedient root: reimbursed exactly its cost, zero utility (4.3).
  {
    Assessment& root = result.processors[0];
    root.index = 0;
    root.bid_rate = bid_network.w(0);
    root.actual_rate = actual_rates[0];
    root.alpha = sol.alpha[0];
    root.alpha_hat = sol.alpha_hat[0];
    root.equivalent_bid = sol.equivalent_w[0];
    root.computed = computed_loads[0];
    root.w_hat = actual_rates[0];
    root.money.valuation = -root.computed * root.actual_rate;
    root.money.compensation = root.computed * root.actual_rate;
    root.money.payment = root.money.compensation;
    root.money.utility = 0.0;
  }

  for (std::size_t j = 1; j < n; ++j) {
    Assessment& a = result.processors[j];
    a.index = j;
    a.bid_rate = bid_network.w(j);
    a.actual_rate = actual_rates[j];
    a.alpha = sol.alpha[j];
    a.alpha_hat = sol.alpha_hat[j];
    a.equivalent_bid = sol.equivalent_w[j];
    a.computed = computed_loads[j];
    a.w_hat = config.verify_actual_rates
                  ? w_hat(/*terminal=*/j + 1 == n, a.bid_rate,
                          a.actual_rate, a.alpha_hat, a.equivalent_bid)
                  : a.equivalent_bid;  // ablation: trust the bids blindly

    PaymentInputs in;
    in.predecessor_bid = bid_network.w(j - 1);
    in.link_z = bid_network.z(j);
    in.alpha_hat_pred = sol.alpha_hat[j - 1];
    in.alpha = a.alpha;
    in.computed = a.computed;
    in.actual_rate = a.actual_rate;
    in.w_hat = a.w_hat;
    in.solution_found = solution_found;
    a.money = evaluate_payment(in, config);

    result.total_payment += a.money.payment;
  }
  result.mechanism_cost =
      result.total_payment + result.processors[0].money.compensation;
  return result;
}

DlsLblResult assess_compliant(const net::LinearNetwork& bid_network,
                              std::span<const double> actual_rates,
                              const MechanismConfig& config) {
  const dlt::LinearSolution sol = dlt::solve_linear_boundary(bid_network);
  return assess_dls_lbl(bid_network, actual_rates, sol.alpha, config);
}

double utility_under_bid(const net::LinearNetwork& true_network,
                         std::size_t index, double bid, double actual_rate,
                         const MechanismConfig& config) {
  const std::size_t n = true_network.size();
  DLS_REQUIRE(index >= 1 && index < n, "index must name a strategic worker");
  DLS_REQUIRE(bid > 0.0, "bid must be positive");
  DLS_REQUIRE(actual_rate >= true_network.w(index) - 1e-12,
              "cannot execute faster than the true rate");

  const net::LinearNetwork bid_network =
      true_network.with_processing_time(index, bid);
  std::vector<double> actual(true_network.processing_times().begin(),
                             true_network.processing_times().end());
  actual[index] = actual_rate;
  const DlsLblResult result =
      assess_compliant(bid_network, actual, config);
  return result.processors[index].money.utility;
}

double cheating_profit_bound(const net::LinearNetwork& bid_network) {
  double bound = 0.0;
  for (std::size_t j = 1; j < bid_network.size(); ++j) {
    bound += bid_network.w(j) + bid_network.w(j - 1);
  }
  return bound;
}

}  // namespace dls::core
