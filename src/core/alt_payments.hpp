// Alternative payment rules for the payment-rule shootout
// (bench_payment_shootout): two natural competitors to the paper's bonus
// (4.9), each broken in an instructive way.
//
//  * PAPER-VCG ("VCG on paper"): B_j = T_{-j}(bids) − T(bids), the
//    textbook marginal-contribution payment computed entirely from bids
//    (T_{-j} = optimal makespan with P_j as pure relay). Without
//    verification a processor can inflate its marginal contribution by
//    *underbidding* — claiming to be fast makes T(bids) small on paper —
//    so truth-telling is NOT optimal.
//  * COST-PLUS: Q_j = α_j w̃_j + φ, metered cost plus a flat fee. Utility
//    is φ regardless of the bid, so agents are indifferent — bids carry
//    no information, the allocation is computed from noise, and the
//    schedule's efficiency collapses even though nobody "cheats".
//
// The DLS-LBL bonus is exactly the VCG idea made verification-aware: the
// marginal contribution is re-evaluated at the metered actual rate, which
// restores the truthful peak (see core/payment_rules.hpp).
#pragma once

#include <span>

#include "net/networks.hpp"

namespace dls::core {

/// A processor's utility under the paper-VCG rule when it bids `bid`,
/// executes at `actual_rate`, and everyone else is truthful and
/// compliant. Compensation covers metered cost, so U = B^VCG(bids).
double paper_vcg_utility_under_bid(const net::LinearNetwork& true_network,
                                   std::size_t index, double bid,
                                   double actual_rate);

/// Same counterfactual under cost-plus with flat fee `fee`.
double cost_plus_utility_under_bid(const net::LinearNetwork& true_network,
                                   std::size_t index, double bid,
                                   double actual_rate, double fee);

/// Optimal makespan of the bid chain with processor `index` reduced to a
/// pure relay (its rate pushed beyond usefulness) — the T_{-j} of the
/// VCG rule. For the root or a single-worker chain this is the rest of
/// the chain doing everything.
double makespan_without(const net::LinearNetwork& bid_network,
                        std::size_t index);

}  // namespace dls::core
