// The DLS-LBL mechanism (Sect. 4): allocation from bids + payments from
// verified actuals.
//
// This module is the *centralised assessment* of the mechanism — given
// the bids, the metered actual rates and the actually-computed loads, it
// produces what every processor is owed and its resulting utility. The
// distributed four-phase realisation over signed messages (including
// deviation detection and fines) lives in src/protocol and calls into
// this module for the arithmetic.
#pragma once

#include <span>
#include <vector>

#include "core/payment_rules.hpp"
#include "dlt/batch.hpp"
#include "dlt/counterfactual.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

namespace dls::core {

/// Everything the mechanism concludes about processor P_j.
struct Assessment {
  std::size_t index = 0;
  double bid_rate = 0.0;       ///< w_j (the root's true rate for j=0)
  double actual_rate = 0.0;    ///< w̃_j
  double alpha = 0.0;          ///< α_j assigned from the bids
  double alpha_hat = 0.0;      ///< α̂_j from the bids
  double equivalent_bid = 0.0; ///< w̄_j from the bids
  double computed = 0.0;       ///< α̃_j
  double w_hat = 0.0;          ///< ŵ_j (4.10/4.11); root: its own rate
  PaymentBreakdown money;      ///< V/C/E/B/Q/U
};

struct DlsLblResult {
  dlt::LinearSolution solution;  ///< Algorithm 1 on the bid network
  std::vector<Assessment> processors;  ///< index 0..m; P_0 is the root
  double total_payment = 0.0;    ///< Σ_{j>=1} Q_j
  double mechanism_cost = 0.0;   ///< total_payment + root reimbursement
};

/// Runs the mechanism arithmetic.
///  * `bid_network` — link times are ground truth; w(0) is the obedient
///    root's rate; w(j) for j>=1 are the strategic bids.
///  * `actual_rates` — w̃_j for all n processors (w̃_0 = w(0)).
///  * `computed_loads` — α̃_j for all n processors; pass the solution's
///    α to model compliant execution.
/// `solution_found` feeds the Theorem 5.2 solution bonus when enabled.
DlsLblResult assess_dls_lbl(const net::LinearNetwork& bid_network,
                            std::span<const double> actual_rates,
                            std::span<const double> computed_loads,
                            const MechanismConfig& config,
                            bool solution_found = true);

/// Compliant-execution convenience: everyone computes their assignment at
/// their stated actual rate (α̃ = α from bids).
DlsLblResult assess_compliant(const net::LinearNetwork& bid_network,
                              std::span<const double> actual_rates,
                              const MechanismConfig& config);

/// Caller-owned reusable buffers for the assessment hot path: Monte-Carlo
/// loops re-use one workspace and pay zero heap allocations per call once
/// the buffers have warmed to the chain size. The solver skips building
/// the reduction trace (`steps`) in this flavour.
struct AssessWorkspace {
  DlsLblResult result;
};

/// Workspace flavours; both return ws.result.
const DlsLblResult& assess_dls_lbl(const net::LinearNetwork& bid_network,
                                   std::span<const double> actual_rates,
                                   std::span<const double> computed_loads,
                                   const MechanismConfig& config,
                                   bool solution_found, AssessWorkspace& ws);

const DlsLblResult& assess_compliant(const net::LinearNetwork& bid_network,
                                     std::span<const double> actual_rates,
                                     const MechanismConfig& config,
                                     AssessWorkspace& ws);

/// Compliant assessment taking the allocation from lane `lane` of an
/// already-solved BatchLinearSolver instead of re-running Algorithm 1.
/// The lane must hold the solve of `bid_network` (the caller batched it
/// there); payments are bit-identical to assess_compliant on the same
/// network because the batch engine's lanes are bit-identical to the
/// scalar solver. This is the serve dispatcher's payment path for
/// batched cache misses.
const DlsLblResult& assess_compliant_from_batch(
    const net::LinearNetwork& bid_network, const dlt::BatchLinearSolver& batch,
    std::size_t lane, std::span<const double> actual_rates,
    const MechanismConfig& config, AssessWorkspace& ws);

/// Counterfactual utility for strategyproofness sweeps: in the network of
/// *true* rates `true_network`, processor `index` (>= 1) bids `bid` and
/// executes at `actual_rate` (>= its true rate) while everyone else is
/// truthful and compliant. Returns the utility U_index.
double utility_under_bid(const net::LinearNetwork& true_network,
                         std::size_t index, double bid, double actual_rate,
                         const MechanismConfig& config);

/// Batched counterfactual utilities for THM5.3-style sweeps.
///
/// Fixes the rest of the population (the base network's bids and the
/// metered actual rates) once, then answers "what is U_j when P_j bids w
/// and executes at w̃" via dlt::CounterfactualSolver: only the reduction
/// prefix 0..j is recomputed and only P_j's payment is evaluated —
/// O(j) per query with zero heap allocation, versus two full Algorithm 1
/// runs plus an n-processor assessment per point through
/// utility_under_bid. A processor's utility depends on the bid solution
/// and its own metered rate only, so the answers are bit-identical to
/// the full assessment. Holds mutable scratch — one instance per thread.
class CounterfactualMechanism {
 public:
  /// `actual_rates` are the metered rates of the base population
  /// (actual_rates[0] is the obedient root's, used only for sizing).
  CounterfactualMechanism(const net::LinearNetwork& bid_base,
                          std::span<const double> actual_rates,
                          const MechanismConfig& config);

  /// U_index when bidding `bid` and executing compliantly at
  /// `actual_rate`; everyone else per the base profile. index >= 1.
  double utility(std::size_t index, double bid, double actual_rate);

  /// Batched case (i) of Lemma 5.3: vary the bid, execute at the base
  /// actual rate. Writes utilities[k] = U_index(bids[k]), bit-identical
  /// to a utility() loop but solved across bid lanes in one SoA pass
  /// (CounterfactualSolver::rebid_batch).
  void utility_curve(std::size_t index, std::span<const double> bids,
                     std::span<double> utilities);

 private:
  double utility_from_rebid(const dlt::CounterfactualSolver::Rebid& r,
                            double actual_rate) const;

  dlt::CounterfactualSolver solver_;
  std::vector<double> actual_;
  MechanismConfig config_;
  std::vector<dlt::CounterfactualSolver::Rebid> rebid_scratch_;
};

/// Upper bound on the profit any single deviation can extract from this
/// instance — used to size the fine F ("larger than any potential
/// profits attainable by cheating"). The crude but safe bound is the
/// total money the mechanism could ever hand out on a unit load:
/// Σ_j (w_j + predecessor bid).
double cheating_profit_bound(const net::LinearNetwork& bid_network);

}  // namespace dls::core
