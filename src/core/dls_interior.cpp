#include "core/dls_interior.hpp"

#include "common/error.hpp"
#include "dlt/linear.hpp"

namespace dls::core {

namespace {

/// The arm (including the root at its head) as a boundary chain, plus
/// the map from arm positions to network positions.
struct Arm {
  net::LinearNetwork chain;
  std::vector<std::size_t> positions;  ///< positions[j] = network index
};

Arm make_arm(const net::InteriorLinearNetwork& net, bool left) {
  const std::size_t r = net.root();
  const std::size_t n = net.size();
  const std::size_t len = left ? r : n - r - 1;
  DLS_REQUIRE(len >= 1, "arm must contain at least one processor");
  std::vector<double> w = {net.w(r)};
  std::vector<double> z;
  std::vector<std::size_t> positions = {r};
  for (std::size_t k = 0; k < len; ++k) {
    const std::size_t pos = left ? r - 1 - k : r + 1 + k;
    positions.push_back(pos);
    w.push_back(net.w(pos));
    const std::size_t link = left ? r - k : r + 1 + k;
    z.push_back(net.z(link));
  }
  return Arm{net::LinearNetwork(std::move(w), std::move(z)),
             std::move(positions)};
}

}  // namespace

DlsInteriorResult assess_dls_interior(
    const net::InteriorLinearNetwork& bid_network,
    std::span<const double> actual_rates, const MechanismConfig& config) {
  const std::size_t n = bid_network.size();
  DLS_REQUIRE(actual_rates.size() == n, "actual_rates size mismatch");
  const std::size_t r = bid_network.root();

  DlsInteriorResult result;
  result.solution = dlt::solve_linear_interior(bid_network);
  result.processors.resize(n);

  // The obedient root (4.3).
  {
    Assessment& root = result.processors[r];
    root.index = r;
    root.bid_rate = bid_network.w(r);
    root.actual_rate = actual_rates[r];
    root.alpha = result.solution.alpha[r];
    root.computed = root.alpha;
    root.w_hat = root.actual_rate;
    root.money.valuation = -root.computed * root.actual_rate;
    root.money.compensation = root.computed * root.actual_rate;
    root.money.payment = root.money.compensation;
    root.money.utility = 0.0;
  }

  for (const bool left : {true, false}) {
    const Arm arm = make_arm(bid_network, left);
    const dlt::LinearSolution arm_sol =
        dlt::solve_linear_boundary(arm.chain);
    const std::size_t arm_n = arm.chain.size();
    for (std::size_t j = 1; j < arm_n; ++j) {
      const std::size_t pos = arm.positions[j];
      Assessment& a = result.processors[pos];
      a.index = pos;
      a.bid_rate = arm.chain.w(j);
      a.actual_rate = actual_rates[pos];
      a.alpha = result.solution.alpha[pos];
      a.alpha_hat = arm_sol.alpha_hat[j];
      a.equivalent_bid = arm_sol.equivalent_w[j];
      a.computed = a.alpha;  // compliant execution at this layer
      a.w_hat = w_hat(/*terminal=*/j + 1 == arm_n, a.bid_rate,
                      a.actual_rate, a.alpha_hat, a.equivalent_bid);

      PaymentInputs in;
      in.predecessor_bid = arm.chain.w(j - 1);
      in.link_z = arm.chain.z(j);
      in.alpha_hat_pred = arm_sol.alpha_hat[j - 1];
      in.alpha = a.alpha;
      in.computed = a.computed;
      in.actual_rate = a.actual_rate;
      in.w_hat = a.w_hat;
      a.money = evaluate_payment(in, config);
      result.total_payment += a.money.payment;
    }
  }
  result.mechanism_cost =
      result.total_payment + result.processors[r].money.compensation;
  return result;
}

double interior_utility_under_bid(
    const net::InteriorLinearNetwork& true_network, std::size_t index,
    double bid, double actual_rate, const MechanismConfig& config) {
  const std::size_t n = true_network.size();
  DLS_REQUIRE(index < n && index != true_network.root(),
              "index must name a strategic (non-root) processor");
  DLS_REQUIRE(bid > 0.0, "bid must be positive");
  DLS_REQUIRE(actual_rate >= true_network.w(index) - 1e-12,
              "cannot execute faster than the true rate");

  std::vector<double> w(n), z(n - 1), actual(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = i == index ? bid : true_network.w(i);
    actual[i] = i == index ? actual_rate : true_network.w(i);
  }
  for (std::size_t j = 1; j < n; ++j) z[j - 1] = true_network.z(j);
  const net::InteriorLinearNetwork bids(std::move(w), std::move(z),
                                        true_network.root());
  return assess_dls_interior(bids, actual, config)
      .processors[index]
      .money.utility;
}

}  // namespace dls::core
