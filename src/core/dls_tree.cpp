#include "core/dls_tree.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dlt/star.hpp"

namespace dls::core {

namespace {

/// Children of `p` in the service order solve_tree uses (ascending link
/// time, stable).
std::vector<std::size_t> service_order(const net::TreeNetwork& net,
                                       std::size_t p) {
  const auto kids = net.children(p);
  std::vector<std::size_t> order(kids.begin(), kids.end());
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return net.z(a) < net.z(b);
                   });
  return order;
}

/// Local star at `p` with child subtree `skip` removed, solved optimally
/// from the bids. ρ of that reduced system.
double rho_without(const net::TreeNetwork& net,
                   const dlt::TreeSolution& sol, std::size_t p,
                   std::size_t skip) {
  std::vector<double> w, z;
  for (const std::size_t c : net.children(p)) {
    if (c == skip) continue;
    w.push_back(sol.equivalent_w[c]);
    z.push_back(net.z(c));
  }
  if (w.empty()) return net.w(p);  // the parent alone
  const net::StarNetwork star(net.w(p), std::move(w), std::move(z));
  return dlt::solve_star(star).makespan;
}

/// Realised completion per unit load of the local star at `p` when child
/// `target`'s subtree runs at `rate` instead of its bid ρ̄; the split and
/// the service order stay bid-derived.
double rho_realized(const net::TreeNetwork& net,
                    const dlt::TreeSolution& sol, std::size_t p,
                    std::size_t target, double rate) {
  const double load_p = sol.received[p];
  DLS_REQUIRE(load_p > 0.0, "parent receives no load");
  double rho = sol.local_keep[p] * net.w(p);
  double clock = 0.0;
  for (const std::size_t c : service_order(net, p)) {
    const double share = sol.received[c] / load_p;
    if (share <= 0.0) continue;
    clock += share * net.z(c);
    const double subtree_rate =
        c == target ? rate : sol.equivalent_w[c];
    rho = std::max(rho, clock + share * subtree_rate);
  }
  return rho;
}

}  // namespace

DlsTreeResult assess_dls_tree(const net::TreeNetwork& bid_network,
                              std::span<const double> actual_rates,
                              const MechanismConfig& config) {
  const dlt::TreeSolution sol = dlt::solve_tree(bid_network);
  return assess_dls_tree(bid_network, actual_rates, sol.alpha, config);
}

DlsTreeResult assess_dls_tree(const net::TreeNetwork& bid_network,
                              std::span<const double> actual_rates,
                              std::span<const double> computed_loads,
                              const MechanismConfig& config,
                              bool solution_found) {
  const std::size_t n = bid_network.size();
  DLS_REQUIRE(n >= 2, "the mechanism needs at least one strategic node");
  DLS_REQUIRE(actual_rates.size() == n, "actual_rates size mismatch");
  DLS_REQUIRE(computed_loads.size() == n, "computed_loads size mismatch");

  DlsTreeResult result;
  result.solution = dlt::solve_tree(bid_network);
  const dlt::TreeSolution& sol = result.solution;
  result.nodes.resize(n);

  // The obedient root: reimbursed at cost, zero utility, as in (4.3).
  {
    TreeAssessment& root = result.nodes[0];
    root.node = 0;
    root.bid_rate = bid_network.w(0);
    root.actual_rate = actual_rates[0];
    root.alpha = sol.alpha[0];
    root.computed = computed_loads[0];
    root.subtree_rho = sol.equivalent_w[0];
    root.valuation = -root.computed * root.actual_rate;
    root.compensation = root.computed * root.actual_rate;
    root.payment = root.compensation;
    root.utility = 0.0;
  }

  for (std::size_t v = 1; v < n; ++v) {
    TreeAssessment& a = result.nodes[v];
    a.node = v;
    a.bid_rate = bid_network.w(v);
    a.actual_rate = actual_rates[v];
    a.alpha = sol.alpha[v];
    a.subtree_rho = sol.equivalent_w[v];
    // Verified subtree rate, the (4.10)/(4.11) analogue.
    if (!config.verify_actual_rates) {
      a.w_hat = a.subtree_rho;
    } else if (a.actual_rate >= a.bid_rate) {
      a.w_hat = std::max(a.subtree_rho,
                         sol.local_keep[v] * a.actual_rate);
    } else {
      a.w_hat = a.subtree_rho;
    }
    const std::size_t p = bid_network.parent(v);
    a.computed = computed_loads[v];
    a.rho_without = rho_without(bid_network, sol, p, v);
    a.rho_realized = rho_realized(bid_network, sol, p, v, a.w_hat);
    a.valuation = -a.computed * a.actual_rate;
    if (a.computed > 0.0) {
      // Recompense for absorbing a shedding ancestor's dumped load —
      // the (4.8) analogue.
      if (a.computed >= a.alpha) {
        a.recompense = (a.computed - a.alpha) * a.actual_rate;
      }
      a.compensation = a.alpha * a.actual_rate + a.recompense;
      a.bonus = a.rho_without - a.rho_realized;
      if (config.solution_bonus_enabled && solution_found) {
        a.solution_bonus = config.solution_bonus;
      }
      a.payment = a.compensation + a.bonus + a.solution_bonus;
    }
    a.utility = a.valuation + a.payment;
    result.total_payment += a.payment;
  }
  return result;
}

double tree_utility_under_bid(const net::TreeNetwork& true_network,
                              std::size_t index, double bid,
                              double actual_rate,
                              const MechanismConfig& config) {
  const std::size_t n = true_network.size();
  DLS_REQUIRE(index >= 1 && index < n, "index must name a strategic node");
  DLS_REQUIRE(bid > 0.0, "bid must be positive");
  DLS_REQUIRE(actual_rate >= true_network.w(index) - 1e-12,
              "cannot execute faster than the true rate");

  std::vector<double> w(n), z(n, 1.0), actual(n);
  std::vector<std::size_t> parent(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = i == index ? bid : true_network.w(i);
    actual[i] = i == index ? actual_rate : true_network.w(i);
    if (i >= 1) {
      z[i] = true_network.z(i);
      parent[i] = true_network.parent(i);
    }
  }
  const net::TreeNetwork bid_network(std::move(w), std::move(z),
                                     std::move(parent));
  return assess_dls_tree(bid_network, actual, config).nodes[index].utility;
}

}  // namespace dls::core
