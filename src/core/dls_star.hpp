// Mechanism analogues for bus and star networks, used as the
// cross-network baselines of experiment XNET.
//
// The authors' companion mechanisms for bus [14] and tree [9] networks
// share DLS-LBL's shape: compensate verified cost, plus a bonus that a
// processor maximises by bidding its true rate and running at capacity.
// We reconstruct that shape for the single-level star (the bus is a star
// with a shared channel): worker i's bonus is the *marginal speedup* it
// contributes, evaluated against its verified actual rate,
//   B_i = ρ_{-i}(bids) − ρ̂(α(bids), actuals),
// where ρ is the equivalent unit time of the whole star (its makespan on
// a unit load), ρ_{-i} excludes worker i, and ρ̂ keeps the bid-derived
// allocation and service order but charges worker i's computation at the
// metered rate w̃_i. ρ_{-i} does not depend on i's bid, and ρ̂ is
// minimised by truthful bidding (the bid-optimal allocation evaluated
// truthfully is the true optimum), so truth-telling maximises B_i; at
// truth B_i = ρ_{-i} − ρ >= 0, giving voluntary participation.
#pragma once

#include <span>
#include <vector>

#include "core/payment_rules.hpp"
#include "dlt/star.hpp"
#include "net/networks.hpp"

namespace dls::core {

struct StarAssessment {
  std::size_t worker = 0;   ///< worker index (0-based, network order)
  double bid_rate = 0.0;
  double actual_rate = 0.0;
  double alpha = 0.0;
  double valuation = 0.0;       ///< -α_i w̃_i
  double compensation = 0.0;    ///< α_i w̃_i
  double bonus = 0.0;           ///< ρ_{-i} − ρ̂
  double payment = 0.0;
  double utility = 0.0;
  double rho_without = 0.0;     ///< ρ_{-i}
  double rho_realized = 0.0;    ///< ρ̂ with this worker at its actual rate
};

struct DlsStarResult {
  dlt::StarSolution solution;   ///< allocation from bids
  std::vector<StarAssessment> workers;
  double total_payment = 0.0;
};

/// Runs the star mechanism arithmetic. The network carries the bid rates;
/// `actual_rates` carries w̃_i per worker. Requires either a computing
/// root or at least two workers (so ρ_{-i} exists for every i).
DlsStarResult assess_dls_star(const net::StarNetwork& bid_network,
                              std::span<const double> actual_rates,
                              const MechanismConfig& config);

/// Bus convenience: shared channel time on every link.
DlsStarResult assess_dls_bus(const net::BusNetwork& bid_network,
                             std::span<const double> actual_rates,
                             const MechanismConfig& config);

/// Counterfactual utility for worker `index` bidding `bid` and executing
/// at `actual_rate` while everyone else is truthful.
double star_utility_under_bid(const net::StarNetwork& true_network,
                              std::size_t index, double bid,
                              double actual_rate,
                              const MechanismConfig& config);

}  // namespace dls::core
