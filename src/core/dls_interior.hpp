// DLS-LBL extended to interior load origination — the mechanism side of
// the paper's future-work direction.
//
// With the obedient root at an interior position, each arm of the chain
// is a boundary-origination chain whose "predecessor" at the head is the
// root itself. Within an arm, the interior-optimal split coincides with
// the arm's own Algorithm 1 fractions (the arm only receives a scaled
// load, and local fractions are scale-free), so the DLS-LBL payment
// rules apply verbatim per arm:
//   B_v = w_{pred(v)} − w̄_{pred(v)}(α(bids), actuals),
// with pred(v) the neighbour of v on the path toward the root. The
// compensation/valuation legs use the true (scaled) assigned loads, so
// compliant utilities again reduce to the bonus, strategyproofness and
// voluntary participation carry over arm by arm, and the root keeps
// utility 0.
#pragma once

#include <span>
#include <vector>

#include "core/dls_lbl.hpp"
#include "dlt/interior.hpp"
#include "net/networks.hpp"

namespace dls::core {

struct DlsInteriorResult {
  dlt::InteriorSolution solution;     ///< split computed from the bids
  std::vector<Assessment> processors; ///< network indexing; root = root pos
  double total_payment = 0.0;         ///< Σ Q over strategic processors
  double mechanism_cost = 0.0;        ///< + root reimbursement
};

/// Runs the interior mechanism arithmetic. `bid_network` carries the
/// bids (the root's own rate at its position is truthful); `actual_rates`
/// the metered rates. Execution is assumed compliant (α̃ = α); the
/// protocol layer owns deviation handling, as for the boundary case.
DlsInteriorResult assess_dls_interior(
    const net::InteriorLinearNetwork& bid_network,
    std::span<const double> actual_rates, const MechanismConfig& config);

/// Counterfactual utility for strategyproofness checks: processor
/// `index` (any non-root position) bids `bid` and runs at `actual_rate`,
/// everyone else truthful and compliant.
double interior_utility_under_bid(
    const net::InteriorLinearNetwork& true_network, std::size_t index,
    double bid, double actual_rate, const MechanismConfig& config);

}  // namespace dls::core
