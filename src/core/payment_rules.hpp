// The DLS-LBL payment rules — eqs. (4.3)-(4.13) of the paper.
//
// For strategic processor P_j (j = 1..m):
//   valuation      V_j = -α̃_j w̃_j                                  (4.5)
//   compensation   C_j = α_j w̃_j + E_j                              (4.7)
//   recompense     E_j = (α̃_j - α_j) w̃_j  when α̃_j >= α_j, else 0  (4.8)
//   bonus          B_j = w_{j-1} - w̄_{j-1}(α(bids), actuals)        (4.9)
//   payment        Q_j = 0 when α̃_j = 0, else C_j + B_j [+ S]  (4.6/4.13)
//   utility        U_j = V_j + Q_j                                   (4.4)
//
// The bonus term re-evaluates the two-processor reduction
// {P_{j-1}, equivalent(P_j..P_m)} of eq. (2.3): the allocation α̂_{j-1}
// is fixed by the *bids*, but the tail is charged at its verified actual
// rate ŵ_j (4.10/4.11):
//   ŵ_m = w̃_m;   ŵ_k = α̂_k w̃_k  if w̃_k >= w_k,  else w̄_k.
// Running slower than bid inflates ŵ_j, inflates the realised equivalent
// time, and so deflates the bonus; running faster than bid leaves it
// unchanged (the tail's completion is already pinned by the bids).
#pragma once

#include <cstddef>

namespace dls::core {

/// Mechanism-wide constants.
struct MechanismConfig {
  /// The fine F. Must exceed any profit attainable by cheating; the
  /// protocol layer validates this against the instance at hand.
  double fine = 100.0;

  /// Probability q in (0, 1] that the root challenges a submitted bill
  /// (Phase IV). A failed challenge costs F/q.
  double audit_probability = 0.25;

  /// Theorem 5.2 variant: pay a small solution bonus S = `solution_bonus`
  /// to every processor that computed load when the overall solution
  /// verifies, so selfish-and-annoying agents risk losing it by
  /// corrupting data.
  bool solution_bonus_enabled = false;
  double solution_bonus = 0.01;

  /// ABLATION SWITCH — disables the "with verification" part of the
  /// mechanism: ŵ_j is taken from the *bids* instead of the metered
  /// actual rates (ŵ_j = w̄_j unconditionally). With verification off,
  /// Lemma 5.3 case (ii) fails: executing slower than bid no longer
  /// costs bonus, so full-capacity execution stops being dominant. Keep
  /// true except in the ablation bench.
  bool verify_actual_rates = true;
};

/// Inputs describing processor P_j as the payment rules see it.
struct PaymentInputs {
  double predecessor_bid = 0.0;  ///< w_{j-1} (the root's true rate for j=1)
  double link_z = 0.0;           ///< z_j
  double alpha_hat_pred = 0.0;   ///< α̂_{j-1} from the bid solution
  double alpha = 0.0;            ///< α_j assigned by the bid solution
  double computed = 0.0;         ///< α̃_j actually computed
  double actual_rate = 0.0;      ///< w̃_j from the meter
  double w_hat = 0.0;            ///< ŵ_j per (4.10)/(4.11)
  bool solution_found = true;    ///< input to the solution bonus S
};

/// Per-processor monetary outcome.
struct PaymentBreakdown {
  double valuation = 0.0;      ///< V_j
  double compensation = 0.0;   ///< C_j (includes E_j)
  double recompense = 0.0;     ///< E_j
  double bonus = 0.0;          ///< B_j
  double solution_bonus = 0.0; ///< S (0 unless enabled and solved)
  double payment = 0.0;        ///< Q_j
  double utility = 0.0;        ///< U_j = V_j + Q_j
  double realized_equivalent = 0.0;  ///< w̄_{j-1}(α(bids), actuals)
};

/// ŵ_j per eqs. (4.10)-(4.11). `terminal` selects the ŵ_m = w̃_m case.
double w_hat(bool terminal, double bid_rate, double actual_rate,
             double alpha_hat, double equivalent_bid);

/// E_j, eq. (4.8).
double recompense(double alpha, double computed, double actual_rate);

/// Full evaluation of (4.5)-(4.9) and (4.6)/(4.13).
PaymentBreakdown evaluate_payment(const PaymentInputs& in,
                                  const MechanismConfig& config);

}  // namespace dls::core
