#include "core/dls_star.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dls::core {

namespace {

/// Makespan of the bid star with worker `target` charged at `rate`
/// instead of its bid; allocation and service order stay bid-derived.
double realized_rho(const net::StarNetwork& bid_network,
                    const dlt::StarSolution& solution, std::size_t target,
                    double rate) {
  double rho = 0.0;
  if (bid_network.root_computes()) {
    rho = solution.alpha_root * bid_network.root_w();
  }
  double clock = 0.0;
  for (const std::size_t idx : solution.order) {
    const double a = solution.alpha[idx];
    if (a <= 0.0) continue;
    clock += a * bid_network.z(idx);
    const double w = idx == target ? rate : bid_network.w(idx);
    rho = std::max(rho, clock + a * w);
  }
  return rho;
}

/// ρ_{-i}: the optimal equivalent time of the star without worker `skip`.
double rho_without(const net::StarNetwork& bid_network, std::size_t skip) {
  std::vector<double> w, z;
  for (std::size_t i = 0; i < bid_network.workers(); ++i) {
    if (i == skip) continue;
    w.push_back(bid_network.w(i));
    z.push_back(bid_network.z(i));
  }
  if (w.empty()) {
    DLS_REQUIRE(bid_network.root_computes(),
                "removing the only worker leaves nobody to compute");
    return bid_network.root_w();
  }
  const net::StarNetwork reduced(bid_network.root_w(), std::move(w),
                                 std::move(z));
  return dlt::solve_star(reduced).makespan;
}

}  // namespace

DlsStarResult assess_dls_star(const net::StarNetwork& bid_network,
                              std::span<const double> actual_rates,
                              const MechanismConfig& config) {
  const std::size_t m = bid_network.workers();
  DLS_REQUIRE(actual_rates.size() == m, "actual_rates size mismatch");
  DLS_REQUIRE(bid_network.root_computes() || m >= 2,
              "need a computing root or at least two workers");
  (void)config;

  DlsStarResult result;
  result.solution = dlt::solve_star(bid_network);
  result.workers.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    StarAssessment& a = result.workers[i];
    a.worker = i;
    a.bid_rate = bid_network.w(i);
    a.actual_rate = actual_rates[i];
    a.alpha = result.solution.alpha[i];
    a.valuation = -a.alpha * a.actual_rate;
    a.rho_without = rho_without(bid_network, i);
    a.rho_realized =
        realized_rho(bid_network, result.solution, i, a.actual_rate);
    if (a.alpha > 0.0) {
      a.compensation = a.alpha * a.actual_rate;
      a.bonus = a.rho_without - a.rho_realized;
      a.payment = a.compensation + a.bonus;
    }
    a.utility = a.valuation + a.payment;
    result.total_payment += a.payment;
  }
  return result;
}

DlsStarResult assess_dls_bus(const net::BusNetwork& bid_network,
                             std::span<const double> actual_rates,
                             const MechanismConfig& config) {
  return assess_dls_star(bid_network.as_star(), actual_rates, config);
}

double star_utility_under_bid(const net::StarNetwork& true_network,
                              std::size_t index, double bid,
                              double actual_rate,
                              const MechanismConfig& config) {
  const std::size_t m = true_network.workers();
  DLS_REQUIRE(index < m, "worker index out of range");
  DLS_REQUIRE(bid > 0.0, "bid must be positive");
  DLS_REQUIRE(actual_rate >= true_network.w(index) - 1e-12,
              "cannot execute faster than the true rate");

  std::vector<double> w, z, actual;
  w.reserve(m);
  z.reserve(m);
  actual.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    w.push_back(i == index ? bid : true_network.w(i));
    z.push_back(true_network.z(i));
    actual.push_back(i == index ? actual_rate : true_network.w(i));
  }
  const net::StarNetwork bid_network(true_network.root_w(), std::move(w),
                                     std::move(z));
  const DlsStarResult result =
      assess_dls_star(bid_network, actual, config);
  return result.workers[index].utility;
}

}  // namespace dls::core
