// DLS-T analogue: the mechanism for tree networks, reconstructed in the
// same shape the paper's companion work [9] uses and consistent with
// DLS-LBL: verified-cost compensation plus a bonus computed from the
// *local star* at the node's parent —
//   B_v = ρ_{p,-v}(bids) − ρ̂_p(α(bids), actuals),
// where ρ_{p,-v} is the equivalent unit time of the parent's local star
// with v's subtree removed (independent of v's bid) and ρ̂_p keeps the
// bid-derived split but charges v's subtree at its verified rate
//   ŵ_v = keep_v · w̃_v   if w̃_v >= w_v   (slower than bid dominates)
//   ŵ_v = ρ̄_v           otherwise        (the bids pin the subtree)
// — the tree generalisation of eqs. (4.9)-(4.11). Truthful bidding
// maximises B_v (the bid-optimal local split evaluated truthfully is the
// local optimum) and at truth B_v = ρ_{p,-v} − ρ_p >= 0.
#pragma once

#include <span>
#include <vector>

#include "core/payment_rules.hpp"
#include "dlt/tree.hpp"
#include "net/tree.hpp"

namespace dls::core {

struct TreeAssessment {
  std::size_t node = 0;
  double bid_rate = 0.0;
  double actual_rate = 0.0;
  double alpha = 0.0;           ///< global share from the bid solution
  double computed = 0.0;        ///< α̃_v actually computed
  double subtree_rho = 0.0;     ///< ρ̄_v from the bids
  double w_hat = 0.0;           ///< ŵ_v (verified subtree rate)
  double rho_without = 0.0;     ///< ρ_{p,-v}
  double rho_realized = 0.0;    ///< ρ̂_p
  double valuation = 0.0;
  double compensation = 0.0;    ///< α_v w̃_v + recompense
  double recompense = 0.0;      ///< (α̃_v − α_v) w̃_v when overloaded
  double bonus = 0.0;
  double solution_bonus = 0.0;
  double payment = 0.0;
  double utility = 0.0;
};

struct DlsTreeResult {
  dlt::TreeSolution solution;
  std::vector<TreeAssessment> nodes;  ///< index 0 is the obedient root
  double total_payment = 0.0;
};

/// Runs the tree mechanism arithmetic. The network carries bid rates for
/// nodes >= 1 (the root's w is its true rate); `actual_rates` carries
/// w̃_v for all nodes; `computed_loads` carries α̃_v (deviant execution:
/// shedders computed less, overloaded children more — the recompense
/// (4.8) analogue reimburses the latter). `solution_found` feeds the
/// Theorem 5.2 solution bonus when enabled.
DlsTreeResult assess_dls_tree(const net::TreeNetwork& bid_network,
                              std::span<const double> actual_rates,
                              std::span<const double> computed_loads,
                              const MechanismConfig& config,
                              bool solution_found = true);

/// Compliant-execution convenience (α̃ = α from the bid solution).
DlsTreeResult assess_dls_tree(const net::TreeNetwork& bid_network,
                              std::span<const double> actual_rates,
                              const MechanismConfig& config);

/// Counterfactual utility of node `index` (>= 1) bidding `bid` and
/// executing at `actual_rate`, everyone else truthful and compliant.
double tree_utility_under_bid(const net::TreeNetwork& true_network,
                              std::size_t index, double bid,
                              double actual_rate,
                              const MechanismConfig& config);

}  // namespace dls::core
