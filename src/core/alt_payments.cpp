#include "core/alt_payments.hpp"

#include "common/error.hpp"
#include "dlt/linear.hpp"

namespace dls::core {

namespace {

/// A rate large enough to reduce a processor to a relay: Algorithm 1
/// assigns it a vanishing share.
constexpr double kRelayRate = 1e9;

net::LinearNetwork with_bid(const net::LinearNetwork& net, std::size_t index,
                            double bid) {
  return net.with_processing_time(index, bid);
}

}  // namespace

double makespan_without(const net::LinearNetwork& bid_network,
                        std::size_t index) {
  return dlt::solve_linear_boundary(
             with_bid(bid_network, index, kRelayRate))
      .makespan;
}

double paper_vcg_utility_under_bid(const net::LinearNetwork& true_network,
                                   std::size_t index, double bid,
                                   double actual_rate) {
  DLS_REQUIRE(index >= 1 && index < true_network.size(),
              "index must name a strategic worker");
  DLS_REQUIRE(bid > 0.0, "bid must be positive");
  DLS_REQUIRE(actual_rate >= true_network.w(index) - 1e-12,
              "cannot execute faster than the true rate");
  const net::LinearNetwork bids = with_bid(true_network, index, bid);
  // V + C cancel (metered compensation); utility is the bid-only bonus.
  const double t = dlt::solve_linear_boundary(bids).makespan;
  const double t_without = makespan_without(bids, index);
  (void)actual_rate;  // never consulted — the rule's defect
  return t_without - t;
}

double cost_plus_utility_under_bid(const net::LinearNetwork& true_network,
                                   std::size_t index, double bid,
                                   double actual_rate, double fee) {
  DLS_REQUIRE(index >= 1 && index < true_network.size(),
              "index must name a strategic worker");
  DLS_REQUIRE(bid > 0.0, "bid must be positive");
  DLS_REQUIRE(actual_rate >= true_network.w(index) - 1e-12,
              "cannot execute faster than the true rate");
  // Metered compensation nets out the cost; the fee is all that remains,
  // no matter what was bid or how fast the processor ran.
  (void)bid;
  (void)actual_rate;
  return fee;
}

}  // namespace dls::core
