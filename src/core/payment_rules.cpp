#include "core/payment_rules.hpp"

#include "common/error.hpp"
#include "dlt/linear.hpp"

namespace dls::core {

double w_hat(bool terminal, double bid_rate, double actual_rate,
             double alpha_hat, double equivalent_bid) {
  DLS_REQUIRE(actual_rate > 0.0, "actual rate must be positive");
  if (terminal) return actual_rate;  // (4.10)
  // (4.11): slower than bid dominates the pair; faster leaves the
  // bid-based equivalent time in place.
  if (actual_rate >= bid_rate) return alpha_hat * actual_rate;
  return equivalent_bid;
}

double recompense(double alpha, double computed, double actual_rate) {
  DLS_REQUIRE(alpha >= 0.0 && computed >= 0.0, "loads must be non-negative");
  if (computed < alpha) return 0.0;
  return (computed - alpha) * actual_rate;
}

PaymentBreakdown evaluate_payment(const PaymentInputs& in,
                                  const MechanismConfig& config) {
  DLS_REQUIRE(in.actual_rate > 0.0, "actual rate must be positive");
  PaymentBreakdown out;
  out.valuation = -in.computed * in.actual_rate;  // (4.5)
  out.realized_equivalent = dlt::pair_realized_w(
      in.alpha_hat_pred, in.predecessor_bid, in.link_z, in.w_hat);
  if (in.computed <= 0.0) {
    // Q_j = 0: a processor that computed nothing is paid nothing.
    out.utility = out.valuation;
    return out;
  }
  out.recompense = recompense(in.alpha, in.computed, in.actual_rate);
  out.compensation = in.alpha * in.actual_rate + out.recompense;  // (4.7)
  out.bonus = in.predecessor_bid - out.realized_equivalent;       // (4.9)
  if (config.solution_bonus_enabled && in.solution_found) {
    out.solution_bonus = config.solution_bonus;  // (4.13)
  }
  out.payment = out.compensation + out.bonus + out.solution_bonus;
  out.utility = out.valuation + out.payment;
  return out;
}

}  // namespace dls::core
