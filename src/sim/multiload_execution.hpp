// Multi-load chain execution traces: one Gantt lane per load.
//
// A MultiLoadSchedule already carries the full installment timeline
// (staging, per-link transfer windows, per-processor compute windows);
// this module unfolds it into sim::Trace intervals so the Figure-2
// Gantt machinery renders concurrent loads the way it renders a single
// one. Each load gets its own lane (a Trace of only its intervals) and
// all lanes merge into a combined trace whose one-port discipline tests
// verify with Trace::check_one_port — the same oracle the event-driven
// single-load execution answers to.
#pragma once

#include <ostream>
#include <vector>

#include "multiload/types.hpp"
#include "net/networks.hpp"
#include "sim/gantt.hpp"
#include "sim/trace.hpp"

namespace dls::sim {

struct MultiLoadTrace {
  /// lanes[k] holds only load k's intervals (index-aligned with
  /// schedule.loads); `combined` merges every lane.
  std::vector<Trace> lanes;
  Trace combined;
};

/// Unfolds the solved timeline into traces. Ingress staging appears as
/// a kReceive on the root; link l_j's transfer window as a kSend on
/// P_{j-1} paired with a kReceive on P_j; compute windows as kCompute.
MultiLoadTrace trace_multiload(const net::LinearNetwork& network,
                               const multiload::MultiLoadSchedule& schedule);

/// Renders one Gantt chart per load lane (titled with the load id and
/// size), in schedule order.
void render_multiload_gantt(std::ostream& os,
                            const net::LinearNetwork& network,
                            const multiload::MultiLoadSchedule& schedule,
                            const GanttOptions& options = {});

}  // namespace dls::sim
