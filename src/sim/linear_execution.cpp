#include "sim/linear_execution.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "sim/obs_bridge.hpp"
#include "sim/simulator.hpp"

namespace dls::sim {

ExecutionPlan ExecutionPlan::compliant(const net::LinearNetwork& network,
                                       const dlt::LinearSolution& solution) {
  ExecutionPlan plan;
  plan.retain_fraction = solution.alpha_hat;
  plan.actual_rate.assign(network.processing_times().begin(),
                          network.processing_times().end());
  return plan;
}

namespace {

/// Shared mutable state threaded through the event closures.
struct ChainState {
  const net::LinearNetwork* network = nullptr;
  const ExecutionPlan* plan = nullptr;
  ExecutionResult result;

  /// P_i owns `load` units as of the current simulation instant.
  void on_load_available(Simulator& sim, std::size_t i, double load) {
    const std::size_t n = network->size();
    result.received[i] = load;
    const bool terminal = (i + 1 == n);
    const double retain =
        terminal ? 1.0 : std::clamp(plan->retain_fraction[i], 0.0, 1.0);
    const double kept = retain * load;
    const double forwarded = load - kept;

    if (kept > 0.0) {
      const double duration = kept * plan->actual_rate[i];
      const Time start = sim.now();
      result.trace.record(Interval{i, Activity::kCompute, start,
                                   start + duration, kept});
      result.computed[i] = kept;
      sim.schedule_after(duration, [this, i](Simulator& s) {
        result.finish_time[i] = s.now();
      });
    }
    if (!terminal && forwarded > 0.0) {
      const double duration = forwarded * network->z(i + 1);
      const Time start = sim.now();
      result.trace.record(Interval{i, Activity::kSend, start,
                                   start + duration, forwarded});
      result.trace.record(Interval{i + 1, Activity::kReceive, start,
                                   start + duration, forwarded});
      sim.schedule_after(duration, [this, i, forwarded](Simulator& s) {
        on_load_available(s, i + 1, forwarded);
      });
    }
  }
};

}  // namespace

ExecutionResult execute_linear(const net::LinearNetwork& network,
                               const ExecutionPlan& plan) {
  const std::size_t n = network.size();
  DLS_REQUIRE(plan.retain_fraction.size() == n,
              "plan retain_fraction size mismatch");
  DLS_REQUIRE(plan.actual_rate.size() == n, "plan actual_rate size mismatch");
  for (const double rate : plan.actual_rate) {
    DLS_REQUIRE(rate > 0.0, "actual rates must be positive");
  }

  auto state = std::make_unique<ChainState>();
  state->network = &network;
  state->plan = &plan;
  state->result.received.assign(n, 0.0);
  state->result.computed.assign(n, 0.0);
  state->result.finish_time.assign(n, 0.0);

  Simulator sim;
  ChainState* raw = state.get();
  sim.schedule_at(0.0, [raw](Simulator& s) {
    raw->on_load_available(s, 0, 1.0);
  });
  sim.run();

  state->result.makespan = *std::max_element(
      state->result.finish_time.begin(), state->result.finish_time.end());
  publish_trace(state->result.trace);
  return std::move(state->result);
}

}  // namespace dls::sim
