#include "sim/obs_bridge.hpp"

#include <cmath>
#include <cstdint>

#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace dls::sim {

#if DLS_OBS_LEVEL >= 1

namespace {

const char* span_name(Activity activity) {
  switch (activity) {
    case Activity::kReceive: return "sim.receive";
    case Activity::kSend: return "sim.send";
    case Activity::kCompute: return "sim.compute";
  }
  return "sim.unknown";
}

/// 1 simulated time unit = 1 ms of trace time: readable in ms-scale
/// viewers while keeping sub-unit intervals at ns resolution.
constexpr double kNsPerUnit = 1e6;

std::uint64_t to_ns(Time t) {
  return static_cast<std::uint64_t>(std::llround(t * kNsPerUnit));
}

}  // namespace

void publish_trace(const Trace& trace) {
  if (!obs::active()) return;
  for (const Interval& iv : trace.intervals()) {
    obs::record_span(span_name(iv.activity), to_ns(iv.start), to_ns(iv.end),
                     obs::Track::kSimulation,
                     static_cast<std::uint32_t>(iv.processor),
                     "{\"amount\":" + obs::internal::json_double(iv.amount) +
                         "}");
  }
}

#else

void publish_trace(const Trace& trace) { static_cast<void>(trace); }

#endif

}  // namespace dls::sim
