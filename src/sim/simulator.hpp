// Discrete-event simulation engine.
//
// A deliberately small core: a time-ordered queue of closures with a
// deterministic tiebreak (insertion sequence), which is all the network
// execution models need. Determinism matters — two events at the same
// instant always fire in schedule order, so simulated traces are
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace dls::sim {

using Time = double;

class Simulator {
 public:
  using Action = std::function<void(Simulator&)>;

  /// Current simulation time.
  Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `at` (>= now()).
  void schedule_at(Time at, Action action);

  /// Schedules `action` `delay` (>= 0) after now().
  void schedule_after(Time delay, Action action);

  /// Runs until the queue drains. Returns the time of the last event.
  Time run();

  /// Runs until the queue drains or `horizon` is reached; events beyond
  /// the horizon stay queued.
  Time run_until(Time horizon);

  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    Time time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dls::sim
