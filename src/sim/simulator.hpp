// Discrete-event simulation engine.
//
// A deliberately small core: a time-ordered queue of closures with a
// deterministic tiebreak (insertion sequence), which is all the network
// execution models need. Determinism matters — two events at the same
// instant always fire in schedule order, so simulated traces are
// reproducible bit-for-bit.
//
// Events are cancellable: schedule_at / schedule_after return an EventId
// that cancel() can later revoke. Cancellation is lazy (the entry stays
// queued but is skipped when popped), so it is O(1) and does not perturb
// the firing order of the surviving events. The fault-injection layer
// (faults.hpp) relies on this to revoke the pending sends and compute
// completions of a processor that crashes mid-round, and the protocol's
// heartbeat monitor uses it to retire timeout timers when the awaited
// message arrives.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"

namespace dls::sim {

using Time = double;

/// Token identifying a scheduled event; valid until the event fires, is
/// cancelled, or is dropped.
using EventId = std::uint64_t;

class Simulator {
 public:
  using Action = std::function<void(Simulator&)>;

  /// Current simulation time.
  Time now() const noexcept { return now_; }

  /// Schedules `action` at absolute time `at` (>= now()). The returned
  /// token may be passed to cancel() any time before the event fires.
  EventId schedule_at(Time at, Action action);

  /// Schedules `action` `delay` (>= 0) after now().
  EventId schedule_after(Time delay, Action action);

  /// Revokes a pending event. Returns true if the event was still
  /// pending (and is now guaranteed never to fire); false if it already
  /// fired, was cancelled before, or the token is unknown.
  bool cancel(EventId id);

  /// Runs until the queue drains. Returns the time of the last event.
  Time run();

  /// Runs until the queue drains or `horizon` is reached. CAUTION:
  /// events scheduled beyond the horizon are NOT discarded — they stay
  /// queued and will fire on the next run()/run_until() call. Call
  /// drop_pending() after run_until() to abandon them explicitly.
  Time run_until(Time horizon);

  /// Discards every still-pending event (cancelled ones excluded from
  /// the count). Returns how many live events were dropped. Pending
  /// tokens become invalid.
  std::size_t drop_pending();

  /// Number of live (not cancelled) events still queued.
  std::size_t pending() const noexcept { return pending_ids_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }
  std::uint64_t cancelled() const noexcept { return cancelled_total_; }

 private:
  struct Entry {
    Time time;
    EventId seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> pending_ids_;  ///< queued and not cancelled
  std::unordered_set<EventId> cancelled_;    ///< lazily-deleted entries
  Time now_ = 0.0;
  EventId next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_total_ = 0;
};

}  // namespace dls::sim
