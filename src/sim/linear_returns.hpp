// Result-return simulation — probing assumption (iii) of the paper
// ("the time taken for returning the result of the load processing back
// to the root is small").
//
// After a processor finishes computing, its result — δ load-equivalents
// per unit of input — must travel back to the root through the same
// chain (store-and-forward, half-duplex links: a link carries return
// traffic only after its forward transfer is done, which at the optimum
// is always the case since forward traffic completes before the first
// computation ends). Relaying is greedy: whenever a processor's uplink
// is free and it holds results (its own or relayed), it ships everything
// it has as one batch.
#pragma once

#include "sim/linear_execution.hpp"

namespace dls::sim {

struct ReturnExecutionResult {
  ExecutionResult forward;      ///< the Phase III computation itself
  double collection_time = 0.0; ///< when the root holds every result
  double collected = 0.0;       ///< result units returned (δ·Σ_{j>=1} α̃_j)

  /// The overhead the paper's assumption (iii) neglects.
  double return_overhead() const noexcept {
    return collection_time - forward.makespan;
  }
};

/// Runs the chain forward (like execute_linear) and then simulates the
/// result return with factor `delta` >= 0 (result size per unit input).
ReturnExecutionResult execute_linear_with_returns(
    const net::LinearNetwork& network, const ExecutionPlan& plan,
    double delta);

}  // namespace dls::sim
