#include "sim/tree_execution.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dls::sim {

TreeExecutionPlan TreeExecutionPlan::compliant(
    const net::TreeNetwork& network) {
  TreeExecutionPlan plan;
  plan.keep_multiplier.assign(network.size(), 1.0);
  plan.actual_rate.resize(network.size());
  for (std::size_t v = 0; v < network.size(); ++v) {
    plan.actual_rate[v] = network.w(v);
  }
  return plan;
}

TreeExecutionResult execute_tree(const net::TreeNetwork& network,
                                 const dlt::TreeSolution& bid_solution,
                                 const TreeExecutionPlan& plan) {
  const std::size_t n = network.size();
  DLS_REQUIRE(plan.keep_multiplier.size() == n, "plan keep size mismatch");
  DLS_REQUIRE(plan.actual_rate.size() == n, "plan rate size mismatch");
  DLS_REQUIRE(bid_solution.alpha.size() == n, "solution size mismatch");
  for (const double rate : plan.actual_rate) {
    DLS_REQUIRE(rate > 0.0, "actual rates must be positive");
  }

  TreeExecutionResult result;
  result.received.assign(n, 0.0);
  result.computed.assign(n, 0.0);
  result.finish_time.assign(n, 0.0);
  std::vector<double> hold(n, 0.0);
  result.received[0] = 1.0;

  // Parents precede children in index order, so a single forward scan
  // visits every node after its load and hold time are known.
  for (std::size_t v = 0; v < n; ++v) {
    const double load = result.received[v];
    if (load <= 0.0) continue;
    const auto kids = network.children(v);

    double keep_fraction = 1.0;
    if (!kids.empty()) {
      keep_fraction = std::clamp(
          bid_solution.local_keep[v] * plan.keep_multiplier[v], 0.0, 1.0);
    }
    const double kept = keep_fraction * load;
    if (kept > 0.0) {
      const double duration = kept * plan.actual_rate[v];
      result.trace.record(Interval{v, Activity::kCompute, hold[v],
                                   hold[v] + duration, kept});
      result.computed[v] = kept;
      result.finish_time[v] = hold[v] + duration;
    }
    if (kids.empty()) continue;

    // Children's bid-derived shares of the forwarded remainder, served
    // fastest-link-first (the order solve_tree used).
    std::vector<std::size_t> order(kids.begin(), kids.end());
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return network.z(a) < network.z(b);
                     });
    double share_total = 0.0;
    for (const std::size_t c : order) share_total += bid_solution.received[c];
    const double forwarded = load - kept;
    if (forwarded <= 0.0 || share_total <= 0.0) continue;
    double clock = hold[v];
    for (const std::size_t c : order) {
      const double child_load =
          forwarded * bid_solution.received[c] / share_total;
      if (child_load <= 0.0) continue;
      const double arrive = clock + child_load * network.z(c);
      result.trace.record(
          Interval{v, Activity::kSend, clock, arrive, child_load});
      result.trace.record(
          Interval{c, Activity::kReceive, clock, arrive, child_load});
      clock = arrive;
      hold[c] = arrive;
      result.received[c] = child_load;
    }
  }
  result.makespan = *std::max_element(result.finish_time.begin(),
                                      result.finish_time.end());
  return result;
}

}  // namespace dls::sim
