// Event-driven execution of star/bus networks, including multi-
// installment schedules: the root serves workers one at a time (one-port)
// in a prescribed sequence of (worker, chunk) transmissions; a worker
// computes its chunks in arrival order on a busy queue.
//
// Used to cross-check the closed-form star solver and as the exact
// evaluator behind the multi-round optimiser (dlt/multiround.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "net/networks.hpp"
#include "sim/trace.hpp"

namespace dls::sim {

/// One transmission the root performs: `chunk` load units to `worker`.
struct Installment {
  std::size_t worker = 0;
  double chunk = 0.0;
};

/// A full star schedule: the root's transmission sequence plus its own
/// share (computed locally, overlapping all sends).
struct StarSchedule {
  double root_share = 0.0;
  std::vector<Installment> sends;

  /// Total load covered by the schedule (must be 1 for a valid run).
  double total() const noexcept;
};

struct StarExecutionResult {
  std::vector<double> computed;     ///< per worker
  std::vector<double> finish_time;  ///< per worker (0 if idle)
  double root_finish = 0.0;
  double makespan = 0.0;
  Trace trace;  ///< processor 0 = root, worker i at index i+1
};

/// Runs the schedule on the star. Chunks must be non-negative; the total
/// must equal 1 within 1e-9.
StarExecutionResult execute_star(const net::StarNetwork& network,
                                 const StarSchedule& schedule);

/// The single-installment schedule corresponding to a closed-form star
/// solution (one chunk per worker, solver's service order).
StarSchedule single_installment(const net::StarNetwork& network,
                                double alpha_root,
                                const std::vector<double>& alpha,
                                const std::vector<std::size_t>& order);

}  // namespace dls::sim
