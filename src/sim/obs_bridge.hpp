// Bridge from simulated activity traces into the observability sink.
//
// Each sim::Interval becomes a span on obs::Track::kSimulation with the
// simulated processor index as its lane, so Chrome/Perfetto renders the
// Figure 2 Gantt chart alongside the runtime flame graph. One simulated
// time unit maps to 1 ms (1e6 ns) of trace time.
#pragma once

#include "sim/trace.hpp"

namespace dls::sim {

/// Publishes every interval of `trace` into the global trace sink.
/// No-op when collection is inactive or DLS_OBS_LEVEL=0.
void publish_trace(const Trace& trace);

}  // namespace dls::sim
