#include "sim/faults.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/error.hpp"
#include "sim/obs_bridge.hpp"
#include "sim/simulator.hpp"

namespace dls::sim {

std::string to_string(LinkFaultKind kind) {
  switch (kind) {
    case LinkFaultKind::kLoss: return "loss";
    case LinkFaultKind::kDelay: return "delay";
    case LinkFaultKind::kCorrupt: return "corrupt";
  }
  return "unknown";
}

std::string to_string(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash: return "crash";
    case FaultEvent::Kind::kMessageLost: return "message-lost";
    case FaultEvent::Kind::kMessageDelayed: return "message-delayed";
    case FaultEvent::Kind::kMessageCorrupted: return "message-corrupted";
    case FaultEvent::Kind::kDeadDestination: return "dead-destination";
  }
  return "unknown";
}

FaultPlan& FaultPlan::crash_at_time(std::size_t processor, double time) {
  DLS_REQUIRE(std::isfinite(time) && time >= 0.0,
              "crash time must be finite and non-negative");
  crashes_.push_back(CrashSpec{processor, time, -1.0});
  return *this;
}

FaultPlan& FaultPlan::crash_at_work(std::size_t processor, double fraction) {
  DLS_REQUIRE(fraction >= 0.0 && fraction < 1.0,
              "crash work fraction must lie in [0, 1)");
  crashes_.push_back(CrashSpec{processor, -1.0, fraction});
  return *this;
}

FaultPlan& FaultPlan::add_link_fault(LinkFaultSpec spec) {
  DLS_REQUIRE(spec.link >= 1, "link indices start at 1");
  DLS_REQUIRE(spec.probability >= 0.0 && spec.probability <= 1.0,
              "fault probability must lie in [0, 1]");
  DLS_REQUIRE(spec.delay >= 0.0, "fault delay must be non-negative");
  link_faults_.push_back(spec);
  return *this;
}

FaultPlan& FaultPlan::drop_messages(std::size_t link, double probability) {
  return add_link_fault({link, LinkFaultKind::kLoss, probability, 0.0});
}

FaultPlan& FaultPlan::delay_messages(std::size_t link, double delay,
                                     double probability) {
  return add_link_fault({link, LinkFaultKind::kDelay, probability, delay});
}

FaultPlan& FaultPlan::corrupt_messages(std::size_t link, double probability) {
  return add_link_fault({link, LinkFaultKind::kCorrupt, probability, 0.0});
}

FaultPlan& FaultPlan::meter_dropout(std::size_t processor) {
  meter_dropouts_.push_back(processor);
  return *this;
}

bool FaultPlan::empty() const noexcept {
  return crashes_.empty() && link_faults_.empty() && meter_dropouts_.empty();
}

std::optional<CrashSpec> FaultPlan::crash_of(std::size_t processor) const {
  for (const CrashSpec& spec : crashes_) {
    if (spec.processor == processor) return spec;
  }
  return std::nullopt;
}

bool FaultPlan::meter_dropped(std::size_t processor) const {
  return std::find(meter_dropouts_.begin(), meter_dropouts_.end(),
                   processor) != meter_dropouts_.end();
}

std::vector<LinkFaultSpec> FaultPlan::faults_on_link(std::size_t j) const {
  std::vector<LinkFaultSpec> out;
  for (const LinkFaultSpec& spec : link_faults_) {
    if (spec.link == j) out.push_back(spec);
  }
  return out;
}

double FaultPlan::path_loss_probability(std::size_t j) const {
  double worst = 0.0;
  for (const LinkFaultSpec& spec : link_faults_) {
    if (spec.kind == LinkFaultKind::kLoss && spec.link >= 1 &&
        spec.link <= j) {
      worst = std::max(worst, spec.probability);
    }
  }
  return worst;
}

FaultPlan FaultPlan::random_crashes(std::size_t processors,
                                    double crash_probability,
                                    common::Rng& rng) {
  DLS_REQUIRE(crash_probability >= 0.0 && crash_probability <= 1.0,
              "crash probability must lie in [0, 1]");
  FaultPlan plan(rng.bits());
  for (std::size_t i = 1; i < processors; ++i) {
    if (rng.bernoulli(crash_probability)) {
      plan.crash_at_work(i, rng.uniform(0.05, 0.95));
    }
  }
  return plan;
}

bool FaultyExecutionResult::any_crash() const noexcept {
  return std::find(crashed.begin(), crashed.end(), true) != crashed.end();
}

double FaultyExecutionResult::total_computed() const noexcept {
  double sum = 0.0;
  for (const double c : base.computed) sum += c;
  return sum;
}

namespace {

void sort_events(std::vector<FaultEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.time < b.time;
                   });
}

/// Per-processor bookkeeping for the chain executor: what is in flight
/// and which event tokens to revoke if the node dies.
struct NodeState {
  bool dead = false;
  bool crash_scheduled = false;

  bool finish_pending = false;
  EventId finish_event = 0;
  Time compute_start = 0.0;
  Time compute_end = 0.0;
  double compute_amount = 0.0;

  bool arrival_pending = false;
  EventId arrival_event = 0;
  Time send_start = 0.0;
  double send_amount = 0.0;
  std::size_t send_link = 0;
};

struct FaultyChainState {
  const net::LinearNetwork* network = nullptr;
  const ExecutionPlan* plan = nullptr;
  const FaultPlan* faults = nullptr;
  common::Rng rng{1};

  FaultyExecutionResult result;
  std::vector<NodeState> nodes;

  void on_crash(Simulator& sim, std::size_t i) {
    NodeState& node = nodes[i];
    if (node.dead) return;
    node.dead = true;
    result.crashed[i] = true;
    result.crash_time[i] = sim.now();
    result.events.push_back(
        FaultEvent{FaultEvent::Kind::kCrash, sim.now(), i, 0.0});

    // Revoke the pending compute completion: the node dies mid-crunch
    // with only the elapsed fraction of its retained load finished.
    if (node.finish_pending && sim.cancel(node.finish_event)) {
      node.finish_pending = false;
      const double span = node.compute_end - node.compute_start;
      const double frac =
          span > 0.0 ? (sim.now() - node.compute_start) / span : 0.0;
      const double partial = node.compute_amount * frac;
      result.base.computed[i] = partial;
      result.unfinished[i] += node.compute_amount - partial;
      result.base.trace.record(Interval{i, Activity::kCompute,
                                        node.compute_start, sim.now(),
                                        partial});
    }
    // Revoke the in-flight outbound transfer: store-and-forward means a
    // partially-shipped batch never becomes usable downstream.
    if (node.arrival_pending && sim.cancel(node.arrival_event)) {
      node.arrival_pending = false;
      result.undelivered += node.send_amount;
      result.events.push_back(FaultEvent{FaultEvent::Kind::kMessageLost,
                                         sim.now(), node.send_link,
                                         node.send_amount});
      result.base.trace.record(Interval{i, Activity::kSend, node.send_start,
                                        sim.now(), node.send_amount});
    }
  }

  void on_load_available(Simulator& sim, std::size_t i, double load,
                         bool payload_corrupted) {
    const std::size_t n = network->size();
    NodeState& node = nodes[i];
    if (node.dead) {
      result.undelivered += load;
      result.events.push_back(FaultEvent{FaultEvent::Kind::kDeadDestination,
                                         sim.now(), i, load});
      return;
    }
    result.base.received[i] = load;
    if (payload_corrupted) result.corrupted[i] = true;

    const bool terminal = (i + 1 == n);
    const double retain =
        terminal ? 1.0 : std::clamp(plan->retain_fraction[i], 0.0, 1.0);
    const double kept = retain * load;
    const double forwarded = load - kept;

    if (kept > 0.0) {
      const double duration = kept * plan->actual_rate[i];
      node.compute_start = sim.now();
      node.compute_end = sim.now() + duration;
      node.compute_amount = kept;
      node.finish_pending = true;
      node.finish_event = sim.schedule_after(duration, [this, i](Simulator& s) {
        NodeState& me = nodes[i];
        me.finish_pending = false;
        result.base.computed[i] = me.compute_amount;
        result.base.finish_time[i] = s.now();
        result.base.trace.record(Interval{i, Activity::kCompute,
                                          me.compute_start, s.now(),
                                          me.compute_amount});
      });
    }

    // A work-fraction crash becomes an absolute instant once the compute
    // window is known.
    if (!node.crash_scheduled) {
      if (const auto spec = faults->crash_of(i);
          spec && spec->at_work_fraction >= 0.0 && kept > 0.0) {
        node.crash_scheduled = true;
        const double until_crash =
            spec->at_work_fraction * kept * plan->actual_rate[i];
        sim.schedule_after(until_crash,
                           [this, i](Simulator& s) { on_crash(s, i); });
      }
    }

    if (terminal || forwarded <= 0.0) return;

    // Outbound transfer on link i+1, subject to the link's fault specs.
    const std::size_t link = i + 1;
    const double duration = forwarded * network->z(link);
    const Time send_start = sim.now();
    const Time send_end = send_start + duration;

    bool lost = false;
    bool corrupt_out = payload_corrupted;
    double extra_delay = 0.0;
    for (const LinkFaultSpec& spec : faults->faults_on_link(link)) {
      if (!rng.bernoulli(spec.probability)) continue;
      switch (spec.kind) {
        case LinkFaultKind::kLoss:
          lost = true;
          break;
        case LinkFaultKind::kDelay:
          extra_delay += spec.delay;
          result.events.push_back(FaultEvent{
              FaultEvent::Kind::kMessageDelayed, send_end, link, forwarded});
          break;
        case LinkFaultKind::kCorrupt:
          corrupt_out = true;
          result.events.push_back(FaultEvent{
              FaultEvent::Kind::kMessageCorrupted, send_end, link,
              forwarded});
          break;
      }
      if (lost) break;
    }

    if (lost) {
      // The wire was occupied for the full window, but nothing usable
      // came out the far end.
      result.undelivered += forwarded;
      result.events.push_back(FaultEvent{FaultEvent::Kind::kMessageLost,
                                         send_end, link, forwarded});
      result.base.trace.record(
          Interval{i, Activity::kSend, send_start, send_end, forwarded});
      return;
    }

    node.send_start = send_start;
    node.send_amount = forwarded;
    node.send_link = link;
    node.arrival_pending = true;
    node.arrival_event = sim.schedule_after(
        duration + extra_delay,
        [this, i, forwarded, send_start, send_end,
         corrupt_out](Simulator& s) {
          NodeState& me = nodes[i];
          me.arrival_pending = false;
          result.base.trace.record(Interval{i, Activity::kSend, send_start,
                                            send_end, forwarded});
          result.base.trace.record(Interval{i + 1, Activity::kReceive,
                                            send_start, send_end, forwarded});
          on_load_available(s, i + 1, forwarded, corrupt_out);
        });
  }
};

}  // namespace

FaultyExecutionResult execute_linear_faulty(const net::LinearNetwork& network,
                                            const ExecutionPlan& plan,
                                            const FaultPlan& faults) {
  const std::size_t n = network.size();
  DLS_REQUIRE(plan.retain_fraction.size() == n,
              "plan retain_fraction size mismatch");
  DLS_REQUIRE(plan.actual_rate.size() == n, "plan actual_rate size mismatch");
  for (const double rate : plan.actual_rate) {
    DLS_REQUIRE(rate > 0.0, "actual rates must be positive");
  }
  for (const CrashSpec& spec : faults.crashes()) {
    DLS_REQUIRE(spec.processor < n, "crash processor out of range");
  }
  for (const LinkFaultSpec& spec : faults.link_faults()) {
    DLS_REQUIRE(spec.link >= 1 && spec.link < n, "link fault out of range");
  }

  auto state = std::make_unique<FaultyChainState>();
  state->network = &network;
  state->plan = &plan;
  state->faults = &faults;
  state->rng = common::Rng(faults.seed());
  state->result.base.received.assign(n, 0.0);
  state->result.base.computed.assign(n, 0.0);
  state->result.base.finish_time.assign(n, 0.0);
  state->result.crashed.assign(n, false);
  state->result.crash_time.assign(n, 0.0);
  state->result.unfinished.assign(n, 0.0);
  state->result.corrupted.assign(n, false);
  state->result.meter_ok.assign(n, true);
  for (std::size_t i = 0; i < n; ++i) {
    if (faults.meter_dropped(i)) state->result.meter_ok[i] = false;
  }
  state->nodes.assign(n, NodeState{});

  Simulator sim;
  FaultyChainState* raw = state.get();
  // Absolute-time crashes are scheduled up front; work-fraction crashes
  // resolve when the victim's compute window becomes known.
  for (const CrashSpec& spec : faults.crashes()) {
    if (spec.at_time >= 0.0) {
      raw->nodes[spec.processor].crash_scheduled = true;
      const std::size_t who = spec.processor;
      sim.schedule_at(spec.at_time,
                      [raw, who](Simulator& s) { raw->on_crash(s, who); });
    }
  }
  sim.schedule_at(0.0, [raw](Simulator& s) {
    raw->on_load_available(s, 0, 1.0, false);
  });
  sim.run();

  state->result.base.makespan =
      *std::max_element(state->result.base.finish_time.begin(),
                        state->result.base.finish_time.end());
  sort_events(state->result.events);
  publish_trace(state->result.base.trace);
  return std::move(state->result);
}

FaultyExecutionResult execute_star_faulty(const net::StarNetwork& network,
                                          const StarSchedule& schedule,
                                          const FaultPlan& faults) {
  const std::size_t m = network.workers();
  const std::size_t n = m + 1;  // trace indexing: 0 = root
  DLS_REQUIRE(schedule.root_share >= 0.0, "root share must be >= 0");
  DLS_REQUIRE(std::abs(schedule.total() - 1.0) <= 1e-9,
              "schedule must cover exactly the unit load");
  for (const CrashSpec& spec : faults.crashes()) {
    DLS_REQUIRE(spec.processor >= 1 && spec.processor < n,
                "star crashes are limited to workers (indices 1..m)");
  }
  for (const LinkFaultSpec& spec : faults.link_faults()) {
    DLS_REQUIRE(spec.link >= 1 && spec.link < n, "link fault out of range");
  }

  FaultyExecutionResult result;
  result.base.received.assign(n, 0.0);
  result.base.computed.assign(n, 0.0);
  result.base.finish_time.assign(n, 0.0);
  result.crashed.assign(n, false);
  result.crash_time.assign(n, 0.0);
  result.unfinished.assign(n, 0.0);
  result.corrupted.assign(n, false);
  result.meter_ok.assign(n, true);
  for (std::size_t i = 0; i < n; ++i) {
    if (faults.meter_dropped(i)) result.meter_ok[i] = false;
  }
  common::Rng rng(faults.seed());

  if (schedule.root_share > 0.0) {
    DLS_REQUIRE(network.root_computes(),
                "a non-computing root cannot keep a share");
    const double finish = schedule.root_share * network.root_w();
    result.base.computed[0] = schedule.root_share;
    result.base.finish_time[0] = finish;
    result.base.trace.record(
        Interval{0, Activity::kCompute, 0.0, finish, schedule.root_share});
  }

  // Work-fraction crashes trigger once the worker has accumulated the
  // given fraction of its total assigned compute time.
  std::vector<double> total_work(m, 0.0);
  for (const Installment& send : schedule.sends) {
    total_work[send.worker] += send.chunk * network.w(send.worker);
  }
  std::vector<double> crash_budget(m,
                                   std::numeric_limits<double>::infinity());
  std::vector<double> crash_at(m, std::numeric_limits<double>::infinity());
  for (std::size_t w = 0; w < m; ++w) {
    if (const auto spec = faults.crash_of(w + 1)) {
      if (spec->at_time >= 0.0) {
        crash_at[w] = spec->at_time;
      } else {
        crash_budget[w] = spec->at_work_fraction * total_work[w];
      }
    }
  }

  double port_clock = 0.0;
  std::vector<double> busy_until(m, 0.0);
  std::vector<double> worked(m, 0.0);  // accumulated compute time
  for (const Installment& send : schedule.sends) {
    if (send.chunk <= 0.0) continue;
    const std::size_t w = send.worker;
    const std::size_t node = w + 1;
    const std::size_t link = w + 1;
    const double z = network.z(w);
    const Time send_start = port_clock;
    const Time send_end = port_clock + send.chunk * z;
    port_clock = send_end;  // one-port: the wire is busy regardless
    result.base.trace.record(
        Interval{0, Activity::kSend, send_start, send_end, send.chunk});

    bool lost = false;
    bool corrupt = false;
    double extra_delay = 0.0;
    for (const LinkFaultSpec& spec : faults.faults_on_link(link)) {
      if (!rng.bernoulli(spec.probability)) continue;
      switch (spec.kind) {
        case LinkFaultKind::kLoss:
          lost = true;
          break;
        case LinkFaultKind::kDelay:
          extra_delay += spec.delay;
          result.events.push_back(FaultEvent{
              FaultEvent::Kind::kMessageDelayed, send_end, link, send.chunk});
          break;
        case LinkFaultKind::kCorrupt:
          corrupt = true;
          result.events.push_back(FaultEvent{
              FaultEvent::Kind::kMessageCorrupted, send_end, link,
              send.chunk});
          break;
      }
      if (lost) break;
    }
    if (lost) {
      result.undelivered += send.chunk;
      result.events.push_back(
          FaultEvent{FaultEvent::Kind::kMessageLost, send_end, link,
                     send.chunk});
      continue;
    }
    const Time arrive = send_end + extra_delay;
    result.base.trace.record(
        Interval{node, Activity::kReceive, send_start, send_end, send.chunk});

    // An absolute-time crash may pre-date this arrival.
    if (!result.crashed[node] && crash_at[w] <= arrive) {
      result.crashed[node] = true;
      result.crash_time[node] = crash_at[w];
      result.events.push_back(
          FaultEvent{FaultEvent::Kind::kCrash, crash_at[w], node, 0.0});
    }
    if (result.crashed[node]) {
      result.undelivered += send.chunk;
      result.events.push_back(FaultEvent{FaultEvent::Kind::kDeadDestination,
                                         arrive, node, send.chunk});
      continue;
    }
    result.base.received[node] += send.chunk;
    if (corrupt) result.corrupted[node] = true;

    const double start = std::max(arrive, busy_until[w]);
    const double duration = send.chunk * network.w(w);
    // The crash cuts the chunk short when either trigger fires inside
    // the compute window.
    double crash_instant = std::numeric_limits<double>::infinity();
    if (crash_at[w] > start && crash_at[w] < start + duration) {
      crash_instant = crash_at[w];
    }
    const double budget_left = crash_budget[w] - worked[w];
    if (budget_left < duration) {
      crash_instant = std::min(crash_instant, start + budget_left);
    }
    if (crash_instant < start + duration) {
      const double partial = send.chunk * (crash_instant - start) / duration;
      result.base.computed[node] += partial;
      result.unfinished[node] += send.chunk - partial;
      worked[w] += crash_instant - start;
      result.base.trace.record(Interval{node, Activity::kCompute, start,
                                        crash_instant, partial});
      result.crashed[node] = true;
      result.crash_time[node] = crash_instant;
      result.events.push_back(
          FaultEvent{FaultEvent::Kind::kCrash, crash_instant, node, 0.0});
      crash_at[w] = crash_instant;  // later chunks hit the dead branch
      continue;
    }
    result.base.trace.record(
        Interval{node, Activity::kCompute, start, start + duration,
                 send.chunk});
    busy_until[w] = start + duration;
    worked[w] += duration;
    result.base.computed[node] += send.chunk;
    result.base.finish_time[node] = busy_until[w];
  }

  result.base.makespan = *std::max_element(result.base.finish_time.begin(),
                                           result.base.finish_time.end());
  sort_events(result.events);
  return result;
}

}  // namespace dls::sim
