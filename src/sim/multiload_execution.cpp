#include "sim/multiload_execution.hpp"

#include <string>

#include "common/error.hpp"

namespace dls::sim {

MultiLoadTrace trace_multiload(const net::LinearNetwork& network,
                               const multiload::MultiLoadSchedule& schedule) {
  const std::size_t n = network.size();
  DLS_REQUIRE(schedule.chain.alpha.size() == n,
              "schedule chain does not match the network");

  // The same unit offsets the solver (and its checker) use: A_j is the
  // arrival offset of P_j per unit of chunk size.
  std::vector<double> unit_arrival(n, 0.0);
  for (std::size_t i = 1; i < n; ++i) {
    unit_arrival[i] =
        unit_arrival[i - 1] + schedule.chain.received[i] * network.z(i);
  }

  MultiLoadTrace out;
  out.lanes.resize(schedule.loads.size());
  const auto record = [&out](std::size_t lane, Interval interval) {
    if (interval.end <= interval.start) return;  // zero-width: nothing drawn
    out.lanes[lane].record(interval);
    out.combined.record(interval);
  };

  for (const multiload::Installment& inst : schedule.installments) {
    const double s = inst.size;
    // Ingress staging occupies the root's inbound port.
    record(inst.load, Interval{0, Activity::kReceive, inst.stage_start,
                               inst.stage_done, s});
    // Link l_j carries the chunk's onward share over its busy window.
    for (std::size_t j = 1; j < n; ++j) {
      const Time begin = inst.comm_start + s * unit_arrival[j - 1];
      const Time end = inst.comm_start + s * unit_arrival[j];
      const double amount = s * schedule.chain.received[j];
      record(inst.load, Interval{j - 1, Activity::kSend, begin, end, amount});
      record(inst.load, Interval{j, Activity::kReceive, begin, end, amount});
    }
    for (std::size_t i = 0; i < n; ++i) {
      record(inst.load,
             Interval{i, Activity::kCompute, inst.compute_start[i],
                      inst.finish[i], s * schedule.chain.alpha[i]});
    }
  }
  return out;
}

void render_multiload_gantt(std::ostream& os,
                            const net::LinearNetwork& network,
                            const multiload::MultiLoadSchedule& schedule,
                            const GanttOptions& options) {
  const MultiLoadTrace traced = trace_multiload(network, schedule);
  for (std::size_t k = 0; k < schedule.loads.size(); ++k) {
    const multiload::LoadOutcome& outcome = schedule.loads[k];
    GanttOptions lane = options;
    lane.title = "load " + std::to_string(outcome.spec.id) + " (size " +
                 std::to_string(outcome.spec.size) + ")";
    render_gantt(os, traced.lanes[k], lane);
  }
}

}  // namespace dls::sim
