#include "sim/linear_returns.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "sim/simulator.hpp"

namespace dls::sim {

namespace {

struct ReturnState {
  const net::LinearNetwork* network = nullptr;
  double delta = 0.0;
  std::vector<double> pending;    ///< results held at P_i, not yet shipped
  std::vector<bool> uplink_busy;  ///< link l_i (P_i -> P_{i-1}) in use
  std::vector<double> port_free;  ///< when P_i's forward sending ended
  Trace* trace = nullptr;
  double root_received = 0.0;
  double last_arrival = 0.0;

  void try_send(Simulator& sim, std::size_t i) {
    if (i == 0 || pending[i] <= 0.0 || uplink_busy[i]) return;
    // One-port: P_i cannot return results while still forwarding load.
    if (sim.now() < port_free[i] - 1e-15) {
      sim.schedule_at(port_free[i],
                      [this, i](Simulator& s) { try_send(s, i); });
      return;
    }
    const double amount = pending[i];
    pending[i] = 0.0;
    uplink_busy[i] = true;
    const double duration = amount * network->z(i);
    const Time start = sim.now();
    trace->record(Interval{i, Activity::kSend, start, start + duration,
                           amount});
    trace->record(Interval{i - 1, Activity::kReceive, start,
                           start + duration, amount});
    sim.schedule_after(duration, [this, i, amount](Simulator& s) {
      uplink_busy[i] = false;
      if (i - 1 == 0) {
        root_received += amount;
        last_arrival = s.now();
      } else {
        pending[i - 1] += amount;
        try_send(s, i - 1);
      }
      try_send(s, i);  // more results may have queued meanwhile
    });
  }
};

}  // namespace

ReturnExecutionResult execute_linear_with_returns(
    const net::LinearNetwork& network, const ExecutionPlan& plan,
    double delta) {
  DLS_REQUIRE(delta >= 0.0, "result factor must be non-negative");
  ReturnExecutionResult result;
  result.forward = execute_linear(network, plan);
  if (delta == 0.0) {
    result.collection_time = result.forward.makespan;
    return result;
  }

  const std::size_t n = network.size();
  auto state = std::make_unique<ReturnState>();
  state->network = &network;
  state->delta = delta;
  state->pending.assign(n, 0.0);
  state->uplink_busy.assign(n, false);
  state->trace = &result.forward.trace;
  state->port_free.assign(n, 0.0);
  for (const auto& iv : result.forward.trace.intervals()) {
    if (iv.activity == Activity::kSend) {
      state->port_free[iv.processor] =
          std::max(state->port_free[iv.processor], iv.end);
    }
  }

  Simulator sim;
  ReturnState* raw = state.get();
  // Each processor's result becomes available the moment its compute
  // finishes; the return relay races down the chain from there.
  for (std::size_t i = 1; i < n; ++i) {
    const double amount = delta * result.forward.computed[i];
    if (amount <= 0.0) continue;
    sim.schedule_at(result.forward.finish_time[i],
                    [raw, i, amount](Simulator& s) {
                      raw->pending[i] += amount;
                      raw->try_send(s, i);
                    });
  }
  sim.run();

  result.collected = state->root_received;
  result.collection_time =
      std::max(result.forward.makespan, state->last_arrival);
  return result;
}

}  // namespace dls::sim
