#include "sim/star_execution.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dls::sim {

double StarSchedule::total() const noexcept {
  double sum = root_share;
  for (const auto& send : sends) sum += send.chunk;
  return sum;
}

StarExecutionResult execute_star(const net::StarNetwork& network,
                                 const StarSchedule& schedule) {
  const std::size_t m = network.workers();
  DLS_REQUIRE(schedule.root_share >= 0.0, "root share must be >= 0");
  for (const auto& send : schedule.sends) {
    DLS_REQUIRE(send.worker < m, "installment worker out of range");
    DLS_REQUIRE(send.chunk >= 0.0, "installment chunk must be >= 0");
  }
  DLS_REQUIRE(std::abs(schedule.total() - 1.0) <= 1e-9,
              "schedule must cover exactly the unit load");
  DLS_REQUIRE(schedule.root_share == 0.0 || network.root_computes(),
              "a non-computing root cannot keep a share");

  StarExecutionResult result;
  result.computed.assign(m, 0.0);
  result.finish_time.assign(m, 0.0);

  // The root computes its share starting at t = 0 (front-end overlap).
  if (schedule.root_share > 0.0) {
    result.root_finish = schedule.root_share * network.root_w();
    result.trace.record(Interval{0, Activity::kCompute, 0.0,
                                 result.root_finish, schedule.root_share});
  }

  // One-port: transmissions are strictly sequential in schedule order.
  // Each worker owns a busy-until clock; chunks queue behind both the
  // arrival time and earlier chunks.
  double port_clock = 0.0;
  std::vector<double> busy_until(m, 0.0);
  for (const auto& send : schedule.sends) {
    if (send.chunk <= 0.0) continue;
    const double z = network.z(send.worker);
    const double arrive = port_clock + send.chunk * z;
    result.trace.record(Interval{0, Activity::kSend, port_clock, arrive,
                                 send.chunk});
    result.trace.record(Interval{send.worker + 1, Activity::kReceive,
                                 port_clock, arrive, send.chunk});
    port_clock = arrive;
    const double start = std::max(arrive, busy_until[send.worker]);
    const double duration = send.chunk * network.w(send.worker);
    result.trace.record(Interval{send.worker + 1, Activity::kCompute, start,
                                 start + duration, send.chunk});
    busy_until[send.worker] = start + duration;
    result.computed[send.worker] += send.chunk;
    result.finish_time[send.worker] = busy_until[send.worker];
  }

  result.makespan = result.root_finish;
  for (const double f : result.finish_time) {
    result.makespan = std::max(result.makespan, f);
  }
  return result;
}

StarSchedule single_installment(const net::StarNetwork& network,
                                double alpha_root,
                                const std::vector<double>& alpha,
                                const std::vector<std::size_t>& order) {
  DLS_REQUIRE(alpha.size() == network.workers(),
              "allocation/worker count mismatch");
  StarSchedule schedule;
  schedule.root_share = alpha_root;
  for (const std::size_t idx : order) {
    if (alpha[idx] > 0.0) {
      schedule.sends.push_back(Installment{idx, alpha[idx]});
    }
  }
  return schedule;
}

}  // namespace dls::sim
