// Deterministic fault injection for the execution models.
//
// A FaultPlan scripts a chaos scenario against one Phase III run:
//   * processor crashes — at an absolute simulation time or when the
//     node has completed a given fraction of its own compute work;
//   * link faults — per-message loss, extra delay, or payload
//     corruption on a named link, each with a seeded probability;
//   * meter dropouts — the tamper-proof meter of a processor yields no
//     reading this round (the protocol falls back to the declared rate).
//
// Everything is deterministic: probabilistic faults draw from a
// common::Rng seeded by the plan, so a (network, plan, seed) triple
// replays bit-identically. The faulty executors lean on the simulator's
// cancellable event handles — a crash revokes the node's pending compute
// completion and in-flight outbound transfer, exactly like a real
// process dying mid-send.
//
// The faulty executors return a superset of the fail-free results so the
// protocol layer can settle the round: who died when, how much verified
// work they finished, and how much load was lost in flight (the amount
// the recovery pass must redistribute).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/linear_execution.hpp"
#include "sim/star_execution.hpp"

namespace dls::sim {

enum class LinkFaultKind : std::uint8_t {
  kLoss,     ///< the message never arrives
  kDelay,    ///< the message arrives `delay` time units late
  kCorrupt,  ///< the message arrives on time but its payload is garbage
};

std::string to_string(LinkFaultKind kind);

/// A crash of one processor. Exactly one trigger is set: `at_time` >= 0
/// kills the node at that absolute instant; otherwise `at_work_fraction`
/// in [0, 1) kills it once it has computed that share of its own load.
/// A work-fraction crash on a node that never receives load never fires.
struct CrashSpec {
  std::size_t processor = 0;
  double at_time = -1.0;
  double at_work_fraction = -1.0;
};

/// A probabilistic per-message fault on link l_j (P_{j-1} -> P_j).
struct LinkFaultSpec {
  std::size_t link = 0;  ///< j >= 1
  LinkFaultKind kind = LinkFaultKind::kLoss;
  double probability = 1.0;  ///< applied independently per message
  double delay = 0.0;        ///< extra time units (kDelay only)
};

/// One fault that actually fired, for the forensic log.
struct FaultEvent {
  enum class Kind : std::uint8_t {
    kCrash,             ///< a processor died
    kMessageLost,       ///< a transfer was dropped (link fault or dead sender)
    kMessageDelayed,    ///< a transfer arrived late
    kMessageCorrupted,  ///< a transfer arrived with a garbage payload
    kDeadDestination,   ///< a transfer completed into a dead processor
  };
  Kind kind{};
  Time time = 0.0;
  std::size_t subject = 0;  ///< processor (crash) or link index (others)
  double amount = 0.0;      ///< load units involved (0 when n/a)
};

std::string to_string(FaultEvent::Kind kind);

/// The full chaos script for one execution.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  FaultPlan& crash_at_time(std::size_t processor, double time);
  FaultPlan& crash_at_work(std::size_t processor, double fraction);
  FaultPlan& add_link_fault(LinkFaultSpec spec);
  FaultPlan& drop_messages(std::size_t link, double probability);
  FaultPlan& delay_messages(std::size_t link, double delay,
                            double probability = 1.0);
  FaultPlan& corrupt_messages(std::size_t link, double probability = 1.0);
  FaultPlan& meter_dropout(std::size_t processor);

  bool empty() const noexcept;
  std::uint64_t seed() const noexcept { return seed_; }
  const std::vector<CrashSpec>& crashes() const noexcept { return crashes_; }
  const std::vector<LinkFaultSpec>& link_faults() const noexcept {
    return link_faults_;
  }
  std::optional<CrashSpec> crash_of(std::size_t processor) const;
  bool meter_dropped(std::size_t processor) const;
  /// Link faults targeting link `j`, in insertion order.
  std::vector<LinkFaultSpec> faults_on_link(std::size_t j) const;
  /// Max loss probability over links 1..j — the chance an unreplicated
  /// message from P_j toward the root dies somewhere along the path.
  double path_loss_probability(std::size_t j) const;

  /// Chaos generator: each non-root processor of an (m+1)-chain crashes
  /// independently with `crash_probability`, at a work fraction drawn
  /// uniformly from [0.05, 0.95]. Deterministic given `rng`.
  static FaultPlan random_crashes(std::size_t processors,
                                  double crash_probability,
                                  common::Rng& rng);

 private:
  std::uint64_t seed_ = 0x5eedfau;
  std::vector<CrashSpec> crashes_;
  std::vector<LinkFaultSpec> link_faults_;
  std::vector<std::size_t> meter_dropouts_;
};

/// Fail-free results plus the fault forensics.
struct FaultyExecutionResult {
  ExecutionResult base;  ///< received/computed/finish_time/makespan/trace

  std::vector<bool> crashed;      ///< per processor
  std::vector<Time> crash_time;   ///< 0.0 when the processor survived
  std::vector<double> unfinished; ///< load retained but never computed
  std::vector<bool> corrupted;    ///< payload arrived corrupted at P_i
  std::vector<bool> meter_ok;     ///< false on a meter dropout
  double undelivered = 0.0;       ///< load lost in transit / at dead nodes
  std::vector<FaultEvent> events; ///< time-ordered fault log

  bool any_crash() const noexcept;
  double total_computed() const noexcept;
  /// Load units nobody computed: 1 - total_computed for a unit load.
  double lost_load() const noexcept { return 1.0 - total_computed(); }
};

/// execute_linear under a fault plan. With an empty plan the `base`
/// member reproduces execute_linear bit-for-bit.
FaultyExecutionResult execute_linear_faulty(const net::LinearNetwork& network,
                                            const ExecutionPlan& plan,
                                            const FaultPlan& faults);

/// Star-network variant: `crashed`/`crash_time`/... are indexed like the
/// star trace (0 = root, worker i at index i+1). Only worker crashes are
/// supported (the root is the trusted dispatcher); link index j means
/// the dedicated root->worker_{j-1} link.
FaultyExecutionResult execute_star_faulty(const net::StarNetwork& network,
                                          const StarSchedule& schedule,
                                          const FaultPlan& faults);

}  // namespace dls::sim
