#include "sim/trace.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"

namespace dls::sim {

std::string to_string(Activity activity) {
  switch (activity) {
    case Activity::kReceive:
      return "receive";
    case Activity::kSend:
      return "send";
    case Activity::kCompute:
      return "compute";
  }
  return "unknown";
}

void Trace::record(Interval interval) {
  DLS_REQUIRE(interval.end >= interval.start,
              "interval must end at or after it starts");
  intervals_.push_back(interval);
}

Time Trace::processor_finish(std::size_t processor) const noexcept {
  Time finish = 0.0;
  for (const auto& iv : intervals_) {
    if (iv.processor == processor) finish = std::max(finish, iv.end);
  }
  return finish;
}

Time Trace::compute_finish(std::size_t processor) const noexcept {
  Time finish = 0.0;
  for (const auto& iv : intervals_) {
    if (iv.processor == processor && iv.activity == Activity::kCompute) {
      finish = std::max(finish, iv.end);
    }
  }
  return finish;
}

Time Trace::end() const noexcept {
  Time finish = 0.0;
  for (const auto& iv : intervals_) finish = std::max(finish, iv.end);
  return finish;
}

std::size_t Trace::processors() const noexcept {
  std::size_t count = 0;
  for (const auto& iv : intervals_) {
    count = std::max(count, iv.processor + 1);
  }
  return count;
}

std::string Trace::check_one_port() const {
  for (const Activity kind : {Activity::kSend, Activity::kReceive}) {
    // Collect per-processor intervals of this kind and sort by start.
    std::vector<Interval> of_kind;
    for (const auto& iv : intervals_) {
      if (iv.activity == kind) of_kind.push_back(iv);
    }
    std::stable_sort(of_kind.begin(), of_kind.end(),
                     [](const Interval& a, const Interval& b) {
                       if (a.processor != b.processor)
                         return a.processor < b.processor;
                       return a.start < b.start;
                     });
    for (std::size_t i = 1; i < of_kind.size(); ++i) {
      const auto& prev = of_kind[i - 1];
      const auto& cur = of_kind[i];
      if (prev.processor == cur.processor && cur.start < prev.end - 1e-12) {
        std::ostringstream os;
        os << "processor " << cur.processor << " has overlapping "
           << to_string(kind) << " intervals: [" << prev.start << ", "
           << prev.end << ") and [" << cur.start << ", " << cur.end << ")";
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace dls::sim
