#include "sim/gantt.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace dls::sim {

namespace {

struct Row {
  std::string cells;
  double amount = 0.0;
};

void paint(Row& row, double start, double end, double span, int width,
           char glyph, double amount) {
  const int from = std::clamp(
      static_cast<int>(std::floor(start / span * width)), 0, width - 1);
  int to = std::clamp(static_cast<int>(std::ceil(end / span * width)), 0,
                      width);
  if (to <= from) to = from + 1;
  for (int c = from; c < to; ++c) {
    row.cells[static_cast<std::size_t>(c)] = glyph;
  }
  row.amount += amount;
}

}  // namespace

void render_gantt(std::ostream& os, const Trace& trace,
                  const GanttOptions& options) {
  DLS_REQUIRE(options.width >= 20, "gantt width too small");
  const std::size_t n = trace.processors();
  if (n == 0) {
    os << "(empty trace)\n";
    return;
  }
  const double span = std::max(trace.end(), 1e-300);
  const int width = options.width;

  std::vector<Row> comm(n), comp(n);
  for (auto rows : {&comm, &comp}) {
    for (auto& row : *rows) {
      row.cells.assign(static_cast<std::size_t>(width), ' ');
    }
  }
  for (const auto& iv : trace.intervals()) {
    const char glyph = iv.activity == Activity::kSend      ? '>'
                       : iv.activity == Activity::kReceive ? '<'
                                                           : '#';
    Row& row = iv.activity == Activity::kCompute ? comp[iv.processor]
                                                 : comm[iv.processor];
    paint(row, iv.start, iv.end, span, width, glyph, iv.amount);
  }

  if (!options.title.empty()) os << options.title << '\n';
  os << "time 0 " << std::string(static_cast<std::size_t>(width) - 2, '.')
     << ' ' << std::fixed << std::setprecision(6) << span << '\n';
  for (std::size_t p = 0; p < n; ++p) {
    std::ostringstream label;
    label << 'P' << p;
    os << std::setw(4) << label.str() << " comm |" << comm[p].cells << '|';
    if (options.show_amounts && comm[p].amount > 0.0) {
      os << " moved " << std::setprecision(4) << comm[p].amount;
    }
    os << '\n';
    os << "     comp |" << comp[p].cells << '|';
    if (options.show_amounts && comp[p].amount > 0.0) {
      os << " alpha " << std::setprecision(4) << comp[p].amount;
    }
    os << '\n';
  }
  os.unsetf(std::ios::fixed);
}

}  // namespace dls::sim
