// Activity traces: what each processor was doing and when. The Gantt
// renderer (gantt.hpp) turns a trace into the Figure 2 chart, and tests
// compare traced finish times against the closed forms of Sect. 2.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace dls::sim {

enum class Activity : std::uint8_t {
  kReceive,  ///< inbound transfer occupying the processor's front-end
  kSend,     ///< outbound transfer (one-port: at most one at a time)
  kCompute,  ///< crunching the retained load
};

std::string to_string(Activity activity);

struct Interval {
  std::size_t processor = 0;
  Activity activity = Activity::kCompute;
  Time start = 0.0;
  Time end = 0.0;
  double amount = 0.0;  ///< load units moved or computed
};

class Trace {
 public:
  void record(Interval interval);

  const std::vector<Interval>& intervals() const noexcept {
    return intervals_;
  }

  /// Last instant any activity of `processor` ends (0 if none).
  Time processor_finish(std::size_t processor) const noexcept;

  /// Last instant `processor` finishes a kCompute interval (0 if none).
  Time compute_finish(std::size_t processor) const noexcept;

  /// Global end of the trace.
  Time end() const noexcept;

  /// Number of processors mentioned (max index + 1; 0 for empty trace).
  std::size_t processors() const noexcept;

  /// Verifies the one-port model: per processor, kSend intervals must not
  /// overlap each other and kReceive intervals must not overlap each
  /// other. Returns a description of the first violation, or empty.
  std::string check_one_port() const;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace dls::sim
