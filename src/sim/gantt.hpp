// Gantt chart rendering — the reproduction of Figure 2. Communication is
// drawn on the row above each processor's time axis and computation on
// the row below it, matching the paper's convention.
#pragma once

#include <ostream>
#include <string>

#include "sim/trace.hpp"

namespace dls::sim {

struct GanttOptions {
  int width = 96;          ///< columns used for the time span
  bool show_amounts = true;  ///< annotate each row with load units
  std::string title;
};

/// Renders the trace; processors appear in index order, each with a
/// communication row ('>' send, '<' receive) above its axis and a
/// computation row ('#') below.
void render_gantt(std::ostream& os, const Trace& trace,
                  const GanttOptions& options = {});

}  // namespace dls::sim
