#include "sim/simulator.hpp"

#include <cmath>
#include <limits>
#include <utility>

namespace dls::sim {

EventId Simulator::schedule_at(Time at, Action action) {
  DLS_REQUIRE(std::isfinite(at), "event time must be finite");
  DLS_REQUIRE(at >= now_, "cannot schedule into the past");
  const EventId id = next_seq_++;
  queue_.push(Entry{at, id, std::move(action)});
  pending_ids_.insert(id);
  return id;
}

EventId Simulator::schedule_after(Time delay, Action action) {
  DLS_REQUIRE(delay >= 0.0, "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  // An id is cancellable iff it is queued and not yet revoked; removal
  // from the priority queue is lazy (the pop side skips it).
  if (pending_ids_.erase(id) == 0) return false;
  cancelled_.insert(id);
  ++cancelled_total_;
  return true;
}

Time Simulator::run() {
  return run_until(std::numeric_limits<Time>::infinity());
}

Time Simulator::run_until(Time horizon) {
  while (!queue_.empty() && queue_.top().time <= horizon) {
    // priority_queue::top() is const; move out via const_cast on the
    // entry we are about to pop (safe: no other reference exists).
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (cancelled_.erase(entry.seq) != 0) continue;  // revoked: skip
    pending_ids_.erase(entry.seq);
    now_ = entry.time;
    ++executed_;
    entry.action(*this);
  }
  return now_;
}

std::size_t Simulator::drop_pending() {
  const std::size_t live = pending();
  while (!queue_.empty()) queue_.pop();
  cancelled_.clear();
  pending_ids_.clear();
  return live;
}

}  // namespace dls::sim
