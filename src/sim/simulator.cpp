#include "sim/simulator.hpp"

#include <cmath>
#include <limits>
#include <utility>

namespace dls::sim {

void Simulator::schedule_at(Time at, Action action) {
  DLS_REQUIRE(std::isfinite(at), "event time must be finite");
  DLS_REQUIRE(at >= now_, "cannot schedule into the past");
  queue_.push(Entry{at, next_seq_++, std::move(action)});
}

void Simulator::schedule_after(Time delay, Action action) {
  DLS_REQUIRE(delay >= 0.0, "delay must be non-negative");
  schedule_at(now_ + delay, std::move(action));
}

Time Simulator::run() {
  return run_until(std::numeric_limits<Time>::infinity());
}

Time Simulator::run_until(Time horizon) {
  while (!queue_.empty() && queue_.top().time <= horizon) {
    // priority_queue::top() is const; move out via const_cast on the
    // entry we are about to pop (safe: no other reference exists).
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.time;
    ++executed_;
    entry.action(*this);
  }
  return now_;
}

}  // namespace dls::sim
