// Execution of tree schedules with possibly-deviant nodes — the tree
// analogue of sim/linear_execution.hpp (Phase III of the tree protocol).
//
// A node owns its inbound load when the bulk transfer from its parent
// completes, keeps its (possibly shed) local share, and distributes the
// remainder to its children pro-rata to the bid-derived shares, serving
// them fastest-link-first over its one port while computing its own part
// (front-end overlap). The hierarchy makes the timing a single top-down
// recursion — no event queue needed.
#pragma once

#include <vector>

#include "dlt/tree.hpp"
#include "net/tree.hpp"
#include "sim/trace.hpp"

namespace dls::sim {

struct TreeExecutionPlan {
  /// Multiplier on the bid-derived local keep fraction (1 = compliant;
  /// < 1 sheds load onto the children). Leaves always keep everything.
  std::vector<double> keep_multiplier;
  /// w̃_v: unit compute time actually applied.
  std::vector<double> actual_rate;

  static TreeExecutionPlan compliant(const net::TreeNetwork& network);
};

struct TreeExecutionResult {
  std::vector<double> received;     ///< load arriving at each node
  std::vector<double> computed;     ///< load each node computed
  std::vector<double> finish_time;  ///< compute completion (0 if idle)
  double makespan = 0.0;
  Trace trace;
};

/// Executes the tree: the *distribution shape* (who gets which share of
/// the forwarded load, and the service order) comes from `bid_solution`;
/// the plan supplies actual behaviour. Link times come from `network`.
TreeExecutionResult execute_tree(const net::TreeNetwork& network,
                                 const dlt::TreeSolution& bid_solution,
                                 const TreeExecutionPlan& plan);

}  // namespace dls::sim
