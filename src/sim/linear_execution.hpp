// Event-driven execution of a boundary-origination chain (Phase III of
// the mechanism, and the timing model of Sect. 2).
//
// The model simulated:
//  * store-and-forward: a processor owns its inbound load only when the
//    whole transfer has arrived;
//  * front-end: computation overlaps the onward transfer;
//  * one-port: each processor forwards to at most one successor (trivially
//    satisfied on a chain, but the trace is checked anyway in tests).
//
// The plan carries *actual* behaviour, which may deviate from the
// prescribed optimum: retain_fraction[i] is the share of the received
// load P_i really keeps (α̂̃_i; shedding load means keeping less) and
// actual_rate[i] is the speed it really computes at (w̃_i >= t_i).
#pragma once

#include <vector>

#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "sim/trace.hpp"

namespace dls::sim {

struct ExecutionPlan {
  /// α̂̃_i: fraction of the received load P_i retains; the terminal
  /// processor must retain 1 (it has nobody to forward to).
  std::vector<double> retain_fraction;
  /// w̃_i: unit compute time actually applied.
  std::vector<double> actual_rate;

  /// The compliant plan for an optimal solution: retain α̂_i, run at the
  /// network's true rates.
  static ExecutionPlan compliant(const net::LinearNetwork& network,
                                 const dlt::LinearSolution& solution);
};

struct ExecutionResult {
  std::vector<double> received;     ///< load units that arrived at P_i
  std::vector<double> computed;     ///< load units P_i computed (α̃_i)
  std::vector<double> finish_time;  ///< compute completion (0 if idle)
  double makespan = 0.0;            ///< last compute completion
  Trace trace;
};

/// Runs the chain through the discrete-event engine. Only the link times
/// of `network` are used — compute speed comes from the plan.
ExecutionResult execute_linear(const net::LinearNetwork& network,
                               const ExecutionPlan& plan);

}  // namespace dls::sim
