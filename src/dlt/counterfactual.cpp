#include "dlt/counterfactual.hpp"

#include "check/solver_invariants.hpp"
#include "common/discipline.hpp"
#include "common/error.hpp"
#include "dlt/batch_kernels.hpp"
#include "obs/obs.hpp"

namespace dls::dlt {

CounterfactualSolver::CounterfactualSolver(const net::LinearNetwork& network)
    : w_(network.processing_times().begin(), network.processing_times().end()),
      z_(network.link_times().begin(), network.link_times().end()),
      ah_scratch_(network.size(), 0.0) {
  solve_linear_boundary_into(network, base_, /*want_steps=*/false);
  // Debug/CI builds audit the bit-identity claim: rebidding each base
  // rate must reproduce the base solution exactly (O(n^2), once per
  // solver, so sweeps that share a solver pay it once).
  if constexpr (check::enabled(2)) {
    check::check_counterfactual_identity(*this);
  }
}

DLS_HOT_NOALLOC
CounterfactualSolver::Rebid CounterfactualSolver::rebid(std::size_t index,
                                                        double bid) {
  const std::size_t n = w_.size();
  DLS_REQUIRE(index < n, "processor index out of range");
  DLS_REQUIRE(bid > 0.0, "bid must be positive");
  // rebid() is the counterfactual hot path (ns-scale); only the detail
  // level pays for a span here, the counter is one relaxed fetch_add.
  DLS_SPAN_DETAIL("solve.rebid");
  DLS_COUNT("solver.rebids");

  Rebid r;
  r.index = index;
  r.bid = bid;

  // Collapse step for the re-bid processor itself: the suffix beyond it
  // is untouched, so its cached equivalent time feeds eq. (2.7) directly.
  if (index + 1 == n) {
    r.alpha_hat = 1.0;
    r.equivalent_w = bid;
  } else {
    r.alpha_hat =
        pair_alpha_hat(bid, z(index + 1), base_.equivalent_w[index + 1]);
    r.equivalent_w = r.alpha_hat * bid;  // eq. (2.4)
  }
  ah_scratch_[index] = r.alpha_hat;

  // Recompute the prefix 0..index-1 — identical arithmetic to the full
  // backward pass, seeded with the counterfactual tail.
  double eqw = r.equivalent_w;
  for (std::size_t i = index; i-- > 0;) {
    const double ah = pair_alpha_hat(w_[i], z(i + 1), eqw);
    ah_scratch_[i] = ah;
    eqw = ah * w_[i];
  }
  r.makespan = eqw;  // w̄_0 (= r.equivalent_w when index == 0)

  // Forward unroll only as far as the queried processor.
  double remaining = 1.0;
  for (std::size_t i = 0; i < index; ++i) remaining *= (1.0 - ah_scratch_[i]);
  r.alpha = remaining * r.alpha_hat;
  r.alpha_hat_pred = index > 0 ? ah_scratch_[index - 1] : 0.0;
  return r;
}

DLS_HOT_NOALLOC
void CounterfactualSolver::rebid_batch(std::size_t index,
                                       std::span<const double> bids,
                                       std::span<Rebid> out) {
  const std::size_t n = w_.size();
  const std::size_t k = bids.size();
  DLS_REQUIRE(index < n, "processor index out of range");
  DLS_REQUIRE(out.size() == k, "rebid_batch output size mismatch");
  if (k == 0) return;
  DLS_SPAN_ARGS("solve.rebid_batch", "{\"j\":" + std::to_string(index) +
                                         ",\"k\":" + std::to_string(k) + "}");
  DLS_COUNT("solver.rebids", k);
  DLS_COUNT("solver.batch.rebid_calls");
  const detail::LaneKernel kernel = detail::best_lane_kernel();

  batch_ah_.resize((index + 1) * k);
  batch_eqw_.resize(k);
  batch_remaining_.resize(k);

  // Collapse step for the re-bid processor itself, per lane — the
  // collapse_own_lanes_scalar kernel replicates the scalar rebid()
  // expressions with the association order preserved exactly.
  for (std::size_t lane = 0; lane < k; ++lane) {
    DLS_REQUIRE(bids[lane] > 0.0, "bid must be positive");
  }
  double* const ah_own = batch_ah_.data() + index * k;
  if (index + 1 == n) {
    for (std::size_t lane = 0; lane < k; ++lane) {
      ah_own[lane] = 1.0;
      batch_eqw_[lane] = bids[lane];
    }
  } else {
    detail::collapse_own_lanes_scalar(bids.data(),
                                      base_.equivalent_w[index + 1],
                                      z(index + 1), ah_own,
                                      batch_eqw_.data(), k);
  }

  // Prefix 0..index-1 across lanes: the chain's own w/z broadcast, only
  // the equivalent tail differs per lane.
  for (std::size_t i = index; i-- > 0;) {
    detail::reduce_lanes_bcast(kernel, w_[i], z(i + 1), batch_eqw_.data(),
                               batch_ah_.data() + i * k, k);
  }

  // Forward unroll in ascending order, matching the scalar product.
  for (std::size_t lane = 0; lane < k; ++lane) batch_remaining_[lane] = 1.0;
  for (std::size_t i = 0; i < index; ++i) {
    detail::remaining_lanes(kernel, batch_ah_.data() + i * k,
                            batch_remaining_.data(), k);
  }

  const double* const ah_pred =
      index > 0 ? batch_ah_.data() + (index - 1) * k : nullptr;
  for (std::size_t lane = 0; lane < k; ++lane) {
    Rebid& r = out[lane];
    r.index = index;
    r.bid = bids[lane];
    r.alpha_hat = ah_own[lane];
    r.equivalent_w =
        index + 1 == n ? bids[lane] : ah_own[lane] * bids[lane];
    r.alpha = batch_remaining_[lane] * ah_own[lane];
    r.alpha_hat_pred = ah_pred != nullptr ? ah_pred[lane] : 0.0;
    // batch_eqw_ now holds w̄_0 per lane (= r.equivalent_w when the
    // queried processor is the root).
    r.makespan = batch_eqw_[lane];
  }
}

CounterfactualSolver::Rebid CounterfactualSolver::rebid_allocation(
    std::size_t index, double bid, std::vector<double>& alpha_out) {
  const Rebid r = rebid(index, bid);
  const std::size_t n = w_.size();
  alpha_out.assign(n, 0.0);
  double remaining = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    // α̂ comes from the rebid prefix up to `index`, from the cached base
    // solution beyond it.
    const double ah = i <= index ? ah_scratch_[i] : base_.alpha_hat[i];
    alpha_out[i] = remaining * ah;
    remaining *= (1.0 - ah);
  }
  return r;
}

}  // namespace dls::dlt
