#include "dlt/counterfactual.hpp"

#include "check/solver_invariants.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace dls::dlt {

CounterfactualSolver::CounterfactualSolver(const net::LinearNetwork& network)
    : w_(network.processing_times().begin(), network.processing_times().end()),
      z_(network.link_times().begin(), network.link_times().end()),
      ah_scratch_(network.size(), 0.0) {
  solve_linear_boundary_into(network, base_, /*want_steps=*/false);
  // Debug/CI builds audit the bit-identity claim: rebidding each base
  // rate must reproduce the base solution exactly (O(n^2), once per
  // solver, so sweeps that share a solver pay it once).
  if constexpr (check::enabled(2)) {
    check::check_counterfactual_identity(*this);
  }
}

CounterfactualSolver::Rebid CounterfactualSolver::rebid(std::size_t index,
                                                        double bid) {
  const std::size_t n = w_.size();
  DLS_REQUIRE(index < n, "processor index out of range");
  DLS_REQUIRE(bid > 0.0, "bid must be positive");
  // rebid() is the counterfactual hot path (ns-scale); only the detail
  // level pays for a span here, the counter is one relaxed fetch_add.
  DLS_SPAN_DETAIL("solve.rebid");
  DLS_COUNT("solver.rebids");

  Rebid r;
  r.index = index;
  r.bid = bid;

  // Collapse step for the re-bid processor itself: the suffix beyond it
  // is untouched, so its cached equivalent time feeds eq. (2.7) directly.
  if (index + 1 == n) {
    r.alpha_hat = 1.0;
    r.equivalent_w = bid;
  } else {
    r.alpha_hat =
        pair_alpha_hat(bid, z(index + 1), base_.equivalent_w[index + 1]);
    r.equivalent_w = r.alpha_hat * bid;  // eq. (2.4)
  }
  ah_scratch_[index] = r.alpha_hat;

  // Recompute the prefix 0..index-1 — identical arithmetic to the full
  // backward pass, seeded with the counterfactual tail.
  double eqw = r.equivalent_w;
  for (std::size_t i = index; i-- > 0;) {
    const double ah = pair_alpha_hat(w_[i], z(i + 1), eqw);
    ah_scratch_[i] = ah;
    eqw = ah * w_[i];
  }
  r.makespan = eqw;  // w̄_0 (= r.equivalent_w when index == 0)

  // Forward unroll only as far as the queried processor.
  double remaining = 1.0;
  for (std::size_t i = 0; i < index; ++i) remaining *= (1.0 - ah_scratch_[i]);
  r.alpha = remaining * r.alpha_hat;
  r.alpha_hat_pred = index > 0 ? ah_scratch_[index - 1] : 0.0;
  return r;
}

CounterfactualSolver::Rebid CounterfactualSolver::rebid_allocation(
    std::size_t index, double bid, std::vector<double>& alpha_out) {
  const Rebid r = rebid(index, bid);
  const std::size_t n = w_.size();
  alpha_out.assign(n, 0.0);
  double remaining = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    // α̂ comes from the rebid prefix up to `index`, from the cached base
    // solution beyond it.
    const double ah = i <= index ? ah_scratch_[i] : base_.alpha_hat[i];
    alpha_out[i] = remaining * ah;
    remaining *= (1.0 - ah);
  }
  return r;
}

}  // namespace dls::dlt
