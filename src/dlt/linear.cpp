#include "dlt/linear.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "check/solver_invariants.hpp"
#include "common/discipline.hpp"
#include "common/error.hpp"
#include "common/tolerance.hpp"
#include "obs/obs.hpp"

namespace dls::dlt {

double pair_alpha_hat(double w_front, double z, double tail_w) {
  DLS_REQUIRE(w_front > 0.0 && z > 0.0 && tail_w > 0.0,
              "pair_alpha_hat requires positive rates");
  return (tail_w + z) / (w_front + tail_w + z);
}

double pair_equivalent_w(double w_front, double z, double tail_w) {
  return pair_alpha_hat(w_front, z, tail_w) * w_front;
}

double pair_realized_w(double alpha_hat, double w_front, double z,
                       double tail_actual_w) {
  DLS_REQUIRE(alpha_hat >= 0.0 && alpha_hat <= 1.0,
              "alpha_hat must be a fraction");
  return std::max(alpha_hat * w_front,
                  (1.0 - alpha_hat) * (z + tail_actual_w));
}

DLS_HOT_NOALLOC
void solve_linear_boundary_into(const net::LinearNetwork& network,
                                LinearSolution& out, bool want_steps) {
  const std::size_t n = network.size();
  DLS_SPAN_ARGS("solve.reduce", "{\"m\":" + std::to_string(n) + "}");
  DLS_COUNT("solver.solves");
  out.alpha.assign(n, 0.0);
  out.alpha_hat.assign(n, 0.0);
  out.equivalent_w.assign(n, 0.0);
  out.received.assign(n, 0.0);
  out.steps.clear();

  // Steps 1-6 of Algorithm 1: collapse from the far end toward the root.
  out.alpha_hat[n - 1] = 1.0;
  out.equivalent_w[n - 1] = network.w(n - 1);
  if (want_steps) out.steps.reserve(n - 1);
  for (std::size_t i = n - 1; i-- > 0;) {
    DLS_SPAN_DETAIL("solve.reduce.step");
    const double tail_w = out.equivalent_w[i + 1];
    const double link_z = network.z(i + 1);
    const double ah = pair_alpha_hat(network.w(i), link_z, tail_w);
    out.alpha_hat[i] = ah;
    out.equivalent_w[i] = ah * network.w(i);  // eq. (2.4)
    if (want_steps) {
      out.steps.push_back(
          ReductionStep{i, ah, out.equivalent_w[i], tail_w, link_z});
    }
  }

  // Steps 7-10: unroll local fractions into global ones.
  double remaining = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    out.received[i] = remaining;
    out.alpha[i] = remaining * out.alpha_hat[i];
    remaining *= (1.0 - out.alpha_hat[i]);
  }
  out.makespan = out.equivalent_w[0];

  // Debug/CI builds audit every solve against the Sect. 2 closed forms
  // (Theorem 2.1 equal finish times, Σα = 1, the collapse equations).
  if constexpr (check::enabled(2)) {
    check::check_linear_solution(network, out);
  }
}

LinearSolution solve_linear_boundary(const net::LinearNetwork& network) {
  LinearSolution sol;
  solve_linear_boundary_into(network, sol, /*want_steps=*/true);
  return sol;
}

DLS_HOT_NOALLOC
const LinearSolution& solve_linear_boundary(const net::LinearNetwork& network,
                                            LinearSolverWorkspace& ws,
                                            bool want_steps) {
  solve_linear_boundary_into(network, ws.solution, want_steps);
  return ws.solution;
}

DLS_HOT_NOALLOC
void finish_times_into(const net::LinearNetwork& network,
                       std::span<const double> alpha,
                       std::vector<double>& out) {
  const std::size_t n = network.size();
  DLS_REQUIRE(alpha.size() == n, "allocation size must match network");
  double total = 0.0;
  for (const double a : alpha) {
    DLS_REQUIRE(a >= 0.0, "allocation fractions must be non-negative");
    total += a;
  }
  DLS_REQUIRE(total <= 1.0 + 1e-9, "allocation exceeds the unit load");

  out.assign(n, 0.0);
  out[0] = alpha[0] * network.w(0);  // eq. (2.1)
  double assigned = alpha[0];
  double arrival = 0.0;  // Σ_{k=1..j} D_k z_k so far
  for (std::size_t j = 1; j < n; ++j) {
    const double transiting = 1.0 - assigned;  // D_j
    arrival += transiting * network.z(j);
    out[j] = alpha[j] > 0.0 ? arrival + alpha[j] * network.w(j) : 0.0;
    assigned += alpha[j];
  }
}

std::vector<double> finish_times(const net::LinearNetwork& network,
                                 std::span<const double> alpha) {
  std::vector<double> t;
  finish_times_into(network, alpha, t);
  return t;
}

std::span<const double> finish_times(const net::LinearNetwork& network,
                                     std::span<const double> alpha,
                                     LinearSolverWorkspace& ws) {
  finish_times_into(network, alpha, ws.finish);
  return ws.finish;
}

double makespan(const net::LinearNetwork& network,
                std::span<const double> alpha) {
  const std::vector<double> t = finish_times(network, alpha);
  return *std::max_element(t.begin(), t.end());
}

DLS_HOT_NOALLOC
double makespan(const net::LinearNetwork& network,
                std::span<const double> alpha, LinearSolverWorkspace& ws) {
  finish_times_into(network, alpha, ws.finish);
  return *std::max_element(ws.finish.begin(), ws.finish.end());
}

double finish_time_spread(const net::LinearNetwork& network,
                          std::span<const double> alpha) {
  const std::vector<double> t = finish_times(network, alpha);
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (alpha[i] <= 0.0) continue;  // non-participants finish "at 0"
    lo = std::min(lo, t[i]);
    hi = std::max(hi, t[i]);
  }
  if (!std::isfinite(lo)) return 0.0;  // nobody participates
  return common::relative_error(lo, hi);
}

}  // namespace dls::dlt
