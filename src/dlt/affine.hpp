// LINEAR BOUNDARY-AFFINE: the chain scheduling problem under an *affine*
// cost model — each processor pays a fixed compute startup s_i on top of
// the linear term α_i w_i. The paper names its problem LINEAR
// BOUNDARY-LINEAR precisely because the cost model is a free parameter;
// this module supplies the affine variant the naming scheme implies.
//
// With startups, Theorem 2.1 breaks: full participation stops being
// optimal once a processor's startup outweighs its marginal help, so the
// solver must also decide WHO computes. It runs an exact dynamic program
// over suffixes: T_i(L) = minimal completion time of the suffix
// (P_i..P_m) when P_i holds load L, as a piecewise-affine function of L,
// combining three options per processor —
//   keep-all:   s_i + w_i L                       (truncate the chain)
//   skip:       z_{i+1} L + T_{i+1}(L)            (pure relay, no compute)
//   equalise:   s_i + k w_i with s_i + k w_i = z_{i+1}(L-k) + T_{i+1}(L-k)
// — and taking the pointwise minimum. With s = 0 the equalise option
// always wins and the recursion reduces exactly to Algorithm 1.
#pragma once

#include <span>
#include <vector>

#include "net/networks.hpp"

namespace dls::dlt {

struct AffineChainSolution {
  std::vector<double> alpha;     ///< load shares (0 for non-participants)
  std::vector<bool> computes;    ///< whether P_i pays its startup
  double makespan = 0.0;
  std::size_t participants = 0;  ///< number of computing processors
};

/// Solves the affine chain. `compute_startup` has one entry per
/// processor, each >= 0. Startups of exactly 0 reproduce Algorithm 1.
AffineChainSolution solve_linear_boundary_affine(
    const net::LinearNetwork& network,
    std::span<const double> compute_startup);

/// Finish times under the affine model: T_0 = [α_0>0](s_0 + α_0 w_0),
/// T_j = Σ_{k<=j} D_k z_k + s_j + α_j w_j for participants, 0 otherwise.
std::vector<double> affine_finish_times(
    const net::LinearNetwork& network,
    std::span<const double> compute_startup, std::span<const double> alpha);

}  // namespace dls::dlt
