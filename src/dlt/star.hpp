// Optimal divisible-load allocation on single-level star and bus
// networks — the topologies of the authors' companion mechanisms [9, 14],
// used here as cross-network baselines (experiment XNET).
//
// Model: the root holds the unit load and serves workers one at a time
// over their dedicated links (one-port). Worker k (in service order)
// starts receiving when worker k-1's transmission ends, receives α_k z_k,
// then computes α_k w_k. With a linear cost model the optimum again has
// every participant finishing simultaneously, giving the chain of ratios
//   α_{k+1} (z_{k+1} + w_{k+1}) = α_k w_k.
#pragma once

#include <cstddef>
#include <vector>

#include "net/networks.hpp"

namespace dls::dlt {

struct StarSolution {
  double alpha_root = 0.0;          ///< root's own share (0 when it only serves)
  std::vector<double> alpha;        ///< per-worker share, original indexing
  std::vector<std::size_t> order;   ///< service order used
  double makespan = 0.0;
};

/// Solves with the given service order (worker indices, each exactly once).
StarSolution solve_star_ordered(const net::StarNetwork& network,
                                std::vector<std::size_t> order);

/// Solves with workers served fastest-link-first (the optimal order for
/// this cost model).
StarSolution solve_star(const net::StarNetwork& network);

/// Bus = star with the shared channel time on every link.
StarSolution solve_bus(const net::BusNetwork& network);

/// Finish times of an arbitrary star allocation under the same service
/// order; index 0 is the root (0 if it does not compute), worker k at
/// index 1+k in *order* position.
std::vector<double> star_finish_times(const net::StarNetwork& network,
                                      const StarSolution& solution);

}  // namespace dls::dlt
