// Linear networks with *interior* load origination — the second variant
// named in Sect. 2 and listed as future work in the paper's conclusion.
//
// The root holds the load and has two arms. Under the one-port model it
// first ships the whole allocation of one arm, then the other; each arm
// is a boundary-origination chain whose head behaves like a chain root
// once its bulk transfer completes. Collapsing each arm to an equivalent
// processor (eqs. 2.3-2.4) reduces the problem to a three-way split
// (root, first arm, second arm) with the equal-finish condition
//   α_r w_r = L_A (z_A + W̄_A) = L_A z_A + L_B (z_B + W̄_B).
// Both service orders are evaluated and the better one is kept.
#pragma once

#include <vector>

#include "dlt/linear.hpp"
#include "net/networks.hpp"

namespace dls::dlt {

/// Which arm the root serves first.
enum class ArmOrder { kLeftFirst, kRightFirst };

struct InteriorSolution {
  std::vector<double> alpha;   ///< per-processor fractions, network indexing
  double left_load = 0.0;      ///< total load shipped into the left arm
  double right_load = 0.0;     ///< total load shipped into the right arm
  ArmOrder order = ArmOrder::kLeftFirst;
  double makespan = 0.0;
};

/// Optimal split for a fixed service order.
InteriorSolution solve_linear_interior_ordered(
    const net::InteriorLinearNetwork& network, ArmOrder order);

/// Tries both service orders, returns the faster schedule.
InteriorSolution solve_linear_interior(
    const net::InteriorLinearNetwork& network);

/// Finish times for a solution (same semantics as dlt::finish_times:
/// non-participants report 0). Index = original network position.
std::vector<double> interior_finish_times(
    const net::InteriorLinearNetwork& network,
    const InteriorSolution& solution);

}  // namespace dls::dlt
