#include "dlt/affine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "dlt/piecewise.hpp"

namespace dls::dlt {

namespace {

/// The "equalise" option as a function of L, built parametrically from
/// the suffix function: for forwarded load u,
///   L(u) = u + (z u + T_next(u) − s) / w,
///   h(u) = z u + T_next(u).
/// The balance requires the retained share k = L − u to be >= 0, i.e.
/// z u + T_next(u) >= s; below l_first = L(u_lo) the option is extended
/// CONSTANTLY at h(u_lo):
///  * when u_lo > 0 (T_next(0) < s), that constant equals s, which is
///    the true limit of the compute option there (pay the startup,
///    compute ~nothing, forward the rest);
///  * when u_lo = 0, the constant is T_next(0) >= the keep-all value on
///    that range, so it is dominated in the min and merely harmless.
/// Never uses infinity sentinels — interpolating across a near-vertical
/// sentinel ramp is numerically catastrophic.
PiecewiseLinear equalise_option(const PiecewiseLinear& next, double s,
                                double w, double z, bool* feasible) {
  auto rhs = [&](double u) { return z * u + next(u); };
  auto l_of = [&](double u) { return u + (rhs(u) - s) / w; };

  // Feasibility in u: rhs increasing; find u_lo with rhs(u_lo) = s.
  double u_lo = 0.0;
  if (rhs(0.0) < s) {
    if (rhs(1.0) < s) {
      *feasible = false;
      return PiecewiseLinear::affine(0.0, 0.0, 0.0, 1.0);
    }
    double a = 0.0, b = 1.0;
    for (int iter = 0; iter < 100; ++iter) {
      const double mid = 0.5 * (a + b);
      (rhs(mid) < s ? a : b) = mid;
    }
    u_lo = b;
  }
  if (l_of(u_lo) >= 1.0) {
    *feasible = false;
    return PiecewiseLinear::affine(0.0, 0.0, 0.0, 1.0);
  }
  // L(u) is increasing and, whenever the option is feasible at all,
  // reaches 1 within u in [u_lo, 1] (rhs(1) >= s implies l_of(1) >= 1).
  double u_hi = 1.0;
  {
    double a = u_lo, b = 1.0;
    if (l_of(1.0) <= 1.0) {
      u_hi = 1.0;
    } else {
      for (int iter = 0; iter < 100; ++iter) {
        const double mid = 0.5 * (a + b);
        (l_of(mid) <= 1.0 ? a : b) = mid;
      }
      u_hi = a;
    }
  }

  // Sample at the suffix function's breakpoints within [u_lo, u_hi].
  std::vector<double> us = {u_lo};
  for (const auto& p : next.points()) {
    if (p.x > u_lo + 1e-15 && p.x < u_hi - 1e-15) us.push_back(p.x);
  }
  us.push_back(u_hi);

  std::vector<PiecewiseLinear::Point> pts;
  const double l_first = std::clamp(l_of(u_lo), 0.0, 1.0);
  if (l_first > 1e-12) {
    pts.push_back({0.0, rhs(u_lo)});  // constant extension (see above)
  }
  double last_x = pts.empty() ? -1.0 : pts.back().x;
  for (const double u : us) {
    const double x = std::clamp(l_of(u), 0.0, 1.0);
    if (x <= last_x + 1e-14) continue;
    pts.push_back({x, rhs(u)});
    last_x = x;
  }
  if (last_x < 1.0) {
    pts.push_back({1.0, rhs(u_hi)});  // defensive constant extension
  }
  if (pts.size() < 2) {
    *feasible = false;
    return PiecewiseLinear::affine(0.0, 0.0, 0.0, 1.0);
  }
  *feasible = true;
  return PiecewiseLinear(std::move(pts));
}

}  // namespace

AffineChainSolution solve_linear_boundary_affine(
    const net::LinearNetwork& network,
    std::span<const double> compute_startup) {
  const std::size_t n = network.size();
  DLS_REQUIRE(compute_startup.size() == n, "one startup per processor");
  for (const double s : compute_startup) {
    DLS_REQUIRE(s >= 0.0, "startups must be non-negative");
  }

  // Backward pass: T_i(L) on [0, 1].
  std::vector<PiecewiseLinear> suffix;
  suffix.reserve(n);
  suffix.push_back(PiecewiseLinear::affine(compute_startup[n - 1],
                                           network.w(n - 1), 0.0, 1.0));
  for (std::size_t i = n - 1; i-- > 0;) {
    const PiecewiseLinear& next = suffix.back();
    const double s = compute_startup[i];
    const double w = network.w(i);
    const double z = network.z(i + 1);
    // keep-all
    PiecewiseLinear best = PiecewiseLinear::affine(s, w, 0.0, 1.0);
    // skip (pure relay)
    best = PiecewiseLinear::min(best, next.plus_affine(0.0, z));
    // equalise
    bool feasible = false;
    const PiecewiseLinear eq = equalise_option(next, s, w, z, &feasible);
    if (feasible) best = PiecewiseLinear::min(best, eq);
    best.simplify();
    suffix.push_back(std::move(best));
  }
  // suffix[k] corresponds to processor n-1-k.
  auto t_of = [&](std::size_t i) -> const PiecewiseLinear& {
    return suffix[n - 1 - i];
  };

  AffineChainSolution sol;
  sol.alpha.assign(n, 0.0);
  sol.computes.assign(n, false);
  sol.makespan = t_of(0)(1.0);

  // Forward reconstruction.
  double load = 1.0;
  for (std::size_t i = 0; i < n && load > 1e-15; ++i) {
    const double s = compute_startup[i];
    const double w = network.w(i);
    if (i + 1 == n) {
      sol.alpha[i] = load;
      sol.computes[i] = true;
      break;
    }
    const double z = network.z(i + 1);
    const PiecewiseLinear& next = t_of(i + 1);
    const double keep_all = s + w * load;
    const double skip = z * load + next(load);
    // equalise: root of f(u) = s + (load-u) w − z u − next(u) over
    // u in [0, load]; f is strictly decreasing.
    double equalise = std::numeric_limits<double>::infinity();
    double k_eq = 0.0;
    auto f = [&](double u) { return s + (load - u) * w - z * u - next(u); };
    if (f(0.0) >= 0.0 && f(load) <= 0.0) {
      double a = 0.0, b = load;
      for (int iter = 0; iter < 200; ++iter) {
        const double mid = 0.5 * (a + b);
        (f(mid) >= 0.0 ? a : b) = mid;
      }
      const double u = 0.5 * (a + b);
      k_eq = load - u;
      equalise = s + k_eq * w;
    }
    const double best = std::min({keep_all, skip, equalise});
    if (best == keep_all) {
      sol.alpha[i] = load;
      sol.computes[i] = true;
      load = 0.0;
    } else if (best == skip) {
      sol.alpha[i] = 0.0;
    } else {
      sol.alpha[i] = k_eq;
      sol.computes[i] = k_eq > 0.0;
      load -= k_eq;
    }
  }
  for (const bool c : sol.computes) sol.participants += c ? 1 : 0;
  return sol;
}

std::vector<double> affine_finish_times(
    const net::LinearNetwork& network,
    std::span<const double> compute_startup, std::span<const double> alpha) {
  const std::size_t n = network.size();
  DLS_REQUIRE(compute_startup.size() == n && alpha.size() == n,
              "vector sizes must match the network");
  std::vector<double> t(n, 0.0);
  double assigned = alpha[0];
  if (alpha[0] > 0.0) {
    t[0] = compute_startup[0] + alpha[0] * network.w(0);
  }
  double arrival = 0.0;
  for (std::size_t j = 1; j < n; ++j) {
    const double transiting = 1.0 - assigned;  // D_j
    arrival += transiting * network.z(j);
    if (alpha[j] > 0.0) {
      t[j] = arrival + compute_startup[j] + alpha[j] * network.w(j);
    }
    assigned += alpha[j];
  }
  return t;
}

}  // namespace dls::dlt
