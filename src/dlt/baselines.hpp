// Baseline allocations for experiment THM2.1: policies a deployment might
// naively use instead of Algorithm 1. All of them return a global
// allocation vector compatible with dlt::finish_times.
#pragma once

#include <cstddef>
#include <vector>

#include "net/networks.hpp"

namespace dls::dlt {

/// Every processor gets 1/(m+1).
std::vector<double> baseline_equal(std::size_t processors);

/// Shares proportional to processing speed 1/w_i, ignoring link costs.
std::vector<double> baseline_speed_proportional(
    const net::LinearNetwork& network);

/// The root computes everything itself (no distribution at all).
std::vector<double> baseline_root_only(std::size_t processors);

/// Optimal allocation restricted to the first `k` processors (the rest
/// get zero): Algorithm 1 on the prefix chain. `k` in [1, m+1]. Used to
/// show where adding more of the chain stops paying off.
std::vector<double> baseline_prefix_optimal(const net::LinearNetwork& network,
                                            std::size_t k);

}  // namespace dls::dlt
