// Batched structure-of-arrays flavour of Algorithm 1.
//
// The equivalent-processor reduction (eqs. 2.3-2.7) is a sequential
// recurrence along ONE chain, but production traffic — utility sweeps,
// counterfactual audits, serve-layer cache misses — is many INDEPENDENT
// chains. BatchLinearSolver solves K same-length instances in lockstep:
// reduction state is interleaved across instances (lane k of chain row i
// lives at [i*K + k]), so each step of the recurrence becomes a dense
// loop over K independent lanes that vectorizes (AVX2/NEON kernels in
// batch_kernels.hpp behind the DLS_SIMD gate, with a portable scalar
// loop as the reference implementation).
//
// Contract: every lane of every result is BIT-IDENTICAL to a scalar
// solve_linear_boundary of the same instance — the kernels replicate
// the scalar association order exactly, and elementwise IEEE-754
// add/sub/mul/div vectorize without changing rounding. Tests and the
// src/check auditors assert this with exact ==, under both SIMD-on and
// SIMD-off builds.
//
// All buffers are arena-style: sized by reserve()/begin() and reused,
// so a warmed solver performs 0 heap allocations per solve (asserted by
// bench_perf_micro's alloc counters).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "dlt/linear.hpp"
#include "net/networks.hpp"

namespace dls::dlt {

/// Kernel selection for BatchLinearSolver::solve. kAuto picks the best
/// kernel this binary + CPU supports; the explicit values exist so
/// tests can force scalar-vs-SIMD comparisons on the same build.
enum class BatchKernel {
  kAuto,    ///< SIMD when compiled in and supported by this CPU
  kScalar,  ///< portable reference lanes, always available
  kSimd,    ///< intrinsic lanes; solve() throws if unavailable
};

/// True when this binary was compiled with SIMD lane kernels
/// (DLS_SIMD=1 on an x86-64 or aarch64 target).
bool batch_simd_compiled() noexcept;

/// True when the running CPU can execute the compiled SIMD kernels
/// (always true for NEON builds; AVX2 is runtime-detected).
bool batch_simd_available() noexcept;

/// Solves K independent boundary-origination chains of equal length m
/// in lockstep. Holds mutable scratch — use one instance per thread.
///
/// Lifecycle per batch: begin(m, K) → set_instance(k, …) for every
/// lane → solve() → read accessors / extract(). begin() may be called
/// again with any shape; buffers only grow.
class BatchLinearSolver {
 public:
  BatchLinearSolver() = default;

  /// Pre-sizes every buffer for `processors` x `lanes` so later
  /// begin/solve calls of that shape (or smaller) never allocate.
  void reserve(std::size_t processors, std::size_t lanes);

  /// Starts a new batch of `lanes` chains with `processors` processors
  /// each. Clears lane-filled tracking; reuses buffers.
  void begin(std::size_t processors, std::size_t lanes);

  /// Loads one instance into lane `lane`. `w` must hold processors()
  /// unit computing times, `z` the processors()-1 link times (z_1..z_m
  /// in paper indexing). Validates sizes and positivity here so solve()
  /// cannot fail on instance data.
  void set_instance(std::size_t lane, std::span<const double> w,
                    std::span<const double> z);

  /// Convenience overload: lanes a LinearNetwork (already validated).
  void set_instance(std::size_t lane, const net::LinearNetwork& network);

  /// Runs Algorithm 1 on every lane. Requires all lanes filled.
  void solve(BatchKernel kernel = BatchKernel::kAuto);

  /// Finish times by eqs. (2.1)-(2.2) for every lane's optimal
  /// allocation; call after solve(). Results via finish_time().
  void evaluate_finish_times();

  std::size_t processors() const noexcept { return processors_; }
  std::size_t lanes() const noexcept { return lanes_; }

  /// Instance data as loaded.
  double w(std::size_t lane, std::size_t i) const {
    return w_stage_[lane * processors_ + i];
  }
  /// Unit time of link l_j (P_{j-1} -> P_j), j in [1, processors()-1].
  double z(std::size_t lane, std::size_t j) const {
    return z_stage_[lane * (processors_ - 1) + (j - 1)];
  }

  /// Solution accessors; valid after solve().
  double alpha(std::size_t lane, std::size_t i) const {
    return alpha_[i * lanes_ + lane];
  }
  double alpha_hat(std::size_t lane, std::size_t i) const {
    return alpha_hat_[i * lanes_ + lane];
  }
  double equivalent_w(std::size_t lane, std::size_t i) const {
    return equivalent_w_[i * lanes_ + lane];
  }
  double received(std::size_t lane, std::size_t i) const {
    return received_[i * lanes_ + lane];
  }
  double makespan(std::size_t lane) const { return equivalent_w_[lane]; }

  /// Valid after evaluate_finish_times().
  double finish_time(std::size_t lane, std::size_t i) const {
    return finish_[i * lanes_ + lane];
  }

  /// Gathers lane `lane` into `out`, bit-identical to
  /// solve_linear_boundary(network, ws, /*want_steps=*/false) on the
  /// same instance (the reduction trace is left empty).
  void extract(std::size_t lane, LinearSolution& out) const;

 private:
  void audit_lanes();

  std::size_t processors_ = 0;
  std::size_t lanes_ = 0;
  bool solved_ = false;

  // Instance staging, lane-major: lane k's w at [k*processors_, ...),
  // its z at [k*(processors_-1), ...). set_instance writes these
  // sequentially (cheap); solve() gathers one chain row at a time into
  // row_w_/row_z_ right before the kernel call. Scattering stride-K
  // writes straight from set_instance costs more than the solve itself.
  std::vector<double> w_stage_;
  std::vector<double> z_stage_;
  std::vector<double> row_w_;
  std::vector<double> row_z_;

  // SoA solution state: chain row i spans [i*lanes_, (i+1)*lanes_).
  std::vector<double> alpha_;
  std::vector<double> alpha_hat_;
  std::vector<double> equivalent_w_;
  std::vector<double> received_;
  std::vector<double> finish_;

  // Per-lane scratch (length lanes_).
  std::vector<double> tail_;
  std::vector<double> remaining_;
  std::vector<double> assigned_;
  std::vector<double> arrival_;

  std::vector<std::uint8_t> lane_filled_;
  std::size_t filled_count_ = 0;

  // Level-1 audits replay one rotating lane per solve (plus the last
  // lane); the cursor makes repeated solves cover every lane.
  std::size_t audit_cursor_ = 0;
};

}  // namespace dls::dlt
