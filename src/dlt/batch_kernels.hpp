// Lane kernels for the batched SoA solver (internal header).
//
// Every kernel applies ONE step of a per-instance recurrence across K
// independent lanes (instances) stored contiguously, so the sequential
// dependence stays along the chain while the lane dimension vectorizes.
// Three implementations per step:
//   * a portable scalar loop — the reference; the compiler may
//     auto-vectorize it, which is fine because
//   * the AVX2 kernel (x86-64, runtime-dispatched via
//     __builtin_cpu_supports, so plain binaries stay safe on pre-AVX2
//     CPUs) and
//   * the NEON kernel (aarch64 baseline)
//   perform the exact same IEEE-754 operations in the exact same
//   association order as the scalar expressions in linear.cpp /
//   counterfactual.cpp. add/sub/mul/div are correctly rounded
//   elementwise, so every lane is bit-identical to a scalar solve — the
//   property the batch tests and the src/check auditors assert with ==.
//
// Bit-identity discipline (do not "simplify" these expressions):
//   * pair_alpha_hat computes num = tail + z and den = (w + tail) + z —
//     the denominator associates LEFT. The kernels mirror that exactly.
//   * No fused multiply-add: none of the expressions below form an
//     a*b+c tree, so -ffp-contract cannot introduce an FMA on one path
//     but not the other.
//
// The DLS_SIMD gate (CMake option, default ON) compiles the intrinsic
// kernels out entirely when 0; pick_lane_kernel then always resolves to
// the scalar loop.
#pragma once

#include <cstddef>

#ifndef DLS_SIMD
#define DLS_SIMD 1
#endif

#if DLS_SIMD && defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define DLS_BATCH_HAVE_AVX2 1
#include <immintrin.h>
#else
#define DLS_BATCH_HAVE_AVX2 0
#endif

#if DLS_SIMD && defined(__aarch64__) && defined(__ARM_NEON)
#define DLS_BATCH_HAVE_NEON 1
#include <arm_neon.h>
#else
#define DLS_BATCH_HAVE_NEON 0
#endif

namespace dls::dlt::detail {

/// Resolved lane implementation; chosen once per solve, not per step.
enum class LaneKernel { kScalar, kAvx2, kNeon };

inline bool lane_simd_compiled() noexcept {
  return DLS_BATCH_HAVE_AVX2 != 0 || DLS_BATCH_HAVE_NEON != 0;
}

inline bool lane_simd_available() noexcept {
#if DLS_BATCH_HAVE_AVX2
  static const bool have = __builtin_cpu_supports("avx2") != 0;
  return have;
#elif DLS_BATCH_HAVE_NEON
  return true;
#else
  return false;
#endif
}

inline LaneKernel best_lane_kernel() noexcept {
#if DLS_BATCH_HAVE_AVX2
  if (lane_simd_available()) return LaneKernel::kAvx2;
#elif DLS_BATCH_HAVE_NEON
  return LaneKernel::kNeon;
#endif
  return LaneKernel::kScalar;
}

// ---------------------------------------------------------------------
// Collapse step, per-lane rates (BatchLinearSolver backward pass).
// Mirror of pair_alpha_hat + eq. (2.4) in solve_linear_boundary_into:
//   ah   = (tail + z) / ((w + tail) + z)
//   eqw  = ah * w
//   tail = eqw

inline void reduce_lanes_scalar(const double* w, const double* z,
                                double* tail, double* ah, double* eqw,
                                std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    const double num = tail[k] + z[k];
    const double den = (w[k] + tail[k]) + z[k];
    const double a = num / den;
    const double e = a * w[k];
    ah[k] = a;
    eqw[k] = e;
    tail[k] = e;
  }
}

#if DLS_BATCH_HAVE_AVX2
__attribute__((target("avx2"))) inline void reduce_lanes_avx2(
    const double* w, const double* z, double* tail, double* ah, double* eqw,
    std::size_t count) {
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d wv = _mm256_loadu_pd(w + k);
    const __m256d zv = _mm256_loadu_pd(z + k);
    const __m256d tv = _mm256_loadu_pd(tail + k);
    const __m256d num = _mm256_add_pd(tv, zv);
    const __m256d den = _mm256_add_pd(_mm256_add_pd(wv, tv), zv);
    const __m256d a = _mm256_div_pd(num, den);
    const __m256d e = _mm256_mul_pd(a, wv);
    _mm256_storeu_pd(ah + k, a);
    _mm256_storeu_pd(eqw + k, e);
    _mm256_storeu_pd(tail + k, e);
  }
  reduce_lanes_scalar(w + k, z + k, tail + k, ah + k, eqw + k, count - k);
}
#endif

#if DLS_BATCH_HAVE_NEON
inline void reduce_lanes_neon(const double* w, const double* z, double* tail,
                              double* ah, double* eqw, std::size_t count) {
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const float64x2_t wv = vld1q_f64(w + k);
    const float64x2_t zv = vld1q_f64(z + k);
    const float64x2_t tv = vld1q_f64(tail + k);
    const float64x2_t num = vaddq_f64(tv, zv);
    const float64x2_t den = vaddq_f64(vaddq_f64(wv, tv), zv);
    const float64x2_t a = vdivq_f64(num, den);
    const float64x2_t e = vmulq_f64(a, wv);
    vst1q_f64(ah + k, a);
    vst1q_f64(eqw + k, e);
    vst1q_f64(tail + k, e);
  }
  reduce_lanes_scalar(w + k, z + k, tail + k, ah + k, eqw + k, count - k);
}
#endif

inline void reduce_lanes(LaneKernel kernel, const double* w, const double* z,
                         double* tail, double* ah, double* eqw,
                         std::size_t count) {
  switch (kernel) {
#if DLS_BATCH_HAVE_AVX2
    case LaneKernel::kAvx2:
      reduce_lanes_avx2(w, z, tail, ah, eqw, count);
      return;
#endif
#if DLS_BATCH_HAVE_NEON
    case LaneKernel::kNeon:
      reduce_lanes_neon(w, z, tail, ah, eqw, count);
      return;
#endif
    default:
      reduce_lanes_scalar(w, z, tail, ah, eqw, count);
      return;
  }
}

// ---------------------------------------------------------------------
// Collapse step, broadcast rates (CounterfactualSolver::rebid_batch
// prefix: every lane shares the chain's w_i and z_{i+1}, only the
// equivalent tail differs). Mirror of the rebid() loop body:
//   ah   = (tail + z) / ((w + tail) + z)
//   tail = ah * w

inline void reduce_lanes_bcast_scalar(double w, double z, double* tail,
                                      double* ah, std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    const double num = tail[k] + z;
    const double den = (w + tail[k]) + z;
    const double a = num / den;
    ah[k] = a;
    tail[k] = a * w;
  }
}

#if DLS_BATCH_HAVE_AVX2
__attribute__((target("avx2"))) inline void reduce_lanes_bcast_avx2(
    double w, double z, double* tail, double* ah, std::size_t count) {
  const __m256d wv = _mm256_set1_pd(w);
  const __m256d zv = _mm256_set1_pd(z);
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d tv = _mm256_loadu_pd(tail + k);
    const __m256d num = _mm256_add_pd(tv, zv);
    const __m256d den = _mm256_add_pd(_mm256_add_pd(wv, tv), zv);
    const __m256d a = _mm256_div_pd(num, den);
    _mm256_storeu_pd(ah + k, a);
    _mm256_storeu_pd(tail + k, _mm256_mul_pd(a, wv));
  }
  reduce_lanes_bcast_scalar(w, z, tail + k, ah + k, count - k);
}
#endif

#if DLS_BATCH_HAVE_NEON
inline void reduce_lanes_bcast_neon(double w, double z, double* tail,
                                    double* ah, std::size_t count) {
  const float64x2_t wv = vdupq_n_f64(w);
  const float64x2_t zv = vdupq_n_f64(z);
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const float64x2_t tv = vld1q_f64(tail + k);
    const float64x2_t num = vaddq_f64(tv, zv);
    const float64x2_t den = vaddq_f64(vaddq_f64(wv, tv), zv);
    const float64x2_t a = vdivq_f64(num, den);
    vst1q_f64(ah + k, a);
    vst1q_f64(tail + k, vmulq_f64(a, wv));
  }
  reduce_lanes_bcast_scalar(w, z, tail + k, ah + k, count - k);
}
#endif

inline void reduce_lanes_bcast(LaneKernel kernel, double w, double z,
                               double* tail, double* ah, std::size_t count) {
  switch (kernel) {
#if DLS_BATCH_HAVE_AVX2
    case LaneKernel::kAvx2:
      reduce_lanes_bcast_avx2(w, z, tail, ah, count);
      return;
#endif
#if DLS_BATCH_HAVE_NEON
    case LaneKernel::kNeon:
      reduce_lanes_bcast_neon(w, z, tail, ah, count);
      return;
#endif
    default:
      reduce_lanes_bcast_scalar(w, z, tail, ah, count);
      return;
  }
}

// ---------------------------------------------------------------------
// Own-lane collapse for rebid_batch: the queried processor's OWN bid
// varies per lane while the suffix tail and link are fixed, so the
// recurrence reads
//   ah  = (tail + z) / ((bid + tail) + z)
//   eqw = ah * bid
// This is pair_alpha_hat with the numerator hoisted (tail and z are
// lane-invariant); the denominator association matches the scalar
// rebid() exactly. It lives here — not inlined at the call site — so
// the FP-determinism fence can verify there is exactly ONE spelling of
// every α̂ recurrence in the batch layer. O(k) once per rebid_batch (the
// O(n·k) passes are the SIMD kernels above), so a scalar loop suffices.

inline void collapse_own_lanes_scalar(const double* bids, double tail,
                                      double z, double* ah, double* eqw,
                                      std::size_t count) {
  const double num = tail + z;
  for (std::size_t k = 0; k < count; ++k) {
    const double a = num / ((bids[k] + tail) + z);
    ah[k] = a;
    eqw[k] = a * bids[k];  // eq. (2.4)
  }
}

// ---------------------------------------------------------------------
// Forward unroll step (steps 7-10 of Algorithm 1 across lanes). Mirror
// of the scalar loop body:
//   received  = remaining
//   alpha     = remaining * ah
//   remaining = remaining * (1 - ah)

inline void unroll_lanes_scalar(const double* ah, double* remaining,
                                double* received, double* alpha,
                                std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    const double rem = remaining[k];
    received[k] = rem;
    alpha[k] = rem * ah[k];
    remaining[k] = rem * (1.0 - ah[k]);
  }
}

#if DLS_BATCH_HAVE_AVX2
__attribute__((target("avx2"))) inline void unroll_lanes_avx2(
    const double* ah, double* remaining, double* received, double* alpha,
    std::size_t count) {
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d av = _mm256_loadu_pd(ah + k);
    const __m256d rem = _mm256_loadu_pd(remaining + k);
    _mm256_storeu_pd(received + k, rem);
    _mm256_storeu_pd(alpha + k, _mm256_mul_pd(rem, av));
    _mm256_storeu_pd(remaining + k,
                     _mm256_mul_pd(rem, _mm256_sub_pd(one, av)));
  }
  unroll_lanes_scalar(ah + k, remaining + k, received + k, alpha + k,
                      count - k);
}
#endif

#if DLS_BATCH_HAVE_NEON
inline void unroll_lanes_neon(const double* ah, double* remaining,
                              double* received, double* alpha,
                              std::size_t count) {
  const float64x2_t one = vdupq_n_f64(1.0);
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const float64x2_t av = vld1q_f64(ah + k);
    const float64x2_t rem = vld1q_f64(remaining + k);
    vst1q_f64(received + k, rem);
    vst1q_f64(alpha + k, vmulq_f64(rem, av));
    vst1q_f64(remaining + k, vmulq_f64(rem, vsubq_f64(one, av)));
  }
  unroll_lanes_scalar(ah + k, remaining + k, received + k, alpha + k,
                      count - k);
}
#endif

inline void unroll_lanes(LaneKernel kernel, const double* ah,
                         double* remaining, double* received, double* alpha,
                         std::size_t count) {
  switch (kernel) {
#if DLS_BATCH_HAVE_AVX2
    case LaneKernel::kAvx2:
      unroll_lanes_avx2(ah, remaining, received, alpha, count);
      return;
#endif
#if DLS_BATCH_HAVE_NEON
    case LaneKernel::kNeon:
      unroll_lanes_neon(ah, remaining, received, alpha, count);
      return;
#endif
    default:
      unroll_lanes_scalar(ah, remaining, received, alpha, count);
      return;
  }
}

/// Lane-product step for rebid_batch's forward pass:
///   remaining *= (1 - ah)
/// Mirror of `remaining *= (1.0 - ah_scratch_[i])` in rebid().
inline void remaining_lanes_scalar(const double* ah, double* remaining,
                                   std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    remaining[k] = remaining[k] * (1.0 - ah[k]);
  }
}

#if DLS_BATCH_HAVE_AVX2
__attribute__((target("avx2"))) inline void remaining_lanes_avx2(
    const double* ah, double* remaining, std::size_t count) {
  const __m256d one = _mm256_set1_pd(1.0);
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m256d av = _mm256_loadu_pd(ah + k);
    const __m256d rem = _mm256_loadu_pd(remaining + k);
    _mm256_storeu_pd(remaining + k,
                     _mm256_mul_pd(rem, _mm256_sub_pd(one, av)));
  }
  remaining_lanes_scalar(ah + k, remaining + k, count - k);
}
#endif

#if DLS_BATCH_HAVE_NEON
inline void remaining_lanes_neon(const double* ah, double* remaining,
                                 std::size_t count) {
  const float64x2_t one = vdupq_n_f64(1.0);
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const float64x2_t av = vld1q_f64(ah + k);
    const float64x2_t rem = vld1q_f64(remaining + k);
    vst1q_f64(remaining + k, vmulq_f64(rem, vsubq_f64(one, av)));
  }
  remaining_lanes_scalar(ah + k, remaining + k, count - k);
}
#endif

inline void remaining_lanes(LaneKernel kernel, const double* ah,
                            double* remaining, std::size_t count) {
  switch (kernel) {
#if DLS_BATCH_HAVE_AVX2
    case LaneKernel::kAvx2:
      remaining_lanes_avx2(ah, remaining, count);
      return;
#endif
#if DLS_BATCH_HAVE_NEON
    case LaneKernel::kNeon:
      remaining_lanes_neon(ah, remaining, count);
      return;
#endif
    default:
      remaining_lanes_scalar(ah, remaining, count);
      return;
  }
}

}  // namespace dls::dlt::detail
