#include "dlt/tree.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace dls::dlt {

namespace {

/// Children of `v` sorted by ascending link time.
std::vector<std::size_t> service_order(const net::TreeNetwork& net,
                                       std::size_t v) {
  auto kids = net.children(v);
  std::vector<std::size_t> order(kids.begin(), kids.end());
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return net.z(a) < net.z(b);
                   });
  return order;
}

}  // namespace

TreeSolution solve_tree(const net::TreeNetwork& network) {
  const std::size_t n = network.size();
  TreeSolution sol;
  sol.alpha.assign(n, 0.0);
  sol.equivalent_w.assign(n, 0.0);
  sol.received.assign(n, 0.0);
  sol.local_keep.assign(n, 1.0);

  // Per-node local star solutions (fraction kept + per-child fractions),
  // filled during the post-order reduction. Nodes are numbered with
  // parents before children, so a reverse index scan IS a post-order.
  std::vector<std::vector<std::pair<std::size_t, double>>> child_share(n);
  for (std::size_t v = n; v-- > 0;) {
    const auto kids = network.children(v);
    if (kids.empty()) {
      sol.equivalent_w[v] = network.w(v);
      sol.local_keep[v] = 1.0;
      continue;
    }
    // Local star: v computes; each child subtree is an equivalent worker.
    std::vector<double> worker_w, worker_z;
    const std::vector<std::size_t> order = service_order(network, v);
    worker_w.reserve(order.size());
    worker_z.reserve(order.size());
    for (const std::size_t c : order) {
      worker_w.push_back(sol.equivalent_w[c]);
      worker_z.push_back(network.z(c));
    }
    const net::StarNetwork star(network.w(v), std::move(worker_w),
                                std::move(worker_z));
    // Workers are already in service order (ascending link time), and
    // StarNetwork::order_by_link_speed is stable, so solve_star serves
    // them exactly in `order`.
    const StarSolution local = solve_star(star);
    sol.equivalent_w[v] = local.makespan;
    sol.local_keep[v] = local.alpha_root;
    child_share[v].reserve(order.size());
    for (std::size_t k = 0; k < order.size(); ++k) {
      child_share[v].emplace_back(order[k], local.alpha[k]);
    }
  }

  // Pre-order unroll (parents precede children in index order).
  sol.received[0] = 1.0;
  for (std::size_t v = 0; v < n; ++v) {
    const double load = sol.received[v];
    sol.alpha[v] = load * sol.local_keep[v];
    for (const auto& [child, share] : child_share[v]) {
      sol.received[child] = load * share;
    }
  }
  sol.makespan = sol.equivalent_w[0];
  return sol;
}

std::vector<double> tree_finish_times(const net::TreeNetwork& network,
                                      const TreeSolution& solution) {
  const std::size_t n = network.size();
  DLS_REQUIRE(solution.alpha.size() == n, "solution size mismatch");
  std::vector<double> finish(n, 0.0);
  std::vector<double> hold_time(n, 0.0);  // when v owns its bulk

  for (std::size_t v = 0; v < n; ++v) {
    const double load = solution.received[v];
    if (solution.alpha[v] > 0.0) {
      finish[v] = hold_time[v] + solution.alpha[v] * network.w(v);
    }
    // One-port: children are served sequentially, fastest link first
    // (the order solve_tree used).
    double clock = hold_time[v];
    for (const std::size_t c : service_order(network, v)) {
      const double child_load = solution.received[c];
      if (child_load <= 0.0) continue;
      clock += child_load * network.z(c);
      hold_time[c] = clock;
    }
    (void)load;
  }
  return finish;
}

}  // namespace dls::dlt
