#include "dlt/batch.hpp"

#include <algorithm>
#include <string>

#include "check/solver_invariants.hpp"
#include "common/discipline.hpp"
#include "common/error.hpp"
#include "dlt/batch_kernels.hpp"
#include "obs/obs.hpp"

namespace dls::dlt {

bool batch_simd_compiled() noexcept { return detail::lane_simd_compiled(); }

bool batch_simd_available() noexcept { return detail::lane_simd_available(); }

namespace {

detail::LaneKernel resolve_kernel(BatchKernel kernel) {
  switch (kernel) {
    case BatchKernel::kScalar:
      return detail::LaneKernel::kScalar;
    case BatchKernel::kSimd:
      DLS_REQUIRE(batch_simd_available(),
                  "BatchKernel::kSimd requires a DLS_SIMD build on a "
                  "supporting CPU (see batch_simd_available)");
      return detail::best_lane_kernel();
    case BatchKernel::kAuto:
      break;
  }
  return detail::best_lane_kernel();
}

/// Cold failure path of BatchLinearSolver::solve, kept out of the
/// annotated hot function so the formatted message's string building is
/// a named, waivable call (see common/discipline.hpp).
[[noreturn]] void throw_lanes_unfilled(std::size_t filled,
                                       std::size_t lanes) {
  throw PreconditionError("every lane must be set before solving (filled " +
                          std::to_string(filled) + " of " +
                          std::to_string(lanes) + ")");
}

}  // namespace

void BatchLinearSolver::reserve(std::size_t processors, std::size_t lanes) {
  const std::size_t cells = processors * lanes;
  const std::size_t link_cells = processors > 0 ? (processors - 1) * lanes : 0;
  w_stage_.reserve(cells);
  z_stage_.reserve(link_cells);
  row_w_.reserve(lanes);
  row_z_.reserve(lanes);
  alpha_.reserve(cells);
  alpha_hat_.reserve(cells);
  equivalent_w_.reserve(cells);
  received_.reserve(cells);
  finish_.reserve(cells);
  tail_.reserve(lanes);
  remaining_.reserve(lanes);
  assigned_.reserve(lanes);
  arrival_.reserve(lanes);
  lane_filled_.reserve(lanes);
}

void BatchLinearSolver::begin(std::size_t processors, std::size_t lanes) {
  DLS_REQUIRE(processors >= 1, "a chain needs at least one processor");
  DLS_REQUIRE(lanes >= 1, "a batch needs at least one lane");
  processors_ = processors;
  lanes_ = lanes;
  solved_ = false;
  const std::size_t cells = processors * lanes;
  w_stage_.resize(cells);
  z_stage_.resize((processors - 1) * lanes);
  row_w_.resize(lanes);
  row_z_.resize(lanes);
  alpha_.resize(cells);
  alpha_hat_.resize(cells);
  equivalent_w_.resize(cells);
  received_.resize(cells);
  tail_.resize(lanes);
  remaining_.resize(lanes);
  lane_filled_.assign(lanes, 0);
  filled_count_ = 0;
}

void BatchLinearSolver::set_instance(std::size_t lane,
                                     std::span<const double> w,
                                     std::span<const double> z) {
  DLS_REQUIRE(lane < lanes_, "lane index out of range");
  DLS_REQUIRE(w.size() == processors_,
              "instance must match the batch chain length");
  DLS_REQUIRE(z.size() + 1 == processors_,
              "a chain needs one link per non-root processor");
  double* const w_dst = w_stage_.data() + lane * processors_;
  for (std::size_t i = 0; i < w.size(); ++i) {
    DLS_REQUIRE(w[i] > 0.0, "unit computing times must be positive");
    w_dst[i] = w[i];
  }
  double* const z_dst = z_stage_.data() + lane * (processors_ - 1);
  for (std::size_t j = 0; j < z.size(); ++j) {
    DLS_REQUIRE(z[j] > 0.0, "unit communication times must be positive");
    z_dst[j] = z[j];
  }
  if (lane_filled_[lane] == 0) {
    lane_filled_[lane] = 1;
    ++filled_count_;
  }
}

void BatchLinearSolver::set_instance(std::size_t lane,
                                     const net::LinearNetwork& network) {
  // A LinearNetwork validated sizes and positivity at construction, so
  // this overload is a pair of straight copies — it matters on the
  // serve path, where per-element re-validation of a large batch costs
  // a measurable slice of the whole solve.
  DLS_REQUIRE(lane < lanes_, "lane index out of range");
  DLS_REQUIRE(network.size() == processors_,
              "instance must match the batch chain length");
  const std::span<const double> w = network.processing_times();
  const std::span<const double> z = network.link_times();
  std::copy(w.begin(), w.end(), w_stage_.begin() + lane * processors_);
  std::copy(z.begin(), z.end(), z_stage_.begin() + lane * (processors_ - 1));
  if (lane_filled_[lane] == 0) {
    lane_filled_[lane] = 1;
    ++filled_count_;
  }
}

DLS_HOT_NOALLOC
void BatchLinearSolver::solve(BatchKernel kernel) {
  if (filled_count_ != lanes_) throw_lanes_unfilled(filled_count_, lanes_);
  const std::size_t n = processors_;
  const std::size_t k = lanes_;
  DLS_SPAN_ARGS("solve.batch", "{\"m\":" + std::to_string(n) +
                                   ",\"k\":" + std::to_string(k) + "}");
  DLS_COUNT("solver.batch.solves");
  DLS_COUNT("solver.batch.lanes", k);
  const detail::LaneKernel lane_kernel = resolve_kernel(kernel);
  if (lane_kernel != detail::LaneKernel::kScalar) {
    DLS_COUNT("solver.batch.simd_solves");
  }

  // Steps 1-6 of Algorithm 1 across lanes: terminal seed, then collapse
  // row by row toward the root. Same arithmetic as
  // solve_linear_boundary_into, with the chain loop outside and the
  // lane loop inside each kernel. Instance data sits lane-major in the
  // staging buffers; each row is gathered into a small per-row buffer
  // just before its kernel call — the strided read set stays
  // L1-resident (consecutive rows revisit the same source cache lines)
  // and no full SoA copy of w/z is ever materialised.
  double* const tail = tail_.data();
  const double* const last_w = w_stage_.data() + (n - 1);
  for (std::size_t lane = 0; lane < k; ++lane) {
    const double w_m = last_w[lane * n];
    alpha_hat_[(n - 1) * k + lane] = 1.0;
    equivalent_w_[(n - 1) * k + lane] = w_m;
    tail[lane] = w_m;
  }
  for (std::size_t i = n - 1; i-- > 0;) {
    const double* const w_src = w_stage_.data() + i;
    const double* const z_src = z_stage_.data() + i;
    for (std::size_t lane = 0; lane < k; ++lane) {
      row_w_[lane] = w_src[lane * n];
      row_z_[lane] = z_src[lane * (n - 1)];
    }
    detail::reduce_lanes(lane_kernel, row_w_.data(), row_z_.data(), tail,
                         alpha_hat_.data() + i * k,
                         equivalent_w_.data() + i * k, k);
  }

  // Steps 7-10: unroll local fractions into global ones, per lane.
  for (std::size_t lane = 0; lane < k; ++lane) remaining_[lane] = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    detail::unroll_lanes(lane_kernel, alpha_hat_.data() + i * k,
                         remaining_.data(), received_.data() + i * k,
                         alpha_.data() + i * k, k);
  }
  solved_ = true;

  if constexpr (check::enabled(1)) audit_lanes();
}

// Audit strategy, graded by DLS_CHECK_LEVEL like the scalar solver's:
//   level 2 (Debug/CI): replay EVERY lane against the scalar recurrence
//     with exact == — O(n*k), full coverage per solve.
//   level 1 (optimised builds): replay the LAST lane (the ragged tail
//     the SIMD remainder loop handles — the most bug-prone spot) plus
//     one rotating lane per solve. A miscompiled kernel corrupts all
//     lanes uniformly, so sampling catches it immediately, and the
//     cursor covers every lane across repeated solves at O(2n) cost —
//     cheap enough to leave on in production.
void BatchLinearSolver::audit_lanes() {
  const std::size_t n = processors_;
  const std::size_t k = lanes_;
  const auto audit = [&](std::size_t lane) {
    check::check_batch_lane(
        w_stage_.data() + lane * n, 1,
        n > 1 ? z_stage_.data() + lane * (n - 1) : nullptr, 1,
        alpha_.data() + lane, alpha_hat_.data() + lane,
        equivalent_w_.data() + lane, received_.data() + lane, makespan(lane),
        n, k, lane);
  };
  if constexpr (check::enabled(2)) {
    for (std::size_t lane = 0; lane < k; ++lane) audit(lane);
    return;
  }
  audit(k - 1);
  if (k > 1) {
    audit_cursor_ = (audit_cursor_ + 1) % (k - 1);
    audit(audit_cursor_);
  }
}

DLS_HOT_NOALLOC
void BatchLinearSolver::evaluate_finish_times() {
  DLS_REQUIRE(solved_, "evaluate_finish_times requires a solved batch");
  const std::size_t n = processors_;
  const std::size_t k = lanes_;
  finish_.resize(n * k);
  assigned_.resize(k);
  arrival_.resize(k);
  // Mirror of finish_times_into, lane loop innermost. The expressions
  // match the scalar ones exactly (including the alpha > 0 branch), so
  // finish_time(lane, i) is bit-identical to the per-instance call.
  for (std::size_t lane = 0; lane < k; ++lane) {
    finish_[lane] = alpha_[lane] * w_stage_[lane * n];  // eq. (2.1)
    assigned_[lane] = alpha_[lane];
    arrival_[lane] = 0.0;
  }
  for (std::size_t j = 1; j < n; ++j) {
    const double* const aj = alpha_.data() + j * k;
    const double* const wj = w_stage_.data() + j;
    const double* const zj = z_stage_.data() + (j - 1);
    double* const fj = finish_.data() + j * k;
    for (std::size_t lane = 0; lane < k; ++lane) {
      const double transiting = 1.0 - assigned_[lane];  // D_j
      arrival_[lane] += transiting * zj[lane * (n - 1)];
      fj[lane] = aj[lane] > 0.0
                     ? arrival_[lane] + aj[lane] * wj[lane * n]
                     : 0.0;
      assigned_[lane] += aj[lane];
    }
  }
}

DLS_HOT_NOALLOC
void BatchLinearSolver::extract(std::size_t lane, LinearSolution& out) const {
  DLS_REQUIRE(solved_, "extract requires a solved batch");
  DLS_REQUIRE(lane < lanes_, "lane index out of range");
  const std::size_t n = processors_;
  out.alpha.resize(n);
  out.alpha_hat.resize(n);
  out.equivalent_w.resize(n);
  out.received.resize(n);
  out.steps.clear();
  for (std::size_t i = 0; i < n; ++i) {
    out.alpha[i] = alpha_[i * lanes_ + lane];
    out.alpha_hat[i] = alpha_hat_[i * lanes_ + lane];
    out.equivalent_w[i] = equivalent_w_[i * lanes_ + lane];
    out.received[i] = received_[i * lanes_ + lane];
  }
  out.makespan = out.equivalent_w[0];
}

}  // namespace dls::dlt
