#include "dlt/interior.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dls::dlt {

namespace {

/// The left arm (P_{r-1}, ..., P_0) viewed as a boundary chain whose head
/// is the root's left neighbour.
net::LinearNetwork left_arm(const net::InteriorLinearNetwork& net) {
  const std::size_t r = net.root();
  std::vector<double> w(r);
  std::vector<double> z(r - 1);
  for (std::size_t i = 0; i < r; ++i) w[i] = net.w(r - 1 - i);
  for (std::size_t j = 0; j + 1 < r; ++j) z[j] = net.z(r - 1 - j);
  return net::LinearNetwork(std::move(w), std::move(z));
}

/// The right arm (P_{r+1}, ..., P_m) as a boundary chain.
net::LinearNetwork right_arm(const net::InteriorLinearNetwork& net) {
  const std::size_t r = net.root();
  const std::size_t n = net.size();
  std::vector<double> w(n - r - 1);
  std::vector<double> z(n - r - 2);
  for (std::size_t i = r + 1; i < n; ++i) w[i - r - 1] = net.w(i);
  for (std::size_t j = r + 2; j < n; ++j) z[j - r - 2] = net.z(j);
  return net::LinearNetwork(std::move(w), std::move(z));
}

struct Arm {
  net::LinearNetwork chain;
  LinearSolution solution;
  double head_link;  ///< z from the root into the arm's head
};

}  // namespace

InteriorSolution solve_linear_interior_ordered(
    const net::InteriorLinearNetwork& network, ArmOrder order) {
  const std::size_t r = network.root();
  Arm left{left_arm(network), {}, network.z(r)};
  Arm right{right_arm(network), {}, network.z(r + 1)};
  left.solution = solve_linear_boundary(left.chain);
  right.solution = solve_linear_boundary(right.chain);

  const Arm& first = order == ArmOrder::kLeftFirst ? left : right;
  const Arm& second = order == ArmOrder::kLeftFirst ? right : left;

  // Unnormalised equal-finish split with the root share fixed at 1:
  //   L_A = w_r / (z_A + W̄_A)
  //   L_B = L_A · W̄_A / (z_B + W̄_B)   (from α_r w_r − L_A z_A = L_A W̄_A)
  const double wa = first.solution.makespan;    // W̄ of the first arm
  const double wb = second.solution.makespan;
  const double root_share = 1.0;
  const double la = network.w(r) / (first.head_link + wa);
  const double lb = la * wa / (second.head_link + wb);
  const double total = root_share + la + lb;

  InteriorSolution sol;
  sol.order = order;
  sol.alpha.assign(network.size(), 0.0);
  const double alpha_root = root_share / total;
  sol.alpha[r] = alpha_root;
  const double first_load = la / total;
  const double second_load = lb / total;
  sol.makespan = alpha_root * network.w(r);

  auto scatter = [&](const Arm& arm, double load, bool is_left) {
    const auto& a = arm.solution.alpha;
    for (std::size_t k = 0; k < a.size(); ++k) {
      const std::size_t pos = is_left ? r - 1 - k : r + 1 + k;
      sol.alpha[pos] = load * a[k];
    }
  };
  const bool first_is_left = order == ArmOrder::kLeftFirst;
  scatter(first, first_load, first_is_left);
  scatter(second, second_load, !first_is_left);
  sol.left_load = first_is_left ? first_load : second_load;
  sol.right_load = first_is_left ? second_load : first_load;
  return sol;
}

InteriorSolution solve_linear_interior(
    const net::InteriorLinearNetwork& network) {
  const InteriorSolution lf =
      solve_linear_interior_ordered(network, ArmOrder::kLeftFirst);
  const InteriorSolution rf =
      solve_linear_interior_ordered(network, ArmOrder::kRightFirst);
  return lf.makespan <= rf.makespan ? lf : rf;
}

std::vector<double> interior_finish_times(
    const net::InteriorLinearNetwork& network,
    const InteriorSolution& solution) {
  const std::size_t r = network.root();
  const std::size_t n = network.size();
  DLS_REQUIRE(solution.alpha.size() == n, "allocation size mismatch");

  std::vector<double> t(n, 0.0);
  if (solution.alpha[r] > 0.0) t[r] = solution.alpha[r] * network.w(r);

  // Rebuild per-arm unit allocations from the global vector.
  auto arm_times = [&](bool is_left, double load, double start) {
    if (load <= 0.0) return;
    const std::size_t len = is_left ? r : n - r - 1;
    std::vector<double> w(len), beta(len);
    std::vector<double> z(len - 1);
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t pos = is_left ? r - 1 - k : r + 1 + k;
      w[k] = network.w(pos);
      beta[k] = solution.alpha[pos] / load;
    }
    for (std::size_t k = 0; k + 1 < len; ++k) {
      const std::size_t j = is_left ? r - 1 - k : r + 2 + k;
      z[k] = network.z(j);
    }
    const net::LinearNetwork chain(std::move(w), std::move(z));
    const double head_z = is_left ? network.z(r) : network.z(r + 1);
    const std::vector<double> f = finish_times(chain, beta);
    // The head holds its bulk at start + load*head_z; the arm then runs
    // like a unit-load boundary chain scaled by `load`.
    const double offset = start + load * head_z;
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t pos = is_left ? r - 1 - k : r + 1 + k;
      t[pos] = beta[k] > 0.0 ? offset + load * f[k] : 0.0;
    }
  };

  const bool left_first = solution.order == ArmOrder::kLeftFirst;
  const double first_load =
      left_first ? solution.left_load : solution.right_load;
  const double second_load =
      left_first ? solution.right_load : solution.left_load;
  const double first_z =
      left_first ? network.z(r) : network.z(r + 1);
  arm_times(left_first, first_load, 0.0);
  arm_times(!left_first, second_load, first_load * first_z);
  return t;
}

}  // namespace dls::dlt
