// Incremental counterfactual re-solves of Algorithm 1.
//
// The equivalent-processor reduction of eqs. (2.4)/(2.7) collapses the
// chain from the far end toward the root, so w̄_i depends only on the
// SUFFIX (P_i..P_m). Re-bidding processor j therefore leaves every
// w̄_i with i > j untouched: only the prefix 0..j has to be recomputed.
// The strategyproofness sweeps (THM5.3, best-response dynamics) evaluate
// hundreds of bids per processor against a fixed rest-of-population —
// exactly this access pattern. Caching the base reduction turns an
// O(m)-with-allocations full solve per bid point into an O(j)
// allocation-free prefix update.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dlt/linear.hpp"
#include "net/networks.hpp"

namespace dls::dlt {

/// Caches the suffix reduction of a base chain and answers "what if
/// processor j had bid w instead" in O(j) with zero heap allocation.
/// Holds mutable scratch — use one instance per thread.
class CounterfactualSolver {
 public:
  explicit CounterfactualSolver(const net::LinearNetwork& network);

  /// Solution entries of the counterfactual chain that differ from the
  /// base; everything with index > `index` is unchanged by construction.
  struct Rebid {
    std::size_t index = 0;
    double bid = 0.0;
    double alpha = 0.0;           ///< α_index under the new bid
    double alpha_hat = 0.0;       ///< α̂_index
    double equivalent_w = 0.0;    ///< w̄_index
    double alpha_hat_pred = 0.0;  ///< α̂_{index-1} (0 when index == 0)
    double makespan = 0.0;        ///< w̄_0 of the counterfactual chain
  };

  std::size_t size() const noexcept { return w_.size(); }
  double w(std::size_t i) const { return w_[i]; }
  /// Unit time of link l_j (P_{j-1} -> P_j), j in [1, size()-1].
  double z(std::size_t j) const { return z_[j - 1]; }

  /// Algorithm 1 on the unmodified base chain (computed once).
  const LinearSolution& base() const noexcept { return base_; }

  /// Incremental re-solve with processor `index` bidding `bid`; O(index).
  /// rebid(index, w(index)) reproduces the base solution bit-for-bit.
  Rebid rebid(std::size_t index, double bid);

  /// Full allocation vector of the counterfactual chain, written into
  /// `alpha_out` (resized; reused across calls). O(size()).
  Rebid rebid_allocation(std::size_t index, double bid,
                         std::vector<double>& alpha_out);

  /// Batched rebid: out[k] = rebid(index, bids[k]) bit-for-bit, for all
  /// candidate bids in lockstep. The prefix recurrence runs across bid
  /// lanes in SoA layout (SIMD kernels under the DLS_SIMD gate), so a
  /// sweep of K bids costs one O(index) pass instead of K — the
  /// utility-curve hot path of CounterfactualMechanism. Requires
  /// bids.size() == out.size(); allocation-free once scratch has warmed
  /// to the lane count.
  void rebid_batch(std::size_t index, std::span<const double> bids,
                   std::span<Rebid> out);

 private:
  std::vector<double> w_;
  std::vector<double> z_;
  LinearSolution base_;
  std::vector<double> ah_scratch_;  ///< α̂_0..α̂_index under the rebid

  // rebid_batch scratch, row-major across bid lanes: row i of
  // batch_ah_ holds α̂_i for every lane.
  std::vector<double> batch_ah_;
  std::vector<double> batch_eqw_;
  std::vector<double> batch_remaining_;
};

}  // namespace dls::dlt
