#include "dlt/piecewise.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"

namespace dls::dlt {

PiecewiseLinear::PiecewiseLinear(std::vector<Point> points)
    : points_(std::move(points)) {
  DLS_REQUIRE(!points_.empty(), "piecewise function needs breakpoints");
  for (std::size_t i = 1; i < points_.size(); ++i) {
    DLS_REQUIRE(points_[i].x > points_[i - 1].x,
                "breakpoints must be strictly increasing");
  }
}

PiecewiseLinear PiecewiseLinear::affine(double intercept, double slope,
                                        double lo, double hi) {
  DLS_REQUIRE(lo < hi, "affine domain must be non-degenerate");
  return PiecewiseLinear(
      {{lo, intercept + slope * lo}, {hi, intercept + slope * hi}});
}

double PiecewiseLinear::operator()(double x) const {
  if (points_.size() == 1) return points_.front().y;
  x = std::clamp(x, domain_lo(), domain_hi());
  // First breakpoint with x_i >= x.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), x,
      [](const Point& p, double value) { return p.x < value; });
  if (it == points_.begin()) return it->y;
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double t = (x - lo.x) / (hi.x - lo.x);
  return lo.y + t * (hi.y - lo.y);
}

PiecewiseLinear PiecewiseLinear::min(const PiecewiseLinear& a,
                                     const PiecewiseLinear& b) {
  DLS_REQUIRE(std::abs(a.domain_lo() - b.domain_lo()) < 1e-12 &&
                  std::abs(a.domain_hi() - b.domain_hi()) < 1e-12,
              "min requires a shared domain");
  // Candidate x values: all breakpoints of both, plus crossings within
  // each pair of bracketing breakpoints.
  std::set<double> xs;
  for (const auto& p : a.points()) xs.insert(p.x);
  for (const auto& p : b.points()) xs.insert(p.x);
  std::vector<double> grid(xs.begin(), xs.end());
  std::vector<Point> merged;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double x = grid[i];
    merged.push_back({x, std::min(a(x), b(x))});
    if (i + 1 == grid.size()) continue;
    // A crossing inside (x, x_next)?
    const double x2 = grid[i + 1];
    const double d1 = a(x) - b(x);
    const double d2 = a(x2) - b(x2);
    if (d1 * d2 < 0.0) {
      const double t = d1 / (d1 - d2);
      const double xc = x + t * (x2 - x);
      if (xc > x + 1e-15 && xc < x2 - 1e-15) {
        merged.push_back({xc, std::min(a(xc), b(xc))});
      }
    }
  }
  PiecewiseLinear out(std::move(merged));
  out.simplify();
  return out;
}

PiecewiseLinear PiecewiseLinear::plus_affine(double intercept,
                                             double slope) const {
  std::vector<Point> points = points_;
  for (auto& p : points) p.y += intercept + slope * p.x;
  return PiecewiseLinear(std::move(points));
}

void PiecewiseLinear::simplify(double tol) {
  if (points_.size() < 3) return;
  std::vector<Point> kept;
  kept.push_back(points_.front());
  for (std::size_t i = 1; i + 1 < points_.size(); ++i) {
    const Point& prev = kept.back();
    const Point& cur = points_[i];
    const Point& next = points_[i + 1];
    const double t = (cur.x - prev.x) / (next.x - prev.x);
    const double on_line = prev.y + t * (next.y - prev.y);
    if (std::abs(on_line - cur.y) > tol) kept.push_back(cur);
  }
  kept.push_back(points_.back());
  points_ = std::move(kept);
}

}  // namespace dls::dlt
