#include "dlt/star.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dls::dlt {

StarSolution solve_star_ordered(const net::StarNetwork& network,
                                std::vector<std::size_t> order) {
  const std::size_t m = network.workers();
  DLS_REQUIRE(order.size() == m, "order must cover every worker");
  {
    std::vector<bool> seen(m, false);
    for (const std::size_t i : order) {
      DLS_REQUIRE(i < m && !seen[i], "order must be a permutation");
      seen[i] = true;
    }
  }

  // Unnormalised shares: the first participant gets 1; each later one is
  // scaled by the equal-finish recursion. The root (if computing) acts as
  // participant 0 with no link cost.
  std::vector<double> shares;          // aligned with participants
  shares.reserve(m + 1);
  double prev_share = 0.0;
  double prev_w = 0.0;
  std::size_t first_worker = 0;
  double root_share = 0.0;
  if (network.root_computes()) {
    root_share = 1.0;
    prev_share = 1.0;
    prev_w = network.root_w();
  } else {
    const std::size_t w0 = order[0];
    shares.push_back(1.0);
    prev_share = 1.0;
    prev_w = network.w(w0);
    first_worker = 1;
  }
  // For the first worker after the root: α_1 (z_1 + w_1) = α_0 w_0.
  for (std::size_t k = first_worker; k < m; ++k) {
    const std::size_t idx = order[k];
    const double denom = network.z(idx) + network.w(idx);
    const double share = prev_share * prev_w / denom;
    shares.push_back(share);
    prev_share = share;
    prev_w = network.w(idx);
  }

  double total = root_share;
  for (const double s : shares) total += s;
  DLS_REQUIRE(total > 0.0, "degenerate star instance");

  StarSolution sol;
  sol.order = std::move(order);
  sol.alpha.assign(m, 0.0);
  sol.alpha_root = root_share / total;
  for (std::size_t k = 0; k < shares.size(); ++k) {
    sol.alpha[sol.order[k]] = shares[k] / total;
  }
  // Makespan: root share if it computes, else first worker's finish.
  if (network.root_computes()) {
    sol.makespan = sol.alpha_root * network.root_w();
  } else {
    const std::size_t f = sol.order[0];
    sol.makespan = sol.alpha[f] * (network.z(f) + network.w(f));
  }
  return sol;
}

StarSolution solve_star(const net::StarNetwork& network) {
  return solve_star_ordered(network, network.order_by_link_speed());
}

StarSolution solve_bus(const net::BusNetwork& network) {
  return solve_star(network.as_star());
}

std::vector<double> star_finish_times(const net::StarNetwork& network,
                                      const StarSolution& solution) {
  const std::size_t m = network.workers();
  DLS_REQUIRE(solution.alpha.size() == m, "allocation/worker count mismatch");
  std::vector<double> t(m + 1, 0.0);
  if (network.root_computes()) {
    t[0] = solution.alpha_root * network.root_w();
  }
  double clock = 0.0;  // one-port: transmissions are sequential
  for (const std::size_t idx : solution.order) {
    const double a = solution.alpha[idx];
    if (a <= 0.0) continue;
    clock += a * network.z(idx);
    t[idx + 1] = clock + a * network.w(idx);
  }
  return t;
}

}  // namespace dls::dlt
