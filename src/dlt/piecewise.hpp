// Exact piecewise-linear (affine-segment) functions on a closed interval
// [0, L_max] — the value representation behind the affine-cost DLT solver
// (dlt/affine.hpp). Functions are continuous and stored as ordered
// breakpoints; the operations the dynamic program needs are evaluation,
// pointwise minimum, and affine reparameterisations.
#pragma once

#include <cstddef>
#include <vector>

namespace dls::dlt {

/// A continuous piecewise-affine function given by its breakpoints
/// (x_0 < x_1 < ... < x_k, with values y_i); affine interpolation between
/// neighbours. Defined on [x_front, x_back].
class PiecewiseLinear {
 public:
  struct Point {
    double x;
    double y;
  };

  /// Builds from breakpoints; x must be strictly increasing, size >= 2
  /// (or exactly 1 for a degenerate single-point domain).
  explicit PiecewiseLinear(std::vector<Point> points);

  /// The affine function y = intercept + slope * x on [lo, hi].
  static PiecewiseLinear affine(double intercept, double slope, double lo,
                                double hi);

  double domain_lo() const noexcept { return points_.front().x; }
  double domain_hi() const noexcept { return points_.back().x; }

  /// Evaluates at x (clamped into the domain).
  double operator()(double x) const;

  /// Pointwise minimum of two functions sharing a domain.
  static PiecewiseLinear min(const PiecewiseLinear& a,
                             const PiecewiseLinear& b);

  /// Returns g with g(x) = f(x) + intercept + slope * x.
  PiecewiseLinear plus_affine(double intercept, double slope) const;

  const std::vector<Point>& points() const noexcept { return points_; }

  /// Drops interior breakpoints that lie on the segment between their
  /// neighbours (within tol).
  void simplify(double tol = 1e-12);

 private:
  std::vector<Point> points_;
};

}  // namespace dls::dlt
