// Optimal divisible-load allocation on tree networks by recursive
// star reduction — the algorithm family of the authors' companion tree
// mechanism [9].
//
// Post-order pass: each subtree collapses into an equivalent processor.
// A node with children (already collapsed to equivalent unit times ρ_c)
// is exactly a computing-root star; its optimal per-unit completion time
// ρ_v is the star makespan, computed with children served fastest link
// first. Pre-order pass: the local star fractions unroll into global
// load shares. At the optimum every node of the tree finishes at the
// same instant — the tree generalisation of Theorem 2.1.
#pragma once

#include <vector>

#include "dlt/star.hpp"
#include "net/tree.hpp"

namespace dls::dlt {

struct TreeSolution {
  std::vector<double> alpha;        ///< global share per node (Σ = 1)
  std::vector<double> equivalent_w; ///< ρ_v: unit time of v's subtree
  std::vector<double> received;     ///< load arriving at node v
  /// Local star split at each node: fraction of the arriving load the
  /// node keeps for itself (the rest goes to its children).
  std::vector<double> local_keep;
  double makespan = 0.0;            ///< = ρ_root (unit load at the root)
};

/// Solves the tree. Children are served fastest-link-first at every node.
TreeSolution solve_tree(const net::TreeNetwork& network);

/// Finish times of the solution's schedule (one-port sequential sends per
/// node, front-end overlap, store-and-forward), computed by direct
/// recursive evaluation — used to validate the equal-finish property.
std::vector<double> tree_finish_times(const net::TreeNetwork& network,
                                      const TreeSolution& solution);

}  // namespace dls::dlt
