#include "dlt/baselines.hpp"

#include "common/error.hpp"
#include "dlt/linear.hpp"

namespace dls::dlt {

std::vector<double> baseline_equal(std::size_t processors) {
  DLS_REQUIRE(processors >= 1, "need at least one processor");
  return std::vector<double>(processors,
                             1.0 / static_cast<double>(processors));
}

std::vector<double> baseline_speed_proportional(
    const net::LinearNetwork& network) {
  std::vector<double> alpha(network.size());
  double total = 0.0;
  for (std::size_t i = 0; i < network.size(); ++i) {
    alpha[i] = 1.0 / network.w(i);
    total += alpha[i];
  }
  for (double& a : alpha) a /= total;
  return alpha;
}

std::vector<double> baseline_root_only(std::size_t processors) {
  DLS_REQUIRE(processors >= 1, "need at least one processor");
  std::vector<double> alpha(processors, 0.0);
  alpha[0] = 1.0;
  return alpha;
}

std::vector<double> baseline_prefix_optimal(const net::LinearNetwork& network,
                                            std::size_t k) {
  DLS_REQUIRE(k >= 1 && k <= network.size(), "prefix length out of range");
  std::vector<double> w(network.processing_times().begin(),
                        network.processing_times().begin() +
                            static_cast<std::ptrdiff_t>(k));
  std::vector<double> z(network.link_times().begin(),
                        network.link_times().begin() +
                            static_cast<std::ptrdiff_t>(k - 1));
  const net::LinearNetwork prefix(std::move(w), std::move(z));
  const LinearSolution sol = solve_linear_boundary(prefix);
  std::vector<double> alpha(network.size(), 0.0);
  for (std::size_t i = 0; i < k; ++i) alpha[i] = sol.alpha[i];
  return alpha;
}

}  // namespace dls::dlt
