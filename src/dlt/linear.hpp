// LINEAR BOUNDARY-LINEAR: optimal divisible-load allocation on a daisy
// chain with boundary load origination (Sect. 2, Algorithm 1).
//
// The solver implements the equivalent-processor reduction of eqs.
// (2.3)-(2.7): working inward from the far end of the chain, processors
// P_i and the already-reduced suffix are collapsed into one equivalent
// processor of unit time w̄_i = α̂_i w_i, where the local fraction α̂_i
// balances P_i's computation against shipping the remainder onward:
//     α̂_i w_i = (1 - α̂_i)(z_{i+1} + w̄_{i+1}).             (2.7)
// The optimal allocation makes every processor finish at the same instant
// (Theorem 2.1) and the chain's makespan equals w̄_0.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/networks.hpp"

namespace dls::dlt {

/// One step of the recursive reduction (Figure 3), exposed so tests and
/// the FIG3 bench can inspect the collapse sequence.
struct ReductionStep {
  std::size_t index;       ///< i: the processor absorbed in this step
  double alpha_hat;        ///< α̂_i
  double equivalent_w;     ///< w̄_i after collapsing P_i with its suffix
  double tail_w;           ///< w̄_{i+1} before the collapse
  double link_z;           ///< z_{i+1}
};

/// Full output of Algorithm 1.
struct LinearSolution {
  std::vector<double> alpha;         ///< α_i, global load fractions (Σ = 1)
  std::vector<double> alpha_hat;     ///< α̂_i, local fractions (α̂_m = 1)
  std::vector<double> equivalent_w;  ///< w̄_i of the suffix chain (P_i..P_m)
  std::vector<double> received;      ///< D_i, load arriving at P_i (D_0 = 1)
  std::vector<ReductionStep> steps;  ///< reduction trace, far end first
  double makespan = 0.0;             ///< T(α*) = w̄_0
};

/// Solves a boundary-origination chain. Throws InfeasibleError on
/// non-positive rates (via LinearNetwork's own validation).
LinearSolution solve_linear_boundary(const net::LinearNetwork& network);

/// Allocation-free core of Algorithm 1: writes into `out`, reusing its
/// buffers (no heap traffic once they have warmed to the chain size).
/// `want_steps` false skips building the reduction trace entirely —
/// Monte-Carlo loops never look at it.
void solve_linear_boundary_into(const net::LinearNetwork& network,
                                LinearSolution& out, bool want_steps = true);

/// Caller-owned reusable buffers for the solver hot path. Construct one
/// per thread (or per sweep), then every solve/finish-time call through
/// it is allocation-free after the first.
struct LinearSolverWorkspace {
  LinearSolution solution;     ///< reused by solve_linear_boundary
  std::vector<double> finish;  ///< reused by finish_times/makespan
};

/// Workspace flavour of Algorithm 1; returns ws.solution. Skips the
/// reduction trace by default — pass want_steps if you need it.
const LinearSolution& solve_linear_boundary(const net::LinearNetwork& network,
                                            LinearSolverWorkspace& ws,
                                            bool want_steps = false);

/// The pairwise collapse of eq. (2.7): local fraction for a processor of
/// unit time `w_front` feeding a tail of equivalent unit time `tail_w`
/// across a link of unit time `z`. Requires positive arguments.
double pair_alpha_hat(double w_front, double z, double tail_w);

/// Equivalent unit time of the collapsed pair (= α̂ · w_front at the
/// optimum, eq. 2.4).
double pair_equivalent_w(double w_front, double z, double tail_w);

/// Realised equivalent unit time of a front/tail pair by eq. (2.3) when
/// the *allocation* was fixed by bids (α̂ = alpha_hat) but the tail in
/// fact behaves as `tail_actual_w`:
///   max(α̂ · w_front, (1-α̂) · (z + tail_actual_w)).
/// This is the w̄_{j-1}(α(bids), actuals) appearing in the bonus (4.9).
double pair_realized_w(double alpha_hat, double w_front, double z,
                       double tail_actual_w);

/// Finish times by eqs. (2.1)-(2.2) for an arbitrary allocation `alpha`
/// (not necessarily optimal): T_0 = α_0 w_0 and
///   T_j = Σ_{k=1..j} D_k z_k + α_j w_j  (0 when α_j = 0),
/// where D_k = 1 - Σ_{l<k} α_l is the load transiting link l_k.
/// Requires alpha.size() == network.size(), all entries >= 0, Σ <= 1+eps.
std::vector<double> finish_times(const net::LinearNetwork& network,
                                 std::span<const double> alpha);

/// Allocation-free flavour: writes into `out` (resized to fit, reused
/// across calls).
void finish_times_into(const net::LinearNetwork& network,
                       std::span<const double> alpha,
                       std::vector<double>& out);

/// Workspace flavour; the returned span views ws.finish.
std::span<const double> finish_times(const net::LinearNetwork& network,
                                     std::span<const double> alpha,
                                     LinearSolverWorkspace& ws);

/// max over finish_times.
double makespan(const net::LinearNetwork& network,
                std::span<const double> alpha);

/// Allocation-free max over finish_times via the workspace.
double makespan(const net::LinearNetwork& network,
                std::span<const double> alpha, LinearSolverWorkspace& ws);

/// Largest pairwise relative gap between finish times of *participating*
/// processors — 0 at the optimum by Theorem 2.1.
double finish_time_spread(const net::LinearNetwork& network,
                          std::span<const double> alpha);

}  // namespace dls::dlt
