#include "exec/thread_pool.hpp"

#include <algorithm>

#include "common/discipline.hpp"
#include "common/error.hpp"
#include "obs/obs.hpp"

namespace dls::exec {

namespace {

/// Set while a thread is executing chunks of some job; nested
/// parallel_for calls from such a thread run inline instead of blocking
/// on the pool (the outer dispatch may hold every worker).
thread_local bool t_inside_pool_body = false;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 1 ? static_cast<std::size_t>(hw - 1) : 0;
  }
  workers_.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(pool_mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              ForOptions options) {
  DLS_REQUIRE(static_cast<bool>(body), "parallel_for requires a body");
  const std::function<void(std::size_t, std::size_t)> chunk_body =
      [&body](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) body(i);
      };
  parallel_for_chunks(count, chunk_body, options);
}

void ThreadPool::parallel_for_chunks(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body,
    ForOptions options) {
  DLS_REQUIRE(static_cast<bool>(body), "parallel_for requires a body");
  if (count == 0) return;

  std::size_t parallelism = worker_count();
  if (options.max_workers != 0) {
    parallelism = std::min(parallelism, options.max_workers);
  }
  parallelism = std::min(parallelism, count);

  // Serial fast paths: explicit single-worker requests, a pool with no
  // workers, and nested submissions from inside a pool body.
  if (parallelism <= 1 || workers_.empty() || t_inside_pool_body) {
    body(0, count);
    return;
  }

  std::size_t grain = options.grain;
  if (grain == 0) grain = std::max<std::size_t>(1, count / (parallelism * 4));
  const std::size_t chunk_count = (count + grain - 1) / grain;

  DLS_SPAN_ARGS("exec.dispatch",
                "{\"count\":" + std::to_string(count) +
                    ",\"chunks\":" + std::to_string(chunk_count) + "}");
  DLS_COUNT("exec.dispatches");
  DLS_COUNT("exec.chunks", chunk_count);
  DLS_OBSERVE("exec.queue_depth", static_cast<double>(chunk_count),
              {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0});

  const std::scoped_lock submit(submit_mutex_);
  auto job = std::make_shared<Job>();
  job->body = &body;
  job->deques.resize(workers_.size() + 1);
  job->deque_mutexes.reserve(workers_.size() + 1);
  for (std::size_t i = 0; i <= workers_.size(); ++i) {
    job->deque_mutexes.push_back(std::make_unique<std::mutex>());
  }
  job->chunks_remaining = chunk_count;
  job->slots = parallelism - 1;  // pool workers; the caller always joins

  // Deal chunks round-robin across the participating deques so every
  // worker starts with a contiguous, cache-friendly share.
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t begin = c * grain;
    const std::size_t end = std::min(count, begin + grain);
    job->deques[c % parallelism].push_back(Chunk{begin, end});
  }

  {
    const std::scoped_lock lock(pool_mutex_);
    current_job_ = job;
    ++epoch_;
  }
  wake_cv_.notify_all();

  run_chunks(*job, 0);

  {
    std::unique_lock lock(job->state_mutex);
    job->done_cv.wait(lock, [&] { return job->chunks_remaining == 0; });
  }
  {
    const std::scoped_lock lock(pool_mutex_);
    if (current_job_ == job) current_job_.reset();
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  std::unique_lock lock(pool_mutex_);
  for (;;) {
    wake_cv_.wait(lock, [&] {
      return stopping_ || (current_job_ && epoch_ != seen_epoch);
    });
    if (stopping_) return;
    seen_epoch = epoch_;
    const std::shared_ptr<Job> job = current_job_;
    lock.unlock();

    bool participate = false;
    {
      const std::scoped_lock state(job->state_mutex);
      if (job->slots > 0 && job->chunks_remaining > 0) {
        --job->slots;
        participate = true;
      }
    }
    if (participate) run_chunks(*job, worker_index + 1);

    lock.lock();
  }
}

void ThreadPool::run_chunks(Job& job, std::size_t self) {
  t_inside_pool_body = true;
  Chunk chunk;
  while (pop_or_steal(job, self, chunk)) {
    bool run = true;
    {
      const std::scoped_lock state(job.state_mutex);
      run = !job.cancelled;
    }
    if (run) {
      // Scoped so the event is recorded before the chunks_remaining
      // decrement below — the caller's post-join drain then observes it
      // via the same state_mutex release.
      DLS_SPAN_DETAIL("exec.chunk");
      try {
        (*job.body)(chunk.begin, chunk.end);
      } catch (...) {
        const std::scoped_lock state(job.state_mutex);
        job.cancelled = true;
        if (!job.error || chunk.begin < job.error_begin) {
          job.error = std::current_exception();
          job.error_begin = chunk.begin;
        }
      }
    }
    {
      const std::scoped_lock state(job.state_mutex);
      if (--job.chunks_remaining == 0) job.done_cv.notify_all();
    }
  }
  t_inside_pool_body = false;
}

DLS_HOT_NOALLOC
bool ThreadPool::pop_or_steal(Job& job, std::size_t self, Chunk& out) {
  {  // Own deque, LIFO: the most recently dealt range is cache-warmest.
    const std::scoped_lock lock(*job.deque_mutexes[self]);
    if (!job.deques[self].empty()) {
      out = job.deques[self].back();
      job.deques[self].pop_back();
      return true;
    }
  }
  // Steal FIFO from the first victim with work, scanning from the next
  // deque over so thieves spread instead of mobbing deque 0.
  const std::size_t n = job.deques.size();
  for (std::size_t k = 1; k < n; ++k) {
    const std::size_t victim = (self + k) % n;
    const std::scoped_lock lock(*job.deque_mutexes[victim]);
    if (!job.deques[victim].empty()) {
      out = job.deques[victim].front();
      job.deques[victim].pop_front();
      DLS_COUNT("exec.steals");
      return true;
    }
  }
  return false;
}

}  // namespace dls::exec
