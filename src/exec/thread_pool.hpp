// Persistent work-stealing execution engine for the sweep harness.
//
// The certification sweeps (THM5.1/5.3 grids, fault sweeps, Monte-Carlo
// baselines) are embarrassingly parallel but latency-sensitive: the old
// analysis-layer sweep driver spawned and joined fresh std::threads on
// every call, so a bench that issues thousands of small sweeps paid thread
// creation each time. This pool spawns its workers once, parks them on a
// condition variable, and dispatches chunked index ranges through
// per-worker deques with work stealing:
//   * each job is split into chunks of `grain` indices (auto-sized to a
//     few chunks per worker when 0) that are dealt round-robin onto the
//     deques;
//   * a worker pops its own deque LIFO (cache-warm) and steals FIFO from
//     victims when empty, so load imbalance self-corrects;
//   * the submitting thread participates as worker 0, so a dispatch
//     never blocks on a sleeping pool;
//   * results must be index-owned (body(i) writes only slot i), which
//     makes every sweep bit-identical at any worker count;
//   * the first exception (lowest chunk start among those that threw)
//     cancels the remaining chunks and is rethrown on the caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dls::exec {

/// Tuning knobs for ThreadPool::parallel_for.
struct ForOptions {
  /// Indices per chunk; 0 picks ~4 chunks per participating worker.
  std::size_t grain = 0;
  /// Cap on participating workers including the caller (0 = all; 1 runs
  /// the body inline on the caller). Results are identical either way.
  std::size_t max_workers = 0;
};

class ThreadPool {
 public:
  /// `threads` pool workers in addition to the submitting thread
  /// (0 = hardware_concurrency - 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Maximum parallelism of a dispatch: pool workers + the caller.
  std::size_t worker_count() const noexcept { return workers_.size() + 1; }

  /// Invokes body(i) for every i in [0, count). Blocks until every index
  /// ran (or the job was cancelled by an exception, which is rethrown).
  /// Bodies must only touch index-owned state. Nested calls from inside
  /// a pool body run inline (serially) to keep the pool deadlock-free.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body,
                    ForOptions options = {});

  /// Chunked flavour: body(begin, end) on half-open index ranges. This
  /// is the primitive parallel_for wraps; prefer it in hot sweeps so the
  /// per-index std::function indirection is paid once per chunk.
  void parallel_for_chunks(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& body,
      ForOptions options = {});

  /// The process-wide pool used by the sweep drivers and the analysis
  /// grids. Created on first use, joined at exit.
  static ThreadPool& global();

 private:
  struct Chunk {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// One in-flight parallel_for_chunks call. Heap-held via shared_ptr so
  /// a worker that wakes late can still inspect it safely after the
  /// caller returned.
  struct Job {
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    /// deques[0] belongs to the caller; deques[k] to pool worker k-1.
    std::vector<std::deque<Chunk>> deques;
    std::vector<std::unique_ptr<std::mutex>> deque_mutexes;
    std::mutex state_mutex;
    std::condition_variable done_cv;
    std::size_t chunks_remaining = 0;
    /// Pool-worker participation slots (the caller is always in).
    std::size_t slots = 0;
    bool cancelled = false;
    /// Lowest chunk begin among recorded exceptions, for deterministic
    /// rethrow when several bodies throw.
    std::size_t error_begin = 0;
    std::exception_ptr error;
  };

  void worker_loop(std::size_t worker_index);
  /// Drains the job's deques from `self` (own deque first, then steals);
  /// returns when no chunk is left anywhere.
  static void run_chunks(Job& job, std::size_t self);
  static bool pop_or_steal(Job& job, std::size_t self, Chunk& out);

  std::vector<std::thread> workers_;

  std::mutex pool_mutex_;
  std::condition_variable wake_cv_;
  std::shared_ptr<Job> current_job_;
  std::uint64_t epoch_ = 0;
  bool stopping_ = false;

  /// Serialises concurrent submissions from distinct caller threads.
  std::mutex submit_mutex_;
};

}  // namespace dls::exec
