#include "protocol/tokens.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dls::protocol {

TokenBatch TokenBatch::take_front(std::size_t count) {
  DLS_REQUIRE(count <= ids.size(), "cannot take more blocks than present");
  TokenBatch front;
  front.ids.assign(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(count));
  ids.erase(ids.begin(), ids.begin() + static_cast<std::ptrdiff_t>(count));
  return front;
}

TokenAuthority::TokenAuthority(std::size_t blocks_per_unit, common::Rng& rng)
    : blocks_per_unit_(blocks_per_unit), rng_(&rng) {
  DLS_REQUIRE(blocks_per_unit_ >= 1, "need at least one block per unit");
}

TokenBatch TokenAuthority::issue_unit_load() {
  TokenBatch batch;
  batch.ids.reserve(blocks_per_unit_);
  for (std::size_t i = 0; i < blocks_per_unit_; ++i) {
    std::uint64_t id;
    do {
      id = rng_->bits();
    } while (!issued_.insert(id).second);
    batch.ids.push_back(id);
  }
  return batch;
}

double TokenAuthority::to_load(std::size_t blocks) const noexcept {
  return static_cast<double>(blocks) / static_cast<double>(blocks_per_unit_);
}

std::size_t TokenAuthority::to_blocks(double load) const noexcept {
  const double blocks = load * static_cast<double>(blocks_per_unit_);
  return static_cast<std::size_t>(std::llround(blocks));
}

bool TokenAuthority::validate(const TokenBatch& batch) const {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(batch.ids.size());
  for (const std::uint64_t id : batch.ids) {
    if (!issued_.contains(id)) return false;
    if (!seen.insert(id).second) return false;  // duplicated block
  }
  return true;
}

TokenBatch TokenAuthority::forge(std::size_t count, common::Rng& rng) const {
  TokenBatch batch;
  batch.ids.reserve(count);
  while (batch.ids.size() < count) {
    const std::uint64_t id = rng.bits();
    if (!issued_.contains(id)) batch.ids.push_back(id);
  }
  return batch;
}

}  // namespace dls::protocol
