// Fault-tolerant execution of the DLS-LBL round: crash detection by
// heartbeat/probe timeouts, survivor re-solve, and E_j settlement.
#pragma once
//
// The paper polices *strategic* deviation; this layer extends the same
// machinery to *fail-stop* faults. The key observation is that a crash
// looks like load shedding from the accounting's point of view
// (α̃_j < α_j), so the dumped-load recompense E_j (eq. 4.8) and the
// incident pipeline generalise cleanly:
//
//   crash-vs-shedding disambiguation rule
//   -------------------------------------
//   An under-computing processor is judged a SHEDDER (fined, Thm 5.1)
//   when it is still answering probes AND its successor holds Λ tokens
//   in excess of the published D — the signed evidence that load was
//   dumped downstream. It is judged CRASHED (no fine; E_j-style
//   recompense for verifiably completed work) when its heartbeats
//   stopped, probe retries exhausted the budget, and no successor holds
//   excess tokens. A node that both dumped load and then died is a
//   shedder — the token evidence outlives the crash.
//
// Detection: every worker streams heartbeats (period H) which double as
// signed progress claims; the root arms a deadline timer per worker and,
// on a miss, probes with bounded exponential backoff until either a
// reply arrives (timer re-armed, a lossy link caused a false miss) or
// the retry budget is exhausted (crash confirmed). Detection latency is
// the confirmed time minus the true crash instant.
//
// Recovery: the root re-runs Algorithm 1 (the equivalent-processor
// reduction) over the longest still-reachable prefix of the chain and
// redistributes the residual load — everything nobody verifiably
// computed — across it, starting at the confirmation instant. Survivors
// that absorb extra load end the round with α̃_j > α_j and are paid the
// recompense E_j = (α̃_j − α_j)·w̃_j through the ordinary Phase IV
// arithmetic; the crashed node is paid its verified partial work at its
// metered rate and nothing else.

#include <cstdint>
#include <optional>
#include <vector>

#include "agents/agent.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"
#include "sim/faults.hpp"

namespace dls::protocol {

/// Shared backoff core: min(base * factor^attempt, cap), computed by
/// repeated multiplication so every retry loop in the codebase (the
/// probe monitor here, the serve layer's RetryPolicy) produces
/// bit-identical waits for the same knobs.
double exponential_backoff(double base, double factor, std::size_t attempt,
                           double cap) noexcept;

/// Heartbeat / probe timing knobs (all in simulation time units).
struct HeartbeatConfig {
  double period = 0.05;        ///< worker heartbeat interval
  double timeout = 0.05;       ///< slack past the period before suspicion
  std::size_t retry_budget = 3;  ///< probes before a crash is confirmed
  double backoff_factor = 2.0;   ///< exponential probe backoff
  double max_backoff = 0.5;      ///< cap on the inter-probe wait
};

/// What the root concluded about one worker's liveness.
struct DetectionReport {
  bool confirmed_dead = false;  ///< retry budget exhausted
  bool false_alarm = false;     ///< declared dead but actually alive
  sim::Time crash_time = 0.0;   ///< ground truth (0 when alive)
  sim::Time confirmed_at = 0.0; ///< when the budget ran out
  std::size_t probes_sent = 0;
  std::size_t timeouts = 0;     ///< deadline expiries (incl. false misses)
  double latency() const noexcept { return confirmed_at - crash_time; }
};

/// Deterministically simulates the heartbeat/probe exchange with one
/// worker. `crash_time` is the ground-truth death instant (nullopt =
/// alive); `loss_probability` applies independently to every beat,
/// probe, and reply; monitoring stops at `horizon` for live workers.
DetectionReport monitor_processor(const HeartbeatConfig& config,
                                  std::optional<sim::Time> crash_time,
                                  double loss_probability, sim::Time horizon,
                                  common::Rng rng);

/// The disambiguation verdict for an under-computing processor.
enum class UnderComputeVerdict : std::uint8_t {
  kCompliant,  ///< not under-computing (or merely slow — metered, not fined)
  kCrash,      ///< fail-stop: recompense for verified work, no fine
  kShedding,   ///< strategic: fined per Thm 5.1
};

std::string to_string(UnderComputeVerdict verdict);

/// Applies the crash-vs-shedding rule documented above.
UnderComputeVerdict classify_under_computation(double assigned,
                                               double computed,
                                               bool heartbeats_stopped,
                                               bool successor_excess_tokens,
                                               double tolerance);

struct FaultToleranceOptions {
  sim::FaultPlan faults;       ///< the chaos script for Phase III
  HeartbeatConfig heartbeat;
};

/// Final settlement for one crashed processor.
struct CrashSettlement {
  std::size_t processor = 0;
  double assigned = 0.0;           ///< α_k from the bid solution
  double verified_computed = 0.0;  ///< partial work backed by signed claims
  double settlement_paid = 0.0;    ///< E_k-style payout (verified · w̃_k)
  double fine = 0.0;               ///< stays 0 for a genuine crash
  DetectionReport detection;
};

struct FtRunReport {
  RunReport round;  ///< the usual forensic report (ledger, incidents, ...)

  bool any_crash = false;
  bool recovered = false;  ///< survivors absorbed the full residual
  std::vector<CrashSettlement> crashes;
  std::vector<DetectionReport> detection;     ///< per processor (index 0 unused)
  std::vector<UnderComputeVerdict> verdicts;  ///< per processor

  std::vector<std::size_t> survivors;   ///< indices that stayed alive
  double residual_load = 0.0;           ///< redistributed in the recovery pass
  dlt::LinearSolution recovery_solution;  ///< Algorithm 1 on the prefix
  std::optional<sim::ExecutionResult> recovery_execution;  ///< unit-load run
  sim::Time recovery_start = 0.0;       ///< max confirmation instant
  double degraded_makespan = 0.0;       ///< incl. detection + recovery pass
  double detection_latency = 0.0;       ///< max over confirmed crashes
  std::vector<sim::FaultEvent> fault_events;
};

/// Runs one fault-tolerant round. With an empty fault plan this is
/// exactly run_protocol. Crash specs on processor 0 are rejected — the
/// root is the trusted dispatcher, as in the paper.
FtRunReport run_protocol_ft(const net::LinearNetwork& true_network,
                            const agents::Population& population,
                            const ProtocolOptions& options,
                            const FaultToleranceOptions& ft);

}  // namespace dls::protocol
