// Wire format for the protocol messages: canonical byte encodings for
// signed claims and the Phase I/II messages, so a deployment can ship
// them over a real transport. Decoding is strict — unknown magic,
// truncation or trailing bytes are rejected — and round-trips preserve
// signatures bit-for-bit (the signature covers the claim's canonical
// encoding, which is embedded verbatim).
#pragma once

#include "codec/bytes.hpp"
#include "crypto/signed_claim.hpp"
#include "protocol/messages.hpp"

namespace dls::protocol {

/// SignedClaim <-> bytes.
codec::Bytes encode_signed_claim(const crypto::SignedClaim& sc);
crypto::SignedClaim decode_signed_claim(std::span<const std::uint8_t> data);

/// Phase I bid message <-> bytes.
codec::Bytes encode_bid_message(const BidMessage& message);
BidMessage decode_bid_message(std::span<const std::uint8_t> data);

/// Phase II allocation message G_i <-> bytes.
codec::Bytes encode_allocation_message(const AllocationMessage& message);
AllocationMessage decode_allocation_message(
    std::span<const std::uint8_t> data);

/// Phase III report message <-> bytes.
codec::Bytes encode_report_message(const ReportMessage& message);
ReportMessage decode_report_message(std::span<const std::uint8_t> data);

/// Phase IV payment message <-> bytes.
codec::Bytes encode_payment_message(const PaymentMessage& message);
PaymentMessage decode_payment_message(std::span<const std::uint8_t> data);

}  // namespace dls::protocol
