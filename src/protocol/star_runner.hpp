// The distributed mechanism for star networks — the protocol-level
// realisation of the DLS-star analogue (core/dls_star.hpp), mirroring
// the companion bus/tree mechanisms [9, 14].
//
// The star topology simplifies the chain protocol considerably:
//  * Phase I: every worker signs its rate bid and sends it straight to
//    the root — no relaying, so the only message deviation left is
//    sending the root two contradictory signed bids;
//  * Phase II: the (obedient) root computes the allocation and echoes
//    each worker's signed bid back with its share — workers verify the
//    echo; there is no miscomputation case because only the root
//    computes allocations;
//  * Phase III: execution through the event-driven star executor; load
//    shedding is impossible (nobody forwards), leaving slow execution
//    (metered) and data corruption (solution bonus) as the execution
//    deviations;
//  * Phase IV: billing with probabilistic audits, exactly as in the
//    chain protocol.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agents/agent.hpp"
#include "core/dls_star.hpp"
#include "net/networks.hpp"
#include "payment/ledger.hpp"
#include "protocol/runner.hpp"
#include "sim/star_execution.hpp"

namespace dls::protocol {

struct StarRunReport {
  bool aborted = false;
  std::string abort_reason;

  std::vector<double> bids;  ///< w_1..w_m as submitted
  core::DlsStarResult assessment;
  std::optional<sim::StarExecutionResult> execution;
  std::vector<ProcessorReport> workers;  ///< index 0 = root (utility 0)
  std::vector<Incident> incidents;
  payment::Ledger ledger;
  bool solution_found = true;
  double makespan = 0.0;
};

/// Runs one round on the star. `true_network` carries the true rates;
/// `population` has one strategic agent per worker (indices 1..m map to
/// workers 0..m-1). Chain-only behaviours (load shedding, miscomputed
/// allocations, grievance suppression) are rejected.
StarRunReport run_star_protocol(const net::StarNetwork& true_network,
                                const agents::Population& population,
                                const ProtocolOptions& options);

/// Bus convenience: the shared channel is a star with equal link times.
StarRunReport run_bus_protocol(const net::BusNetwork& true_network,
                               const agents::Population& population,
                               const ProtocolOptions& options);

}  // namespace dls::protocol
