// The tamper-proof meter of Sect. 4: each processor is fitted with a
// meter that observes the actual per-unit processing time w̃_i and
// reports it as dsm_0(w̃_i) — a claim signed under the *root's* key, so
// the metered value is ground truth the processor cannot alter.
//
// In the simulation the meter reads the execution trace (computed load
// and compute-interval length) rather than trusting the agent.
#pragma once

#include <vector>

#include "crypto/signed_claim.hpp"
#include "sim/linear_execution.hpp"

namespace dls::protocol {

class TamperProofMeter {
 public:
  /// `root_signer` must hold the root's (P_0's) key.
  TamperProofMeter(const crypto::Signer& root_signer, std::uint64_t round)
      : signer_(root_signer), round_(round) {}

  /// Reads processor `i`'s actual rate from the execution result:
  /// compute-time / computed-load. Falls back to `declared_rate` when the
  /// processor computed nothing (an idle machine's speed is unobservable).
  crypto::SignedClaim read(const sim::ExecutionResult& execution,
                           std::size_t i, double declared_rate) const;

  /// Meters every processor of the run.
  std::vector<crypto::SignedClaim> read_all(
      const sim::ExecutionResult& execution,
      std::span<const double> declared_rates) const;

 private:
  crypto::Signer signer_;
  std::uint64_t round_;
};

}  // namespace dls::protocol
