#include "protocol/meter.hpp"

#include "common/error.hpp"

namespace dls::protocol {

crypto::SignedClaim TamperProofMeter::read(
    const sim::ExecutionResult& execution, std::size_t i,
    double declared_rate) const {
  DLS_REQUIRE(i < execution.computed.size(), "processor index out of range");
  double rate = declared_rate;
  const double computed = execution.computed[i];
  if (computed > 0.0) {
    // Total compute time divided by load: the observed unit time.
    double compute_time = 0.0;
    for (const auto& iv : execution.trace.intervals()) {
      if (iv.processor == i && iv.activity == sim::Activity::kCompute) {
        compute_time += iv.end - iv.start;
      }
    }
    rate = compute_time / computed;
  }
  crypto::Claim claim;
  claim.kind = crypto::ClaimKind::kMeteredRate;
  claim.subject = static_cast<crypto::AgentId>(i);
  claim.round = round_;
  claim.value = rate;
  return crypto::make_signed(signer_, claim);
}

std::vector<crypto::SignedClaim> TamperProofMeter::read_all(
    const sim::ExecutionResult& execution,
    std::span<const double> declared_rates) const {
  DLS_REQUIRE(declared_rates.size() == execution.computed.size(),
              "declared rates size mismatch");
  std::vector<crypto::SignedClaim> out;
  out.reserve(declared_rates.size());
  for (std::size_t i = 0; i < declared_rates.size(); ++i) {
    out.push_back(read(execution, i, declared_rates[i]));
  }
  return out;
}

}  // namespace dls::protocol
