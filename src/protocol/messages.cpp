#include "protocol/messages.hpp"

#include <sstream>

#include "common/tolerance.hpp"

namespace dls::protocol {

namespace {

using crypto::Claim;
using crypto::ClaimKind;
using crypto::SignedClaim;

VerificationResult check_claim(const crypto::KeyRegistry& registry,
                               const SignedClaim& sc, ClaimKind kind,
                               crypto::AgentId signer,
                               crypto::AgentId subject, std::uint64_t round,
                               const char* label) {
  std::ostringstream os;
  if (sc.claim.kind != kind) {
    os << label << ": wrong claim kind " << crypto::to_string(sc.claim.kind);
    return VerificationResult::fail(os.str());
  }
  if (sc.signer != signer) {
    os << label << ": expected signer P" << signer << ", got P" << sc.signer;
    return VerificationResult::fail(os.str());
  }
  if (sc.claim.subject != subject) {
    os << label << ": expected subject P" << subject << ", got P"
       << sc.claim.subject;
    return VerificationResult::fail(os.str());
  }
  if (sc.claim.round != round) {
    os << label << ": stale round " << sc.claim.round;
    return VerificationResult::fail(os.str());
  }
  if (!crypto::verify(registry, sc)) {
    os << label << ": signature verification failed";
    return VerificationResult::fail(os.str());
  }
  return VerificationResult::pass();
}

}  // namespace

VerificationResult verify_bid_message(const crypto::KeyRegistry& registry,
                                      const BidMessage& message,
                                      crypto::AgentId expected_signer,
                                      std::uint64_t round) {
  auto result =
      check_claim(registry, message.equivalent_bid, ClaimKind::kEquivalentBid,
                  expected_signer, expected_signer, round, "phase-I bid");
  if (!result.ok) return result;
  if (!(message.equivalent_bid.claim.value > 0.0)) {
    return VerificationResult::fail("phase-I bid: non-positive w̄");
  }
  return VerificationResult::pass();
}

VerificationResult verify_allocation_message(
    const crypto::KeyRegistry& registry, const AllocationMessage& message,
    std::size_t i, double z_i, const crypto::SignedClaim& own_bid,
    std::uint64_t round, double rel_tol) {
  const auto self = static_cast<crypto::AgentId>(i);
  const auto pred = static_cast<crypto::AgentId>(i - 1);
  // For i = 1 the "predecessor's predecessor" is the root itself.
  const auto pred2 = i >= 2 ? static_cast<crypto::AgentId>(i - 2)
                            : crypto::AgentId{0};

  // (a) Authenticity and integrity of all five claims.
  if (auto r = check_claim(registry, message.received_pred,
                           ClaimKind::kReceivedLoad, pred2, pred, round,
                           "D_{i-1}");
      !r.ok) {
    return r;
  }
  if (auto r = check_claim(registry, message.received_self,
                           ClaimKind::kReceivedLoad, pred, self, round,
                           "D_i");
      !r.ok) {
    return r;
  }
  // The paper writes dsm_{i-2}(w̄_{i-1}) for this slot; we forward the
  // predecessor's *original* Phase I claim instead (its own signature
  // intact), which is at least as strong: nobody can alter the bid in
  // transit without breaking the signature.
  if (auto r = check_claim(registry, message.equiv_bid_pred,
                           ClaimKind::kEquivalentBid, pred, pred, round,
                           "w̄_{i-1}");
      !r.ok) {
    return r;
  }
  if (auto r = check_claim(registry, message.rate_bid_pred,
                           ClaimKind::kBidRate, pred, pred, round,
                           "w_{i-1}");
      !r.ok) {
    return r;
  }
  if (auto r = check_claim(registry, message.equiv_bid_self,
                           ClaimKind::kEquivalentBid, self, self, round,
                           "w̄_i echo");
      !r.ok) {
    return r;
  }

  // (b) The echo must match the Phase I bid P_i actually sent — a
  // mismatch means somebody substituted the bid en route (the
  // "contradictory messages" case).
  if (message.equiv_bid_self != own_bid) {
    return VerificationResult::fail(
        "w̄_i echo differs from the bid sent in Phase I");
  }

  // (c) Numeric consistency (the recipient's own arithmetic checks).
  const double d_pred = message.received_pred.claim.value;
  const double d_self = message.received_self.claim.value;
  if (!(d_pred > 0.0) || d_self < 0.0 || d_self > d_pred) {
    return VerificationResult::fail(
        "received-load fractions are not a valid split");
  }
  const double alpha_hat_pred = (d_pred - d_self) / d_pred;
  const double w_pred = message.rate_bid_pred.claim.value;
  const double wbar_pred = message.equiv_bid_pred.claim.value;
  const double wbar_self = message.equiv_bid_self.claim.value;
  if (!common::approx_equal(wbar_pred, alpha_hat_pred * w_pred, rel_tol)) {
    std::ostringstream os;
    os << "w̄_{i-1} != α̂_{i-1} w_{i-1}: " << wbar_pred << " vs "
       << alpha_hat_pred * w_pred;
    return VerificationResult::fail(os.str());
  }
  const double lhs = alpha_hat_pred * w_pred;
  const double rhs = (1.0 - alpha_hat_pred) * (wbar_self + z_i);
  if (!common::approx_equal(lhs, rhs, rel_tol)) {
    std::ostringstream os;
    os << "balance condition (2.7) violated: " << lhs << " vs " << rhs;
    return VerificationResult::fail(os.str());
  }
  return VerificationResult::pass();
}

}  // namespace dls::protocol
