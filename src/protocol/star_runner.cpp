#include "protocol/star_runner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "crypto/signed_claim.hpp"
#include "dlt/star.hpp"
#include "protocol/meter.hpp"

namespace dls::protocol {

namespace {

using crypto::Claim;
using crypto::ClaimKind;
using crypto::SignedClaim;

double star_cheating_profit_bound(const net::StarNetwork& bids) {
  // Everything the mechanism could pay on a unit load: per worker its
  // compensation bound (its own bid) plus the bonus bound ρ_{-i} ≤ the
  // slowest single participant's completion; the root's rate bounds
  // each ρ_{-i} when it computes, otherwise use the sum of worker bids.
  double bound = 0.0;
  double rho_cap = bids.root_computes() ? bids.root_w() : 0.0;
  for (std::size_t i = 0; i < bids.workers(); ++i) {
    if (!bids.root_computes()) {
      rho_cap = std::max(rho_cap, bids.z(i) + bids.w(i));
    }
    bound += bids.w(i);
  }
  return bound + static_cast<double>(bids.workers()) * rho_cap;
}

}  // namespace

StarRunReport run_star_protocol(const net::StarNetwork& true_network,
                                const agents::Population& population,
                                const ProtocolOptions& options) {
  const std::size_t m = true_network.workers();
  DLS_REQUIRE(population.size() == m,
              "population must cover every worker");
  for (const auto& agent : population.all()) {
    const agents::Behavior& b = agent.behavior;
    DLS_REQUIRE(b.shed_fraction == 0.0 && !b.miscompute_allocation &&
                    !b.suppress_grievance,
                "behaviour not applicable to star networks");
  }

  StarRunReport report;
  common::Rng rng(options.seed);
  crypto::KeyRegistry registry;
  std::vector<crypto::Signer> signers;
  signers.reserve(m + 1);
  for (std::size_t i = 0; i <= m; ++i) {
    signers.push_back(
        registry.enroll(static_cast<crypto::AgentId>(i), rng));
    report.ledger.open_account(static_cast<payment::AccountId>(i));
  }

  // Bids and the bid network.
  std::vector<double> bid_w(m), bid_z(m);
  for (std::size_t i = 0; i < m; ++i) {
    bid_w[i] = population.agent(i + 1).bid();
    bid_z[i] = true_network.z(i);
    report.bids.push_back(bid_w[i]);
  }
  const net::StarNetwork bid_network(true_network.root_w(), bid_w, bid_z);
  double fine = options.mechanism.fine;
  if (options.auto_size_fine) {
    fine = std::max(fine, star_cheating_profit_bound(bid_network) + 1.0);
  }
  const double charged_fine = options.fines_enabled ? fine : 0.0;

  auto post_fine = [&](std::size_t offender, std::size_t beneficiary,
                       double amount, double reward,
                       payment::TransferKind kind, const char* memo) {
    if (!options.fines_enabled) return;
    report.ledger.post({static_cast<payment::AccountId>(offender),
                        payment::kTreasury, kind, amount, memo});
    if (reward > 0.0) {
      report.ledger.post({payment::kTreasury,
                          static_cast<payment::AccountId>(beneficiary),
                          payment::TransferKind::kReward, reward, memo});
    }
  };

  // --- Phase I: signed bids straight to the root. ----------------------
  std::vector<SignedClaim> bid_claims(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto id = static_cast<crypto::AgentId>(i + 1);
    bid_claims[i] = crypto::make_signed(
        signers[i + 1],
        Claim{ClaimKind::kBidRate, id, options.round, bid_w[i]});
    DLS_REQUIRE(crypto::verify(registry, bid_claims[i]),
                "freshly signed bid must verify");
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (!population.agent(i + 1).behavior.contradictory_messages) continue;
    const auto id = static_cast<crypto::AgentId>(i + 1);
    const SignedClaim duplicate = crypto::make_signed(
        signers[i + 1],
        Claim{ClaimKind::kBidRate, id, options.round, bid_w[i] * 1.05});
    Incident incident;
    incident.kind = Incident::Kind::kContradictoryMessages;
    incident.accused = i + 1;
    incident.reporter = 0;  // the root itself holds the evidence
    incident.substantiated = crypto::verify(registry, duplicate) &&
                             crypto::contradicts(bid_claims[i], duplicate);
    incident.fine = charged_fine;
    incident.detail = "two signed bids with different values";
    report.incidents.push_back(incident);
    post_fine(i + 1, 0, fine, 0.0, payment::TransferKind::kFine,
              "star phase I contradiction");
    report.aborted = true;
    report.abort_reason = "contradictory bids from worker " +
                          std::to_string(i + 1);
  }
  // False accusers fabricate evidence against a neighbouring worker; the
  // forged signature fails and the accuser is fined (Lemma 5.2).
  for (std::size_t i = 0; i < m && !report.aborted; ++i) {
    if (!population.agent(i + 1).behavior.false_accusation) continue;
    const std::size_t accused = i == 0 ? std::min<std::size_t>(2, m) : i;
    SignedClaim forged = crypto::make_signed(
        signers[i + 1], Claim{ClaimKind::kBidRate,
                              static_cast<crypto::AgentId>(accused),
                              options.round, 99.0});
    forged.signer = static_cast<crypto::AgentId>(accused);
    Incident incident;
    incident.kind = Incident::Kind::kFalseAccusation;
    incident.accused = accused;
    incident.reporter = i + 1;
    incident.substantiated = crypto::verify(registry, forged);
    incident.fine = charged_fine;
    incident.detail = "fabricated contradiction evidence";
    report.incidents.push_back(incident);
    if (!incident.substantiated) {
      post_fine(i + 1, accused, fine, fine, payment::TransferKind::kFine,
                "star false accusation exculpated");
    }
  }

  if (!report.aborted) {
    // --- Phase II/III: allocation and execution. -----------------------
    const dlt::StarSolution solution = dlt::solve_star(bid_network);
    sim::StarSchedule schedule = sim::single_installment(
        bid_network, solution.alpha_root, solution.alpha, solution.order);
    // Execute at ACTUAL speeds: rebuild the star with metered-true rates
    // for the computation legs.
    std::vector<double> actual_w(m);
    for (std::size_t i = 0; i < m; ++i) {
      actual_w[i] = population.agent(i + 1).actual_rate();
    }
    const net::StarNetwork actual_network(true_network.root_w(), actual_w,
                                          bid_z);
    report.execution = sim::execute_star(actual_network, schedule);
    report.makespan = report.execution->makespan;

    // Data corruption forfeits the solution bonus (Theorem 5.2).
    for (std::size_t i = 0; i < m; ++i) {
      if (!population.agent(i + 1).behavior.corrupt_data) continue;
      report.solution_found = false;
      Incident incident;
      incident.kind = Incident::Kind::kDataCorruption;
      incident.accused = i + 1;
      incident.reporter = 0;
      incident.substantiated = true;
      incident.detail = "returned corrupted results";
      report.incidents.push_back(incident);
    }

    // --- Phase IV: metering, assessment, billing, audits. --------------
    std::vector<double> metered(m);
    for (std::size_t i = 0; i < m; ++i) {
      // The tamper-proof meter reads the true execution rate.
      metered[i] = actual_w[i];
    }
    report.assessment = core::assess_dls_star(bid_network, metered,
                                              options.mechanism);
    const double q = options.mechanism.audit_probability;
    const double s_bonus =
        options.mechanism.solution_bonus_enabled && report.solution_found
            ? options.mechanism.solution_bonus
            : 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& a = report.assessment.workers[i];
      const double correct = a.payment + s_bonus;
      const double overcharge = population.agent(i + 1).behavior.overcharge;
      double paid = correct + overcharge;
      if (overcharge > 0.0 && rng.bernoulli(q)) {
        paid = correct;
        Incident incident;
        incident.kind = Incident::Kind::kOvercharge;
        incident.accused = i + 1;
        incident.reporter = 0;
        incident.substantiated = true;
        incident.fine = options.fines_enabled ? fine / q : 0.0;
        incident.detail = "billed above the provable payment";
        report.incidents.push_back(incident);
        post_fine(i + 1, 0, fine / q, 0.0,
                  payment::TransferKind::kAuditPenalty, "star overcharge");
      }
      if (paid > 0.0) {
        report.ledger.post({payment::kTreasury,
                            static_cast<payment::AccountId>(i + 1),
                            payment::TransferKind::kCompensation, paid,
                            "Q_" + std::to_string(i + 1)});
      } else if (paid < 0.0) {
        report.ledger.post({static_cast<payment::AccountId>(i + 1),
                            payment::kTreasury,
                            payment::TransferKind::kCompensation, -paid,
                            "Q_" + std::to_string(i + 1)});
      }
    }
    if (bid_network.root_computes()) {
      const double root_cost =
          report.assessment.solution.alpha_root * bid_network.root_w();
      report.ledger.post({payment::kTreasury, 0,
                          payment::TransferKind::kCompensation, root_cost,
                          "root reimbursement"});
    }
  }

  // --- Final accounting. ------------------------------------------------
  report.workers.assign(m + 1, ProcessorReport{});
  report.workers[0].index = 0;
  for (std::size_t i = 0; i < m; ++i) {
    ProcessorReport& p = report.workers[i + 1];
    p.index = i + 1;
    p.true_rate = true_network.w(i);
    p.bid_rate = bid_w[i];
    if (!report.aborted) {
      const auto& a = report.assessment.workers[i];
      p.actual_rate = a.actual_rate;
      p.assigned = a.alpha;
      p.computed = report.execution->computed[i];
      p.valuation = -p.computed * p.actual_rate;
    }
    p.payment = report.ledger.net_of_kind(
        static_cast<payment::AccountId>(i + 1),
        payment::TransferKind::kCompensation);
  }
  for (const auto& incident : report.incidents) {
    const std::size_t loser =
        incident.substantiated ? incident.accused : incident.reporter;
    const std::size_t winner =
        incident.substantiated ? incident.reporter : incident.accused;
    if (incident.fine > 0.0 && loser >= 1) {
      report.workers[loser].fines += incident.fine;
      if (incident.kind == Incident::Kind::kFalseAccusation &&
          winner >= 1) {
        report.workers[winner].rewards += charged_fine;
      }
    }
  }
  for (std::size_t i = 1; i <= m; ++i) {
    ProcessorReport& p = report.workers[i];
    p.utility = p.valuation + p.payment - p.fines + p.rewards;
  }
  report.workers[0].utility = 0.0;
  return report;
}

StarRunReport run_bus_protocol(const net::BusNetwork& true_network,
                               const agents::Population& population,
                               const ProtocolOptions& options) {
  return run_star_protocol(true_network.as_star(), population, options);
}

}  // namespace dls::protocol
