#include "protocol/runner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "check/mechanism_invariants.hpp"
#include "check/protocol_invariants.hpp"
#include "common/error.hpp"
#include "common/tolerance.hpp"
#include "crypto/pki.hpp"
#include "obs/obs.hpp"
#include "protocol/meter.hpp"
#include "protocol/wire.hpp"

namespace dls::protocol {

std::string to_string(Incident::Kind kind) {
  switch (kind) {
    case Incident::Kind::kContradictoryMessages:
      return "contradictory-messages";
    case Incident::Kind::kMiscomputation:
      return "miscomputation";
    case Incident::Kind::kLoadShedding:
      return "load-shedding";
    case Incident::Kind::kOvercharge:
      return "overcharge";
    case Incident::Kind::kFalseAccusation:
      return "false-accusation";
    case Incident::Kind::kDataCorruption:
      return "data-corruption";
    case Incident::Kind::kCrash:
      return "crash";
  }
  return "unknown";
}

double RunReport::total_fines(std::size_t i) const {
  double total = 0.0;
  for (const auto& inc : incidents) {
    const std::size_t loser = inc.substantiated ? inc.accused : inc.reporter;
    if (loser == i) total += inc.fine;
  }
  return total;
}

namespace {

using agents::Population;
using crypto::Claim;
using crypto::ClaimKind;
using crypto::SignedClaim;

/// Everything the run needs in one place.
struct Round {
  const net::LinearNetwork* truth = nullptr;
  const Population* population = nullptr;
  ProtocolOptions options;
  double fine = 0.0;

  crypto::KeyRegistry registry;
  std::vector<crypto::Signer> signers;  // index = processor
  common::Rng rng{1};

  RunReport report;

  std::size_t n() const noexcept { return truth->size(); }

  const agents::Behavior& behavior(std::size_t i) const {
    return population->agent(i).behavior;
  }

  /// The fine that will actually be charged — zero under the ablation
  /// switch (incidents are still recorded).
  double effective_fine(double amount) const noexcept {
    return options.fines_enabled ? amount : 0.0;
  }

  void post_fine(std::size_t offender, std::size_t beneficiary,
                 double fine_amount, double reward_amount,
                 payment::TransferKind fine_kind, const std::string& memo) {
    if (!options.fines_enabled) return;
    report.ledger.post({static_cast<payment::AccountId>(offender),
                        payment::kTreasury, fine_kind, fine_amount, memo});
    if (reward_amount > 0.0) {
      report.ledger.post({payment::kTreasury,
                          static_cast<payment::AccountId>(beneficiary),
                          payment::TransferKind::kReward, reward_amount,
                          memo});
    }
  }
};

/// Phase I: bids flow from the far end toward the root. Returns false if
/// the round aborted on a substantiated grievance.
bool phase1(Round& round, std::vector<SignedClaim>& bid_claims) {
  DLS_SPAN("protocol.phase1");
  const std::size_t n = round.n();
  DLS_COUNT("protocol.msgs.bid", n);
  const net::LinearNetwork& truth = *round.truth;

  // Equivalent bids computed from the rate bids (the agents' inputs).
  std::vector<double> wbar(n, 0.0);
  {
    std::vector<double> w(n);
    w[0] = truth.w(0);
    for (std::size_t i = 1; i < n; ++i) {
      w[i] = round.population->agent(i).bid();
    }
    wbar[n - 1] = w[n - 1];
    for (std::size_t i = n - 1; i-- > 0;) {
      wbar[i] = dlt::pair_equivalent_w(w[i], truth.z(i + 1), wbar[i + 1]);
    }
  }

  bid_claims.assign(n, SignedClaim{});
  for (std::size_t i = 0; i < n; ++i) {
    Claim claim{ClaimKind::kEquivalentBid, static_cast<crypto::AgentId>(i),
                round.options.round, wbar[i]};
    bid_claims[i] = crypto::make_signed(round.signers[i], claim);
  }

  // Deviation (i): a contradictor sends its predecessor two different
  // signed bids. The predecessor submits both to the root, which checks
  // the signatures and the contradiction and fines the sender.
  for (std::size_t i = n; i-- > 1;) {
    if (!round.behavior(i).contradictory_messages) continue;
    Claim other{ClaimKind::kEquivalentBid, static_cast<crypto::AgentId>(i),
                round.options.round, wbar[i] * 1.05};
    const SignedClaim duplicate =
        crypto::make_signed(round.signers[i], other);
    const bool valid_pair = crypto::verify(round.registry, bid_claims[i]) &&
                            crypto::verify(round.registry, duplicate) &&
                            crypto::contradicts(bid_claims[i], duplicate);
    Incident incident;
    incident.kind = Incident::Kind::kContradictoryMessages;
    incident.accused = i;
    incident.reporter = i - 1;
    incident.substantiated = valid_pair;
    incident.fine = round.effective_fine(round.fine);
    incident.detail = "two signed Phase I bids with different values";
    round.report.incidents.push_back(incident);
    round.post_fine(i, i - 1, round.fine, round.fine,
                    payment::TransferKind::kFine, "phase I contradiction");
    round.report.aborted = true;
    round.report.abort_reason =
        "substantiated contradictory messages from P" + std::to_string(i);
    return false;
  }

  // Deviation (v): a false accuser fabricates a contradiction claim
  // against its predecessor. The forged second message cannot carry a
  // valid signature (the accuser lacks SK_{i-1}), so the root exculpates
  // the accused and fines the accuser (Lemma 5.2).
  for (std::size_t i = 1; i < n; ++i) {
    if (!round.behavior(i).false_accusation) continue;
    const std::size_t accused = i - 1;
    Claim fabricated{ClaimKind::kEquivalentBid,
                     static_cast<crypto::AgentId>(accused),
                     round.options.round, wbar[accused] * 1.1};
    // Signed with the accuser's own key — verification against the
    // accused's registered key must fail.
    SignedClaim forged = crypto::make_signed(round.signers[i], fabricated);
    forged.signer = static_cast<crypto::AgentId>(accused);
    const bool substantiated = crypto::verify(round.registry, forged);
    Incident incident;
    incident.kind = Incident::Kind::kFalseAccusation;
    incident.accused = accused;
    incident.reporter = i;
    incident.substantiated = substantiated;  // always false: forgery fails
    incident.fine = round.effective_fine(round.fine);
    incident.detail = "fabricated contradiction evidence";
    round.report.incidents.push_back(incident);
    if (!substantiated) {
      round.post_fine(i, accused, round.fine, round.fine,
                      payment::TransferKind::kFine,
                      "false accusation exculpated");
    }
  }
  return true;
}

/// Phase II: allocation messages travel from the root outward; every
/// recipient verifies signatures and arithmetic. Returns false on abort.
bool phase2(Round& round, const std::vector<SignedClaim>& bid_claims) {
  DLS_SPAN("protocol.phase2");
  const std::size_t n = round.n();
  DLS_COUNT("protocol.msgs.allocation", n - 1);
  const net::LinearNetwork& truth = *round.truth;
  const dlt::LinearSolution& sol = round.report.solution;

  // Received-load fractions D_j and rate-bid claims, signed by the
  // processor that computes/knows them.
  std::vector<SignedClaim> d_claims(n);
  std::vector<SignedClaim> w_claims(n);
  std::vector<double> d_value(n);
  for (std::size_t j = 0; j < n; ++j) {
    d_value[j] = sol.received[j];
    // Deviation (ii): a miscomputing P_{j-1} corrupts the D_j it signs
    // for its successor (claiming to ship less than the algorithm
    // prescribes, so it can keep a lighter share).
    const std::size_t signer = j == 0 ? 0 : j - 1;
    double value = d_value[j];
    if (j >= 1 && signer >= 1 &&
        round.behavior(signer).miscompute_allocation) {
      value *= 0.9;  // ships 10% less than the algorithm prescribes
      d_value[j] = value;
    }
    d_claims[j] = crypto::make_signed(
        round.signers[signer],
        Claim{ClaimKind::kReceivedLoad, static_cast<crypto::AgentId>(j),
              round.options.round, value});
    const double w_j =
        j == 0 ? truth.w(0) : round.population->agent(j).bid();
    w_claims[j] = crypto::make_signed(
        round.signers[j],
        Claim{ClaimKind::kBidRate, static_cast<crypto::AgentId>(j),
              round.options.round, w_j});
  }

  for (std::size_t i = 1; i < n; ++i) {
    AllocationMessage g;
    g.received_pred = d_claims[i - 1];
    g.received_self = d_claims[i];
    g.equiv_bid_pred = bid_claims[i - 1];
    g.rate_bid_pred = w_claims[i - 1];
    g.equiv_bid_self = bid_claims[i];

    // Ship G_i through the wire format — the recipient verifies what
    // came off the wire, not the sender's in-memory object.
    const AllocationMessage received =
        decode_allocation_message(encode_allocation_message(g));

    const VerificationResult check = verify_allocation_message(
        round.registry, received, i, truth.z(i), bid_claims[i],
        round.options.round);
    if (check.ok) continue;
    // An honest P_i files the grievance; a deviant recipient would stay
    // silent about its own corruption, but the corrupted value here was
    // produced by the *predecessor*, so the victim always reports.
    const std::size_t accused = i - 1;
    // Root re-runs the arithmetic to substantiate.
    const bool substantiated = true;  // evidence is the signed G_i itself
    Incident incident;
    incident.kind = Incident::Kind::kMiscomputation;
    incident.accused = accused;
    incident.reporter = i;
    incident.substantiated = substantiated;
    incident.fine = round.effective_fine(round.fine);
    incident.detail = check.failure;
    round.report.incidents.push_back(incident);
    round.post_fine(accused, i, round.fine, round.fine,
                    payment::TransferKind::kFine, "phase II miscomputation");
    round.report.aborted = true;
    round.report.abort_reason = "substantiated Phase II grievance against P" +
                                std::to_string(accused) + ": " +
                                check.failure;
    return false;
  }
  return true;
}

/// Phase III: load distribution and computation through the simulator,
/// with Λ tokens proving received amounts.
void phase3(Round& round) {
  DLS_SPAN("protocol.phase3");
  const std::size_t n = round.n();
  const net::LinearNetwork& truth = *round.truth;
  const dlt::LinearSolution& sol = round.report.solution;

  sim::ExecutionPlan plan;
  plan.retain_fraction.resize(n);
  plan.actual_rate.resize(n);
  plan.retain_fraction[0] = sol.alpha_hat[0];
  plan.actual_rate[0] = truth.w(0);
  for (std::size_t i = 1; i < n; ++i) {
    const agents::StrategicAgent& agent = round.population->agent(i);
    plan.retain_fraction[i] =
        sol.alpha_hat[i] * (1.0 - agent.behavior.shed_fraction);
    plan.actual_rate[i] = agent.actual_rate();
  }
  round.report.execution = sim::execute_linear(truth, plan);
  const sim::ExecutionResult& exec = *round.report.execution;
  round.report.makespan = exec.makespan;

  // Λ tokens: mirror the simulated flow in block counts. Λ_i witnesses
  // everything P_i received (footnote 1), so each processor keeps a copy
  // of the batch that arrived before splitting off the forwarded part.
  TokenAuthority authority(round.options.blocks_per_unit, round.rng);
  TokenBatch pool = authority.issue_unit_load();
  std::vector<TokenBatch> lambda(n);
  for (std::size_t i = 0; i < n; ++i) {
    lambda[i] = pool;  // Λ_i: the full received batch
    if (i + 1 < n) {
      const std::size_t keep =
          std::min(authority.to_blocks(exec.computed[i]), pool.blocks());
#if DLS_CHECK_LEVEL >= 2
      // Token rule: retained + forwarded must partition the received
      // batch in order, with every identifier genuinely issued.
      const TokenBatch kept = pool.take_front(keep);
      check::check_token_split(authority, lambda[i], kept, pool);
#else
      pool.take_front(keep);  // retained blocks stay; the rest forwards
#endif
    }
  }

  // Grievances: the first processor that received more load than the
  // published D_i reports its predecessor. (Downstream overloads are a
  // consequence of the same deviation; the root attributes them all to
  // the original offender and sizes the fine accordingly.)
  const double tol =
      2.0 / static_cast<double>(round.options.blocks_per_unit);
  for (std::size_t i = 1; i < n; ++i) {
    const double planned = sol.received[i];
    const double actual = exec.received[i];
    if (actual <= planned + tol) continue;
    // A colluding successor swallows the overload silently — the
    // grievance (and the fine) never reaches the root.
    if (round.behavior(i).suppress_grievance) continue;
    const std::size_t offender = i - 1;
    // The victim proves receipt with its token batch Λ_i; the root
    // validates every identifier against the issue log.
    DLS_REQUIRE(authority.validate(lambda[i]),
                "victim's token batch must validate");
    const std::size_t received_blocks = lambda[i].blocks();
    double extra_cost = 0.0;
    for (std::size_t j = i; j < n; ++j) {
      const double extra = exec.computed[j] - sol.alpha[j];
      if (extra > 0.0) extra_cost += extra * plan.actual_rate[j];
    }
    Incident incident;
    incident.kind = Incident::Kind::kLoadShedding;
    incident.accused = offender;
    incident.reporter = i;
    incident.substantiated = true;
    incident.fine = round.effective_fine(round.fine + extra_cost);
    std::ostringstream detail;
    detail << "received " << actual << " (" << received_blocks
           << " blocks) against published D_" << i << " = " << planned;
    incident.detail = detail.str();
    round.report.incidents.push_back(incident);
    round.post_fine(offender, i, round.fine + extra_cost, round.fine,
                    payment::TransferKind::kFine, "phase III load shedding");
    break;
  }

  // Data corruption (Theorem 5.2): not fined, but the solution is lost.
  for (std::size_t i = 1; i < n; ++i) {
    if (!round.behavior(i).corrupt_data) continue;
    round.report.solution_found = false;
    Incident incident;
    incident.kind = Incident::Kind::kDataCorruption;
    incident.accused = i;
    incident.reporter = 0;
    incident.substantiated = true;
    incident.fine = 0.0;
    incident.detail = "forwarded corrupted data; solution unverifiable";
    round.report.incidents.push_back(incident);
  }
}

/// Phase IV: metering, payment computation, billing and audits.
void phase4(Round& round) {
  DLS_SPAN("protocol.phase4");
  const std::size_t n = round.n();
  DLS_COUNT("protocol.msgs.meter", n);
  const net::LinearNetwork& truth = *round.truth;
  const sim::ExecutionResult& exec = *round.report.execution;

  // Metered actual rates (dsm_0(w̃_i)).
  const TamperProofMeter meter(round.signers[0], round.options.round);
  std::vector<double> declared(n);
  declared[0] = truth.w(0);
  for (std::size_t i = 1; i < n; ++i) {
    declared[i] = round.population->agent(i).bid();
  }
  const std::vector<SignedClaim> metered = meter.read_all(exec, declared);
  std::vector<double> actual_rates(n);
  for (std::size_t i = 0; i < n; ++i) {
    DLS_REQUIRE(crypto::verify(round.registry, metered[i]),
                "meter claims must verify");
    actual_rates[i] = metered[i].claim.value;
  }

  // The bid network the allocation was computed from.
  std::vector<double> w(n);
  w[0] = truth.w(0);
  for (std::size_t i = 1; i < n; ++i) {
    w[i] = round.population->agent(i).bid();
  }
  const net::LinearNetwork bid_network(
      std::move(w), {truth.link_times().begin(), truth.link_times().end()});

  round.report.assessment = core::assess_dls_lbl(
      bid_network, actual_rates, exec.computed, round.options.mechanism,
      round.report.solution_found);

  // Billing: every strategic processor submits Q_j (+ any overcharge);
  // the root audits each bill with probability q.
  const double q = round.options.mechanism.audit_probability;
  for (std::size_t j = 1; j < n; ++j) {
    if (std::find(round.options.unpaid.begin(), round.options.unpaid.end(),
                  j) != round.options.unpaid.end()) {
      continue;  // the root refuses this processor's bill
    }
    const core::Assessment& a = round.report.assessment.processors[j];
    const double correct = a.money.payment;
    const double overcharge = round.behavior(j).overcharge;
    const double billed = correct + overcharge;
    double paid = billed;
    if (round.rng.bernoulli(q)) {
      // Proof_j is requested. An honest bill verifies; an inflated one
      // cannot be backed by the signed claims and costs F/q.
      if (billed > correct + 1e-9) {
        paid = correct;
        Incident incident;
        incident.kind = Incident::Kind::kOvercharge;
        incident.accused = j;
        incident.reporter = 0;
        incident.substantiated = true;
        incident.fine = round.effective_fine(round.fine / q);
        incident.detail = "billed " + std::to_string(billed) +
                          ", provable " + std::to_string(correct);
        round.report.incidents.push_back(incident);
        round.post_fine(j, 0, round.fine / q, 0.0,
                        payment::TransferKind::kAuditPenalty,
                        "phase IV overcharge");
      }
    }
    if (paid > 0.0) {
      round.report.ledger.post({payment::kTreasury,
                                static_cast<payment::AccountId>(j),
                                payment::TransferKind::kCompensation, paid,
                                "Q_" + std::to_string(j)});
    } else if (paid < 0.0) {
      // A negative payment (possible for heavy deviants whose bonus went
      // negative) flows back to the treasury.
      round.report.ledger.post({static_cast<payment::AccountId>(j),
                                payment::kTreasury,
                                payment::TransferKind::kCompensation, -paid,
                                "Q_" + std::to_string(j)});
    }
  }
  // The obedient root is reimbursed its cost.
  const double root_cost =
      round.report.assessment.processors[0].money.compensation;
  if (root_cost > 0.0) {
    round.report.ledger.post({payment::kTreasury, 0,
                              payment::TransferKind::kCompensation,
                              root_cost, "root reimbursement"});
  }
}

void finalize(Round& round) {
  DLS_SPAN("protocol.finalize");
  const std::size_t n = round.n();
  round.report.processors.assign(n, ProcessorReport{});
  for (std::size_t i = 0; i < n; ++i) {
    ProcessorReport& p = round.report.processors[i];
    p.index = i;
    p.true_rate = round.truth->w(i);
    p.bid_rate =
        i == 0 ? round.truth->w(0) : round.population->agent(i).bid();
    if (!round.report.aborted) {
      const core::Assessment& a = round.report.assessment.processors[i];
      p.actual_rate = a.actual_rate;
      p.assigned = a.alpha;
      p.computed = a.computed;
      p.valuation = a.money.valuation;
    }
  }
  // Fines and rewards from the incident list.
  for (const auto& inc : round.report.incidents) {
    const std::size_t loser = inc.substantiated ? inc.accused : inc.reporter;
    const std::size_t winner = inc.substantiated ? inc.reporter : inc.accused;
    if (inc.fine > 0.0) {
      round.report.processors[loser].fines += inc.fine;
      if (inc.kind != Incident::Kind::kOvercharge) {
        // Overcharge penalties go to the treasury, not a reporter.
        round.report.processors[winner].rewards += round.fine;
      }
    }
  }
  // Payments actually made (ledger truth).
  for (std::size_t i = 1; i < n; ++i) {
    round.report.processors[i].payment = round.report.ledger.net_of_kind(
        static_cast<payment::AccountId>(i),
        payment::TransferKind::kCompensation);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ProcessorReport& p = round.report.processors[i];
    p.utility = p.valuation + p.payment - p.fines + p.rewards;
  }
  // The obedient root's utility is zero by construction (4.3).
  round.report.processors[0].utility = 0.0;
}

}  // namespace

RunReport run_protocol(const net::LinearNetwork& true_network,
                       const agents::Population& population,
                       const ProtocolOptions& options) {
  const std::size_t n = true_network.size();
  DLS_REQUIRE(n >= 2, "the protocol needs at least one strategic worker");
  DLS_REQUIRE(population.size() == n - 1,
              "population must cover every non-root processor");
  DLS_SPAN_ARGS("protocol.run", "{\"m\":" + std::to_string(n - 1) +
                                    ",\"round\":" +
                                    std::to_string(options.round) + "}");
  DLS_COUNT("protocol.rounds");

  Round round;
  round.truth = &true_network;
  round.population = &population;
  round.options = options;
  round.rng = common::Rng(options.seed);
  round.report.round = options.round;

  // PKI enrolment.
  round.signers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    round.signers.push_back(
        round.registry.enroll(static_cast<crypto::AgentId>(i), round.rng));
    round.report.ledger.open_account(static_cast<payment::AccountId>(i));
  }

  // The bid network and the published allocation.
  {
    std::vector<double> w(n);
    w[0] = true_network.w(0);
    for (std::size_t i = 1; i < n; ++i) {
      w[i] = population.agent(i).bid();
      round.report.bids.push_back(w[i]);
    }
    const net::LinearNetwork bid_network(
        std::move(w), {true_network.link_times().begin(),
                       true_network.link_times().end()});
    DLS_SPAN("protocol.solve");
    round.report.solution = dlt::solve_linear_boundary(bid_network);
    round.fine = options.mechanism.fine;
    if (options.auto_size_fine) {
      round.fine = std::max(round.fine,
                            core::cheating_profit_bound(bid_network) + 1.0);
    }
  }

  // The phase tracker enforces the paper's message order: strictly
  // forward through I -> II -> III -> IV, with the substantiated-
  // grievance abort as the only legal shortcut.
  check::PhaseOrderChecker phases;
  std::vector<SignedClaim> bid_claims;
  phases.advance(check::ProtocolPhase::kBids);
  if (phase1(round, bid_claims)) {
    phases.advance(check::ProtocolPhase::kAllocation);
    if (phase2(round, bid_claims)) {
      phases.advance(check::ProtocolPhase::kExecution);
      phase3(round);
      phases.advance(check::ProtocolPhase::kSettlement);
      phase4(round);
    }
  }
  phases.advance(check::ProtocolPhase::kDone);
  finalize(round);
  if constexpr (obs::compiled(1)) {
    if (obs::active()) {
      if (round.report.aborted) {
        obs::MetricsRegistry::global().counter("protocol.aborts").add();
      }
      // Incident kinds are dynamic, so the static-cache DLS_COUNT form
      // does not apply; one registry lookup per incident is fine here.
      for (const auto& inc : round.report.incidents) {
        obs::MetricsRegistry::global()
            .counter("protocol.incidents." + to_string(inc.kind))
            .add();
      }
    }
  }
  // Money is conserved across every account including the treasury —
  // fines, rewards and payments are all double-entry.
  if constexpr (check::enabled(1)) {
    check::check_ledger_conservation(round.report.ledger);
  }
  return round.report;
}

}  // namespace dls::protocol
