// The distributed mechanism for tree networks — protocol-level
// realisation of the DLS-T analogue (core/dls_tree.hpp), following the
// companion tree mechanism [9]. The four phases of the chain protocol
// generalise node-by-node:
//
//  * Phase I: equivalent subtree bids ρ̄_v flow post-order to each
//    parent as signed claims (contradictory copies are evidence);
//  * Phase II: loads flow pre-order; each child receives the signed
//    bundle (its load L_c, the parent's arriving load L_p, the parent's
//    rate bid and every sibling's Phase I claim) and *recomputes the
//    parent's local star* to verify its share — a parent that
//    miscomputes a child's load is reported with the bundle as evidence;
//  * Phase III: execution through sim::execute_tree; Λ tokens split
//    along the tree prove received amounts, so a shedding parent (who
//    keeps less and dumps the remainder on its children pro-rata) is
//    reported by the first overloaded child;
//  * Phase IV: tamper-proof metering, DLS-T payments with recompense for
//    overloaded nodes, billing with probabilistic audits.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "agents/agent.hpp"
#include "core/dls_tree.hpp"
#include "net/tree.hpp"
#include "payment/ledger.hpp"
#include "protocol/runner.hpp"
#include "sim/tree_execution.hpp"

namespace dls::protocol {

struct TreeRunReport {
  bool aborted = false;
  std::string abort_reason;

  std::vector<double> bids;  ///< w_1..w_{n-1} as submitted
  core::DlsTreeResult assessment;
  std::optional<sim::TreeExecutionResult> execution;
  std::vector<ProcessorReport> nodes;  ///< index 0 = root (utility 0)
  std::vector<Incident> incidents;
  payment::Ledger ledger;
  bool solution_found = true;
  double makespan = 0.0;
};

/// Runs one round on the tree. `population` has one strategic agent per
/// non-root node, indexed by node position (agent i ↔ node i).
TreeRunReport run_tree_protocol(const net::TreeNetwork& true_network,
                                const agents::Population& population,
                                const ProtocolOptions& options);

}  // namespace dls::protocol
