// The distributed DLS-LBL protocol (Sect. 4, Phases I-IV) executed over
// the simulated chain.
//
// The runner plays every role: it lets each strategic agent produce its
// (possibly deviant) messages and execution behaviour, performs the
// neighbour-side verification a compliant processor would perform,
// routes grievances to the obedient root for arbitration, runs Phase III
// through the discrete-event simulator with the Λ token device, meters
// actual rates, computes Phase IV payments (with probabilistic bill
// audits) and settles everything on the payment ledger.
//
// The outcome of a run is a full forensic report: who was fined for
// what, what every processor's final utility is, and whether the round
// aborted (substantiated Phase I/II grievances terminate the protocol,
// as in the paper).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agents/agent.hpp"
#include "core/dls_lbl.hpp"
#include "net/networks.hpp"
#include "payment/ledger.hpp"
#include "protocol/messages.hpp"
#include "protocol/tokens.hpp"
#include "sim/linear_execution.hpp"

namespace dls::protocol {

/// A deviation the protocol noticed, and how arbitration resolved it.
struct Incident {
  enum class Kind : std::uint8_t {
    kContradictoryMessages,  ///< Phase I/II, Lemma 5.1 case (i)
    kMiscomputation,         ///< Phase II, case (ii)
    kLoadShedding,           ///< Phase III, case (iii)
    kOvercharge,             ///< Phase IV, case (iv)
    kFalseAccusation,        ///< case (v)
    kDataCorruption,         ///< Thm 5.2 (not fined; costs the bonus S)
    kCrash,                  ///< confirmed fail-stop fault (not fined)
  };
  Kind kind{};
  std::size_t accused = 0;
  std::size_t reporter = 0;
  bool substantiated = false;  ///< did the root uphold the claim?
  double fine = 0.0;           ///< amount charged to the losing party
  std::string detail;
};

std::string to_string(Incident::Kind kind);

/// Final accounting for one processor.
struct ProcessorReport {
  std::size_t index = 0;
  double true_rate = 0.0;
  double bid_rate = 0.0;       ///< w_i it bid (root: its true rate)
  double actual_rate = 0.0;    ///< w̃_i the meter recorded
  double assigned = 0.0;       ///< α_i from the bid solution
  double computed = 0.0;       ///< α̃_i actually computed
  double valuation = 0.0;      ///< V_i
  double payment = 0.0;        ///< Q_i actually paid out (after audits)
  double fines = 0.0;          ///< fines charged
  double rewards = 0.0;        ///< reporting rewards received
  double utility = 0.0;        ///< V + Q − fines + rewards
};

struct RunReport {
  bool aborted = false;
  std::string abort_reason;
  std::uint64_t round = 0;

  std::vector<double> bids;            ///< w_1..w_m as submitted
  dlt::LinearSolution solution;        ///< Algorithm 1 on the bids
  std::optional<sim::ExecutionResult> execution;  ///< Phase III (if reached)
  core::DlsLblResult assessment;       ///< Phase IV arithmetic
  std::vector<ProcessorReport> processors;  ///< index 0..m
  std::vector<Incident> incidents;
  payment::Ledger ledger;
  bool solution_found = true;          ///< false if data was corrupted
  double makespan = 0.0;               ///< realised makespan (0 if aborted)

  const ProcessorReport& processor(std::size_t i) const {
    return processors.at(i);
  }
  /// Incidents where `i` lost money.
  double total_fines(std::size_t i) const;
};

struct ProtocolOptions {
  core::MechanismConfig mechanism;
  std::uint64_t seed = 1;              ///< audits, keys, token identifiers
  std::uint64_t round = 1;             ///< protocol round tag in claims
  std::size_t blocks_per_unit = 4096;  ///< Λ granularity
  /// When true, the fine F is raised to cheating_profit_bound() + 1 if
  /// the configured value is below it (the paper requires F to exceed
  /// any attainable cheating profit).
  bool auto_size_fine = true;

  /// ABLATION SWITCH — when false, deviations are still detected and
  /// recorded as incidents, but no fines or reporting rewards are
  /// posted. Theorem 5.1 fails without fines: load shedding becomes
  /// profitable. Keep true except in the ablation bench.
  bool fines_enabled = true;

  /// Processors whose bills the root refuses to pay this round (the
  /// session layer's exclusion policy; mirrors the paper's Q_j = 0 rule
  /// for non-contributing processors). They are still assessed and
  /// metered — they just receive nothing.
  std::vector<std::size_t> unpaid;
};

/// Runs one full round. `true_network` holds the true rates t_i (w(0) is
/// the obedient root's rate) and the trusted link times; `population`
/// holds one strategic agent per non-root processor.
RunReport run_protocol(const net::LinearNetwork& true_network,
                       const agents::Population& population,
                       const ProtocolOptions& options);

}  // namespace dls::protocol
