// Multi-round protocol sessions: the same population plays DLS-LBL
// round after round against a persistent ledger, with a simple
// reputation policy — processors that accumulate substantiated
// incidents are excluded from later rounds (their share of the chain is
// bridged; the paper's fines already make deviation a one-shot loss, and
// exclusion turns repeat offenders into non-participants).
//
// Exclusion on a chain means the culprit still relays load (links are
// obedient infrastructure) but receives no assignment and no payments:
// we model it by giving the excluded processor an effectively infinite
// bid, which drives its allocated share to ~0 under Algorithm 1.
//
// Fault tolerance: with crash_probability > 0 every round draws a
// deterministic chaos plan (seeded from the session seed) and runs
// through the fault-tolerant runner — confirmed crashes are settled
// with E_j recompense, survivors re-solve, and a crash neither fines
// the victim nor counts as a reputation strike (machines reboot; the
// node rejoins the next round).
#pragma once

#include <cstdint>
#include <vector>

#include "agents/agent.hpp"
#include "net/networks.hpp"
#include "protocol/recovery.hpp"
#include "protocol/runner.hpp"

namespace dls::protocol {

struct SessionOptions {
  ProtocolOptions round_options;
  std::size_t rounds = 10;
  /// Substantiated incidents before a processor is excluded; 0 disables
  /// the reputation policy.
  std::size_t strikes_to_exclude = 2;
  /// The bid assigned to excluded processors (must dwarf real rates).
  double exclusion_bid = 1e6;

  /// Per-round, per-processor crash probability; 0 keeps the fail-free
  /// fast path. Crashes draw deterministically from the session seed.
  double crash_probability = 0.0;
  /// Timeout/retry knobs used when crash_probability > 0.
  HeartbeatConfig heartbeat;
};

struct SessionReport {
  std::vector<RunReport> rounds;
  std::vector<double> wealth;            ///< cumulative utility per index
  std::vector<std::size_t> strikes;      ///< substantiated incidents
  std::vector<std::size_t> excluded_at;  ///< round of exclusion (0 = never)
  std::vector<std::size_t> crash_counts; ///< confirmed crashes per index
  double detection_latency_sum = 0.0;    ///< over all confirmed crashes
  std::size_t crashes_total = 0;

  bool is_excluded(std::size_t processor) const {
    return excluded_at.at(processor) != 0;
  }
  double mean_detection_latency() const {
    return crashes_total == 0 ? 0.0
                              : detection_latency_sum /
                                    static_cast<double>(crashes_total);
  }
};

/// Plays `options.rounds` rounds. Behaviors are fixed per agent for the
/// whole session (the interesting dynamics come from the ledger and the
/// reputation policy, not from re-randomising agents).
SessionReport run_session(const net::LinearNetwork& true_network,
                          const agents::Population& population,
                          const SessionOptions& options);

}  // namespace dls::protocol
