#include "protocol/interior_runner.hpp"

#include "common/error.hpp"

namespace dls::protocol {

namespace {

/// The arm (root at its head) as a boundary chain.
net::LinearNetwork arm_chain(const net::InteriorLinearNetwork& net,
                             bool left) {
  const std::size_t r = net.root();
  const std::size_t n = net.size();
  const std::size_t len = left ? r : n - r - 1;
  std::vector<double> w = {net.w(r)};
  std::vector<double> z;
  for (std::size_t k = 0; k < len; ++k) {
    const std::size_t pos = left ? r - 1 - k : r + 1 + k;
    w.push_back(net.w(pos));
    z.push_back(net.z(left ? r - k : r + 1 + k));
  }
  return net::LinearNetwork(std::move(w), std::move(z));
}

}  // namespace

InteriorRunReport run_interior_protocol(
    const net::InteriorLinearNetwork& true_network,
    const agents::Population& left_agents,
    const agents::Population& right_agents,
    const ProtocolOptions& options) {
  const std::size_t r = true_network.root();
  const std::size_t n = true_network.size();
  DLS_REQUIRE(left_agents.size() == r,
              "left arm needs one agent per processor left of the root");
  DLS_REQUIRE(right_agents.size() == n - r - 1,
              "right arm needs one agent per processor right of the root");

  InteriorRunReport report;

  // Each arm runs the full chain protocol with its own round tag.
  ProtocolOptions left_options = options;
  left_options.round = options.round * 2;
  left_options.seed = options.seed ^ 0x1ef7u;
  ProtocolOptions right_options = options;
  right_options.round = options.round * 2 + 1;
  right_options.seed = options.seed ^ 0x816f7u;

  report.left =
      run_protocol(arm_chain(true_network, true), left_agents, left_options);
  report.right = run_protocol(arm_chain(true_network, false), right_agents,
                              right_options);
  report.aborted = report.left.aborted || report.right.aborted;
  if (report.left.aborted) {
    report.abort_reason = "left arm: " + report.left.abort_reason;
  }
  if (report.right.aborted) {
    if (!report.abort_reason.empty()) report.abort_reason += "; ";
    report.abort_reason += "right arm: " + report.right.abort_reason;
  }

  // The root's three-way split from the submitted bids (the arms' own
  // allocations inside the reports are per-unit-arm-load; scaling them
  // by the split yields the network allocation, as in the solver).
  {
    std::vector<double> w(n), z(n - 1);
    for (std::size_t i = 0; i < n; ++i) w[i] = true_network.w(i);
    for (std::size_t j = 1; j < n; ++j) z[j - 1] = true_network.z(j);
    for (std::size_t k = 1; k <= r; ++k) {
      w[r - k] = left_agents.agent(k).bid();
    }
    for (std::size_t k = 1; k < n - r; ++k) {
      w[r + k] = right_agents.agent(k).bid();
    }
    const net::InteriorLinearNetwork bids(std::move(w), std::move(z), r);
    report.solution = dlt::solve_linear_interior(bids);
  }

  // Merge per-arm reports into network indexing. Utilities are the
  // arms' outcomes: bonuses are load-scale-free and compensation legs
  // cancel against valuations, so arm-level utilities ARE the
  // network-level ones (see core/dls_interior.hpp for the argument).
  report.processors.assign(n, ProcessorReport{});
  for (std::size_t i = 0; i < n; ++i) report.processors[i].index = i;
  {
    ProcessorReport& root = report.processors[r];
    root.true_rate = true_network.w(r);
    root.bid_rate = true_network.w(r);
    root.actual_rate = true_network.w(r);
    if (!report.aborted) {
      root.assigned = report.solution.alpha[r];
      root.computed = root.assigned;
      root.valuation = -root.computed * root.true_rate;
      root.payment = -root.valuation;  // reimbursed at cost (4.3)
    }
    root.utility = 0.0;
  }
  auto merge = [&](const RunReport& arm, bool is_left, double arm_load) {
    const std::size_t len = is_left ? r : n - r - 1;
    // The arm protocol ran with the root at the arm chain's head keeping
    // α_0 of the arm's unit load; the interior split ships `arm_load`
    // into the arm *tail*, so arm-chain fractions map to network
    // fractions with scale arm_load / (1 − α_0^arm).
    const double scale = arm_load / (1.0 - arm.solution.alpha[0]);
    for (std::size_t k = 1; k <= len; ++k) {
      ProcessorReport p = arm.processors[k];
      p.index = is_left ? r - k : r + k;
      // Loads and costs scale with the arm's share of the unit load;
      // utilities (bonuses, fines, rewards) are load-scale-free. The
      // payment is re-derived so the report stays internally consistent:
      // utility = valuation + payment − fines + rewards.
      p.assigned *= scale;
      p.computed *= scale;
      p.valuation *= scale;
      p.payment = p.utility - p.valuation + p.fines - p.rewards;
      report.processors[p.index] = p;
    }
  };
  merge(report.left, true, report.solution.left_load);
  merge(report.right, false, report.solution.right_load);
  return report;
}

}  // namespace dls::protocol
