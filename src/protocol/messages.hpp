// Protocol messages and their verification — Phases I and II.
//
// Phase I carries each processor's equivalent bid w̄_i to its predecessor
// as a signed claim. Phase II carries the allocation message G_i of eqs.
// (4.1)/(4.2): five signed claims binding the received-load fractions
// D_{i-1}, D_i, the predecessor's equivalent bid and rate bid, and the
// recipient's own echoed bid. The recipient re-derives
//   α̂_{i-1} = (D_{i-1} − D_i) / D_{i-1}
// and checks w̄_{i-1} = α̂_{i-1} w_{i-1} and the balance condition (2.7)
//   α̂_{i-1} w_{i-1} = (1 − α̂_{i-1})(w̄_i + z_i).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "crypto/signed_claim.hpp"

namespace dls::protocol {

/// Phase I: dsm_i(w̄_i) flowing from P_i to P_{i-1}.
struct BidMessage {
  crypto::SignedClaim equivalent_bid;
};

/// Phase II: the allocation message G_i delivered to P_i (4.1)/(4.2).
struct AllocationMessage {
  crypto::SignedClaim received_pred;   ///< dsm_{i-2}(D_{i-1}) (dsm_0 for i=1)
  crypto::SignedClaim received_self;   ///< dsm_{i-1}(D_i)
  crypto::SignedClaim equiv_bid_pred;  ///< the predecessor's Phase I bid
                                       ///< claim, forwarded verbatim
                                       ///< (paper: dsm_{i-2}(w̄_{i-1}))
  crypto::SignedClaim rate_bid_pred;   ///< dsm_{i-1}(w_{i-1})
  crypto::SignedClaim equiv_bid_self;  ///< dsm_{i-1}(w̄_i), echo of Phase I
};

/// Phase III: P_i's end-of-round report to the root — the tamper-proof
/// meter's reading dsm_0(w̃_i) forwarded together with P_i's own claim
/// over its Λ token count, the evidence a load-shedding grievance
/// rests on.
struct ReportMessage {
  crypto::SignedClaim metered_rate;  ///< dsm_0(w̃_i), kMeteredRate
  crypto::SignedClaim token_count;   ///< dsm_i(|Λ_i|), kLoadTokenCount
};

/// Phase IV: the root's payment notice to P_i — the monetary terms of
/// eqs. (4.6)-(4.9) plus the meter reading the bill rests on, so the
/// recipient can audit the arithmetic against its own records.
struct PaymentMessage {
  std::uint32_t processor = 0;  ///< i, the paid processor's position
  std::uint64_t round = 0;
  double compensation = 0.0;    ///< C_i (includes E_i)
  double bonus = 0.0;           ///< B_i
  double solution_bonus = 0.0;  ///< S (0 unless enabled and solved)
  double payment = 0.0;         ///< Q_i
  crypto::SignedClaim metered_rate;  ///< dsm_0(w̃_i) echoed from Phase III
};

/// Result of verifying a message: empty string = OK, otherwise a
/// description of the first failed check (the grievance text).
struct VerificationResult {
  bool ok = true;
  std::string failure;

  static VerificationResult pass() { return {}; }
  static VerificationResult fail(std::string why) {
    return VerificationResult{false, std::move(why)};
  }
};

/// Signature + well-formedness of a Phase I bid from `expected_signer`
/// about itself in `round`.
VerificationResult verify_bid_message(const crypto::KeyRegistry& registry,
                                      const BidMessage& message,
                                      crypto::AgentId expected_signer,
                                      std::uint64_t round);

/// Full Phase II verification as P_i would perform it.
///  * `i`            — recipient's position (1-based worker position);
///  * `z_i`          — the recipient's inbound link time;
///  * `own_bid`      — the Phase I claim P_i itself sent (echo check);
///  * tolerances are relative (the arithmetic is floating point).
VerificationResult verify_allocation_message(
    const crypto::KeyRegistry& registry, const AllocationMessage& message,
    std::size_t i, double z_i, const crypto::SignedClaim& own_bid,
    std::uint64_t round, double rel_tol = 1e-9);

}  // namespace dls::protocol
