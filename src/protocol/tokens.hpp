// The Λ_i device of footnote 1: proof of how much load a processor
// received.
//
// The root divides the unit load into equal-sized blocks and appends a
// unique random identifier to each. A processor's Λ_i is the set of
// identifiers it received; presenting them to the root proves (up to the
// negligible probability of guessing a valid identifier) that it received
// at least that much load — which is exactly the evidence a victim of
// load shedding needs in Phase III.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"

namespace dls::protocol {

/// A contiguous batch of identified blocks travelling down the chain.
struct TokenBatch {
  std::vector<std::uint64_t> ids;

  std::size_t blocks() const noexcept { return ids.size(); }

  /// Splits off the first `count` blocks (the part a processor retains);
  /// the remainder stays in *this.
  TokenBatch take_front(std::size_t count);
};

/// Root-side issuer and validator.
class TokenAuthority {
 public:
  /// `blocks_per_unit`: granularity of the proof device. Finer blocks
  /// detect smaller thefts but cost more memory.
  TokenAuthority(std::size_t blocks_per_unit, common::Rng& rng);

  std::size_t blocks_per_unit() const noexcept { return blocks_per_unit_; }

  /// Issues the full unit load (called once per protocol round).
  TokenBatch issue_unit_load();

  /// Load units represented by `blocks` blocks.
  double to_load(std::size_t blocks) const noexcept;

  /// Number of blocks corresponding to `load` units (rounded to nearest).
  std::size_t to_blocks(double load) const noexcept;

  /// True iff every identifier in the batch was issued and none repeats.
  bool validate(const TokenBatch& batch) const;

  /// A forged batch an attacker might submit: `count` random identifiers
  /// never issued by the authority (for tests and the false-accusation
  /// experiments).
  TokenBatch forge(std::size_t count, common::Rng& rng) const;

 private:
  std::size_t blocks_per_unit_;
  common::Rng* rng_;
  std::unordered_set<std::uint64_t> issued_;
};

}  // namespace dls::protocol
