#include "protocol/session.hpp"

#include "common/error.hpp"
#include "sim/faults.hpp"

namespace dls::protocol {

SessionReport run_session(const net::LinearNetwork& true_network,
                          const agents::Population& population,
                          const SessionOptions& options) {
  const std::size_t n = true_network.size();
  DLS_REQUIRE(population.size() == n - 1,
              "population must cover every non-root processor");
  DLS_REQUIRE(options.rounds >= 1, "session needs at least one round");
  DLS_REQUIRE(options.exclusion_bid > 0.0, "exclusion bid must be positive");
  DLS_REQUIRE(options.crash_probability >= 0.0 &&
                  options.crash_probability <= 1.0,
              "crash probability must lie in [0, 1]");

  SessionReport session;
  session.wealth.assign(n, 0.0);
  session.strikes.assign(n, 0);
  session.excluded_at.assign(n, 0);
  session.crash_counts.assign(n, 0);
  common::Rng fault_rng(options.round_options.seed ^ 0xfa17ull);

  for (std::size_t round = 1; round <= options.rounds; ++round) {
    // Build this round's effective population: excluded processors act
    // as obedient relays with a prohibitive bid (≈ zero assignment).
    std::vector<agents::StrategicAgent> agents;
    agents.reserve(n - 1);
    for (std::size_t i = 1; i < n; ++i) {
      agents::StrategicAgent agent = population.agent(i);
      if (session.excluded_at[i] != 0) {
        agents::Behavior sidelined = agents::Behavior::truthful();
        sidelined.name = "excluded";
        // A prohibitive bid: Algorithm 1 assigns it a vanishing share.
        sidelined.bid_multiplier = options.exclusion_bid / agent.true_rate;
        agent.behavior = sidelined;
      }
      agents.push_back(std::move(agent));
    }

    ProtocolOptions round_options = options.round_options;
    round_options.round = round;
    round_options.seed = options.round_options.seed + round * 0x9e37u;
    for (std::size_t i = 1; i < n; ++i) {
      if (session.excluded_at[i] != 0) round_options.unpaid.push_back(i);
    }

    RunReport report;
    if (options.crash_probability > 0.0) {
      FaultToleranceOptions ft;
      ft.heartbeat = options.heartbeat;
      ft.faults = sim::FaultPlan::random_crashes(
          n, options.crash_probability, fault_rng);
      FtRunReport ft_report =
          run_protocol_ft(true_network, agents::Population(std::move(agents)),
                          round_options, ft);
      for (const CrashSettlement& settlement : ft_report.crashes) {
        ++session.crash_counts[settlement.processor];
        ++session.crashes_total;
        session.detection_latency_sum += settlement.detection.latency();
      }
      report = std::move(ft_report.round);
    } else {
      report = run_protocol(
          true_network, agents::Population(std::move(agents)), round_options);
    }

    for (std::size_t i = 0; i < n; ++i) {
      session.wealth[i] += report.processors[i].utility;
    }
    for (const auto& incident : report.incidents) {
      // A confirmed crash is a fault, not a deviation — no strike (the
      // machine reboots and rejoins the next round).
      if (incident.kind == Incident::Kind::kCrash) continue;
      const std::size_t loser =
          incident.substantiated ? incident.accused : incident.reporter;
      if (loser == 0) continue;  // the root is obedient by definition
      ++session.strikes[loser];
      if (options.strikes_to_exclude != 0 &&
          session.strikes[loser] >= options.strikes_to_exclude &&
          session.excluded_at[loser] == 0) {
        session.excluded_at[loser] = round;
      }
    }
    session.rounds.push_back(std::move(report));
  }
  return session;
}

}  // namespace dls::protocol
