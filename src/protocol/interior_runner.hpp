// The distributed protocol for interior load origination, by
// composition: each arm of the chain is a boundary-origination chain
// whose head is the obedient root, so one full four-phase chain protocol
// runs per arm (same registry-of-record semantics, separate per-arm
// rounds tagged left/right) and the reports merge into network indexing.
//
// Composition is faithful because nothing in Phases I-IV couples the
// arms: bids propagate within an arm, G_i messages reference only the
// arm's own D values, loads and Λ tokens flow within the arm, and the
// payment rules are per-processor. The only shared quantity is the
// root's three-way split, which is computed from the arms' equivalent
// bids exactly as in dlt::solve_linear_interior.
#pragma once

#include "agents/agent.hpp"
#include "dlt/interior.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"

namespace dls::protocol {

struct InteriorRunReport {
  bool aborted = false;        ///< true if either arm aborted
  std::string abort_reason;
  dlt::InteriorSolution solution;  ///< split computed from the bids
  RunReport left;              ///< the left arm's full report
  RunReport right;             ///< the right arm's full report
  /// Per-network-position final accounting (root has utility 0).
  std::vector<ProcessorReport> processors;
};

/// Runs one round on an interior-origination chain. `population` has one
/// agent per non-root processor, indexed by NETWORK position (1..n-1,
/// skipping the root's position is not required — the agent at the
/// root's index must not exist, so indices run 1..n-1 over a population
/// built with `interior_population` below).
///
/// For simplicity of indexing, agents are supplied arm-by-arm:
///  * `left_agents`  — agents for positions root-1, root-2, ..., 0;
///  * `right_agents` — agents for positions root+1, ..., n-1.
InteriorRunReport run_interior_protocol(
    const net::InteriorLinearNetwork& true_network,
    const agents::Population& left_agents,
    const agents::Population& right_agents, const ProtocolOptions& options);

}  // namespace dls::protocol
