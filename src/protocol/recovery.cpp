#include "protocol/recovery.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "core/dls_lbl.hpp"
#include "crypto/pki.hpp"
#include "obs/obs.hpp"
#include "protocol/meter.hpp"
#include "sim/simulator.hpp"

namespace dls::protocol {

double exponential_backoff(double base, double factor, std::size_t attempt,
                           double cap) noexcept {
  double wait = base;
  for (std::size_t r = 0; r < attempt; ++r) wait *= factor;
  return std::min(wait, cap);
}

std::string to_string(UnderComputeVerdict verdict) {
  switch (verdict) {
    case UnderComputeVerdict::kCompliant: return "compliant";
    case UnderComputeVerdict::kCrash: return "crash";
    case UnderComputeVerdict::kShedding: return "shedding";
  }
  return "unknown";
}

UnderComputeVerdict classify_under_computation(double assigned,
                                               double computed,
                                               bool heartbeats_stopped,
                                               bool successor_excess_tokens,
                                               double tolerance) {
  // Token evidence outlives the node: dumped load convicts a shedder
  // whether or not it died afterwards.
  if (successor_excess_tokens) return UnderComputeVerdict::kShedding;
  if (computed + tolerance >= assigned) return UnderComputeVerdict::kCompliant;
  if (heartbeats_stopped) return UnderComputeVerdict::kCrash;
  // Alive, no dumping, under target: the node is merely slow — the
  // meter prices that through ŵ_j (Lemma 5.3), no incident.
  return UnderComputeVerdict::kCompliant;
}

namespace {

/// One probe exchange per missed deadline, with exponential backoff on
/// the retry timer; a reply cancels the pending retry and re-arms the
/// deadline. Runs on the discrete-event engine so the latency numbers
/// compose with the execution timeline.
struct Monitor {
  HeartbeatConfig cfg;
  std::optional<sim::Time> crash_time;
  double loss_p = 0.0;
  sim::Time horizon = 0.0;
  common::Rng* rng = nullptr;

  DetectionReport report;
  bool done = false;
  std::size_t retries = 0;
  sim::EventId deadline = 0;
  bool deadline_armed = false;
  sim::EventId retry = 0;
  bool retry_armed = false;

  bool alive_at(sim::Time t) const {
    return !crash_time || t < *crash_time;
  }

  double backoff(std::size_t attempt) const {
    return exponential_backoff(cfg.timeout, cfg.backoff_factor, attempt,
                               cfg.max_backoff);
  }

  void arm_deadline(sim::Simulator& sim) {
    deadline_armed = true;
    deadline = sim.schedule_after(cfg.period + cfg.timeout,
                                  [this](sim::Simulator& s) { on_miss(s); });
  }

  void on_beat(sim::Simulator& sim) {
    if (done) return;
    if (deadline_armed) sim.cancel(deadline);
    if (retry_armed && sim.cancel(retry)) retry_armed = false;
    retries = 0;
    if (sim.now() + cfg.period > horizon) {
      done = true;  // no further beats are expected; stop watching
      return;
    }
    arm_deadline(sim);
  }

  void on_miss(sim::Simulator& sim) {
    deadline_armed = false;
    if (done) return;
    ++report.timeouts;
    probe(sim);
  }

  void probe(sim::Simulator& sim) {
    if (done) return;
    ++report.probes_sent;
    const double rtt = cfg.timeout * 0.5;
    const bool probe_through = rng->bernoulli(1.0 - loss_p);
    const bool reply_through = rng->bernoulli(1.0 - loss_p);
    const bool answered =
        alive_at(sim.now()) && probe_through && reply_through;
    if (answered) {
      sim.schedule_after(rtt, [this](sim::Simulator& s) { on_beat(s); });
    }
    // Pessimistically arm the retry; a reply in flight will cancel it.
    const double wait = std::max(backoff(retries), rtt * 1.5);
    retry_armed = true;
    retry = sim.schedule_after(wait, [this](sim::Simulator& s) {
      retry_armed = false;
      if (done) return;
      ++retries;
      if (retries >= cfg.retry_budget) {
        done = true;
        report.confirmed_dead = true;
        report.confirmed_at = s.now();
        return;
      }
      probe(s);
    });
  }
};

}  // namespace

DetectionReport monitor_processor(const HeartbeatConfig& config,
                                  std::optional<sim::Time> crash_time,
                                  double loss_probability, sim::Time horizon,
                                  common::Rng rng) {
  DLS_REQUIRE(config.period > 0.0 && config.timeout > 0.0,
              "heartbeat period and timeout must be positive");
  DLS_REQUIRE(config.retry_budget >= 1, "retry budget must be >= 1");
  DLS_REQUIRE(loss_probability >= 0.0 && loss_probability < 1.0,
              "loss probability must lie in [0, 1)");
  DLS_SPAN("recovery.monitor");

  Monitor monitor;
  monitor.cfg = config;
  monitor.crash_time = crash_time;
  monitor.loss_p = loss_probability;
  monitor.horizon = horizon;
  monitor.rng = &rng;
  monitor.report.crash_time = crash_time.value_or(0.0);

  sim::Simulator sim;
  // The worker streams beats every period while alive (each beat an
  // independent loss draw); the root arms the first deadline at t = 0.
  // Beat times are computed by multiplication, not accumulation, so the
  // schedule is exact and replays identically.
  for (std::size_t k = 1;; ++k) {
    const sim::Time t = config.period * static_cast<double>(k);
    if (t > horizon || !monitor.alive_at(t)) break;
    sim.schedule_at(t, [&monitor](sim::Simulator& s) {
      if (monitor.rng->bernoulli(1.0 - monitor.loss_p)) monitor.on_beat(s);
    });
  }
  monitor.arm_deadline(sim);
  sim.run();

  if (monitor.report.confirmed_dead && !crash_time) {
    monitor.report.false_alarm = true;
  }
  DLS_COUNT("recovery.probes", monitor.report.probes_sent);
  if (monitor.report.confirmed_dead) {
    DLS_COUNT("recovery.crashes_confirmed");
  }
  return monitor.report;
}

namespace {

net::LinearNetwork prefix_network(const net::LinearNetwork& full,
                                  std::size_t count) {
  std::vector<double> w(full.processing_times().begin(),
                        full.processing_times().begin() +
                            static_cast<std::ptrdiff_t>(count));
  std::vector<double> z;
  for (std::size_t j = 1; j < count; ++j) z.push_back(full.z(j));
  return net::LinearNetwork(std::move(w), std::move(z));
}

}  // namespace

FtRunReport run_protocol_ft(const net::LinearNetwork& true_network,
                            const agents::Population& population,
                            const ProtocolOptions& options,
                            const FaultToleranceOptions& ft) {
  const std::size_t n = true_network.size();
  DLS_REQUIRE(n >= 2, "the protocol needs at least one strategic worker");
  DLS_REQUIRE(population.size() == n - 1,
              "population must cover every non-root processor");
  DLS_REQUIRE(!ft.faults.crash_of(0),
              "the root is trusted infrastructure and cannot crash");
  DLS_SPAN_ARGS("protocol.run_ft", "{\"m\":" + std::to_string(n - 1) + "}");

  if (ft.faults.empty()) {
    FtRunReport out;
    out.round = run_protocol(true_network, population, options);
    out.detection.assign(n, DetectionReport{});
    out.verdicts.assign(n, UnderComputeVerdict::kCompliant);
    for (std::size_t i = 0; i < n; ++i) out.survivors.push_back(i);
    out.recovered = !out.round.aborted;
    out.degraded_makespan = out.round.makespan;
    return out;
  }

  FtRunReport out;
  RunReport& report = out.round;
  report.round = options.round;
  common::Rng rng(options.seed);

  // PKI enrolment and ledger accounts, as in the fail-free runner.
  crypto::KeyRegistry registry;
  std::vector<crypto::Signer> signers;
  signers.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    signers.push_back(
        registry.enroll(static_cast<crypto::AgentId>(i), rng));
    report.ledger.open_account(static_cast<payment::AccountId>(i));
  }

  // Phase I/II: bids inward, allocation outward (assumed undisturbed —
  // the chaos plan targets Phase III; pre-execution message faults are
  // absorbed by the same retry machinery the heartbeats use).
  std::vector<double> w(n);
  w[0] = true_network.w(0);
  for (std::size_t i = 1; i < n; ++i) {
    w[i] = population.agent(i).bid();
    report.bids.push_back(w[i]);
  }
  const net::LinearNetwork bid_network(
      std::vector<double>(w),
      {true_network.link_times().begin(), true_network.link_times().end()});
  report.solution = dlt::solve_linear_boundary(bid_network);
  const dlt::LinearSolution& sol = report.solution;
  double fine = options.mechanism.fine;
  if (options.auto_size_fine) {
    fine = std::max(fine, core::cheating_profit_bound(bid_network) + 1.0);
  }

  // Phase III under the fault plan.
  sim::ExecutionPlan plan;
  plan.retain_fraction.resize(n);
  plan.actual_rate.resize(n);
  plan.retain_fraction[0] = sol.alpha_hat[0];
  plan.actual_rate[0] = true_network.w(0);
  for (std::size_t i = 1; i < n; ++i) {
    const agents::StrategicAgent& agent = population.agent(i);
    plan.retain_fraction[i] =
        sol.alpha_hat[i] * (1.0 - agent.behavior.shed_fraction);
    plan.actual_rate[i] = agent.actual_rate();
  }
  const sim::FaultyExecutionResult fx =
      sim::execute_linear_faulty(true_network, plan, ft.faults);
  report.execution = fx.base;
  out.fault_events = fx.events;
  out.any_crash = fx.any_crash();

  // Liveness monitoring: heartbeats double as signed progress claims.
  const sim::Time exec_end = fx.base.trace.end();
  const sim::Time horizon = exec_end + ft.heartbeat.period;
  out.detection.assign(n, DetectionReport{});
  for (std::size_t i = 1; i < n; ++i) {
    const std::optional<sim::Time> crash_time =
        fx.crashed[i] ? std::optional<sim::Time>(fx.crash_time[i])
                      : std::nullopt;
    out.detection[i] =
        monitor_processor(ft.heartbeat, crash_time,
                          ft.faults.path_loss_probability(i), horizon,
                          rng.spawn(0x6ea7u + i));
  }

  // Verdicts: token evidence (excess received vs published D) against
  // liveness evidence (exhausted probe budget).
  const double tol =
      2.0 / static_cast<double>(options.blocks_per_unit);
  out.verdicts.assign(n, UnderComputeVerdict::kCompliant);
  for (std::size_t i = 1; i < n; ++i) {
    // Evidence must pin the dump on its ORIGINATOR: the successor's
    // signed receipt is compared against the compliant forwarding bound
    // (1 - α̂_i) · received_i derived from P_i's own signed receipt. A
    // node merely relaying excess introduced upstream forwards exactly
    // its bound; a node starved by an upstream crash forwards nothing;
    // only the node that kept less than its α̂_i share exceeds it.
    const bool successor_excess =
        (i + 1 < n) &&
        fx.base.received[i + 1] >
            (1.0 - sol.alpha_hat[i]) * fx.base.received[i] + tol;
    out.verdicts[i] = classify_under_computation(
        sol.alpha[i], fx.base.computed[i],
        out.detection[i].confirmed_dead && fx.crashed[i], successor_excess,
        tol);
  }

  // Incidents and fines from the verdicts.
  for (std::size_t i = 1; i < n; ++i) {
    if (out.verdicts[i] == UnderComputeVerdict::kShedding) {
      Incident incident;
      incident.kind = Incident::Kind::kLoadShedding;
      incident.accused = i;
      incident.reporter = i + 1 < n ? i + 1 : 0;
      incident.substantiated = true;
      incident.fine = options.fines_enabled ? fine : 0.0;
      incident.detail = "excess tokens downstream of P" + std::to_string(i);
      report.incidents.push_back(incident);
      if (options.fines_enabled) {
        report.ledger.post({static_cast<payment::AccountId>(i),
                            payment::kTreasury, payment::TransferKind::kFine,
                            fine, "load shedding (token evidence)"});
        report.ledger.post({payment::kTreasury,
                            static_cast<payment::AccountId>(incident.reporter),
                            payment::TransferKind::kReward, fine,
                            "shedding report reward"});
      }
    } else if (fx.crashed[i] && out.detection[i].confirmed_dead) {
      Incident incident;
      incident.kind = Incident::Kind::kCrash;
      incident.accused = i;
      incident.reporter = 0;
      incident.substantiated = true;
      incident.fine = 0.0;
      std::ostringstream detail;
      detail << "crash at t=" << fx.crash_time[i] << ", confirmed t="
             << out.detection[i].confirmed_at << " after "
             << out.detection[i].probes_sent << " probes";
      incident.detail = detail.str();
      report.incidents.push_back(incident);
    }
  }
  for (const DetectionReport& det : out.detection) {
    if (det.confirmed_dead && !det.false_alarm) {
      out.detection_latency = std::max(out.detection_latency, det.latency());
    }
  }

  // Survivor re-solve: redistribute everything nobody verifiably
  // computed over the longest still-reachable prefix.
  for (std::size_t i = 0; i < n; ++i) {
    if (!fx.crashed[i]) out.survivors.push_back(i);
  }
  std::size_t prefix_len = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (fx.crashed[i]) {
      prefix_len = i;
      break;
    }
  }
  const double residual = std::max(0.0, fx.lost_load());
  out.residual_load = residual;

  std::vector<double> final_computed = fx.base.computed;
  out.degraded_makespan = fx.base.makespan;
  if (residual > 1e-12) {
    DLS_SPAN("recovery.resolve");
    DLS_COUNT("recovery.resolves");
    out.recovery_start = exec_end;
    for (std::size_t i = 1; i < n; ++i) {
      if (fx.crashed[i] && out.detection[i].confirmed_dead) {
        out.recovery_start =
            std::max(out.recovery_start, out.detection[i].confirmed_at);
      }
    }
    const net::LinearNetwork rec_bid = prefix_network(bid_network, prefix_len);
    out.recovery_solution = dlt::solve_linear_boundary(rec_bid);

    // The recovery pass is executed for a unit load on the true prefix
    // (DLT is scale-free: times and shares scale linearly by residual).
    sim::ExecutionPlan rec_plan;
    rec_plan.retain_fraction = out.recovery_solution.alpha_hat;
    rec_plan.actual_rate.assign(plan.actual_rate.begin(),
                                plan.actual_rate.begin() +
                                    static_cast<std::ptrdiff_t>(prefix_len));
    const net::LinearNetwork rec_true =
        prefix_network(true_network, prefix_len);
    out.recovery_execution = sim::execute_linear(rec_true, rec_plan);
    for (std::size_t j = 0; j < prefix_len; ++j) {
      final_computed[j] += residual * out.recovery_execution->computed[j];
    }
    out.degraded_makespan =
        std::max(out.degraded_makespan,
                 out.recovery_start +
                     residual * out.recovery_execution->makespan);
  }
  double covered = 0.0;
  for (const double c : final_computed) covered += c;
  out.recovered = std::abs(covered - 1.0) <= 1e-9;
  report.makespan = out.degraded_makespan;

  // Phase IV: metering (dropped meters fall back to the declared bid),
  // assessment over the *final* computed loads, and settlement.
  const TamperProofMeter meter(signers[0], options.round);
  std::vector<double> metered(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double declared = i == 0 ? true_network.w(0) : w[i];
    if (!fx.meter_ok[i]) {
      metered[i] = declared;
      continue;
    }
    const crypto::SignedClaim claim = meter.read(fx.base, i, declared);
    DLS_REQUIRE(crypto::verify(registry, claim), "meter claims must verify");
    metered[i] = claim.claim.value;
  }
  report.assessment = core::assess_dls_lbl(bid_network, metered,
                                           final_computed, options.mechanism,
                                           /*solution_found=*/true);

  for (std::size_t j = 1; j < n; ++j) {
    core::Assessment& a = report.assessment.processors[j];
    if (fx.crashed[j]) {
      // E_j settlement: the crashed node is paid exactly its verified
      // partial work at the metered rate — no bonus, no fine. Utility
      // nets to zero: it is made whole for effort, not rewarded for a
      // contract it failed.
      const double verified = fx.base.computed[j];
      const double paid = verified * metered[j];
      CrashSettlement settlement;
      settlement.processor = j;
      settlement.assigned = sol.alpha[j];
      settlement.verified_computed = verified;
      settlement.settlement_paid = paid;
      settlement.fine = 0.0;
      settlement.detection = out.detection[j];
      out.crashes.push_back(settlement);

      report.assessment.total_payment += paid - a.money.payment;
      a.money.compensation = paid;
      a.money.recompense = paid;
      a.money.bonus = 0.0;
      a.money.payment = paid;
      a.money.utility = a.money.valuation + paid;
      if (paid > 0.0) {
        report.ledger.post({payment::kTreasury,
                            static_cast<payment::AccountId>(j),
                            payment::TransferKind::kRecompense, paid,
                            "crash settlement E_" + std::to_string(j)});
      }
      continue;
    }
    const double payment = a.money.payment;
    const double recompense = std::min(a.money.recompense, payment);
    if (payment > 0.0) {
      if (recompense > 0.0) {
        report.ledger.post({payment::kTreasury,
                            static_cast<payment::AccountId>(j),
                            payment::TransferKind::kRecompense, recompense,
                            "E_" + std::to_string(j) + " (recovery share)"});
      }
      report.ledger.post({payment::kTreasury,
                          static_cast<payment::AccountId>(j),
                          payment::TransferKind::kCompensation,
                          payment - recompense, "Q_" + std::to_string(j)});
    } else if (payment < 0.0) {
      report.ledger.post({static_cast<payment::AccountId>(j),
                          payment::kTreasury,
                          payment::TransferKind::kCompensation, -payment,
                          "Q_" + std::to_string(j)});
    }
  }
  const double root_cost =
      report.assessment.processors[0].money.compensation;
  if (root_cost > 0.0) {
    report.ledger.post({payment::kTreasury, 0,
                        payment::TransferKind::kCompensation, root_cost,
                        "root reimbursement"});
  }

  // Final per-processor accounting, mirroring the fail-free runner.
  report.processors.assign(n, ProcessorReport{});
  for (std::size_t i = 0; i < n; ++i) {
    ProcessorReport& p = report.processors[i];
    p.index = i;
    p.true_rate = true_network.w(i);
    p.bid_rate = w[i];
    const core::Assessment& a = report.assessment.processors[i];
    p.actual_rate = a.actual_rate;
    p.assigned = a.alpha;
    p.computed = a.computed;
    p.valuation = a.money.valuation;
  }
  for (const auto& inc : report.incidents) {
    const std::size_t loser = inc.substantiated ? inc.accused : inc.reporter;
    const std::size_t winner = inc.substantiated ? inc.reporter : inc.accused;
    if (inc.fine > 0.0) {
      report.processors[loser].fines += inc.fine;
      report.processors[winner].rewards += inc.fine;
    }
  }
  for (std::size_t i = 1; i < n; ++i) {
    report.processors[i].payment =
        report.ledger.net_of_kind(static_cast<payment::AccountId>(i),
                                  payment::TransferKind::kCompensation) +
        report.ledger.net_of_kind(static_cast<payment::AccountId>(i),
                                  payment::TransferKind::kRecompense);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ProcessorReport& p = report.processors[i];
    p.utility = p.valuation + p.payment - p.fines + p.rewards;
  }
  report.processors[0].utility = 0.0;  // eq. (4.3)
  return out;
}

}  // namespace dls::protocol
