#include "protocol/tree_runner.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/tolerance.hpp"
#include "crypto/signed_claim.hpp"
#include "dlt/star.hpp"
#include "protocol/tokens.hpp"

namespace dls::protocol {

namespace {

using crypto::Claim;
using crypto::ClaimKind;
using crypto::SignedClaim;

struct TreeRound {
  const net::TreeNetwork* truth = nullptr;
  const agents::Population* population = nullptr;
  ProtocolOptions options;
  double fine = 0.0;

  crypto::KeyRegistry registry;
  std::vector<crypto::Signer> signers;
  common::Rng rng{1};
  TreeRunReport report;

  std::size_t n() const noexcept { return truth->size(); }

  const agents::Behavior& behavior(std::size_t v) const {
    return population->agent(v).behavior;
  }

  double charged(double amount) const noexcept {
    return options.fines_enabled ? amount : 0.0;
  }

  void post_fine(std::size_t offender, std::size_t beneficiary,
                 double amount, double reward, payment::TransferKind kind,
                 const char* memo) {
    if (!options.fines_enabled) return;
    report.ledger.post({static_cast<payment::AccountId>(offender),
                        payment::kTreasury, kind, amount, memo});
    if (reward > 0.0 && beneficiary != offender) {
      report.ledger.post({payment::kTreasury,
                          static_cast<payment::AccountId>(beneficiary),
                          payment::TransferKind::kReward, reward, memo});
    }
  }
};

/// Everything the mechanism could pay on a unit load for this bid tree —
/// the fine must exceed it.
double tree_cheating_profit_bound(const net::TreeNetwork& bids) {
  double bound = 0.0;
  for (std::size_t v = 1; v < bids.size(); ++v) {
    bound += bids.w(v) + bids.w(bids.parent(v));
  }
  return bound;
}

/// Phase I: signed subtree bids to each parent. Returns false on abort.
bool phase1(TreeRound& round, std::vector<SignedClaim>& bid_claims) {
  const std::size_t n = round.n();
  const net::TreeNetwork& truth = *round.truth;

  // Equivalent subtree bids from the rate bids.
  std::vector<double> w(n);
  w[0] = truth.w(0);
  for (std::size_t v = 1; v < n; ++v) {
    w[v] = round.population->agent(v).bid();
  }
  std::vector<double> z(n, 1.0);
  std::vector<std::size_t> parent(n, 0);
  for (std::size_t v = 1; v < n; ++v) {
    z[v] = truth.z(v);
    parent[v] = truth.parent(v);
  }
  const net::TreeNetwork bid_tree(w, z, parent);
  const dlt::TreeSolution bid_sol = dlt::solve_tree(bid_tree);

  bid_claims.assign(n, SignedClaim{});
  for (std::size_t v = 0; v < n; ++v) {
    bid_claims[v] = crypto::make_signed(
        round.signers[v],
        Claim{ClaimKind::kEquivalentBid, static_cast<crypto::AgentId>(v),
              round.options.round, bid_sol.equivalent_w[v]});
  }

  for (std::size_t v = 1; v < n; ++v) {
    if (!round.behavior(v).contradictory_messages) continue;
    const SignedClaim duplicate = crypto::make_signed(
        round.signers[v],
        Claim{ClaimKind::kEquivalentBid, static_cast<crypto::AgentId>(v),
              round.options.round, bid_sol.equivalent_w[v] * 1.05});
    Incident incident;
    incident.kind = Incident::Kind::kContradictoryMessages;
    incident.accused = v;
    incident.reporter = truth.parent(v);
    incident.substantiated =
        crypto::verify(round.registry, bid_claims[v]) &&
        crypto::verify(round.registry, duplicate) &&
        crypto::contradicts(bid_claims[v], duplicate);
    incident.fine = round.charged(round.fine);
    incident.detail = "two signed subtree bids with different values";
    round.report.incidents.push_back(incident);
    round.post_fine(v, truth.parent(v), round.fine, round.fine,
                    payment::TransferKind::kFine,
                    "tree phase I contradiction");
    round.report.aborted = true;
    round.report.abort_reason =
        "contradictory subtree bids from node " + std::to_string(v);
    return false;
  }
  for (std::size_t v = 1; v < n; ++v) {
    if (!round.behavior(v).false_accusation) continue;
    const std::size_t accused = truth.parent(v);
    SignedClaim forged = crypto::make_signed(
        round.signers[v],
        Claim{ClaimKind::kEquivalentBid,
              static_cast<crypto::AgentId>(accused), round.options.round,
              99.0});
    forged.signer = static_cast<crypto::AgentId>(accused);
    Incident incident;
    incident.kind = Incident::Kind::kFalseAccusation;
    incident.accused = accused;
    incident.reporter = v;
    incident.substantiated = crypto::verify(round.registry, forged);
    incident.fine = round.charged(round.fine);
    incident.detail = "fabricated contradiction evidence";
    round.report.incidents.push_back(incident);
    if (!incident.substantiated && accused != 0) {
      round.post_fine(v, accused, round.fine, round.fine,
                      payment::TransferKind::kFine,
                      "tree false accusation exculpated");
    } else if (!incident.substantiated) {
      // Accusing the obedient root still costs the accuser the fine.
      round.post_fine(v, 0, round.fine, 0.0, payment::TransferKind::kFine,
                      "tree false accusation against the root");
    }
  }
  return true;
}

/// Phase II: signed loads flow pre-order; every child recomputes its
/// parent's local star from the signed claims and checks its share.
bool phase2(TreeRound& round, const dlt::TreeSolution& bid_sol,
            const std::vector<SignedClaim>& bid_claims) {
  const std::size_t n = round.n();
  const net::TreeNetwork& truth = *round.truth;

  std::vector<SignedClaim> load_claims(n);  // dsm_parent(L_v)
  std::vector<double> load_value(n);
  load_value[0] = 1.0;
  load_claims[0] = crypto::make_signed(
      round.signers[0], Claim{ClaimKind::kReceivedLoad, 0,
                              round.options.round, 1.0});
  for (std::size_t v = 1; v < n; ++v) {
    const std::size_t p = truth.parent(v);
    double value = bid_sol.received[v];
    // Deviation (ii): a miscomputing parent ships its first child 10%
    // less than the algorithm prescribes.
    if (p >= 1 && round.behavior(p).miscompute_allocation &&
        truth.children(p).front() == v) {
      value *= 0.9;
    }
    load_value[v] = value;
    load_claims[v] = crypto::make_signed(
        round.signers[p], Claim{ClaimKind::kReceivedLoad,
                                static_cast<crypto::AgentId>(v),
                                round.options.round, value});
  }

  for (std::size_t v = 1; v < n; ++v) {
    const std::size_t p = truth.parent(v);
    // Authenticity of the bundle.
    if (!crypto::verify(round.registry, load_claims[v]) ||
        !crypto::verify(round.registry, load_claims[p])) {
      round.report.aborted = true;
      round.report.abort_reason = "unverifiable load claim";
      return false;
    }
    // Recompute the parent's local star share from the signed sibling
    // subtree bids.
    std::vector<double> sw, sz;
    std::vector<std::size_t> order(truth.children(p).begin(),
                                   truth.children(p).end());
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return truth.z(a) < truth.z(b);
                     });
    for (const std::size_t c : order) {
      DLS_REQUIRE(crypto::verify(round.registry, bid_claims[c]),
                  "sibling bid claims must verify");
      sw.push_back(bid_claims[c].claim.value);
      sz.push_back(truth.z(c));
    }
    const double parent_rate =
        p == 0 ? truth.w(0) : round.population->agent(p).bid();
    const net::StarNetwork local(parent_rate, std::move(sw), std::move(sz));
    const dlt::StarSolution local_sol = dlt::solve_star(local);
    double expected_share = 0.0;
    for (std::size_t k = 0; k < order.size(); ++k) {
      if (order[k] == v) expected_share = local_sol.alpha[k];
    }
    const double expected = load_value[p] * expected_share;
    if (!common::approx_equal(load_value[v], expected, 1e-9)) {
      Incident incident;
      incident.kind = Incident::Kind::kMiscomputation;
      incident.accused = p;
      incident.reporter = v;
      incident.substantiated = true;
      incident.fine = round.charged(round.fine);
      incident.detail = "child load inconsistent with the local star";
      round.report.incidents.push_back(incident);
      round.post_fine(p, v, round.fine, round.fine,
                      payment::TransferKind::kFine,
                      "tree phase II miscomputation");
      round.report.aborted = true;
      round.report.abort_reason = "miscomputed load from node " +
                                  std::to_string(p) + " to node " +
                                  std::to_string(v);
      return false;
    }
  }
  return true;
}

void phase3(TreeRound& round, const dlt::TreeSolution& bid_sol) {
  const std::size_t n = round.n();
  const net::TreeNetwork& truth = *round.truth;

  sim::TreeExecutionPlan plan;
  plan.keep_multiplier.assign(n, 1.0);
  plan.actual_rate.resize(n);
  plan.actual_rate[0] = truth.w(0);
  for (std::size_t v = 1; v < n; ++v) {
    plan.keep_multiplier[v] = 1.0 - round.behavior(v).shed_fraction;
    plan.actual_rate[v] = round.population->agent(v).actual_rate();
  }
  round.report.execution = sim::execute_tree(truth, bid_sol, plan);
  const sim::TreeExecutionResult& exec = *round.report.execution;
  round.report.makespan = exec.makespan;

  // Λ tokens split along the tree; the first overloaded node reports its
  // parent, and the fine covers every descendant's extra work.
  const double tol =
      2.0 / static_cast<double>(round.options.blocks_per_unit);
  for (std::size_t v = 1; v < n; ++v) {
    if (exec.received[v] <= bid_sol.received[v] + tol) continue;
    if (round.behavior(v).suppress_grievance) continue;
    const std::size_t offender = truth.parent(v);
    double extra_cost = 0.0;
    for (std::size_t u = 1; u < n; ++u) {
      const double extra = exec.computed[u] - bid_sol.alpha[u];
      if (extra > 0.0) extra_cost += extra * plan.actual_rate[u];
    }
    Incident incident;
    incident.kind = Incident::Kind::kLoadShedding;
    incident.accused = offender;
    incident.reporter = v;
    incident.substantiated = true;
    incident.fine = round.charged(round.fine + extra_cost);
    incident.detail = "received more than the published load";
    round.report.incidents.push_back(incident);
    round.post_fine(offender, v, round.fine + extra_cost, round.fine,
                    payment::TransferKind::kFine,
                    "tree phase III load shedding");
    break;
  }

  for (std::size_t v = 1; v < n; ++v) {
    if (!round.behavior(v).corrupt_data) continue;
    round.report.solution_found = false;
    Incident incident;
    incident.kind = Incident::Kind::kDataCorruption;
    incident.accused = v;
    incident.reporter = 0;
    incident.substantiated = true;
    incident.detail = "forwarded corrupted data";
    round.report.incidents.push_back(incident);
  }
}

void phase4(TreeRound& round) {
  const std::size_t n = round.n();
  const net::TreeNetwork& truth = *round.truth;
  const sim::TreeExecutionResult& exec = *round.report.execution;

  // Metered actual rates (ground truth from the execution).
  std::vector<double> metered(n);
  metered[0] = truth.w(0);
  for (std::size_t v = 1; v < n; ++v) {
    metered[v] = round.population->agent(v).actual_rate();
  }

  std::vector<double> w(n), z(n, 1.0);
  std::vector<std::size_t> parent(n, 0);
  w[0] = truth.w(0);
  for (std::size_t v = 1; v < n; ++v) {
    w[v] = round.population->agent(v).bid();
    z[v] = truth.z(v);
    parent[v] = truth.parent(v);
  }
  const net::TreeNetwork bid_tree(std::move(w), std::move(z),
                                  std::move(parent));
  round.report.assessment = core::assess_dls_tree(
      bid_tree, metered, exec.computed, round.options.mechanism,
      round.report.solution_found);

  const double q = round.options.mechanism.audit_probability;
  for (std::size_t v = 1; v < n; ++v) {
    const auto& a = round.report.assessment.nodes[v];
    const double correct = a.payment;
    const double overcharge = round.behavior(v).overcharge;
    double paid = correct + overcharge;
    if (overcharge > 0.0 && round.rng.bernoulli(q)) {
      paid = correct;
      Incident incident;
      incident.kind = Incident::Kind::kOvercharge;
      incident.accused = v;
      incident.reporter = 0;
      incident.substantiated = true;
      incident.fine = round.charged(round.fine / q);
      incident.detail = "billed above the provable payment";
      round.report.incidents.push_back(incident);
      round.post_fine(v, 0, round.fine / q, 0.0,
                      payment::TransferKind::kAuditPenalty,
                      "tree overcharge");
    }
    if (paid > 0.0) {
      round.report.ledger.post({payment::kTreasury,
                                static_cast<payment::AccountId>(v),
                                payment::TransferKind::kCompensation, paid,
                                "Q_" + std::to_string(v)});
    } else if (paid < 0.0) {
      round.report.ledger.post({static_cast<payment::AccountId>(v),
                                payment::kTreasury,
                                payment::TransferKind::kCompensation, -paid,
                                "Q_" + std::to_string(v)});
    }
  }
  const double root_cost =
      round.report.assessment.nodes[0].compensation;
  if (root_cost > 0.0) {
    round.report.ledger.post({payment::kTreasury, 0,
                              payment::TransferKind::kCompensation,
                              root_cost, "root reimbursement"});
  }
}

void finalize(TreeRound& round) {
  const std::size_t n = round.n();
  round.report.nodes.assign(n, ProcessorReport{});
  for (std::size_t v = 0; v < n; ++v) {
    ProcessorReport& p = round.report.nodes[v];
    p.index = v;
    p.true_rate = round.truth->w(v);
    p.bid_rate =
        v == 0 ? round.truth->w(0) : round.population->agent(v).bid();
    if (!round.report.aborted) {
      const auto& a = round.report.assessment.nodes[v];
      p.actual_rate = a.actual_rate;
      p.assigned = a.alpha;
      p.computed = a.computed;
      p.valuation = a.valuation;
    }
  }
  for (const auto& inc : round.report.incidents) {
    const std::size_t loser = inc.substantiated ? inc.accused : inc.reporter;
    const std::size_t winner = inc.substantiated ? inc.reporter : inc.accused;
    if (inc.fine > 0.0 && loser >= 1) {
      round.report.nodes[loser].fines += inc.fine;
      if (inc.kind != Incident::Kind::kOvercharge && winner >= 1) {
        round.report.nodes[winner].rewards += round.charged(round.fine);
      }
    }
  }
  for (std::size_t v = 1; v < n; ++v) {
    round.report.nodes[v].payment = round.report.ledger.net_of_kind(
        static_cast<payment::AccountId>(v),
        payment::TransferKind::kCompensation);
  }
  for (std::size_t v = 0; v < n; ++v) {
    ProcessorReport& p = round.report.nodes[v];
    p.utility = p.valuation + p.payment - p.fines + p.rewards;
  }
  round.report.nodes[0].utility = 0.0;
}

}  // namespace

TreeRunReport run_tree_protocol(const net::TreeNetwork& true_network,
                                const agents::Population& population,
                                const ProtocolOptions& options) {
  const std::size_t n = true_network.size();
  DLS_REQUIRE(n >= 2, "the protocol needs at least one strategic node");
  DLS_REQUIRE(population.size() == n - 1,
              "population must cover every non-root node");

  TreeRound round;
  round.truth = &true_network;
  round.population = &population;
  round.options = options;
  round.rng = common::Rng(options.seed);

  round.signers.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    round.signers.push_back(
        round.registry.enroll(static_cast<crypto::AgentId>(v), round.rng));
    round.report.ledger.open_account(static_cast<payment::AccountId>(v));
  }

  // The bid tree and its allocation (shared by Phases II-IV).
  std::vector<double> w(n), z(n, 1.0);
  std::vector<std::size_t> parent(n, 0);
  w[0] = true_network.w(0);
  for (std::size_t v = 1; v < n; ++v) {
    w[v] = population.agent(v).bid();
    round.report.bids.push_back(w[v]);
    z[v] = true_network.z(v);
    parent[v] = true_network.parent(v);
  }
  const net::TreeNetwork bid_tree(std::move(w), std::move(z),
                                  std::move(parent));
  const dlt::TreeSolution bid_sol = dlt::solve_tree(bid_tree);
  round.fine = options.mechanism.fine;
  if (options.auto_size_fine) {
    round.fine = std::max(round.fine,
                          tree_cheating_profit_bound(bid_tree) + 1.0);
  }

  std::vector<SignedClaim> bid_claims;
  if (phase1(round, bid_claims) && phase2(round, bid_sol, bid_claims)) {
    phase3(round, bid_sol);
    phase4(round);
  }
  finalize(round);
  return round.report;
}

}  // namespace dls::protocol
