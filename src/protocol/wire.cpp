#include "protocol/wire.hpp"

namespace dls::protocol {

namespace {

constexpr std::string_view kClaimMagic = "dls.wire.claim.v1";
constexpr std::string_view kBidMagic = "dls.wire.bid.v1";
constexpr std::string_view kAllocMagic = "dls.wire.alloc.v1";
constexpr std::string_view kReportMagic = "dls.wire.report.v1";
constexpr std::string_view kPaymentMagic = "dls.wire.payment.v1";

void put_signed_claim(codec::Writer& w, const crypto::SignedClaim& sc) {
  // The claim body travels as its canonical (signed) encoding so the
  // receiver verifies exactly the bytes that were signed.
  w.bytes(crypto::encode(sc.claim));
  w.u32(sc.signer);
  w.raw(std::span<const std::uint8_t>(sc.sig.tag.data(), sc.sig.tag.size()));
}

crypto::SignedClaim take_signed_claim(codec::Reader& r) {
  crypto::SignedClaim sc;
  const codec::Bytes body = r.bytes();
  sc.claim = crypto::decode_claim(body);
  sc.signer = r.u32();
  for (auto& byte : sc.sig.tag) byte = r.u8();
  return sc;
}

void expect_magic(codec::Reader& r, std::string_view magic) {
  const std::string found = r.string();
  if (found != magic) {
    throw codec::DecodeError("bad wire magic: expected '" +
                             std::string(magic) + "', got '" + found + "'");
  }
}

}  // namespace

codec::Bytes encode_signed_claim(const crypto::SignedClaim& sc) {
  codec::Writer w;
  w.string(kClaimMagic);
  put_signed_claim(w, sc);
  return w.take();
}

crypto::SignedClaim decode_signed_claim(std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  expect_magic(r, kClaimMagic);
  crypto::SignedClaim sc = take_signed_claim(r);
  r.expect_done();
  return sc;
}

codec::Bytes encode_bid_message(const BidMessage& message) {
  codec::Writer w;
  w.string(kBidMagic);
  put_signed_claim(w, message.equivalent_bid);
  return w.take();
}

BidMessage decode_bid_message(std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  expect_magic(r, kBidMagic);
  BidMessage message{take_signed_claim(r)};
  r.expect_done();
  return message;
}

codec::Bytes encode_allocation_message(const AllocationMessage& message) {
  codec::Writer w;
  w.string(kAllocMagic);
  put_signed_claim(w, message.received_pred);
  put_signed_claim(w, message.received_self);
  put_signed_claim(w, message.equiv_bid_pred);
  put_signed_claim(w, message.rate_bid_pred);
  put_signed_claim(w, message.equiv_bid_self);
  return w.take();
}

AllocationMessage decode_allocation_message(
    std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  expect_magic(r, kAllocMagic);
  AllocationMessage message;
  message.received_pred = take_signed_claim(r);
  message.received_self = take_signed_claim(r);
  message.equiv_bid_pred = take_signed_claim(r);
  message.rate_bid_pred = take_signed_claim(r);
  message.equiv_bid_self = take_signed_claim(r);
  r.expect_done();
  return message;
}

codec::Bytes encode_report_message(const ReportMessage& message) {
  codec::Writer w;
  w.string(kReportMagic);
  put_signed_claim(w, message.metered_rate);
  put_signed_claim(w, message.token_count);
  return w.take();
}

ReportMessage decode_report_message(std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  expect_magic(r, kReportMagic);
  ReportMessage message;
  message.metered_rate = take_signed_claim(r);
  message.token_count = take_signed_claim(r);
  r.expect_done();
  return message;
}

codec::Bytes encode_payment_message(const PaymentMessage& message) {
  codec::Writer w;
  w.string(kPaymentMagic);
  w.u32(message.processor);
  w.u64(message.round);
  w.f64(message.compensation);
  w.f64(message.bonus);
  w.f64(message.solution_bonus);
  w.f64(message.payment);
  put_signed_claim(w, message.metered_rate);
  return w.take();
}

PaymentMessage decode_payment_message(std::span<const std::uint8_t> data) {
  codec::Reader r(data);
  expect_magic(r, kPaymentMagic);
  PaymentMessage message;
  message.processor = r.u32();
  message.round = r.u64();
  message.compensation = r.f64();
  message.bonus = r.f64();
  message.solution_bonus = r.f64();
  message.payment = r.f64();
  message.metered_rate = take_signed_claim(r);
  r.expect_done();
  return message;
}

}  // namespace dls::protocol
