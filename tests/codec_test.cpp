// Tests for the canonical byte codec.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>

#include "codec/bytes.hpp"

namespace {

using dls::codec::Bytes;
using dls::codec::DecodeError;
using dls::codec::Reader;
using dls::codec::to_hex;
using dls::codec::Writer;

TEST(Codec, FixedWidthRoundtrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.done());
}

TEST(Codec, LittleEndianLayout) {
  Writer w;
  w.u32(0x01020304);
  const Bytes& b = w.data();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Codec, VarintRoundtripBoundaries) {
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 255, 300, 16383, 16384,
      std::numeric_limits<std::uint32_t>::max(),
      std::numeric_limits<std::uint64_t>::max()};
  for (const auto v : cases) {
    Writer w;
    w.varint(v);
    Reader r(w.data());
    EXPECT_EQ(r.varint(), v) << v;
    EXPECT_TRUE(r.done());
  }
}

TEST(Codec, VarintCompactness) {
  Writer w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Codec, DoubleRoundtripPreservesBits) {
  const double cases[] = {0.0, -0.0, 1.5, -3.25e-200,
                          std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::denorm_min()};
  for (const double v : cases) {
    Writer w;
    w.f64(v);
    Reader r(w.data());
    const double back = r.f64();
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0);
  }
  // NaN keeps its bit pattern too.
  Writer w;
  w.f64(std::numeric_limits<double>::quiet_NaN());
  Reader r(w.data());
  EXPECT_TRUE(std::isnan(r.f64()));
}

TEST(Codec, F64ArrayMatchesPerElementEncoding) {
  const double values[] = {0.0, -0.0, 1.5, -3.25e-200,
                           std::numeric_limits<double>::infinity(),
                           std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::denorm_min()};
  Writer bulk;
  bulk.f64_array(values);
  Writer scalar;
  for (const double v : values) scalar.f64(v);
  EXPECT_EQ(bulk.data(), scalar.data());

  double back[std::size(values)] = {};
  Reader r(bulk.data());
  r.f64_array(back);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(std::memcmp(back, values, sizeof values), 0);
}

TEST(Codec, F64ArrayEmptyAndTruncated) {
  Writer w;
  w.f64_array({});
  EXPECT_EQ(w.size(), 0u);

  w.f64(1.0);
  Reader r(w.data());
  double out[2] = {};
  EXPECT_THROW(r.f64_array(out), DecodeError);
  // A failed bulk read consumes nothing.
  EXPECT_EQ(r.remaining(), sizeof(double));
}

TEST(Codec, StringAndBytesRoundtrip) {
  Writer w;
  w.string("hello");
  w.string("");
  const Bytes blob = {1, 2, 3};
  w.bytes(blob);
  Reader r(w.data());
  EXPECT_EQ(r.string(), "hello");
  EXPECT_EQ(r.string(), "");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.done());
}

TEST(Codec, TruncatedBufferThrows) {
  Writer w;
  w.u64(7);
  Bytes data = w.take();
  data.pop_back();
  Reader r(data);
  EXPECT_THROW(r.u64(), DecodeError);
}

TEST(Codec, TruncatedStringThrows) {
  Writer w;
  w.varint(10);  // claims 10 bytes follow
  w.u8('x');
  Reader r(w.data());
  EXPECT_THROW(r.string(), DecodeError);
}

TEST(Codec, OverlongVarintThrows) {
  Bytes data(11, 0x80);  // never terminates within 10 bytes
  Reader r(data);
  EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Codec, ExpectDoneDetectsTrailingBytes) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(Codec, RawAppendsWithoutFraming) {
  Writer w;
  const Bytes blob = {9, 8, 7};
  w.raw(blob);
  EXPECT_EQ(w.data(), blob);
}

TEST(Codec, HexRendering) {
  const Bytes data = {0x00, 0xff, 0x10};
  EXPECT_EQ(to_hex(data), "00ff10");
}

}  // namespace
