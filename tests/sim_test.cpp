// Tests for the discrete-event engine, the chain execution model and the
// Gantt renderer. The central property: the simulator reproduces the
// closed forms of eqs. (2.1)-(2.2) exactly.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "sim/gantt.hpp"
#include "sim/linear_execution.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace {

using dls::common::Rng;
using dls::dlt::finish_times;
using dls::dlt::solve_linear_boundary;
using dls::net::LinearNetwork;
using dls::sim::Activity;
using dls::sim::execute_linear;
using dls::sim::ExecutionPlan;
using dls::sim::ExecutionResult;
using dls::sim::Interval;
using dls::sim::render_gantt;
using dls::sim::Simulator;
using dls::sim::Trace;

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(2.0, [&](Simulator&) { fired.push_back(2); });
  sim.schedule_at(1.0, [&](Simulator&) { fired.push_back(1); });
  sim.schedule_at(3.0, [&](Simulator&) { fired.push_back(3); });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, SimultaneousEventsKeepScheduleOrder) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&fired, i](Simulator&) { fired.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void(Simulator&)> tick = [&](Simulator& s) {
    if (++count < 10) s.schedule_after(0.5, tick);
  };
  sim.schedule_at(0.0, tick);
  EXPECT_DOUBLE_EQ(sim.run(), 4.5);
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunUntilLeavesFutureEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Simulator&) { ++fired; });
  sim.schedule_at(5.0, [&](Simulator&) { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RejectsSchedulingIntoThePast) {
  Simulator sim;
  sim.schedule_at(1.0, [](Simulator& s) {
    EXPECT_THROW(s.schedule_at(0.5, [](Simulator&) {}),
                 dls::PreconditionError);
  });
  sim.run();
}

TEST(Trace, FinishQueriesAndOnePortCheck) {
  Trace trace;
  trace.record(Interval{0, Activity::kSend, 0.0, 1.0, 0.5});
  trace.record(Interval{0, Activity::kCompute, 0.0, 2.0, 0.5});
  trace.record(Interval{1, Activity::kReceive, 0.0, 1.0, 0.5});
  EXPECT_DOUBLE_EQ(trace.processor_finish(0), 2.0);
  EXPECT_DOUBLE_EQ(trace.compute_finish(0), 2.0);
  EXPECT_DOUBLE_EQ(trace.compute_finish(1), 0.0);
  EXPECT_DOUBLE_EQ(trace.end(), 2.0);
  EXPECT_EQ(trace.processors(), 2u);
  EXPECT_TRUE(trace.check_one_port().empty());
  trace.record(Interval{0, Activity::kSend, 0.5, 1.5, 0.1});
  EXPECT_FALSE(trace.check_one_port().empty());
}

TEST(Trace, OverlappingReceivesAreFlagged) {
  Trace trace;
  trace.record(Interval{2, Activity::kReceive, 0.0, 1.0, 0.5});
  trace.record(Interval{2, Activity::kReceive, 0.5, 1.5, 0.5});
  const std::string violation = trace.check_one_port();
  ASSERT_FALSE(violation.empty());
  EXPECT_NE(violation.find("receive"), std::string::npos);
}

TEST(Trace, RejectsBackwardsIntervals) {
  Trace trace;
  EXPECT_THROW(trace.record(Interval{0, Activity::kSend, 2.0, 1.0, 0.1}),
               dls::PreconditionError);
}

TEST(ExecuteLinear, CompliantRunMatchesClosedForm) {
  Rng rng(123);
  for (int rep = 0; rep < 25; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 25));
    const LinearNetwork net =
        LinearNetwork::random(m + 1, rng, 0.5, 5.0, 0.05, 0.5);
    const auto sol = solve_linear_boundary(net);
    const ExecutionResult result =
        execute_linear(net, ExecutionPlan::compliant(net, sol));
    const std::vector<double> expected = finish_times(net, sol.alpha);
    for (std::size_t i = 0; i < net.size(); ++i) {
      EXPECT_NEAR(result.finish_time[i], expected[i], 1e-9)
          << "P" << i << " " << net.describe();
      EXPECT_NEAR(result.computed[i], sol.alpha[i], 1e-12);
      EXPECT_NEAR(result.received[i], sol.received[i], 1e-12);
    }
    EXPECT_NEAR(result.makespan, sol.makespan, 1e-9);
    EXPECT_TRUE(result.trace.check_one_port().empty());
  }
}

TEST(ExecuteLinear, SheddingOverloadsTheSuccessor) {
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const auto sol = solve_linear_boundary(net);
  ExecutionPlan plan = ExecutionPlan::compliant(net, sol);
  plan.retain_fraction[1] *= 0.5;  // P1 sheds half its share
  const ExecutionResult result = execute_linear(net, plan);
  EXPECT_LT(result.computed[1], sol.alpha[1]);
  EXPECT_GT(result.received[2], sol.received[2] + 1e-12);
  EXPECT_GT(result.computed[2], sol.alpha[2]);
  // Everything still gets computed somewhere.
  double total = 0.0;
  for (const double c : result.computed) total += c;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ExecuteLinear, SlowProcessorDelaysOnlyItself) {
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const auto sol = solve_linear_boundary(net);
  ExecutionPlan plan = ExecutionPlan::compliant(net, sol);
  plan.actual_rate[1] *= 2.0;
  const ExecutionResult slow = execute_linear(net, plan);
  const ExecutionResult fast =
      execute_linear(net, ExecutionPlan::compliant(net, sol));
  EXPECT_GT(slow.finish_time[1], fast.finish_time[1]);
  // Store-and-forward with front-ends: P2's schedule is unaffected by
  // P1's compute speed.
  EXPECT_NEAR(slow.finish_time[2], fast.finish_time[2], 1e-12);
  EXPECT_NEAR(slow.finish_time[0], fast.finish_time[0], 1e-12);
}

TEST(ExecuteLinear, TerminalAlwaysRetainsEverything) {
  const LinearNetwork net({1.0, 1.0}, {0.2});
  const auto sol = solve_linear_boundary(net);
  ExecutionPlan plan = ExecutionPlan::compliant(net, sol);
  plan.retain_fraction[1] = 0.25;  // ignored: P_m has no successor
  const ExecutionResult result = execute_linear(net, plan);
  EXPECT_NEAR(result.computed[1], result.received[1], 1e-15);
}

TEST(ExecuteLinear, ValidatesPlanShape) {
  const LinearNetwork net({1.0, 1.0}, {0.2});
  ExecutionPlan plan;
  plan.retain_fraction = {0.5};
  plan.actual_rate = {1.0, 1.0};
  EXPECT_THROW(execute_linear(net, plan), dls::PreconditionError);
  plan.retain_fraction = {0.5, 1.0};
  plan.actual_rate = {1.0, 0.0};
  EXPECT_THROW(execute_linear(net, plan), dls::PreconditionError);
}

TEST(Gantt, RendersCommAboveAndComputeBelow) {
  const LinearNetwork net({1.0, 2.0}, {0.5});
  const auto sol = solve_linear_boundary(net);
  const ExecutionResult result =
      execute_linear(net, ExecutionPlan::compliant(net, sol));
  std::ostringstream os;
  render_gantt(os, result.trace, {.width = 60, .title = "golden"});
  const std::string out = os.str();
  EXPECT_NE(out.find("golden"), std::string::npos);
  EXPECT_NE(out.find("P0 comm"), std::string::npos);
  EXPECT_NE(out.find("comp"), std::string::npos);
  EXPECT_NE(out.find('>'), std::string::npos);  // send
  EXPECT_NE(out.find('<'), std::string::npos);  // receive
  EXPECT_NE(out.find('#'), std::string::npos);  // compute
}

TEST(Gantt, EmptyTraceIsHandled) {
  std::ostringstream os;
  render_gantt(os, Trace{});
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

}  // namespace
