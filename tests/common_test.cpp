// Tests for the common substrate: RNG, statistics, tables, tolerance
// helpers and the ASCII plotter.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/ascii_plot.hpp"
#include "common/error.hpp"
#include "common/optimize.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/tolerance.hpp"

namespace {

using namespace dls::common;

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.bits(), b.bits());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.bits() == b.bits()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  OnlineStats acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(acc.mean(), 2.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 3.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(13);
  OnlineStats acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.exponential(4.0));
  EXPECT_NEAR(acc.mean(), 0.25, 0.01);
}

TEST(Rng, LogUniformStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.log_uniform(0.5, 5.0);
    EXPECT_GE(x, 0.5);
    EXPECT_LE(x, 5.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000.0, 0.3, 0.02);
}

TEST(Rng, SpawnedStreamsAreDecorrelated) {
  Rng parent(23);
  Rng a = parent.spawn(0);
  Rng b = parent.spawn(1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.bits() == b.bits()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, RejectsBadArguments) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), dls::PreconditionError);
  EXPECT_THROW(rng.uniform_int(5, 4), dls::PreconditionError);
  EXPECT_THROW(rng.exponential(0.0), dls::PreconditionError);
  EXPECT_THROW(rng.log_uniform(-1.0, 2.0), dls::PreconditionError);
  EXPECT_THROW(rng.bernoulli(1.5), dls::PreconditionError);
}

TEST(Rng, LongJumpDecorrelates) {
  Xoshiro256 a(5), b(5);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(OnlineStats, MatchesBatchSummary) {
  Rng rng(31);
  std::vector<double> xs;
  OnlineStats acc;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    xs.push_back(x);
    acc.add(x);
  }
  const Summary batch = summarize(xs);
  EXPECT_EQ(acc.count(), batch.count);
  EXPECT_NEAR(acc.mean(), batch.mean, 1e-12);
  EXPECT_NEAR(acc.stddev(), batch.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), batch.min);
  EXPECT_DOUBLE_EQ(acc.max(), batch.max);
}

TEST(OnlineStats, MergeEqualsSequential) {
  Rng rng(37);
  OnlineStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5, 5);
    whole.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 1.5);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, ArgmaxFindsFirstMaximum) {
  const std::vector<double> xs = {1, 5, 2, 5, 3};
  EXPECT_EQ(argmax(xs), 1u);
}

TEST(Table, RendersAlignedColumns) {
  Table table({{"name", Align::kLeft}, {"value", Align::kRight}});
  table.add_row({"alpha", Cell(0.5, 3)});
  table.add_row({"beta", 42});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("0.500"), std::string::npos);
  EXPECT_NE(out.find("42"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(Table, CsvEscapesSpecials) {
  Table table({{"a"}, {"b"}});
  table.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table table({{"a"}, {"b"}});
  EXPECT_THROW(table.add_row({"only-one"}), dls::PreconditionError);
}

TEST(Tolerance, RelativeErrorScalesProperly) {
  EXPECT_DOUBLE_EQ(relative_error(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_error(100.0, 101.0), 1.0 / 101.0, 1e-12);
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_le(1.0000000001, 1.0));
  EXPECT_TRUE(approx_ge(0.9999999999, 1.0));
}

TEST(Golden, FindsQuadraticMinimum) {
  const auto result = golden_minimize(
      [](double x) { return (x - 1.7) * (x - 1.7) + 3.0; }, -10.0, 10.0);
  EXPECT_NEAR(result.x, 1.7, 1e-7);
  EXPECT_NEAR(result.value, 3.0, 1e-12);
}

TEST(Golden, HandlesBoundaryMinimum) {
  const auto result =
      golden_minimize([](double x) { return x; }, 2.0, 5.0);
  EXPECT_NEAR(result.x, 2.0, 1e-7);
}

TEST(Golden, ValidatesArguments) {
  EXPECT_THROW(golden_minimize([](double x) { return x; }, 5.0, 2.0),
               dls::PreconditionError);
}

TEST(AsciiPlot, RendersWithoutCrashing) {
  Series s;
  s.name = "demo";
  for (int i = 0; i < 20; ++i) {
    s.xs.push_back(i);
    s.ys.push_back(std::sin(0.3 * i));
  }
  std::ostringstream os;
  plot(os, s, PlotOptions{.width = 40, .height = 10, .title = "t"});
  EXPECT_NE(os.str().find('*'), std::string::npos);
  EXPECT_NE(os.str().find("demo"), std::string::npos);
}

TEST(AsciiPlot, HandlesDegenerateData) {
  Series s;
  s.xs = {1.0};
  s.ys = {2.0};
  std::ostringstream os;
  plot(os, s, PlotOptions{.width = 30, .height = 6});
  EXPECT_FALSE(os.str().empty());

  Series empty;
  std::ostringstream os2;
  plot(os2, empty, PlotOptions{.width = 30, .height = 6});
  EXPECT_NE(os2.str().find("no finite data"), std::string::npos);
}

}  // namespace
