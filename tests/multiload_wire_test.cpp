// Round-trip and adversarial coverage for the multi-load wire pair
// (MultiScheduleRequest/Response) and their frame types: encode →
// decode is the identity for random well-formed messages, every
// truncation prefix / trailing byte / wrong magic is rejected with
// codec::DecodeError, malformed field values (unknown policy, zero
// installments, chain/link mismatch, empty batches, oversized counts)
// get typed refusals, and framed transport surfaces checksum bit-flips
// as FrameChecksumError with the stream still alive.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "codec/bytes.hpp"
#include "common/rng.hpp"
#include "serve/frame.hpp"
#include "serve/multiload_wire.hpp"

namespace {

using dls::codec::Bytes;
using dls::codec::DecodeError;
using dls::common::Rng;
using dls::serve::Frame;
using dls::serve::FrameChecksumError;
using dls::serve::FrameTruncationError;
using dls::serve::FrameType;
using dls::serve::kFrameHeaderSize;
using dls::serve::MultiLoadItem;
using dls::serve::MultiLoadResult;
using dls::serve::MultiScheduleRequest;
using dls::serve::MultiScheduleResponse;
using dls::serve::ScheduleStatus;

MultiScheduleRequest random_request(Rng& rng) {
  MultiScheduleRequest request;
  request.request_id = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
  const int m = static_cast<int>(rng.uniform_int(1, 6));
  for (int i = 0; i <= m; ++i) request.w.push_back(rng.uniform(0.5, 2.0));
  for (int i = 0; i < m; ++i) request.z.push_back(rng.uniform(0.05, 0.5));
  const int loads = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < loads; ++i) {
    MultiLoadItem item;
    item.load_id = static_cast<std::uint64_t>(100 + i);
    item.size = rng.uniform(0.5, 3.0);
    item.release = rng.uniform(0.0, 2.0);
    item.deadline = rng.uniform(0.0, 10.0);
    request.loads.push_back(item);
  }
  request.policy = static_cast<std::uint8_t>(rng.uniform_int(0, 1));
  request.installments = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  request.ingress_z = rng.uniform(0.0, 0.3);
  request.deadline_us = rng.uniform(0.0, 1e6);
  request.want_payments = rng.uniform_int(0, 1) == 1;
  return request;
}

MultiScheduleResponse random_response(Rng& rng) {
  MultiScheduleResponse response;
  response.request_id = static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 20));
  response.status = static_cast<ScheduleStatus>(rng.uniform_int(0, 4));
  if (response.status == ScheduleStatus::kError) response.error = "boom";
  const int loads = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < loads; ++i) {
    MultiLoadResult result;
    result.load_id = static_cast<std::uint64_t>(200 + i);
    result.start = rng.uniform(0.0, 5.0);
    result.completion = result.start + rng.uniform(0.1, 5.0);
    result.deadline_met = rng.uniform_int(0, 1) == 1;
    result.total_payment = rng.uniform(0.0, 10.0);
    response.loads.push_back(result);
  }
  response.makespan = rng.uniform(0.0, 20.0);
  response.serialized_makespan = response.makespan + rng.uniform(0.0, 5.0);
  response.total_payment = rng.uniform(0.0, 40.0);
  response.retry_after_us = rng.uniform(0.0, 1e4);
  return response;
}

TEST(MultiLoadWire, RequestIdentity) {
  Rng rng(20260809);
  for (int iter = 0; iter < 100; ++iter) {
    const MultiScheduleRequest original = random_request(rng);
    const MultiScheduleRequest decoded =
        dls::serve::decode_multi_schedule_request(
            dls::serve::encode_multi_schedule_request(original));
    EXPECT_EQ(decoded.request_id, original.request_id);
    EXPECT_EQ(decoded.w, original.w);  // bit-exact doubles
    EXPECT_EQ(decoded.z, original.z);
    ASSERT_EQ(decoded.loads.size(), original.loads.size());
    for (std::size_t i = 0; i < original.loads.size(); ++i) {
      EXPECT_EQ(decoded.loads[i].load_id, original.loads[i].load_id);
      EXPECT_EQ(decoded.loads[i].size, original.loads[i].size);
      EXPECT_EQ(decoded.loads[i].release, original.loads[i].release);
      EXPECT_EQ(decoded.loads[i].deadline, original.loads[i].deadline);
    }
    EXPECT_EQ(decoded.policy, original.policy);
    EXPECT_EQ(decoded.installments, original.installments);
    EXPECT_EQ(decoded.ingress_z, original.ingress_z);
    EXPECT_EQ(decoded.deadline_us, original.deadline_us);
    EXPECT_EQ(decoded.want_payments, original.want_payments);
  }
}

TEST(MultiLoadWire, ResponseIdentity) {
  Rng rng(20260810);
  for (int iter = 0; iter < 100; ++iter) {
    const MultiScheduleResponse original = random_response(rng);
    const MultiScheduleResponse decoded =
        dls::serve::decode_multi_schedule_response(
            dls::serve::encode_multi_schedule_response(original));
    EXPECT_EQ(decoded.request_id, original.request_id);
    EXPECT_EQ(decoded.status, original.status);
    EXPECT_EQ(decoded.error, original.error);
    ASSERT_EQ(decoded.loads.size(), original.loads.size());
    for (std::size_t i = 0; i < original.loads.size(); ++i) {
      EXPECT_EQ(decoded.loads[i].load_id, original.loads[i].load_id);
      EXPECT_EQ(decoded.loads[i].start, original.loads[i].start);
      EXPECT_EQ(decoded.loads[i].completion, original.loads[i].completion);
      EXPECT_EQ(decoded.loads[i].deadline_met, original.loads[i].deadline_met);
      EXPECT_EQ(decoded.loads[i].total_payment,
                original.loads[i].total_payment);
    }
    EXPECT_EQ(decoded.makespan, original.makespan);
    EXPECT_EQ(decoded.serialized_makespan, original.serialized_makespan);
    EXPECT_EQ(decoded.total_payment, original.total_payment);
    EXPECT_EQ(decoded.retry_after_us, original.retry_after_us);
  }
}

TEST(MultiLoadWire, EveryTruncationPrefixIsRejected) {
  Rng rng(7);
  const Bytes request_wire =
      dls::serve::encode_multi_schedule_request(random_request(rng));
  for (std::size_t len = 0; len < request_wire.size(); ++len) {
    EXPECT_THROW(dls::serve::decode_multi_schedule_request(
                     std::span(request_wire.data(), len)),
                 DecodeError)
        << "request prefix of " << len << " bytes accepted";
  }
  const Bytes response_wire =
      dls::serve::encode_multi_schedule_response(random_response(rng));
  for (std::size_t len = 0; len < response_wire.size(); ++len) {
    EXPECT_THROW(dls::serve::decode_multi_schedule_response(
                     std::span(response_wire.data(), len)),
                 DecodeError)
        << "response prefix of " << len << " bytes accepted";
  }
}

TEST(MultiLoadWire, TrailingBytesAreRejected) {
  Rng rng(11);
  Bytes request_wire =
      dls::serve::encode_multi_schedule_request(random_request(rng));
  request_wire.push_back(0x00);
  EXPECT_THROW(dls::serve::decode_multi_schedule_request(request_wire),
               DecodeError);
  Bytes response_wire =
      dls::serve::encode_multi_schedule_response(random_response(rng));
  response_wire.push_back(0xFF);
  EXPECT_THROW(dls::serve::decode_multi_schedule_response(response_wire),
               DecodeError);
}

TEST(MultiLoadWire, WrongMagicIsRejected) {
  Rng rng(13);
  const Bytes request_wire =
      dls::serve::encode_multi_schedule_request(random_request(rng));
  const Bytes response_wire =
      dls::serve::encode_multi_schedule_response(random_response(rng));
  // A request is not a response and vice versa.
  EXPECT_THROW(dls::serve::decode_multi_schedule_response(request_wire),
               DecodeError);
  EXPECT_THROW(dls::serve::decode_multi_schedule_request(response_wire),
               DecodeError);
}

TEST(MultiLoadWire, MalformedFieldValuesAreRejected) {
  Rng rng(17);
  const MultiScheduleRequest good = random_request(rng);

  MultiScheduleRequest bad_policy = good;
  bad_policy.policy = 2;
  EXPECT_THROW(dls::serve::decode_multi_schedule_request(
                   dls::serve::encode_multi_schedule_request(bad_policy)),
               DecodeError);

  MultiScheduleRequest zero_installments = good;
  zero_installments.installments = 0;
  EXPECT_THROW(
      dls::serve::decode_multi_schedule_request(
          dls::serve::encode_multi_schedule_request(zero_installments)),
      DecodeError);

  MultiScheduleRequest empty_chain = good;
  empty_chain.w.clear();
  empty_chain.z.clear();
  EXPECT_THROW(dls::serve::decode_multi_schedule_request(
                   dls::serve::encode_multi_schedule_request(empty_chain)),
               DecodeError);

  MultiScheduleRequest link_mismatch = good;
  link_mismatch.z.push_back(0.1);
  EXPECT_THROW(dls::serve::decode_multi_schedule_request(
                   dls::serve::encode_multi_schedule_request(link_mismatch)),
               DecodeError);

  MultiScheduleRequest no_loads = good;
  no_loads.loads.clear();
  EXPECT_THROW(dls::serve::decode_multi_schedule_request(
                   dls::serve::encode_multi_schedule_request(no_loads)),
               DecodeError);

  // An out-of-range status byte: locate it by diffing two encodings
  // that differ only in status, then push it past kDegraded.
  MultiScheduleResponse probe = random_response(rng);
  probe.status = ScheduleStatus::kOk;
  probe.error.clear();
  Bytes ok_wire = dls::serve::encode_multi_schedule_response(probe);
  probe.status = ScheduleStatus::kShed;
  const Bytes shed_wire = dls::serve::encode_multi_schedule_response(probe);
  ASSERT_EQ(ok_wire.size(), shed_wire.size());
  std::size_t status_index = ok_wire.size();
  for (std::size_t i = 0; i < ok_wire.size(); ++i) {
    if (ok_wire[i] != shed_wire[i]) {
      status_index = i;
      break;
    }
  }
  ASSERT_LT(status_index, ok_wire.size());
  ok_wire[status_index] = 200;  // far past kDegraded
  EXPECT_THROW(dls::serve::decode_multi_schedule_response(ok_wire),
               DecodeError);
}

TEST(MultiLoadWire, FramedChecksumBitFlipsAreTyped) {
  Rng rng(19);
  const Frame frame{
      FrameType::kMultiScheduleRequest,
      dls::serve::encode_multi_schedule_request(random_request(rng))};
  const Bytes wire = dls::serve::encode_frame(frame);
  // Flip one bit of every payload byte: decode_frame must surface each
  // as FrameChecksumError (payload corruption), never accept silently.
  for (std::size_t pos = kFrameHeaderSize; pos < wire.size(); ++pos) {
    Bytes corrupt = wire;
    corrupt[pos] = static_cast<std::uint8_t>(corrupt[pos] ^ 0x10);
    EXPECT_THROW(dls::serve::decode_frame(corrupt), FrameChecksumError)
        << "payload flip at byte " << pos << " not caught";
  }
}

TEST(MultiLoadWire, FramedTruncationAndTrailingBytesAreRejected) {
  Rng rng(23);
  const Frame frame{
      FrameType::kMultiScheduleResponse,
      dls::serve::encode_multi_schedule_response(random_response(rng))};
  Bytes wire = dls::serve::encode_frame(frame);
  for (std::size_t len = kFrameHeaderSize; len < wire.size(); ++len) {
    EXPECT_THROW(
        dls::serve::decode_frame(std::span(wire.data(), len)),
        FrameTruncationError)
        << "framed prefix of " << len << " bytes accepted";
  }
  wire.push_back(0x42);
  EXPECT_THROW(dls::serve::decode_frame(wire), DecodeError);
}

TEST(MultiLoadWire, OversizedCountsAreRejectedBeforeAllocation) {
  // Hand-build a request whose load count claims 2^40 entries: the
  // decoder must refuse at the cap check, not try to allocate.
  dls::codec::Writer w;
  w.string("dls.serve.mreq.v1");
  w.u64(1);            // request_id
  w.u8(0);             // policy
  w.u32(1);            // installments
  w.f64(0.0);          // ingress_z
  w.f64(0.0);          // deadline_us
  w.u8(0);             // want_payments
  w.varint(1);         // |w|
  w.f64(1.0);
  w.varint(0);         // |z|
  w.varint(std::uint64_t{1} << 40);  // absurd load count
  EXPECT_THROW(dls::serve::decode_multi_schedule_request(w.take()),
               DecodeError);
}

TEST(MultiLoadWire, OversizedInstallmentCountIsRejected) {
  // encode does not validate, so a hostile peer's u32 goes straight to
  // the decoder — which must cap it like the load/vector counts instead
  // of letting the solver materialise loads x 2^32 installment objects.
  Rng rng(29);
  MultiScheduleRequest hostile = random_request(rng);
  hostile.installments = 0xFFFFFFFFu;
  EXPECT_THROW(dls::serve::decode_multi_schedule_request(
                   dls::serve::encode_multi_schedule_request(hostile)),
               DecodeError);
}

TEST(MultiLoadWire, TotalInstallmentBudgetIsEnforcedBeforeAllocation) {
  // Load count and installment count each individually at their caps
  // (2^16 and 2^12), but the product would demand 2^28 installment
  // objects: the budget check refuses before reading a single load.
  dls::codec::Writer w;
  w.string("dls.serve.mreq.v1");
  w.u64(1);              // request_id
  w.u8(0);               // policy
  w.u32(1u << 12);       // installments: exactly at the per-load cap
  w.f64(0.0);            // ingress_z
  w.f64(0.0);            // deadline_us
  w.u8(0);               // want_payments
  w.varint(1);           // |w|
  w.f64(1.0);
  w.varint(0);           // |z|
  w.varint(std::uint64_t{1} << 16);  // load count: exactly at its cap
  EXPECT_THROW(dls::serve::decode_multi_schedule_request(w.take()),
               DecodeError);
}

TEST(MultiLoadWire, NonFiniteFieldsAreRejected) {
  Rng rng(31);
  const MultiScheduleRequest good = random_request(rng);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const auto rejects = [](MultiScheduleRequest request) {
    EXPECT_THROW(dls::serve::decode_multi_schedule_request(
                     dls::serve::encode_multi_schedule_request(request)),
                 DecodeError);
  };
  {
    MultiScheduleRequest r = good;
    r.loads[0].size = inf;
    rejects(r);
  }
  {
    MultiScheduleRequest r = good;
    r.loads[0].size = nan;
    rejects(r);
  }
  {
    MultiScheduleRequest r = good;
    r.loads[0].release = nan;
    rejects(r);
  }
  {
    MultiScheduleRequest r = good;
    r.loads[0].deadline = inf;
    rejects(r);
  }
  {
    MultiScheduleRequest r = good;
    r.ingress_z = nan;
    rejects(r);
  }
  {
    MultiScheduleRequest r = good;
    r.ingress_z = -0.5;
    rejects(r);
  }
  {
    MultiScheduleRequest r = good;
    r.deadline_us = inf;
    rejects(r);
  }
}

TEST(MultiLoadWire, RandomGarbageNeverCrashes) {
  Rng rng(0xBADF00D);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, 256));
    Bytes garbage(len);
    for (auto& b : garbage) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    try {
      dls::serve::decode_multi_schedule_request(garbage);
    } catch (const DecodeError&) {
    }
    try {
      dls::serve::decode_multi_schedule_response(garbage);
    } catch (const DecodeError&) {
    }
  }
}

}  // namespace
