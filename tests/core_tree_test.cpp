// Tests for the DLS-T analogue (tree-network mechanism): voluntary
// participation, strategyproofness on randomized trees, consistency with
// DLS-LBL on unary trees and with DLS-star on depth-1 trees.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dls_lbl.hpp"
#include "core/dls_star.hpp"
#include "core/dls_tree.hpp"
#include "net/networks.hpp"
#include "net/tree.hpp"

namespace {

using dls::common::Rng;
using dls::core::assess_dls_tree;
using dls::core::MechanismConfig;
using dls::core::tree_utility_under_bid;
using dls::net::TreeNetwork;

std::vector<double> rates_of(const TreeNetwork& tree) {
  std::vector<double> rates(tree.size());
  for (std::size_t i = 0; i < tree.size(); ++i) rates[i] = tree.w(i);
  return rates;
}

TEST(DlsTree, RootHasZeroUtilityAndIsReimbursed) {
  const TreeNetwork tree({1.0, 2.0, 1.5}, {1.0, 0.3, 0.2}, {0, 0, 0});
  const auto result =
      assess_dls_tree(tree, rates_of(tree), MechanismConfig{});
  EXPECT_DOUBLE_EQ(result.nodes[0].utility, 0.0);
  EXPECT_NEAR(result.nodes[0].compensation,
              result.solution.alpha[0] * tree.w(0), 1e-12);
}

TEST(DlsTree, TruthfulUtilitiesAreNonNegative) {
  Rng rng(31);
  for (int rep = 0; rep < 20; ++rep) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(2, 25));
    const TreeNetwork tree =
        TreeNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
    const auto result =
        assess_dls_tree(tree, rates_of(tree), MechanismConfig{});
    for (std::size_t v = 1; v < n; ++v) {
      EXPECT_GE(result.nodes[v].utility, -1e-9) << "node " << v;
      // At truth, utility equals the marginal-contribution bonus.
      EXPECT_NEAR(result.nodes[v].utility,
                  result.nodes[v].rho_without - result.nodes[v].rho_realized,
                  1e-9);
    }
  }
}

TEST(DlsTree, TruthDominatesOnRandomTrees) {
  Rng rng(32);
  const MechanismConfig config;
  for (int rep = 0; rep < 8; ++rep) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 12));
    const TreeNetwork tree =
        TreeNetwork::random(n, rng, 0.5, 5.0, 0.05, 0.5);
    for (std::size_t v = 1; v < n; ++v) {
      const double t = tree.w(v);
      const double truth_u = tree_utility_under_bid(tree, v, t, t, config);
      for (const double f : {0.3, 0.6, 0.9, 1.2, 1.8, 3.0}) {
        const double u = tree_utility_under_bid(tree, v, t * f, t, config);
        EXPECT_LE(u, truth_u + 1e-9)
            << "node " << v << " factor " << f << " rep " << rep;
      }
    }
  }
}

TEST(DlsTree, SlowExecutionHurts) {
  Rng rng(33);
  const MechanismConfig config;
  const TreeNetwork tree = TreeNetwork::random(10, rng, 0.5, 5.0, 0.05, 0.5);
  for (std::size_t v = 1; v < tree.size(); ++v) {
    const double t = tree.w(v);
    const double truth_u = tree_utility_under_bid(tree, v, t, t, config);
    const double slow_u = tree_utility_under_bid(tree, v, t, t * 1.7, config);
    EXPECT_LT(slow_u, truth_u) << "node " << v;
  }
}

TEST(DlsTree, VerificationAblationRemovesTheSlowdownPenalty) {
  Rng rng(34);
  MechanismConfig config;
  config.verify_actual_rates = false;
  const TreeNetwork tree = TreeNetwork::random(8, rng, 0.5, 5.0, 0.05, 0.5);
  for (std::size_t v = 1; v < tree.size(); ++v) {
    const double t = tree.w(v);
    const double truth_u = tree_utility_under_bid(tree, v, t, t, config);
    const double slow_u = tree_utility_under_bid(tree, v, t, t * 1.7, config);
    EXPECT_NEAR(slow_u, truth_u, 1e-12) << "node " << v;
  }
}

TEST(DlsTree, UnaryTreeMatchesDlsLbl) {
  const dls::net::LinearNetwork chain({1.0, 1.2, 0.8, 1.5},
                                      {0.2, 0.15, 0.25});
  const TreeNetwork tree = TreeNetwork::chain(
      {chain.processing_times().begin(), chain.processing_times().end()},
      {chain.link_times().begin(), chain.link_times().end()});
  std::vector<double> actual(chain.processing_times().begin(),
                             chain.processing_times().end());
  const auto lbl =
      dls::core::assess_compliant(chain, actual, MechanismConfig{});
  const auto t = assess_dls_tree(tree, actual, MechanismConfig{});
  // Allocations coincide exactly.
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_NEAR(t.solution.alpha[i], lbl.solution.alpha[i], 1e-12);
  }
  // Both formulations express the bonus as "parent-level equivalent
  // improvement"; on a chain they are the same quantity: for node v,
  // ρ_{p,-v} = w_{v-1} (the parent alone) and ρ̂_p = w̄_{v-1} realized.
  for (std::size_t v = 1; v < chain.size(); ++v) {
    EXPECT_NEAR(t.nodes[v].utility, lbl.processors[v].money.utility, 1e-9)
        << "node " << v;
  }
}

TEST(DlsTree, DepthOneTreeMatchesDlsStar) {
  const dls::net::StarNetwork star(1.0, {2.0, 1.0, 1.4},
                                   {0.3, 0.1, 0.2});
  std::vector<double> worker_w = {2.0, 1.0, 1.4};
  std::vector<double> worker_z = {0.3, 0.1, 0.2};
  const TreeNetwork tree = TreeNetwork::star(1.0, worker_w, worker_z);
  std::vector<double> star_actual = worker_w;
  std::vector<double> tree_actual = {1.0, 2.0, 1.0, 1.4};
  const auto st =
      dls::core::assess_dls_star(star, star_actual, MechanismConfig{});
  const auto tr = assess_dls_tree(tree, tree_actual, MechanismConfig{});
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(tr.nodes[i + 1].utility, st.workers[i].utility, 1e-9) << i;
    EXPECT_NEAR(tr.nodes[i + 1].alpha, st.workers[i].alpha, 1e-12);
  }
}

TEST(DlsTree, RejectsBadInputs) {
  const TreeNetwork tree({1.0, 2.0}, {1.0, 0.3}, {0, 0});
  EXPECT_THROW(
      assess_dls_tree(tree, std::vector<double>{1.0}, MechanismConfig{}),
      dls::PreconditionError);
  EXPECT_THROW(
      tree_utility_under_bid(tree, 0, 1.0, 1.0, MechanismConfig{}),
      dls::PreconditionError);
  EXPECT_THROW(
      tree_utility_under_bid(tree, 1, 1.0, 0.5, MechanismConfig{}),
      dls::PreconditionError);
}

}  // namespace
