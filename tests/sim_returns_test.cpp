// Tests for the result-return simulation (assumption (iii) probe) and
// sweep-style fan-out on the process-wide pool.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dlt/linear.hpp"
#include "exec/thread_pool.hpp"
#include "net/networks.hpp"
#include "sim/linear_returns.hpp"

namespace {

using dls::exec::ThreadPool;
using dls::common::Rng;
using dls::dlt::solve_linear_boundary;
using dls::net::LinearNetwork;
using dls::sim::execute_linear_with_returns;
using dls::sim::ExecutionPlan;

TEST(LinearReturns, ZeroDeltaChangesNothing) {
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const auto sol = solve_linear_boundary(net);
  const auto result = execute_linear_with_returns(
      net, ExecutionPlan::compliant(net, sol), 0.0);
  EXPECT_DOUBLE_EQ(result.collection_time, result.forward.makespan);
  EXPECT_DOUBLE_EQ(result.return_overhead(), 0.0);
  EXPECT_DOUBLE_EQ(result.collected, 0.0);
}

TEST(LinearReturns, CollectsEveryResult) {
  Rng rng(81);
  for (int rep = 0; rep < 15; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 12));
    const LinearNetwork net =
        LinearNetwork::random(m + 1, rng, 0.5, 5.0, 0.05, 0.5);
    const auto sol = solve_linear_boundary(net);
    const double delta = rng.uniform(0.01, 0.5);
    const auto result = execute_linear_with_returns(
        net, ExecutionPlan::compliant(net, sol), delta);
    double expected = 0.0;
    for (std::size_t i = 1; i < net.size(); ++i) {
      expected += delta * sol.alpha[i];
    }
    EXPECT_NEAR(result.collected, expected, 1e-9);
    EXPECT_GE(result.return_overhead(), 0.0);
    // One-port discipline holds across forward + return traffic.
    EXPECT_TRUE(result.forward.trace.check_one_port().empty());
  }
}

TEST(LinearReturns, OverheadMonotoneInDelta) {
  const LinearNetwork net = LinearNetwork::uniform(6, 1.0, 0.3);
  const auto sol = solve_linear_boundary(net);
  const auto plan = ExecutionPlan::compliant(net, sol);
  double prev = 0.0;
  for (const double delta : {0.0, 0.1, 0.2, 0.4, 0.8}) {
    const auto result = execute_linear_with_returns(net, plan, delta);
    EXPECT_GE(result.return_overhead(), prev - 1e-12) << delta;
    prev = result.return_overhead();
  }
}

TEST(LinearReturns, TwoProcessorClosedForm) {
  // Chain of two: the worker's result (δ α_1) crosses l_1 right after
  // both finish at T, so collection = T + δ α_1 z_1.
  const LinearNetwork net({1.0, 2.0}, {0.5});
  const auto sol = solve_linear_boundary(net);
  const double delta = 0.25;
  const auto result = execute_linear_with_returns(
      net, ExecutionPlan::compliant(net, sol), delta);
  EXPECT_NEAR(result.collection_time,
              sol.makespan + delta * sol.alpha[1] * 0.5, 1e-12);
}

TEST(LinearReturns, RejectsNegativeDelta) {
  const LinearNetwork net({1.0, 1.0}, {0.2});
  const auto sol = solve_linear_boundary(net);
  EXPECT_THROW(execute_linear_with_returns(
                   net, ExecutionPlan::compliant(net, sol), -0.1),
               dls::PreconditionError);
}

// ---------------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  ThreadPool::global().parallel_for(kCount,
                                    [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, DeterministicResultsAtAnyWorkerCount) {
  constexpr std::size_t kCount = 64;
  auto run = [&](std::size_t workers) {
    std::vector<double> out(kCount);
    ThreadPool::global().parallel_for(
        kCount,
        [&](std::size_t i) {
          Rng rng(1000 + i);  // per-index stream
          out[i] = rng.uniform01();
        },
        {.max_workers = workers});
    return out;
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(ThreadPool::global().parallel_for(100,
                                                 [](std::size_t i) {
                                                   if (i == 37) {
                                                     throw dls::Error("boom");
                                                   }
                                                 }),
               dls::Error);
}

TEST(ParallelFor, HandlesEmptyAndTinyRanges) {
  int calls = 0;
  ThreadPool::global().parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> atomic_calls{0};
  ThreadPool::global().parallel_for(1, [&](std::size_t) { ++atomic_calls; },
                                    {.max_workers = 16});
  EXPECT_EQ(atomic_calls.load(), 1);
}

}  // namespace
