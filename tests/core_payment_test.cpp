// Unit tests for the payment rules (eqs. 4.3-4.13) and the centralised
// DLS-LBL assessment.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/dls_lbl.hpp"
#include "core/payment_rules.hpp"
#include "net/networks.hpp"

namespace {

using dls::core::assess_compliant;
using dls::core::assess_dls_lbl;
using dls::core::cheating_profit_bound;
using dls::core::DlsLblResult;
using dls::core::evaluate_payment;
using dls::core::MechanismConfig;
using dls::core::PaymentInputs;
using dls::core::recompense;
using dls::core::w_hat;
using dls::net::LinearNetwork;

TEST(WHat, TerminalReportsActualRate) {
  // (4.10): ŵ_m = w̃_m regardless of the bid.
  EXPECT_DOUBLE_EQ(w_hat(true, 2.0, 3.0, 1.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(w_hat(true, 2.0, 1.5, 1.0, 2.0), 1.5);
}

TEST(WHat, InteriorSlowerThanBidDominates) {
  // (4.11), w̃ >= w: ŵ = α̂ w̃.
  EXPECT_DOUBLE_EQ(w_hat(false, 2.0, 2.5, 0.4, 0.8), 0.4 * 2.5);
}

TEST(WHat, InteriorFasterThanBidKeepsEquivalent) {
  // (4.11), w̃ < w: ŵ = w̄ (the tail's completion is pinned by bids).
  EXPECT_DOUBLE_EQ(w_hat(false, 2.0, 1.0, 0.4, 0.8), 0.8);
}

TEST(Recompense, ZeroWhenUnderloaded) {
  EXPECT_DOUBLE_EQ(recompense(0.3, 0.2, 2.0), 0.0);
}

TEST(Recompense, PaysForExtraWork) {
  EXPECT_NEAR(recompense(0.3, 0.45, 2.0), 0.15 * 2.0, 1e-15);
}

TEST(Recompense, ExactAssignmentEarnsNothing) {
  // (4.8) at the boundary α̃ = α: the max(·, 0) hinge is exactly zero —
  // no windfall for merely doing the assigned work.
  EXPECT_DOUBLE_EQ(recompense(0.3, 0.3, 2.0), 0.0);
  // Just below the boundary it is zero too, not negative.
  EXPECT_DOUBLE_EQ(recompense(0.3, 0.3 - 1e-12, 2.0), 0.0);
}

TEST(Recompense, ZeroAssignmentPaysAllComputedWork) {
  // A processor assigned nothing that absorbed dumped (or recovery)
  // load is paid for every unit of it.
  EXPECT_NEAR(recompense(0.0, 0.2, 2.0), 0.4, 1e-15);
  EXPECT_DOUBLE_EQ(recompense(0.0, 0.0, 2.0), 0.0);
}

TEST(EvaluatePayment, IdleProcessorGetsNothing) {
  PaymentInputs in;
  in.predecessor_bid = 1.0;
  in.link_z = 0.5;
  in.alpha_hat_pred = 0.7;
  in.alpha = 0.0;
  in.computed = 0.0;
  in.actual_rate = 2.0;
  in.w_hat = 2.0;
  const auto out = evaluate_payment(in, MechanismConfig{});
  EXPECT_DOUBLE_EQ(out.payment, 0.0);
  EXPECT_DOUBLE_EQ(out.utility, 0.0);
}

TEST(EvaluatePayment, CompliantUtilityIsTheBonus) {
  // When α̃ = α and w̃ = bid, V + C cancel and U = B.
  PaymentInputs in;
  in.predecessor_bid = 1.0;
  in.link_z = 0.5;
  in.alpha_hat_pred = 5.0 / 7.0;
  in.alpha = 2.0 / 7.0;
  in.computed = 2.0 / 7.0;
  in.actual_rate = 2.0;
  in.w_hat = 2.0;
  const auto out = evaluate_payment(in, MechanismConfig{});
  EXPECT_NEAR(out.valuation + out.compensation, 0.0, 1e-15);
  EXPECT_NEAR(out.utility, out.bonus, 1e-15);
  EXPECT_NEAR(out.bonus, 1.0 - 5.0 / 7.0, 1e-12);
}

TEST(EvaluatePayment, SolutionBonusOnlyWhenEnabledAndSolved) {
  PaymentInputs in;
  in.predecessor_bid = 1.0;
  in.link_z = 0.5;
  in.alpha_hat_pred = 0.7;
  in.alpha = 0.3;
  in.computed = 0.3;
  in.actual_rate = 2.0;
  in.w_hat = 2.0;
  MechanismConfig config;
  config.solution_bonus_enabled = true;
  config.solution_bonus = 0.05;
  in.solution_found = true;
  EXPECT_NEAR(evaluate_payment(in, config).solution_bonus, 0.05, 1e-15);
  in.solution_found = false;
  EXPECT_DOUBLE_EQ(evaluate_payment(in, config).solution_bonus, 0.0);
  in.solution_found = true;
  config.solution_bonus_enabled = false;
  EXPECT_DOUBLE_EQ(evaluate_payment(in, config).solution_bonus, 0.0);
}

TEST(AssessDlsLbl, TwoProcessorGolden) {
  // w0=1, w1=2, z=0.5 (see dlt_linear_test golden): α̂_0 = 5/7,
  // B_1 = w_0 − w̄_0 = 2/7, U_1 = 2/7 for the truthful terminal worker.
  const LinearNetwork net({1.0, 2.0}, {0.5});
  const std::vector<double> actual = {1.0, 2.0};
  const DlsLblResult result =
      assess_compliant(net, actual, MechanismConfig{});
  ASSERT_EQ(result.processors.size(), 2u);
  const auto& root = result.processors[0];
  EXPECT_DOUBLE_EQ(root.money.utility, 0.0);
  EXPECT_NEAR(root.money.compensation, 5.0 / 7.0 * 1.0, 1e-12);
  const auto& worker = result.processors[1];
  EXPECT_NEAR(worker.money.bonus, 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(worker.money.utility, 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(worker.money.compensation, 2.0 / 7.0 * 2.0, 1e-12);
  EXPECT_NEAR(result.total_payment,
              worker.money.compensation + worker.money.bonus, 1e-12);
  EXPECT_NEAR(result.mechanism_cost,
              result.total_payment + root.money.compensation, 1e-12);
}

TEST(AssessDlsLbl, SlowExecutionShrinksTheBonus) {
  const LinearNetwork net({1.0, 2.0, 1.5}, {0.3, 0.3});
  const std::vector<double> truthful = {1.0, 2.0, 1.5};
  const std::vector<double> slow = {1.0, 2.0 * 1.4, 1.5};
  const MechanismConfig config;
  const DlsLblResult honest = assess_compliant(net, truthful, config);
  const DlsLblResult lazy = assess_compliant(net, slow, config);
  EXPECT_LT(lazy.processors[1].money.bonus,
            honest.processors[1].money.bonus);
  // The terminal processor's bonus also reacts to ITS own slowdown.
  const std::vector<double> slow_tail = {1.0, 2.0, 1.5 * 1.4};
  const DlsLblResult lazy_tail = assess_compliant(net, slow_tail, config);
  EXPECT_LT(lazy_tail.processors[2].money.bonus,
            honest.processors[2].money.bonus);
}

TEST(AssessDlsLbl, ShedderIsOverpaidWithoutFines) {
  // Without the protocol's Phase III fines, computing less than assigned
  // while pocketing C_j = α_j w̃_j is profitable — the raw payment rules
  // alone do NOT deter load shedding. (The protocol tests verify the
  // fine turns this into a loss.)
  const LinearNetwork net({1.0, 2.0, 1.5}, {0.3, 0.3});
  const std::vector<double> actual = {1.0, 2.0, 1.5};
  const auto sol = dls::dlt::solve_linear_boundary(net);
  std::vector<double> computed = sol.alpha;
  const double shed = 0.5 * computed[1];
  computed[1] -= shed;
  computed[2] += shed;  // the terminal victim absorbs it
  const DlsLblResult result =
      assess_dls_lbl(net, actual, computed, MechanismConfig{});
  const DlsLblResult honest = assess_compliant(net, actual, MechanismConfig{});
  EXPECT_GT(result.processors[1].money.utility,
            honest.processors[1].money.utility);
  // The victim is made whole by the recompense E_j.
  EXPECT_NEAR(result.processors[2].money.recompense, shed * 1.5, 1e-12);
  EXPECT_GE(result.processors[2].money.utility,
            honest.processors[2].money.utility - 1e-12);
}

TEST(AssessDlsLbl, RejectsBadInputs) {
  const LinearNetwork net({1.0, 2.0}, {0.5});
  const std::vector<double> actual = {1.0, 2.0};
  const std::vector<double> short_actual = {1.0};
  const std::vector<double> computed = {0.5, 0.5};
  EXPECT_THROW(
      assess_dls_lbl(net, short_actual, computed, MechanismConfig{}),
      dls::PreconditionError);
  const LinearNetwork solo({1.0}, {});
  EXPECT_THROW(assess_dls_lbl(solo, std::vector<double>{1.0},
                              std::vector<double>{1.0}, MechanismConfig{}),
               dls::PreconditionError);
}

TEST(CheatingProfitBound, ExceedsAnyBonusAndCompensation) {
  const LinearNetwork net({1.0, 2.0, 1.5, 3.0}, {0.3, 0.2, 0.4});
  const std::vector<double> actual = {1.0, 2.0, 1.5, 3.0};
  const DlsLblResult result =
      assess_compliant(net, actual, MechanismConfig{});
  const double bound = cheating_profit_bound(net);
  EXPECT_GT(bound, result.total_payment);
}

}  // namespace
