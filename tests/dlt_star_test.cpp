// Tests for the star/bus solvers.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/tolerance.hpp"
#include "dlt/linear.hpp"
#include "dlt/star.hpp"
#include "net/networks.hpp"

namespace {

using dls::common::Rng;
using dls::dlt::solve_bus;
using dls::dlt::solve_linear_boundary;
using dls::dlt::solve_star;
using dls::dlt::solve_star_ordered;
using dls::dlt::star_finish_times;
using dls::dlt::StarSolution;
using dls::net::BusNetwork;
using dls::net::LinearNetwork;
using dls::net::StarNetwork;

TEST(SolveStar, SingleWorkerMatchesTwoProcessorChain) {
  // A one-worker star is exactly a two-processor chain.
  const StarNetwork star(1.0, {2.0}, {0.5});
  const LinearNetwork chain({1.0, 2.0}, {0.5});
  const StarSolution s = solve_star(star);
  const auto c = solve_linear_boundary(chain);
  EXPECT_NEAR(s.alpha_root, c.alpha[0], 1e-12);
  EXPECT_NEAR(s.alpha[0], c.alpha[1], 1e-12);
  EXPECT_NEAR(s.makespan, c.makespan, 1e-12);
}

TEST(SolveStar, TwoWorkerGolden) {
  // root w0=1; workers w=(1,1), z=(0.2,0.2): α = (36, 30, 25)/91.
  const StarNetwork star(1.0, {1.0, 1.0}, {0.2, 0.2});
  const StarSolution s = solve_star(star);
  EXPECT_NEAR(s.alpha_root, 36.0 / 91.0, 1e-12);
  EXPECT_NEAR(s.alpha[0], 30.0 / 91.0, 1e-12);
  EXPECT_NEAR(s.alpha[1], 25.0 / 91.0, 1e-12);
  EXPECT_NEAR(s.makespan, 36.0 / 91.0, 1e-12);
}

TEST(SolveStar, FinishTimesAreEqualAtOptimum) {
  Rng rng(77);
  for (int rep = 0; rep < 20; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 15));
    const StarNetwork star =
        StarNetwork::random(m, rng, 0.5, 5.0, 0.05, 0.5, rep % 2 == 0);
    const StarSolution s = solve_star(star);
    const std::vector<double> t = star_finish_times(star, s);
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (i == 0 && !star.root_computes()) continue;
      EXPECT_NEAR(t[i], s.makespan, 1e-9) << "participant " << i;
    }
    double total = s.alpha_root;
    for (const double a : s.alpha) total += a;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(SolveStar, FastestLinkFirstBeatsOtherOrders) {
  Rng rng(101);
  for (int rep = 0; rep < 10; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const StarNetwork star =
        StarNetwork::random(m, rng, 0.5, 5.0, 0.05, 0.5, true);
    const double best = solve_star(star).makespan;
    for (int trial = 0; trial < 10; ++trial) {
      std::vector<std::size_t> order(m);
      for (std::size_t i = 0; i < m; ++i) order[i] = i;
      rng.shuffle(order);
      EXPECT_GE(solve_star_ordered(star, order).makespan, best - 1e-9);
    }
  }
}

TEST(SolveStar, RejectsNonPermutationOrders) {
  const StarNetwork star(1.0, {1.0, 2.0}, {0.1, 0.2});
  EXPECT_THROW(solve_star_ordered(star, {0}), dls::PreconditionError);
  EXPECT_THROW(solve_star_ordered(star, {0, 0}), dls::PreconditionError);
  EXPECT_THROW(solve_star_ordered(star, {0, 5}), dls::PreconditionError);
}

TEST(SolveStar, NonComputingRootStillDistributesEverything) {
  const StarNetwork star(0.0, {1.0, 2.0}, {0.1, 0.2});
  const StarSolution s = solve_star(star);
  EXPECT_DOUBLE_EQ(s.alpha_root, 0.0);
  EXPECT_NEAR(s.alpha[0] + s.alpha[1], 1.0, 1e-12);
}

TEST(SolveBus, EqualsStarWithSharedChannel) {
  const BusNetwork bus(1.0, {1.0, 2.0, 3.0}, 0.2);
  const StarSolution via_bus = solve_bus(bus);
  const StarSolution via_star = solve_star(bus.as_star());
  EXPECT_NEAR(via_bus.makespan, via_star.makespan, 1e-15);
  for (std::size_t i = 0; i < via_bus.alpha.size(); ++i) {
    EXPECT_NEAR(via_bus.alpha[i], via_star.alpha[i], 1e-15);
  }
}

TEST(SolveBus, MoreWorkersNeverHurt) {
  Rng rng(55);
  std::vector<double> w = {2.0};
  double prev = solve_bus(BusNetwork(1.0, w, 0.2)).makespan;
  for (int k = 0; k < 8; ++k) {
    w.push_back(rng.log_uniform(0.5, 5.0));
    const double cur = solve_bus(BusNetwork(1.0, w, 0.2)).makespan;
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

}  // namespace
