// The chaos soak: N clients x M seeds x every fault kind against a live
// SchedulerService, with every connection wrapped in a fault-injecting
// ChaosTransport. The invariant under test is the serve layer's
// robustness contract — every request ends in exactly one of
//
//   * an answer whose allocation is bit-identical to a fault-free
//     solve of the same topology,
//   * a typed refusal (kShed/kDegraded/kExpired/kError), or
//   * an exhausted-budget report from schedule_robust,
//
// and never a hang (a global watchdog aborts the run) or UB (the CI
// serve-chaos job runs this under ASan/UBSan). DLS_SERVE_SOAK
// multiplies the request volume. DLS_CHAOS_TRACE_OUT streams a Chrome
// trace of the run in flight (the soak never buffers all spans).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "codec/bytes.hpp"
#include "common/rng.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "obs/sink.hpp"
#include "obs/trace_export.hpp"
#include "serve/chaos.hpp"
#include "serve/client.hpp"
#include "serve/service.hpp"

namespace {

using dls::serve::ChaosConfig;
using dls::serve::ChaosTransport;
using dls::serve::CircuitBreaker;
using dls::serve::FaultKind;
using dls::serve::RobustOptions;
using dls::serve::RobustOutcome;
using dls::serve::RobustResult;
using dls::serve::ScheduleOptions;
using dls::serve::ScheduleStatus;
using dls::serve::SchedulerClient;
using dls::serve::SchedulerService;
using dls::serve::ServiceConfig;

int soak_multiplier() {
  const char* raw = std::getenv("DLS_SERVE_SOAK");
  if (raw == nullptr) return 1;
  const int parsed = std::atoi(raw);
  return parsed >= 1 ? parsed : 1;
}

/// Aborts the whole process when the soak wedges: a hang is exactly the
/// failure mode this harness exists to rule out, so it must terminate
/// the run loudly instead of letting ctest time out silently.
class Watchdog {
 public:
  explicit Watchdog(double limit_s) {
    thread_ = std::thread([this, limit_s] {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!cv_.wait_for(lock, std::chrono::duration<double>(limit_s),
                        [this] { return disarmed_; })) {
        std::fprintf(stderr,
                     "serve_chaos_soak watchdog: run exceeded %.0f s — "
                     "a request hung; aborting\n",
                     limit_s);
        std::abort();
      }
    });
  }
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      disarmed_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::thread thread_;
};

struct Topology {
  std::vector<double> w;
  std::vector<double> z;
};

std::vector<Topology> random_topologies(std::size_t count,
                                        std::uint64_t seed) {
  dls::common::Rng rng(seed);
  std::vector<Topology> out(count);
  for (Topology& topo : out) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 8));
    topo.w.resize(n);
    topo.z.resize(n - 1);
    for (double& x : topo.w) x = rng.uniform(0.2, 3.0);
    for (double& x : topo.z) x = rng.uniform(0.01, 0.5);
  }
  return out;
}

/// Fault-free ground truth, solved directly (no service, no transport).
std::vector<dls::dlt::LinearSolution> reference_solutions(
    const std::vector<Topology>& topos) {
  std::vector<dls::dlt::LinearSolution> out(topos.size());
  for (std::size_t t = 0; t < topos.size(); ++t) {
    const dls::net::LinearNetwork network(topos[t].w, topos[t].z);
    dls::dlt::solve_linear_boundary_into(network, out[t],
                                         /*want_steps=*/false);
  }
  return out;
}

struct Scenario {
  std::string name;
  ChaosConfig config;
};

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (std::size_t k = 0; k < dls::serve::kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    Scenario s;
    s.name = to_string(kind);
    s.config = ChaosConfig::only(kind, 0.3);
    s.config.max_delay_us = 100.0;
    out.push_back(std::move(s));
  }
  Scenario mixed;
  mixed.name = "mixed";
  mixed.config.partial_write = 0.15;
  mixed.config.truncate = 0.08;
  mixed.config.corrupt = 0.1;
  mixed.config.delay = 0.1;
  mixed.config.disconnect = 0.1;
  mixed.config.duplicate = 0.15;
  mixed.config.read_corrupt = 0.05;
  mixed.config.max_delay_us = 100.0;
  out.push_back(std::move(mixed));
  return out;
}

struct SoakTally {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> answered_ok{0};
  std::atomic<std::uint64_t> answered_refused{0};
  std::atomic<std::uint64_t> budget_exhausted{0};
  std::atomic<std::uint64_t> bit_identical{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> wire_errors{0};
};

void run_scenario(const Scenario& scenario, std::uint64_t seed,
                  const std::vector<Topology>& topos,
                  const std::vector<dls::dlt::LinearSolution>& truth,
                  int requests_per_client, SoakTally& tally) {
  ServiceConfig config;
  config.queue_capacity = 8;
  config.brownout_watermark = 4;  // brown-out genuinely fires under load
  config.cache_capacity = 16;
  config.poison_budget = 4;
  SchedulerService service(config);

  constexpr std::size_t kClients = 3;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::uint64_t client_seed =
          seed * 1000003ull + c * 7919ull + 17ull;
      // Per-connection breaker, shared across this client's reconnects.
      CircuitBreaker breaker(dls::serve::BreakerConfig{
          /*failure_threshold=*/3,
          /*open_cooldown_s=*/0.002,
          /*half_open_probes=*/1,
      });
      std::uint64_t connection = 0;
      const auto chaotic_connect = [&]() -> std::unique_ptr<
                                              dls::serve::Transport> {
        ++connection;
        return std::make_unique<ChaosTransport>(
            service.connect(), scenario.config,
            client_seed ^ (connection * 0x9e3779b97f4a7c15ull));
      };
      SchedulerClient client(chaotic_connect());

      RobustOptions robust;
      robust.policy.base_delay_s = 0.0002;
      robust.policy.max_delay_s = 0.005;
      robust.policy.max_attempts = 12;
      robust.policy.attempt_deadline_s = 0.25;
      robust.policy.total_deadline_s = 20.0;
      robust.breaker = &breaker;
      robust.reconnect = chaotic_connect;
      robust.seed = client_seed + 1;

      for (int i = 0; i < requests_per_client; ++i) {
        const std::size_t t =
            (c + static_cast<std::size_t>(i)) % topos.size();
        const Topology& topo = topos[t];
        tally.requests.fetch_add(1, std::memory_order_relaxed);
        const RobustResult result =
            client.schedule_robust(topo.w, topo.z, ScheduleOptions{},
                                   robust);
        tally.reconnects.fetch_add(result.stats.reconnects,
                                   std::memory_order_relaxed);
        tally.wire_errors.fetch_add(result.stats.wire_errors,
                                    std::memory_order_relaxed);
        if (result.outcome == RobustOutcome::kBudgetExhausted) {
          tally.budget_exhausted.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        if (result.response.status != ScheduleStatus::kOk) {
          // A typed refusal that outlived the retry loop (kError,
          // kExpired — kShed/kDegraded are retried inside).
          tally.answered_refused.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        tally.answered_ok.fetch_add(1, std::memory_order_relaxed);
        // The robustness contract's sharpest edge: an answer that
        // survived retries, reconnects and duplicated frames must be
        // bit-identical to the fault-free solve.
        const dls::dlt::LinearSolution& expect = truth[t];
        bool identical = result.response.alpha.size() ==
                         expect.alpha.size();
        if (identical) {
          for (std::size_t j = 0; j < expect.alpha.size(); ++j) {
            if (result.response.alpha[j] != expect.alpha[j]) {
              identical = false;
              break;
            }
          }
          if (result.response.makespan != expect.makespan) {
            identical = false;
          }
        }
        EXPECT_TRUE(identical)
            << scenario.name << " seed " << seed << " client " << c
            << " request " << i << ": answer diverged from the "
            << "fault-free solve";
        if (identical) {
          tally.bit_identical.fetch_add(1, std::memory_order_relaxed);
        }
      }
      client.close();
    });
  }
  for (std::thread& thread : clients) thread.join();
  service.stop();
}

TEST(ServeChaosSoakTest, EveryFaultKindEverySeedNeverHangsNeverDiverges) {
  const int requests_per_client = 6 * soak_multiplier();
  constexpr std::uint64_t kSeeds = 8;
  // 8 seeds x 7 scenarios x 3 clients x 6+ requests ≈ 1000+ requests
  // through every fault kind; the watchdog turns any hang into a loud
  // abort well before ctest's own timeout.
  Watchdog watchdog(240.0 * soak_multiplier());

  const std::vector<Topology> topos = random_topologies(5, 20260809);
  const std::vector<dls::dlt::LinearSolution> truth =
      reference_solutions(topos);

  // Optional in-flight Chrome trace (CI archives it as an artifact).
  std::unique_ptr<std::ofstream> trace_file;
  std::unique_ptr<dls::obs::StreamingChromeTrace> trace;
  if (const char* path = std::getenv("DLS_CHAOS_TRACE_OUT")) {
    dls::obs::set_active(true);
    trace_file = std::make_unique<std::ofstream>(path);
    if (*trace_file) {
      trace =
          std::make_unique<dls::obs::StreamingChromeTrace>(*trace_file);
    }
  }

  SoakTally tally;
  for (const Scenario& scenario : scenarios()) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      run_scenario(scenario, seed, topos, truth, requests_per_client,
                   tally);
      // Stream spans scenario by scenario: the soak's trace leaves the
      // process as it runs instead of accumulating until drain().
      if (trace != nullptr) trace->drain_global();
    }
  }

  if (trace != nullptr) {
    const dls::obs::MetricsSnapshot metrics =
        dls::obs::MetricsRegistry::global().snapshot();
    trace->finish(&metrics);
  }

  // The invariant: every request is accounted for in exactly one bucket.
  const std::uint64_t total = tally.requests.load();
  EXPECT_EQ(total, tally.answered_ok.load() +
                       tally.answered_refused.load() +
                       tally.budget_exhausted.load());
  // Every OK answer matched the fault-free solve bit for bit.
  EXPECT_EQ(tally.answered_ok.load(), tally.bit_identical.load());
  // The soak must actually exercise recovery, not coast: with ~30%
  // fault rates the wire breaks constantly, yet most requests land.
  EXPECT_GT(tally.answered_ok.load(), total / 2);
  EXPECT_GT(tally.wire_errors.load(), 0u);
  EXPECT_GT(tally.reconnects.load(), 0u);
}

}  // namespace
