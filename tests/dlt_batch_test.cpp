// Property tests for the batched SoA solver engine: every lane of a
// BatchLinearSolver solve is bit-identical (exact ==, never approximate)
// to a scalar solve_linear_boundary of the same instance, across chain
// lengths m in 1..64, degenerate chains, batch widths K in
// {1, 3, 17, 256} and ragged buffer reuse — and the SIMD kernels agree
// with the scalar kernels bit-for-bit on the same build. The same
// discipline is asserted for the batched counterfactual rebids, the
// utility curve they feed, and the batch-lane mechanism assessment.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "check/contracts.hpp"
#include "check/solver_invariants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dls_lbl.hpp"
#include "dlt/batch.hpp"
#include "dlt/counterfactual.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

namespace {

using dls::common::Rng;
using dls::core::AssessWorkspace;
using dls::core::CounterfactualMechanism;
using dls::core::DlsLblResult;
using dls::core::MechanismConfig;
using dls::dlt::BatchKernel;
using dls::dlt::BatchLinearSolver;
using dls::dlt::CounterfactualSolver;
using dls::dlt::LinearSolution;
using dls::dlt::LinearSolverWorkspace;
using dls::net::LinearNetwork;

std::vector<LinearNetwork> random_instances(std::size_t count,
                                            std::size_t processors,
                                            std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LinearNetwork> nets;
  nets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    nets.push_back(
        LinearNetwork::random(processors, rng, 0.5, 5.0, 0.05, 0.5));
  }
  return nets;
}

/// Solves `nets` as one batch with `kernel` and asserts every lane and
/// every extracted solution equals the scalar solver bit-for-bit.
void expect_batch_matches_scalar(const std::vector<LinearNetwork>& nets,
                                 BatchLinearSolver& solver,
                                 BatchKernel kernel) {
  const std::size_t n = nets.front().size();
  const std::size_t lanes = nets.size();
  solver.begin(n, lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    solver.set_instance(lane, nets[lane]);
  }
  solver.solve(kernel);
  solver.evaluate_finish_times();

  LinearSolverWorkspace ws;
  LinearSolution extracted;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const LinearSolution& direct =
        solve_linear_boundary(nets[lane], ws, /*want_steps=*/false);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(solver.alpha(lane, i), direct.alpha[i]);
      ASSERT_EQ(solver.alpha_hat(lane, i), direct.alpha_hat[i]);
      ASSERT_EQ(solver.equivalent_w(lane, i), direct.equivalent_w[i]);
      ASSERT_EQ(solver.received(lane, i), direct.received[i]);
    }
    ASSERT_EQ(solver.makespan(lane), direct.makespan);

    solver.extract(lane, extracted);
    ASSERT_EQ(extracted.alpha, direct.alpha);
    ASSERT_EQ(extracted.alpha_hat, direct.alpha_hat);
    ASSERT_EQ(extracted.equivalent_w, direct.equivalent_w);
    ASSERT_EQ(extracted.received, direct.received);
    ASSERT_EQ(extracted.makespan, direct.makespan);
    ASSERT_TRUE(extracted.steps.empty());

    const std::span<const double> finish =
        finish_times(nets[lane], direct.alpha, ws);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(solver.finish_time(lane, i), finish[i]);
    }
  }
}

TEST(DltBatchTest, BitIdenticalToScalarAcrossChainAndBatchSizes) {
  BatchLinearSolver solver;
  std::uint64_t seed = 11;
  for (const std::size_t n : {1ul, 2ul, 3ul, 5ul, 8ul, 13ul, 31ul, 64ul}) {
    for (const std::size_t lanes : {1ul, 3ul, 17ul}) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " lanes=" + std::to_string(lanes));
      expect_batch_matches_scalar(random_instances(lanes, n, seed++), solver,
                                  BatchKernel::kAuto);
    }
  }
}

TEST(DltBatchTest, WideBatch256BitIdentical) {
  BatchLinearSolver solver;
  expect_batch_matches_scalar(random_instances(256, 16, 101), solver,
                              BatchKernel::kAuto);
}

TEST(DltBatchTest, ScalarKernelBitIdentical) {
  // The explicit scalar kernel must match too — this is what the
  // DLS_SIMD=0 build always runs.
  BatchLinearSolver solver;
  expect_batch_matches_scalar(random_instances(17, 9, 23), solver,
                              BatchKernel::kScalar);
}

TEST(DltBatchTest, SimdAndScalarKernelsAgreeBitForBit) {
  if (!dls::dlt::batch_simd_available()) {
    GTEST_SKIP() << "no SIMD kernels in this build/CPU";
  }
  const std::vector<LinearNetwork> nets = random_instances(19, 24, 37);
  const std::size_t n = nets.front().size();
  BatchLinearSolver scalar;
  BatchLinearSolver simd;
  for (BatchLinearSolver* s : {&scalar, &simd}) {
    s->begin(n, nets.size());
    for (std::size_t lane = 0; lane < nets.size(); ++lane) {
      s->set_instance(lane, nets[lane]);
    }
  }
  scalar.solve(BatchKernel::kScalar);
  simd.solve(BatchKernel::kSimd);
  for (std::size_t lane = 0; lane < nets.size(); ++lane) {
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(scalar.alpha(lane, i), simd.alpha(lane, i));
      ASSERT_EQ(scalar.alpha_hat(lane, i), simd.alpha_hat(lane, i));
      ASSERT_EQ(scalar.equivalent_w(lane, i), simd.equivalent_w(lane, i));
      ASSERT_EQ(scalar.received(lane, i), simd.received(lane, i));
    }
    ASSERT_EQ(scalar.makespan(lane), simd.makespan(lane));
  }
}

TEST(DltBatchTest, SimdAvailabilityImpliesCompiled) {
  if (dls::dlt::batch_simd_available()) {
    EXPECT_TRUE(dls::dlt::batch_simd_compiled());
  }
}

TEST(DltBatchTest, DegenerateAndExtremeChains) {
  BatchLinearSolver solver;

  // Single-processor chains: the root takes the whole load.
  std::vector<LinearNetwork> singletons;
  singletons.emplace_back(std::vector<double>{2.5}, std::vector<double>{});
  singletons.emplace_back(std::vector<double>{1e-6}, std::vector<double>{});
  singletons.emplace_back(std::vector<double>{1e6}, std::vector<double>{});
  expect_batch_matches_scalar(singletons, solver, BatchKernel::kAuto);
  EXPECT_EQ(solver.alpha(0, 0), 1.0);
  EXPECT_EQ(solver.makespan(0), 2.5);

  // Two-processor chains and extreme 12-decade rate spreads.
  std::vector<LinearNetwork> pairs;
  pairs.emplace_back(std::vector<double>{1.0, 1.0}, std::vector<double>{0.1});
  pairs.emplace_back(std::vector<double>{1e-6, 1e6},
                     std::vector<double>{1e-6});
  pairs.emplace_back(std::vector<double>{1e6, 1e-6},
                     std::vector<double>{1e6});
  expect_batch_matches_scalar(pairs, solver, BatchKernel::kAuto);
}

TEST(DltBatchTest, RaggedReuseAcrossShapes) {
  // One solver instance reused across shrinking and growing shapes —
  // including a final ragged width that is not a SIMD-lane multiple.
  BatchLinearSolver solver;
  solver.reserve(64, 256);
  std::uint64_t seed = 900;
  for (const auto& [n, lanes] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {8, 17}, {64, 3}, {2, 256}, {5, 1}, {3, 7}}) {
    SCOPED_TRACE("n=" + std::to_string(n) + " lanes=" + std::to_string(lanes));
    expect_batch_matches_scalar(random_instances(lanes, n, seed++), solver,
                                BatchKernel::kAuto);
  }
}

TEST(DltBatchTest, ApiMisuseIsRejected) {
  BatchLinearSolver solver;
  solver.begin(4, 2);
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> z = {0.1, 0.2, 0.3};
  solver.set_instance(0, w, z);
  // Lane 1 never filled.
  EXPECT_THROW(solver.solve(), dls::Error);
  // Shape and positivity mistakes are caught at set_instance time.
  EXPECT_THROW(solver.set_instance(1, std::vector<double>{1.0, 2.0}, z),
               dls::Error);
  EXPECT_THROW(
      solver.set_instance(1, std::vector<double>{1.0, -2.0, 3.0, 4.0}, z),
      dls::Error);
  EXPECT_THROW(solver.set_instance(2, w, z), dls::Error);
}

TEST(DltBatchTest, LaneAuditorCatchesCorruptedLane) {
  // The src/check batch auditor replays the recurrence per lane; feed it
  // a scalar solution laid out as a one-lane batch and verify it passes
  // clean and fires on a corrupted entry.
  const LinearNetwork net({1.0, 1.2, 0.9, 1.1}, {0.15, 0.1, 0.2});
  LinearSolution sol;
  solve_linear_boundary_into(net, sol, /*want_steps=*/false);
  const std::vector<double> w(net.processing_times().begin(),
                              net.processing_times().end());
  const std::vector<double> z(net.link_times().begin(),
                              net.link_times().end());
  EXPECT_NO_THROW(dls::check::check_batch_lane(
      w.data(), /*w_stride=*/1, z.data(), /*z_stride=*/1, sol.alpha.data(),
      sol.alpha_hat.data(), sol.equivalent_w.data(), sol.received.data(),
      sol.makespan, w.size(), /*stride=*/1, /*lane=*/0));
  LinearSolution bad = sol;
  bad.alpha_hat[1] += 1e-12;  // one ulp-scale nudge must be caught
  EXPECT_THROW(
      dls::check::check_batch_lane(
          w.data(), /*w_stride=*/1, z.data(), /*z_stride=*/1, bad.alpha.data(),
          bad.alpha_hat.data(), bad.equivalent_w.data(), bad.received.data(),
          bad.makespan, w.size(), /*stride=*/1, /*lane=*/0),
      dls::check::ContractViolation);
}

TEST(DltBatchTest, RebidBatchMatchesScalarRebid) {
  Rng rng(5);
  const LinearNetwork net = LinearNetwork::random(12, rng, 0.5, 5.0, 0.1, 0.6);
  CounterfactualSolver solver(net);
  std::vector<double> bids;
  for (std::size_t k = 0; k < 33; ++k) bids.push_back(rng.uniform(0.2, 8.0));
  std::vector<CounterfactualSolver::Rebid> batch(bids.size());
  for (const std::size_t index : {0ul, 1ul, 6ul, 11ul}) {
    SCOPED_TRACE("index=" + std::to_string(index));
    solver.rebid_batch(index, bids, batch);
    for (std::size_t k = 0; k < bids.size(); ++k) {
      const CounterfactualSolver::Rebid direct = solver.rebid(index, bids[k]);
      ASSERT_EQ(batch[k].index, direct.index);
      ASSERT_EQ(batch[k].bid, direct.bid);
      ASSERT_EQ(batch[k].alpha, direct.alpha);
      ASSERT_EQ(batch[k].alpha_hat, direct.alpha_hat);
      ASSERT_EQ(batch[k].equivalent_w, direct.equivalent_w);
      ASSERT_EQ(batch[k].alpha_hat_pred, direct.alpha_hat_pred);
      ASSERT_EQ(batch[k].makespan, direct.makespan);
    }
  }
}

TEST(DltBatchTest, UtilityCurveMatchesUtilityLoop) {
  Rng rng(6);
  const LinearNetwork net = LinearNetwork::random(9, rng, 0.5, 5.0, 0.1, 0.6);
  for (const bool verify : {true, false}) {
    MechanismConfig config;
    config.verify_actual_rates = verify;
    CounterfactualMechanism mech(net, net.processing_times(), config);
    std::vector<double> bids;
    for (std::size_t k = 0; k < 41; ++k) bids.push_back(rng.uniform(0.2, 9.0));
    std::vector<double> curve(bids.size());
    for (const std::size_t index : {1ul, 4ul, 8ul}) {
      SCOPED_TRACE("index=" + std::to_string(index) +
                   " verify=" + std::to_string(verify));
      mech.utility_curve(index, bids, curve);
      for (std::size_t k = 0; k < bids.size(); ++k) {
        ASSERT_EQ(curve[k],
                  mech.utility(index, bids[k], net.w(index)));
      }
    }
  }
}

TEST(DltBatchTest, AssessFromBatchMatchesAssessCompliant) {
  const std::vector<LinearNetwork> nets = random_instances(5, 7, 77);
  const std::size_t n = nets.front().size();
  BatchLinearSolver solver;
  solver.begin(n, nets.size());
  for (std::size_t lane = 0; lane < nets.size(); ++lane) {
    solver.set_instance(lane, nets[lane]);
  }
  solver.solve();

  const MechanismConfig config{};
  AssessWorkspace batch_ws;
  AssessWorkspace direct_ws;
  for (std::size_t lane = 0; lane < nets.size(); ++lane) {
    SCOPED_TRACE("lane=" + std::to_string(lane));
    const DlsLblResult& from_batch = dls::core::assess_compliant_from_batch(
        nets[lane], solver, lane, nets[lane].processing_times(), config,
        batch_ws);
    const DlsLblResult& direct = dls::core::assess_compliant(
        nets[lane], nets[lane].processing_times(), config, direct_ws);
    ASSERT_EQ(from_batch.processors.size(), direct.processors.size());
    for (std::size_t j = 0; j < direct.processors.size(); ++j) {
      ASSERT_EQ(from_batch.processors[j].money.payment,
                direct.processors[j].money.payment);
      ASSERT_EQ(from_batch.processors[j].money.utility,
                direct.processors[j].money.utility);
      ASSERT_EQ(from_batch.processors[j].alpha, direct.processors[j].alpha);
    }
    ASSERT_EQ(from_batch.total_payment, direct.total_payment);
    ASSERT_EQ(from_batch.mechanism_cost, direct.mechanism_cost);
  }
}

}  // namespace
