// Round-trip and robustness tests for the protocol wire format, plus a
// small decoder fuzz sweep (random and mutated buffers must never crash
// — only throw DecodeError or produce a claim that fails verification).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/pki.hpp"
#include "protocol/wire.hpp"

namespace {

using dls::codec::Bytes;
using dls::codec::DecodeError;
using dls::common::Rng;
using dls::crypto::Claim;
using dls::crypto::ClaimKind;
using dls::crypto::KeyRegistry;
using dls::crypto::make_signed;
using dls::crypto::SignedClaim;
using namespace dls::protocol;

struct Fixture {
  Rng rng{123};
  KeyRegistry registry;
  dls::crypto::Signer signer = registry.enroll(3, rng);

  SignedClaim claim(double value) {
    return make_signed(signer,
                       Claim{ClaimKind::kEquivalentBid, 3, 9, value});
  }
};

TEST(Wire, SignedClaimRoundtripPreservesSignature) {
  Fixture f;
  const SignedClaim original = f.claim(1.25);
  const Bytes wire = encode_signed_claim(original);
  const SignedClaim back = decode_signed_claim(wire);
  EXPECT_EQ(back, original);
  EXPECT_TRUE(dls::crypto::verify(f.registry, back));
}

TEST(Wire, BidMessageRoundtrip) {
  Fixture f;
  const BidMessage original{f.claim(2.5)};
  const BidMessage back = decode_bid_message(encode_bid_message(original));
  EXPECT_EQ(back.equivalent_bid, original.equivalent_bid);
}

TEST(Wire, AllocationMessageRoundtrip) {
  Fixture f;
  AllocationMessage original;
  original.received_pred = f.claim(1.0);
  original.received_self = f.claim(0.5);
  original.equiv_bid_pred = f.claim(0.7);
  original.rate_bid_pred = f.claim(1.1);
  original.equiv_bid_self = f.claim(0.9);
  const AllocationMessage back =
      decode_allocation_message(encode_allocation_message(original));
  EXPECT_EQ(back.received_pred, original.received_pred);
  EXPECT_EQ(back.received_self, original.received_self);
  EXPECT_EQ(back.equiv_bid_pred, original.equiv_bid_pred);
  EXPECT_EQ(back.rate_bid_pred, original.rate_bid_pred);
  EXPECT_EQ(back.equiv_bid_self, original.equiv_bid_self);
}

TEST(Wire, WrongMagicRejected) {
  Fixture f;
  const Bytes as_claim = encode_signed_claim(f.claim(1.0));
  EXPECT_THROW(decode_bid_message(as_claim), DecodeError);
  const Bytes as_bid = encode_bid_message(BidMessage{f.claim(1.0)});
  EXPECT_THROW(decode_signed_claim(as_bid), DecodeError);
}

TEST(Wire, TruncationRejectedAtEveryLength) {
  Fixture f;
  const Bytes wire = encode_signed_claim(f.claim(1.0));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const Bytes prefix(wire.begin(),
                       wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_signed_claim(prefix), DecodeError) << cut;
  }
}

TEST(Wire, TrailingBytesRejected) {
  Fixture f;
  Bytes wire = encode_signed_claim(f.claim(1.0));
  wire.push_back(0x00);
  EXPECT_THROW(decode_signed_claim(wire), DecodeError);
}

TEST(Wire, BitFlipsNeverVerify) {
  Fixture f;
  const SignedClaim original = f.claim(1.0);
  const Bytes wire = encode_signed_claim(original);
  int decoded_ok = 0;
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = wire;
      mutated[byte] = static_cast<std::uint8_t>(mutated[byte] ^ (1u << bit));
      try {
        const SignedClaim back = decode_signed_claim(mutated);
        ++decoded_ok;
        // A decodable mutation must either fail signature verification
        // or decode back to the exact original (flips inside varint
        // padding cannot occur with this codec, so any accepted claim
        // that verifies must BE the original).
        if (dls::crypto::verify(f.registry, back)) {
          EXPECT_EQ(back, original);
        }
      } catch (const DecodeError&) {
        // fine — strict decoder
      }
    }
  }
  // Sanity: the sweep exercised real decodes, not only rejections.
  EXPECT_GT(decoded_ok, 0);
}

TEST(Wire, RandomBuffersNeverCrash) {
  Rng rng(9090);
  int threw = 0;
  for (int rep = 0; rep < 2000; ++rep) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 200));
    Bytes junk(len);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.bits());
    try {
      (void)decode_allocation_message(junk);
    } catch (const DecodeError&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 1900);  // essentially everything must be rejected
}

}  // namespace
