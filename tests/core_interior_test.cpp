// Tests for the interior-origination mechanism extension.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/dls_interior.hpp"
#include "net/networks.hpp"

namespace {

using dls::common::Rng;
using dls::core::assess_dls_interior;
using dls::core::interior_utility_under_bid;
using dls::core::MechanismConfig;
using dls::net::InteriorLinearNetwork;

InteriorLinearNetwork random_interior(Rng& rng, std::size_t max_n = 14) {
  const auto n = static_cast<std::size_t>(
      rng.uniform_int(3, static_cast<std::int64_t>(max_n)));
  std::vector<double> w(n), z(n - 1);
  for (auto& x : w) x = rng.log_uniform(0.5, 5.0);
  for (auto& x : z) x = rng.log_uniform(0.05, 0.5);
  const auto root = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(n) - 2));
  return InteriorLinearNetwork(std::move(w), std::move(z), root);
}

std::vector<double> rates_of(const InteriorLinearNetwork& net) {
  std::vector<double> rates(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) rates[i] = net.w(i);
  return rates;
}

TEST(DlsInterior, RootHasZeroUtilityAndEveryoneIsAssessed) {
  const InteriorLinearNetwork net({1.0, 0.8, 1.2, 0.9}, {0.2, 0.1, 0.3}, 1);
  const auto result =
      assess_dls_interior(net, rates_of(net), MechanismConfig{});
  EXPECT_DOUBLE_EQ(result.processors[1].money.utility, 0.0);
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_EQ(result.processors[i].index, i);
    EXPECT_GT(result.processors[i].alpha, 0.0);
  }
  EXPECT_GT(result.total_payment, 0.0);
  EXPECT_NEAR(result.mechanism_cost,
              result.total_payment +
                  result.processors[1].money.compensation,
              1e-12);
}

TEST(DlsInterior, VoluntaryParticipationOnRandomInstances) {
  Rng rng(41);
  for (int rep = 0; rep < 20; ++rep) {
    const InteriorLinearNetwork net = random_interior(rng);
    const auto result =
        assess_dls_interior(net, rates_of(net), MechanismConfig{});
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (i == net.root()) continue;
      EXPECT_GE(result.processors[i].money.utility, -1e-9)
          << "P" << i << " root " << net.root();
      // Compliant truthful utility reduces to the bonus.
      EXPECT_NEAR(result.processors[i].money.utility,
                  result.processors[i].money.bonus, 1e-9);
    }
  }
}

TEST(DlsInterior, TruthDominatesOnBothArms) {
  Rng rng(42);
  const MechanismConfig config;
  for (int rep = 0; rep < 6; ++rep) {
    const InteriorLinearNetwork net = random_interior(rng, 10);
    for (std::size_t i = 0; i < net.size(); ++i) {
      if (i == net.root()) continue;
      const double t = net.w(i);
      const double truth_u =
          interior_utility_under_bid(net, i, t, t, config);
      for (const double f : {0.4, 0.7, 0.9, 1.2, 1.8, 3.0}) {
        const double u =
            interior_utility_under_bid(net, i, t * f, t, config);
        EXPECT_LE(u, truth_u + 1e-9)
            << "P" << i << " factor " << f << " root " << net.root();
      }
    }
  }
}

TEST(DlsInterior, SlowExecutionHurtsOnBothArms) {
  Rng rng(43);
  const MechanismConfig config;
  const InteriorLinearNetwork net = random_interior(rng, 10);
  for (std::size_t i = 0; i < net.size(); ++i) {
    if (i == net.root()) continue;
    const double t = net.w(i);
    const double truth_u = interior_utility_under_bid(net, i, t, t, config);
    const double slow_u =
        interior_utility_under_bid(net, i, t, t * 1.6, config);
    EXPECT_LT(slow_u, truth_u) << "P" << i;
  }
}

TEST(DlsInterior, RejectsBadInputs) {
  const InteriorLinearNetwork net({1.0, 0.8, 1.2}, {0.2, 0.1}, 1);
  EXPECT_THROW(
      assess_dls_interior(net, std::vector<double>{1.0}, MechanismConfig{}),
      dls::PreconditionError);
  EXPECT_THROW(
      interior_utility_under_bid(net, 1, 1.0, 1.0, MechanismConfig{}),
      dls::PreconditionError)
      << "the root is not strategic";
  EXPECT_THROW(
      interior_utility_under_bid(net, 0, 1.0, 0.5, MechanismConfig{}),
      dls::PreconditionError)
      << "cannot run faster than capacity";
}

}  // namespace
