// Unit and property tests for the LINEAR BOUNDARY-LINEAR solver
// (Algorithm 1) and the finish-time model of eqs. (2.1)-(2.2).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/tolerance.hpp"
#include "dlt/baselines.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"

namespace {

using dls::common::Rng;
using dls::dlt::baseline_equal;
using dls::dlt::baseline_prefix_optimal;
using dls::dlt::baseline_root_only;
using dls::dlt::baseline_speed_proportional;
using dls::dlt::finish_time_spread;
using dls::dlt::finish_times;
using dls::dlt::LinearSolution;
using dls::dlt::makespan;
using dls::dlt::pair_alpha_hat;
using dls::dlt::pair_equivalent_w;
using dls::dlt::pair_realized_w;
using dls::dlt::solve_linear_boundary;
using dls::net::LinearNetwork;

TEST(PairReduction, MatchesEquation27) {
  // α̂ w = (1-α̂)(z + w̄_tail) must hold exactly by construction.
  const double w = 1.7, z = 0.3, tail = 2.4;
  const double ah = pair_alpha_hat(w, z, tail);
  EXPECT_NEAR(ah * w, (1.0 - ah) * (z + tail), 1e-15);
  EXPECT_GT(ah, 0.0);
  EXPECT_LT(ah, 1.0);
  EXPECT_NEAR(pair_equivalent_w(w, z, tail), ah * w, 1e-15);
}

TEST(PairReduction, EquivalentIsFasterThanFront) {
  // Adding a helper chain can only speed the front processor up:
  // w̄ = α̂ w < w.
  for (const double w : {0.5, 1.0, 4.0}) {
    for (const double z : {0.01, 0.3, 2.0}) {
      for (const double tail : {0.2, 1.0, 9.0}) {
        EXPECT_LT(pair_equivalent_w(w, z, tail), w);
      }
    }
  }
}

TEST(PairReduction, RealizedEqualsPlannedWhenTailTruthful) {
  const double w = 1.3, z = 0.2, tail = 0.9;
  const double ah = pair_alpha_hat(w, z, tail);
  EXPECT_NEAR(pair_realized_w(ah, w, z, tail), ah * w, 1e-12);
}

TEST(PairReduction, RealizedGrowsWhenTailSlower) {
  const double w = 1.3, z = 0.2, tail = 0.9;
  const double ah = pair_alpha_hat(w, z, tail);
  const double planned = pair_realized_w(ah, w, z, tail);
  EXPECT_GT(pair_realized_w(ah, w, z, tail * 1.5), planned);
  // A faster-than-bid tail cannot shrink the pair below the plan: the
  // front processor's own computation pins it.
  EXPECT_NEAR(pair_realized_w(ah, w, z, tail * 0.5), planned, 1e-12);
}

TEST(SolveLinearBoundary, SingleProcessor) {
  const LinearNetwork net({2.5}, {});
  const LinearSolution sol = solve_linear_boundary(net);
  ASSERT_EQ(sol.alpha.size(), 1u);
  EXPECT_DOUBLE_EQ(sol.alpha[0], 1.0);
  EXPECT_DOUBLE_EQ(sol.makespan, 2.5);
  EXPECT_TRUE(sol.steps.empty());
}

TEST(SolveLinearBoundary, TwoProcessorGolden) {
  // w0=1, w1=2, z1=0.5: hand-solved α = (5/7, 2/7), T = 5/7.
  const LinearNetwork net({1.0, 2.0}, {0.5});
  const LinearSolution sol = solve_linear_boundary(net);
  EXPECT_NEAR(sol.alpha_hat[0], 5.0 / 7.0, 1e-15);
  EXPECT_NEAR(sol.alpha[0], 5.0 / 7.0, 1e-15);
  EXPECT_NEAR(sol.alpha[1], 2.0 / 7.0, 1e-15);
  EXPECT_NEAR(sol.makespan, 5.0 / 7.0, 1e-15);
  EXPECT_NEAR(sol.equivalent_w[1], 2.0, 1e-15);
  ASSERT_EQ(sol.steps.size(), 1u);
  EXPECT_EQ(sol.steps[0].index, 0u);
  EXPECT_NEAR(sol.steps[0].tail_w, 2.0, 1e-15);
}

TEST(SolveLinearBoundary, ThreeProcessorGolden) {
  // w = (1,1,1), z = (0.2,0.2): hand-solved α = (41, 30, 25)/96.
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const LinearSolution sol = solve_linear_boundary(net);
  EXPECT_NEAR(sol.alpha[0], 41.0 / 96.0, 1e-12);
  EXPECT_NEAR(sol.alpha[1], 30.0 / 96.0, 1e-12);
  EXPECT_NEAR(sol.alpha[2], 25.0 / 96.0, 1e-12);
  EXPECT_NEAR(sol.makespan, 41.0 / 96.0, 1e-12);
  EXPECT_NEAR(sol.alpha_hat[1], 6.0 / 11.0, 1e-12);
  EXPECT_NEAR(sol.received[1], 55.0 / 96.0, 1e-12);
  EXPECT_NEAR(sol.received[2], 25.0 / 96.0, 1e-12);
}

TEST(FinishTimes, MatchClosedFormOnGolden) {
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const LinearSolution sol = solve_linear_boundary(net);
  const std::vector<double> t = finish_times(net, sol.alpha);
  for (const double ti : t) EXPECT_NEAR(ti, 41.0 / 96.0, 1e-12);
}

TEST(FinishTimes, ZeroAllocationReportsZero) {
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const std::vector<double> alpha = {0.6, 0.0, 0.4};
  const std::vector<double> t = finish_times(net, alpha);
  EXPECT_DOUBLE_EQ(t[1], 0.0);
  // P_2 still waits for the load to transit both links.
  EXPECT_NEAR(t[2], 0.4 * 0.2 + 0.4 * 0.2 + 0.4 * 1.0, 1e-12);
}

TEST(FinishTimes, RejectsBadAllocations) {
  const LinearNetwork net({1.0, 1.0}, {0.2});
  EXPECT_THROW(finish_times(net, std::vector<double>{0.5}),
               dls::PreconditionError);
  EXPECT_THROW(finish_times(net, std::vector<double>{-0.1, 0.5}),
               dls::PreconditionError);
  EXPECT_THROW(finish_times(net, std::vector<double>{0.9, 0.9}),
               dls::PreconditionError);
}

// ---------------------------------------------------------------------
// Property sweeps over random instances.

class LinearSolverProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  LinearNetwork random_network(Rng& rng) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 40));
    return LinearNetwork::random(m + 1, rng, 0.5, 5.0, 0.05, 0.5);
  }
};

TEST_P(LinearSolverProperty, AllocationIsOnTheSimplex) {
  Rng rng(GetParam());
  for (int rep = 0; rep < 20; ++rep) {
    const LinearNetwork net = random_network(rng);
    const LinearSolution sol = solve_linear_boundary(net);
    double total = 0.0;
    for (const double a : sol.alpha) {
      EXPECT_GT(a, 0.0);
      total += a;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST_P(LinearSolverProperty, Theorem21AllFinishSimultaneously) {
  Rng rng(GetParam() ^ 0x5eedu);
  for (int rep = 0; rep < 20; ++rep) {
    const LinearNetwork net = random_network(rng);
    const LinearSolution sol = solve_linear_boundary(net);
    EXPECT_LE(finish_time_spread(net, sol.alpha), 1e-9)
        << net.describe();
    EXPECT_NEAR(makespan(net, sol.alpha), sol.makespan, 1e-9);
  }
}

TEST_P(LinearSolverProperty, EquivalentTimesMatchSuffixSolves) {
  Rng rng(GetParam() ^ 0xabcdu);
  const LinearNetwork net = random_network(rng);
  const LinearSolution sol = solve_linear_boundary(net);
  for (std::size_t i = 0; i < net.size(); ++i) {
    const LinearSolution suffix_sol = solve_linear_boundary(net.suffix(i));
    EXPECT_NEAR(sol.equivalent_w[i], suffix_sol.makespan, 1e-12)
        << "suffix " << i;
  }
}

TEST_P(LinearSolverProperty, LocalPerturbationsNeverImprove) {
  // Theorem 2.1 optimality: shifting ε of load between any two
  // processors cannot reduce the makespan.
  Rng rng(GetParam() ^ 0x9999u);
  for (int rep = 0; rep < 5; ++rep) {
    const LinearNetwork net = random_network(rng);
    const LinearSolution sol = solve_linear_boundary(net);
    const double base = makespan(net, sol.alpha);
    for (int trial = 0; trial < 30; ++trial) {
      const auto from = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1));
      const auto to = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1));
      if (from == to) continue;
      const double eps = std::min(1e-4, sol.alpha[from] * 0.5);
      std::vector<double> alpha = sol.alpha;
      alpha[from] -= eps;
      alpha[to] += eps;
      EXPECT_GE(makespan(net, alpha), base - 1e-12);
    }
  }
}

TEST_P(LinearSolverProperty, SlowerBidGetsLessLoad) {
  Rng rng(GetParam() ^ 0x7777u);
  const LinearNetwork net = random_network(rng);
  const LinearSolution before = solve_linear_boundary(net);
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1));
  const LinearNetwork slower = net.with_processing_time(i, net.w(i) * 2.0);
  const LinearSolution after = solve_linear_boundary(slower);
  EXPECT_LT(after.alpha[i], before.alpha[i]);
  // And the whole system cannot get faster when one member slows down.
  EXPECT_GE(after.makespan, before.makespan - 1e-12);
}

TEST_P(LinearSolverProperty, BaselinesNeverBeatOptimal) {
  Rng rng(GetParam() ^ 0x4242u);
  for (int rep = 0; rep < 10; ++rep) {
    const LinearNetwork net = random_network(rng);
    const double opt = solve_linear_boundary(net).makespan;
    EXPECT_GE(makespan(net, baseline_equal(net.size())), opt - 1e-12);
    EXPECT_GE(makespan(net, baseline_speed_proportional(net)), opt - 1e-12);
    EXPECT_GE(makespan(net, baseline_root_only(net.size())), opt - 1e-12);
    for (std::size_t k = 1; k <= net.size(); ++k) {
      EXPECT_GE(makespan(net, baseline_prefix_optimal(net, k)), opt - 1e-12);
    }
  }
}

TEST_P(LinearSolverProperty, PrefixOptimalImprovesWithMoreProcessors) {
  // Under the linear cost model adding one more chain member (with the
  // optimal split) never hurts.
  Rng rng(GetParam() ^ 0x3131u);
  const LinearNetwork net = random_network(rng);
  double prev = makespan(net, baseline_prefix_optimal(net, 1));
  for (std::size_t k = 2; k <= net.size(); ++k) {
    const double cur = makespan(net, baseline_prefix_optimal(net, k));
    EXPECT_LE(cur, prev + 1e-12);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearSolverProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u, 55u, 89u));

// ---------------------------------------------------------------------
// Numerical robustness at extreme scales.

TEST(NumericalRobustness, MicrosecondScaleRates) {
  Rng rng(404);
  const LinearNetwork net =
      LinearNetwork::random(12, rng, 1e-7, 1e-5, 1e-8, 1e-6);
  const LinearSolution sol = solve_linear_boundary(net);
  double total = 0.0;
  for (const double a : sol.alpha) total += a;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_LE(finish_time_spread(net, sol.alpha), 1e-9);
}

TEST(NumericalRobustness, MegasecondScaleRates) {
  Rng rng(405);
  const LinearNetwork net =
      LinearNetwork::random(12, rng, 1e5, 1e7, 1e4, 1e6);
  const LinearSolution sol = solve_linear_boundary(net);
  EXPECT_LE(finish_time_spread(net, sol.alpha), 1e-9);
  EXPECT_NEAR(sol.makespan, makespan(net, sol.alpha), 1e-9 * sol.makespan);
}

TEST(NumericalRobustness, WildlyMixedScales) {
  // A supercomputer chained behind a potato over a dial-up link.
  const LinearNetwork net({1e-6, 1e3, 1e-6, 1e3}, {1e-4, 10.0, 1e-4});
  const LinearSolution sol = solve_linear_boundary(net);
  double total = 0.0;
  for (const double a : sol.alpha) {
    EXPECT_GE(a, 0.0);
    total += a;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_LE(finish_time_spread(net, sol.alpha), 1e-6);
}

TEST(NumericalRobustness, VeryLongChainsStayConsistent) {
  Rng rng(406);
  const LinearNetwork net =
      LinearNetwork::random(5000, rng, 0.5, 5.0, 0.05, 0.5);
  const LinearSolution sol = solve_linear_boundary(net);
  double total = 0.0;
  for (const double a : sol.alpha) total += a;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_LE(finish_time_spread(net, sol.alpha), 1e-8);
  // Deep allocations underflow toward zero but must stay non-negative.
  EXPECT_GE(sol.alpha.back(), 0.0);
}

}  // namespace
