// Property tests for the paper's central results:
//   Lemma 5.3 / Theorem 5.3 — truth-telling (and full-capacity execution)
//     is a dominant strategy under the DLS-LBL payments;
//   Lemma 5.4 / Theorem 5.4 — truthful processors never lose money.
// Each property is checked on randomized instances across bid grids.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/experiments.hpp"
#include "analysis/sweep.hpp"
#include "common/rng.hpp"
#include "core/dls_lbl.hpp"
#include "core/dls_star.hpp"
#include "net/networks.hpp"

namespace {

using dls::analysis::logspace;
using dls::analysis::max_truth_advantage_gap;
using dls::analysis::truthful_participation;
using dls::analysis::utility_vs_bid;
using dls::analysis::utility_vs_speed;
using dls::common::Rng;
using dls::core::MechanismConfig;
using dls::core::star_utility_under_bid;
using dls::core::utility_under_bid;
using dls::net::LinearNetwork;
using dls::net::StarNetwork;

class Strategyproofness : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  LinearNetwork random_network(Rng& rng, std::size_t max_m = 12) {
    const auto m =
        static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(max_m)));
    return LinearNetwork::random(m + 1, rng, 0.5, 5.0, 0.05, 0.5);
  }
};

TEST_P(Strategyproofness, TruthfulBidDominatesOnAGrid) {
  Rng rng(GetParam());
  const MechanismConfig config;
  for (int rep = 0; rep < 8; ++rep) {
    const LinearNetwork net = random_network(rng);
    for (std::size_t i = 1; i < net.size(); ++i) {
      const double t = net.w(i);
      const auto grid = logspace(t * 0.2, t * 5.0, 41);
      const auto curve = utility_vs_bid(net, i, grid, config);
      EXPECT_LE(max_truth_advantage_gap(curve), 1e-9)
          << "P" << i << " of " << net.describe();
    }
  }
}

TEST_P(Strategyproofness, UtilityIsSinglePeakedAtTruth) {
  // Stronger shape check: utilities are non-decreasing up to the truth
  // and non-increasing beyond it (the bonus construction gives a kinked
  // single-peaked curve).
  Rng rng(GetParam() ^ 0xbeefu);
  const MechanismConfig config;
  const LinearNetwork net = random_network(rng);
  for (std::size_t i = 1; i < net.size(); ++i) {
    const double t = net.w(i);
    std::vector<double> grid;
    for (double f = 0.3; f <= 3.0; f += 0.1) grid.push_back(t * f);
    grid.push_back(t);  // include the exact truth
    std::sort(grid.begin(), grid.end());
    const auto curve = utility_vs_bid(net, i, grid, config);
    // Find the truth position.
    std::size_t truth_pos = 0;
    for (std::size_t k = 0; k < grid.size(); ++k) {
      if (grid[k] == t) truth_pos = k;
    }
    for (std::size_t k = 0; k + 1 <= truth_pos; ++k) {
      EXPECT_LE(curve.utilities[k], curve.utilities[k + 1] + 1e-9);
    }
    for (std::size_t k = truth_pos; k + 1 < grid.size(); ++k) {
      EXPECT_GE(curve.utilities[k], curve.utilities[k + 1] - 1e-9);
    }
  }
}

TEST_P(Strategyproofness, FullCapacityExecutionDominates) {
  // Lemma 5.3 case (ii): with a truthful bid, any slowdown w̃ > t weakly
  // reduces utility.
  Rng rng(GetParam() ^ 0xcafeu);
  const MechanismConfig config;
  for (int rep = 0; rep < 5; ++rep) {
    const LinearNetwork net = random_network(rng);
    for (std::size_t i = 1; i < net.size(); ++i) {
      std::vector<double> mults;
      for (double f = 1.0; f <= 2.5; f += 0.125) mults.push_back(f);
      const auto curve = utility_vs_speed(net, i, mults, config);
      for (std::size_t k = 0; k < curve.utilities.size(); ++k) {
        EXPECT_LE(curve.utilities[k], curve.utility_at_truth + 1e-9)
            << "P" << i << " multiplier " << mults[k];
      }
      // Strictness: a big slowdown must strictly hurt.
      EXPECT_LT(curve.utilities.back(), curve.utility_at_truth);
    }
  }
}

TEST_P(Strategyproofness, SlowExecutionCannotRescueAnUnderbid) {
  // Joint deviation: underbid to grab load, then run at true capacity.
  // Still dominated by (truth, full speed).
  Rng rng(GetParam() ^ 0xd00du);
  const MechanismConfig config;
  const LinearNetwork net = random_network(rng);
  for (std::size_t i = 1; i < net.size(); ++i) {
    const double t = net.w(i);
    const double truth_u = utility_under_bid(net, i, t, t, config);
    for (const double bid_f : {0.4, 0.7, 0.9}) {
      for (const double run_f : {1.0, 1.2, 1.6}) {
        const double u =
            utility_under_bid(net, i, t * bid_f, t * run_f, config);
        EXPECT_LE(u, truth_u + 1e-9);
      }
    }
  }
}

TEST_P(Strategyproofness, VoluntaryParticipationHolds) {
  // Lemma 5.4: truthful compliant agents end with U_i >= 0; in fact
  // U_i = w_{i-1} − w̄_{i-1} which is strictly positive here.
  Rng rng(GetParam() ^ 0xfeedu);
  for (int rep = 0; rep < 10; ++rep) {
    const LinearNetwork net = random_network(rng, 30);
    const auto sample = truthful_participation(net, MechanismConfig{});
    EXPECT_GE(sample.min_utility, 0.0) << net.describe();
    EXPECT_GT(sample.total_payment, 0.0);
  }
}

TEST_P(Strategyproofness, TruthfulUtilityEqualsBonusIdentity) {
  // The algebra of Lemma 5.4: U_j = w_{j-1} − w̄_{j-1} at truth.
  Rng rng(GetParam() ^ 0x1221u);
  const LinearNetwork net = random_network(rng);
  std::vector<double> actual(net.processing_times().begin(),
                             net.processing_times().end());
  const auto result =
      dls::core::assess_compliant(net, actual, MechanismConfig{});
  for (std::size_t j = 1; j < net.size(); ++j) {
    const double expected =
        net.w(j - 1) - result.solution.equivalent_w[j - 1];
    EXPECT_NEAR(result.processors[j].money.utility, expected, 1e-9);
  }
}

TEST_P(Strategyproofness, StarMechanismTruthDominates) {
  Rng rng(GetParam() ^ 0x5151u);
  const MechanismConfig config;
  for (int rep = 0; rep < 5; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(2, 8));
    const StarNetwork net =
        StarNetwork::random(m, rng, 0.5, 5.0, 0.05, 0.5, true);
    for (std::size_t i = 0; i < m; ++i) {
      const double t = net.w(i);
      const double truth_u = star_utility_under_bid(net, i, t, t, config);
      EXPECT_GE(truth_u, -1e-9);  // voluntary participation
      for (const double f : {0.3, 0.6, 0.9, 1.1, 1.5, 3.0}) {
        const double u = star_utility_under_bid(net, i, t * f, t, config);
        EXPECT_LE(u, truth_u + 1e-9) << "worker " << i << " factor " << f;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Strategyproofness,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u,
                                           77u, 88u));

}  // namespace
