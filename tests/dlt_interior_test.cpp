// Tests for interior-origination linear networks (the paper's future-work
// variant).
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dlt/interior.hpp"
#include "dlt/star.hpp"
#include "net/networks.hpp"

namespace {

using dls::common::Rng;
using dls::dlt::ArmOrder;
using dls::dlt::interior_finish_times;
using dls::dlt::InteriorSolution;
using dls::dlt::solve_linear_interior;
using dls::dlt::solve_linear_interior_ordered;
using dls::dlt::solve_star;
using dls::net::InteriorLinearNetwork;
using dls::net::StarNetwork;

TEST(SolveInterior, ThreeNodeChainEqualsTwoWorkerStar) {
  // With the root in the middle of a 3-node chain, both arms are single
  // processors — exactly a 2-worker star.
  const InteriorLinearNetwork chain({1.0, 1.0, 1.0}, {0.2, 0.2}, 1);
  const StarNetwork star(1.0, {1.0, 1.0}, {0.2, 0.2});
  const InteriorSolution is = solve_linear_interior(chain);
  const auto ss = solve_star(star);
  EXPECT_NEAR(is.makespan, ss.makespan, 1e-12);
  EXPECT_NEAR(is.alpha[1], ss.alpha_root, 1e-12);
  // The two workers' shares match the star's (order left/right vs 0/1).
  EXPECT_NEAR(is.alpha[0] + is.alpha[2], ss.alpha[0] + ss.alpha[1], 1e-12);
}

TEST(SolveInterior, AllocationSumsToOne) {
  Rng rng(3);
  for (int rep = 0; rep < 20; ++rep) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 20));
    std::vector<double> w(n), z(n - 1);
    for (auto& x : w) x = rng.log_uniform(0.5, 5.0);
    for (auto& x : z) x = rng.log_uniform(0.05, 0.5);
    const auto root =
        static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(n) - 2));
    const InteriorLinearNetwork net(w, z, root);
    const InteriorSolution sol = solve_linear_interior(net);
    double total = 0.0;
    for (const double a : sol.alpha) {
      EXPECT_GT(a, 0.0);
      total += a;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
    EXPECT_NEAR(sol.left_load + sol.right_load + sol.alpha[root], 1.0,
                1e-12);
  }
}

TEST(SolveInterior, EveryProcessorFinishesSimultaneously) {
  Rng rng(5);
  for (int rep = 0; rep < 20; ++rep) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(3, 16));
    std::vector<double> w(n), z(n - 1);
    for (auto& x : w) x = rng.log_uniform(0.5, 5.0);
    for (auto& x : z) x = rng.log_uniform(0.05, 0.5);
    const auto root =
        static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(n) - 2));
    const InteriorLinearNetwork net(w, z, root);
    for (const ArmOrder order :
         {ArmOrder::kLeftFirst, ArmOrder::kRightFirst}) {
      const InteriorSolution sol =
          solve_linear_interior_ordered(net, order);
      const std::vector<double> t = interior_finish_times(net, sol);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(t[i], sol.makespan, 1e-9)
            << "processor " << i << " order "
            << (order == ArmOrder::kLeftFirst ? "LF" : "RF");
      }
    }
  }
}

TEST(SolveInterior, PicksTheBetterOrder) {
  Rng rng(7);
  for (int rep = 0; rep < 10; ++rep) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(4, 12));
    std::vector<double> w(n), z(n - 1);
    for (auto& x : w) x = rng.log_uniform(0.5, 5.0);
    for (auto& x : z) x = rng.log_uniform(0.05, 0.5);
    const auto root =
        static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(n) - 2));
    const InteriorLinearNetwork net(w, z, root);
    const double best = solve_linear_interior(net).makespan;
    const double lf =
        solve_linear_interior_ordered(net, ArmOrder::kLeftFirst).makespan;
    const double rf =
        solve_linear_interior_ordered(net, ArmOrder::kRightFirst).makespan;
    EXPECT_NEAR(best, std::min(lf, rf), 1e-15);
  }
}

TEST(SolveInterior, SymmetricChainIsOrderIndifferent) {
  const InteriorLinearNetwork net({2.0, 1.0, 2.0}, {0.3, 0.3}, 1);
  const double lf =
      solve_linear_interior_ordered(net, ArmOrder::kLeftFirst).makespan;
  const double rf =
      solve_linear_interior_ordered(net, ArmOrder::kRightFirst).makespan;
  EXPECT_NEAR(lf, rf, 1e-12);
}

}  // namespace
