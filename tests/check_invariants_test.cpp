// Property tests for the src/check contract layer: every checker must
// accept genuine solver/mechanism output across randomized and
// degenerate chains, and reject hand-corrupted copies of the same
// output. The corruptions mirror realistic bug classes — a perturbed
// allocation entry, a payment that drifted from its decomposition, a
// reordered reduction trace, an illegal phase transition, a tampered
// token batch.
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "check/contracts.hpp"
#include "check/mechanism_invariants.hpp"
#include "check/protocol_invariants.hpp"
#include "check/solver_invariants.hpp"
#include "common/rng.hpp"
#include "core/dls_lbl.hpp"
#include "dlt/counterfactual.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "payment/ledger.hpp"
#include "protocol/tokens.hpp"

namespace dls {
namespace {

using check::ContractViolation;

net::LinearNetwork random_chain(std::size_t workers, std::uint64_t seed,
                                double w_lo = 0.1, double w_hi = 10.0,
                                double z_lo = 0.05, double z_hi = 5.0) {
  common::Rng rng(seed);
  return net::LinearNetwork::random(workers + 1, rng, w_lo, w_hi, z_lo,
                                    z_hi);
}

TEST(ContractMacros, CheckThrowsAndCounts) {
  const std::size_t before = check::violation_count();
  EXPECT_THROW(DLS_CHECK(1 + 1 == 3, "arithmetic broke"), ContractViolation);
  EXPECT_EQ(check::violation_count(), before + 1);
  EXPECT_NO_THROW(DLS_CHECK(true, "never fires"));
  EXPECT_EQ(check::violation_count(), before + 1);
}

TEST(ContractMacros, ViolationIsADlsError) {
  try {
    DLS_CHECK(false, "context message");
    FAIL() << "DLS_CHECK(false) must throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("context message"), std::string::npos);
    EXPECT_NE(what.find("contract"), std::string::npos);
  }
}

TEST(CheckLinearSolution, AcceptsRandomizedChains) {
  for (std::size_t m = 1; m <= 64; ++m) {
    const net::LinearNetwork network = random_chain(m, 1000 + m);
    const dlt::LinearSolution sol = dlt::solve_linear_boundary(network);
    EXPECT_NO_THROW(check::check_linear_solution(network, sol))
        << "valid solution rejected at m = " << m;
  }
}

TEST(CheckLinearSolution, AcceptsDegenerateChains) {
  // Extreme-but-feasible corners: glacial links, near-free links, six
  // decades of rate spread, and the two-processor minimum.
  const std::vector<net::LinearNetwork> chains = {
      random_chain(32, 7, 1e-4, 1e2, 1e2, 1e4),   // links dominate
      random_chain(32, 8, 1e-3, 1e3, 1e-6, 1e-3), // links nearly free
      random_chain(48, 9, 1e-3, 1e3, 1e-3, 1e3),  // six-decade spread
      net::LinearNetwork({2.0, 3.0}, {1.0}),      // minimal chain
      net::LinearNetwork::uniform(65, 1.0, 1.0),  // homogeneous, m = 64
  };
  for (const net::LinearNetwork& network : chains) {
    const dlt::LinearSolution sol = dlt::solve_linear_boundary(network);
    EXPECT_NO_THROW(check::check_linear_solution(network, sol));
  }
}

TEST(CheckLinearSolution, RejectsCorruptedSolutions) {
  for (std::size_t m : {1, 2, 5, 17, 64}) {
    const net::LinearNetwork network = random_chain(m, 2000 + m);
    const dlt::LinearSolution clean = dlt::solve_linear_boundary(network);
    const std::size_t mid = network.size() / 2;

    dlt::LinearSolution sol = clean;
    sol.alpha[mid] += 1e-3;  // breaks Σα = 1 and the bookkeeping
    EXPECT_THROW(check::check_linear_solution(network, sol),
                 ContractViolation)
        << "corrupted alpha accepted at m = " << m;

    sol = clean;
    sol.alpha_hat[mid] *= 1.01;  // breaks the collapse equation
    EXPECT_THROW(check::check_linear_solution(network, sol),
                 ContractViolation);

    sol = clean;
    sol.equivalent_w[0] *= 0.99;  // breaks w̄_0 = α̂_0 w_0 and makespan
    EXPECT_THROW(check::check_linear_solution(network, sol),
                 ContractViolation);

    sol = clean;
    sol.received[network.size() - 1] += 1e-3;  // breaks the D recursion
    EXPECT_THROW(check::check_linear_solution(network, sol),
                 ContractViolation);

    sol = clean;
    sol.makespan *= 1.001;  // finish times no longer meet the makespan
    EXPECT_THROW(check::check_linear_solution(network, sol),
                 ContractViolation);
  }
}

TEST(CheckLinearSolution, RejectsTamperedReductionTrace) {
  const net::LinearNetwork network = random_chain(8, 42);
  const dlt::LinearSolution clean = dlt::solve_linear_boundary(network);
  ASSERT_EQ(clean.steps.size(), network.size() - 1);

  dlt::LinearSolution sol = clean;
  std::swap(sol.steps.front(), sol.steps.back());  // out of order
  EXPECT_THROW(check::check_linear_solution(network, sol),
               ContractViolation);

  sol = clean;
  sol.steps[2].alpha_hat += 1e-6;  // disagrees with the arrays
  EXPECT_THROW(check::check_linear_solution(network, sol),
               ContractViolation);

  sol = clean;
  sol.steps.pop_back();  // wrong length
  EXPECT_THROW(check::check_linear_solution(network, sol),
               ContractViolation);
}

TEST(CheckCounterfactual, IdentityHoldsOnRandomizedChains) {
  for (std::size_t m : {1, 3, 9, 33, 64}) {
    const net::LinearNetwork network = random_chain(m, 3000 + m);
    dlt::CounterfactualSolver solver(network);
    EXPECT_NO_THROW(check::check_counterfactual_identity(solver));
  }
}

core::DlsLblResult deviant_assessment(const net::LinearNetwork& bid_network,
                                      const core::MechanismConfig& config,
                                      std::uint64_t seed) {
  // A population where some processors run slower than bid and some
  // shed part of their assignment — the checker must accept the
  // mechanism's verdict on deviants, not just the truthful fast path.
  common::Rng rng(seed);
  const std::size_t n = bid_network.size();
  std::vector<double> actual(n);
  actual[0] = bid_network.w(0);
  for (std::size_t j = 1; j < n; ++j) {
    actual[j] = bid_network.w(j) * (rng.bernoulli(0.3)
                                        ? rng.uniform(1.0, 1.5)  // slower
                                        : 1.0);                  // truthful
  }
  const dlt::LinearSolution sol = dlt::solve_linear_boundary(bid_network);
  std::vector<double> computed = sol.alpha;
  for (std::size_t j = 1; j < n; ++j) {
    if (rng.bernoulli(0.2)) computed[j] *= rng.uniform(0.0, 1.0);  // sheds
  }
  return core::assess_dls_lbl(bid_network, actual, computed, config);
}

TEST(CheckAssessment, AcceptsCompliantAndDeviantRuns) {
  core::MechanismConfig config;
  for (std::size_t m = 1; m <= 64; m += 7) {
    const net::LinearNetwork network = random_chain(m, 4000 + m);
    const core::DlsLblResult compliant = core::assess_compliant(
        network, network.processing_times(), config);
    EXPECT_NO_THROW(check::check_assessment(network, compliant, config));
    const core::DlsLblResult deviant =
        deviant_assessment(network, config, 5000 + m);
    EXPECT_NO_THROW(check::check_assessment(network, deviant, config));
  }
}

TEST(CheckAssessment, AcceptsSolutionBonusVariant) {
  core::MechanismConfig config;
  config.solution_bonus_enabled = true;
  config.solution_bonus = 0.02;
  const net::LinearNetwork network = random_chain(6, 61);
  const core::DlsLblResult result =
      core::assess_compliant(network, network.processing_times(), config);
  EXPECT_NO_THROW(check::check_assessment(network, result, config));
}

TEST(CheckAssessment, RejectsCorruptedPayments) {
  core::MechanismConfig config;
  for (std::size_t m : {1, 4, 16, 64}) {
    const net::LinearNetwork network = random_chain(m, 6000 + m);
    const core::DlsLblResult clean = core::assess_compliant(
        network, network.processing_times(), config);
    const std::size_t j = network.size() - 1;

    core::DlsLblResult bad = clean;
    bad.processors[j].money.payment += 0.01;  // Q no longer C + B + S
    EXPECT_THROW(check::check_assessment(network, bad, config),
                 ContractViolation)
        << "corrupted payment accepted at m = " << m;

    bad = clean;
    bad.processors[j].money.bonus -= 0.01;  // (4.9) broken
    EXPECT_THROW(check::check_assessment(network, bad, config),
                 ContractViolation);

    bad = clean;
    bad.processors[j].money.compensation += 0.01;  // (4.7) broken
    EXPECT_THROW(check::check_assessment(network, bad, config),
                 ContractViolation);

    bad = clean;
    bad.processors[j].money.recompense = -0.5;  // E_j must be >= 0
    EXPECT_THROW(check::check_assessment(network, bad, config),
                 ContractViolation);

    bad = clean;
    bad.total_payment += 1.0;  // totals out of sync
    EXPECT_THROW(check::check_assessment(network, bad, config),
                 ContractViolation);

    bad = clean;
    bad.processors[0].money.utility = 0.25;  // root must net zero
    EXPECT_THROW(check::check_assessment(network, bad, config),
                 ContractViolation);
  }
}

TEST(CheckAssessment, RejectsPayForNoWork) {
  core::MechanismConfig config;
  const net::LinearNetwork network = random_chain(5, 77);
  const dlt::LinearSolution sol = dlt::solve_linear_boundary(network);
  std::vector<double> computed = sol.alpha;
  computed[3] = 0.0;  // P_3 computed nothing
  core::DlsLblResult result = core::assess_dls_lbl(
      network, network.processing_times(), computed, config);
  ASSERT_EQ(result.processors[3].money.payment, 0.0);
  EXPECT_NO_THROW(check::check_assessment(network, result, config));
  result.processors[3].money.payment = 0.05;  // paid despite Q_j = 0 rule
  EXPECT_THROW(check::check_assessment(network, result, config),
               ContractViolation);
}

TEST(CheckLedger, AcceptsBalancedBooks) {
  payment::Ledger ledger;
  ledger.open_account(1);
  ledger.open_account(2);
  ledger.post({payment::kTreasury, 1, payment::TransferKind::kCompensation,
               3.5, "Q_1"});
  ledger.post({1, payment::kTreasury, payment::TransferKind::kFine, 1.25,
               "phase III"});
  ledger.post({payment::kTreasury, 2, payment::TransferKind::kReward, 1.25,
               "reporter"});
  EXPECT_NO_THROW(check::check_ledger_conservation(ledger));
}

TEST(PhaseOrder, AcceptsLegalRoundShapes) {
  using check::ProtocolPhase;
  {
    check::PhaseOrderChecker full;
    EXPECT_NO_THROW({
      full.advance(ProtocolPhase::kBids);
      full.advance(ProtocolPhase::kAllocation);
      full.advance(ProtocolPhase::kExecution);
      full.advance(ProtocolPhase::kSettlement);
      full.advance(ProtocolPhase::kDone);
    });
  }
  {
    check::PhaseOrderChecker abort_in_bids;
    abort_in_bids.advance(ProtocolPhase::kBids);
    EXPECT_NO_THROW(abort_in_bids.advance(ProtocolPhase::kDone));
  }
  {
    check::PhaseOrderChecker abort_in_alloc;
    abort_in_alloc.advance(ProtocolPhase::kBids);
    abort_in_alloc.advance(ProtocolPhase::kAllocation);
    EXPECT_NO_THROW(abort_in_alloc.advance(ProtocolPhase::kDone));
  }
}

TEST(PhaseOrder, RejectsIllegalTransitions) {
  using check::ProtocolPhase;
  {
    check::PhaseOrderChecker skipper;
    skipper.advance(ProtocolPhase::kBids);
    EXPECT_THROW(skipper.advance(ProtocolPhase::kExecution),
                 ContractViolation);  // skipped Phase II
  }
  {
    check::PhaseOrderChecker rewinder;
    rewinder.advance(ProtocolPhase::kBids);
    rewinder.advance(ProtocolPhase::kAllocation);
    EXPECT_THROW(rewinder.advance(ProtocolPhase::kBids),
                 ContractViolation);  // phases never rewind
  }
  {
    check::PhaseOrderChecker late_abort;
    late_abort.advance(ProtocolPhase::kBids);
    late_abort.advance(ProtocolPhase::kAllocation);
    late_abort.advance(ProtocolPhase::kExecution);
    EXPECT_THROW(late_abort.advance(ProtocolPhase::kDone),
                 ContractViolation);  // Phase III cannot abort the round
  }
}

TEST(TokenSplit, AcceptsLegalSplitsAndRejectsTampering) {
  common::Rng rng(11);
  protocol::TokenAuthority authority(256, rng);
  const protocol::TokenBatch received = authority.issue_unit_load();

  protocol::TokenBatch forwarded = received;
  const protocol::TokenBatch retained = forwarded.take_front(100);
  EXPECT_NO_THROW(
      check::check_token_split(authority, received, retained, forwarded));

  protocol::TokenBatch reordered = forwarded;
  std::swap(reordered.ids.front(), reordered.ids.back());
  EXPECT_THROW(
      check::check_token_split(authority, received, retained, reordered),
      ContractViolation);

  protocol::TokenBatch dropped = forwarded;
  dropped.ids.pop_back();  // a block vanished in transit
  EXPECT_THROW(
      check::check_token_split(authority, received, retained, dropped),
      ContractViolation);

  protocol::TokenBatch forged_received = received;
  forged_received.ids.front() = ~forged_received.ids.front();
  protocol::TokenBatch forged_retained = retained;
  forged_retained.ids.front() = forged_received.ids.front();
  EXPECT_THROW(check::check_token_split(authority, forged_received,
                                        forged_retained, forwarded),
               ContractViolation);  // identifier never issued
}

}  // namespace
}  // namespace dls
