// Tests for the interior-origination protocol (arm-wise composition).
#include <gtest/gtest.h>

#include "agents/agent.hpp"
#include "common/error.hpp"
#include "core/dls_interior.hpp"
#include "net/networks.hpp"
#include "protocol/interior_runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;
using dls::net::InteriorLinearNetwork;
using dls::protocol::InteriorRunReport;
using dls::protocol::run_interior_protocol;

//   P0 - P1 - [P2 root] - P3 - P4
InteriorLinearNetwork test_network() {
  return InteriorLinearNetwork({1.1, 0.8, 1.0, 1.3, 0.9},
                               {0.15, 0.1, 0.2, 0.12}, 2);
}

/// Left arm agents in arm order (root's neighbour first): P1 then P0.
Population left_agents(Behavior p1 = {}, Behavior p0 = {}) {
  return Population({StrategicAgent{1, 0.8, std::move(p1)},
                     StrategicAgent{2, 1.1, std::move(p0)}});
}

/// Right arm agents: P3 then P4.
Population right_agents(Behavior p3 = {}, Behavior p4 = {}) {
  return Population({StrategicAgent{1, 1.3, std::move(p3)},
                     StrategicAgent{2, 0.9, std::move(p4)}});
}

TEST(InteriorProtocol, HonestRoundMatchesCentralMechanism) {
  const InteriorRunReport report = run_interior_protocol(
      test_network(), left_agents(), right_agents(), {});
  ASSERT_FALSE(report.aborted);

  const InteriorLinearNetwork net = test_network();
  std::vector<double> rates(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) rates[i] = net.w(i);
  const auto central = dls::core::assess_dls_interior(
      net, rates, dls::core::MechanismConfig{});
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_NEAR(report.processors[i].utility,
                central.processors[i].money.utility, 1e-9)
        << "P" << i;
    EXPECT_NEAR(report.processors[i].assigned, central.processors[i].alpha,
                1e-9)
        << "P" << i;
  }
  EXPECT_DOUBLE_EQ(report.processors[2].utility, 0.0);  // the root
  // Internal consistency of the merged reports.
  for (const auto& p : report.processors) {
    EXPECT_NEAR(p.utility, p.valuation + p.payment - p.fines + p.rewards,
                1e-9);
  }
}

TEST(InteriorProtocol, AllocationCoversTheUnitLoad) {
  const InteriorRunReport report = run_interior_protocol(
      test_network(), left_agents(), right_agents(), {});
  double total = 0.0;
  // The root's own share comes from the solution; strategic shares from
  // the merged reports.
  total += report.solution.alpha[2];
  for (std::size_t i = 0; i < report.processors.size(); ++i) {
    if (i == 2) continue;
    total += report.processors[i].assigned;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(InteriorProtocol, DeviantOnOneArmDoesNotAbortTheOther) {
  const InteriorRunReport report = run_interior_protocol(
      test_network(), left_agents(Behavior::contradictor()), right_agents(),
      {});
  EXPECT_TRUE(report.aborted);
  EXPECT_TRUE(report.left.aborted);
  EXPECT_FALSE(report.right.aborted);
  EXPECT_NE(report.abort_reason.find("left arm"), std::string::npos);
  // The contradictor (arm position 1 = network P1) was fined.
  EXPECT_LT(report.processors[1].utility, 0.0);
}

TEST(InteriorProtocol, SheddingOnTheRightArmIsFined) {
  const InteriorRunReport honest = run_interior_protocol(
      test_network(), left_agents(), right_agents(), {});
  const InteriorRunReport report = run_interior_protocol(
      test_network(), left_agents(),
      right_agents(Behavior::load_shedder(0.5)), {});
  EXPECT_FALSE(report.aborted);
  ASSERT_FALSE(report.right.incidents.empty());
  EXPECT_LT(report.processors[3].utility, honest.processors[3].utility);
  EXPECT_LT(report.processors[3].utility, 0.0);
}

TEST(InteriorProtocol, ValidatesArmSizes) {
  const Population one_agent({StrategicAgent{1, 1.0, {}}});
  EXPECT_THROW(run_interior_protocol(test_network(), one_agent,
                                     right_agents(), {}),
               dls::PreconditionError);
  EXPECT_THROW(run_interior_protocol(test_network(), left_agents(),
                                     one_agent, {}),
               dls::PreconditionError);
}

}  // namespace
