// Tests for cancellable simulator events, drop_pending, and the
// deterministic fault-injection layer (crashes, link faults, meter
// dropouts) over both chain and star executors.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "dlt/linear.hpp"
#include "dlt/star.hpp"
#include "net/networks.hpp"
#include "sim/faults.hpp"
#include "sim/linear_execution.hpp"
#include "sim/simulator.hpp"
#include "sim/star_execution.hpp"

namespace {

using dls::common::Rng;
using dls::dlt::solve_linear_boundary;
using dls::net::LinearNetwork;
using dls::net::StarNetwork;
using dls::sim::EventId;
using dls::sim::execute_linear;
using dls::sim::execute_linear_faulty;
using dls::sim::execute_star_faulty;
using dls::sim::ExecutionPlan;
using dls::sim::FaultEvent;
using dls::sim::FaultPlan;
using dls::sim::FaultyExecutionResult;
using dls::sim::Simulator;
using dls::sim::single_installment;

// ---------------------------------------------------------------------------
// Cancellable event handles (satellite: Simulator::cancel).

TEST(SimulatorCancel, CancelledEventNeverFires) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(1.0, [&](Simulator&) { fired.push_back(1); });
  const EventId doomed =
      sim.schedule_at(2.0, [&](Simulator&) { fired.push_back(2); });
  sim.schedule_at(3.0, [&](Simulator&) { fired.push_back(3); });
  EXPECT_TRUE(sim.cancel(doomed));
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
  EXPECT_EQ(sim.executed(), 2u);
  EXPECT_EQ(sim.cancelled(), 1u);
}

TEST(SimulatorCancel, CancelReportsWhetherEventWasStillPending) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [](Simulator&) {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double cancel
  const EventId fired = sim.schedule_at(1.0, [](Simulator&) {});
  sim.run();
  EXPECT_FALSE(sim.cancel(fired));      // already fired
  EXPECT_FALSE(sim.cancel(EventId{99999}));  // never existed
}

TEST(SimulatorCancel, CancellationPreservesOrderOfSurvivors) {
  Simulator sim;
  std::vector<int> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(
        sim.schedule_at(1.0, [&fired, i](Simulator&) { fired.push_back(i); }));
  }
  EXPECT_TRUE(sim.cancel(ids[1]));
  EXPECT_TRUE(sim.cancel(ids[4]));
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{0, 2, 3, 5}));
}

TEST(SimulatorCancel, EventsCanCancelOtherEvents) {
  // A reply cancelling its own timeout timer — the heartbeat pattern.
  Simulator sim;
  bool timed_out = false;
  const EventId timer =
      sim.schedule_at(2.0, [&](Simulator&) { timed_out = true; });
  sim.schedule_at(1.0, [&](Simulator& s) { EXPECT_TRUE(s.cancel(timer)); });
  sim.run();
  EXPECT_FALSE(timed_out);
}

TEST(SimulatorCancel, PendingCountsOnlyLiveEvents) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [](Simulator&) {});
  sim.schedule_at(2.0, [](Simulator&) {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

// ---------------------------------------------------------------------------
// drop_pending and the run_until horizon footgun (satellite).

TEST(SimulatorDropPending, AbandonsEventsBeyondTheHorizon) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&](Simulator&) { ++fired; });
  sim.schedule_at(5.0, [&](Simulator&) { ++fired; });
  sim.schedule_at(6.0, [&](Simulator&) { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 1);
  // Without drop_pending the late events would fire on the next run().
  EXPECT_EQ(sim.drop_pending(), 2u);
  EXPECT_EQ(sim.pending(), 0u);
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorDropPending, CancelledEventsAreNotCounted) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [](Simulator&) {});
  sim.schedule_at(2.0, [](Simulator&) {});
  sim.schedule_at(3.0, [](Simulator&) {});
  sim.cancel(a);
  EXPECT_EQ(sim.drop_pending(), 2u);
  EXPECT_EQ(sim.drop_pending(), 0u);  // idempotent
}

TEST(SimulatorDropPending, DroppedTokensCannotBeCancelled) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [](Simulator&) {});
  sim.drop_pending();
  EXPECT_FALSE(sim.cancel(id));
}

// ---------------------------------------------------------------------------
// Fault plan bookkeeping.

TEST(FaultPlan, EmptyAndLookupAccessors) {
  FaultPlan plan(7);
  EXPECT_TRUE(plan.empty());
  plan.crash_at_work(2, 0.4).drop_messages(1, 0.5).meter_dropout(3);
  EXPECT_FALSE(plan.empty());
  ASSERT_TRUE(plan.crash_of(2).has_value());
  EXPECT_DOUBLE_EQ(plan.crash_of(2)->at_work_fraction, 0.4);
  EXPECT_FALSE(plan.crash_of(1).has_value());
  EXPECT_TRUE(plan.meter_dropped(3));
  EXPECT_FALSE(plan.meter_dropped(2));
  EXPECT_EQ(plan.faults_on_link(1).size(), 1u);
  EXPECT_DOUBLE_EQ(plan.path_loss_probability(2), 0.5);
  EXPECT_DOUBLE_EQ(plan.path_loss_probability(0), 0.0);
}

TEST(FaultPlan, ValidatesSpecs) {
  FaultPlan plan;
  EXPECT_THROW(plan.crash_at_work(1, 1.5), dls::PreconditionError);
  EXPECT_THROW(plan.crash_at_time(1, -2.0), dls::PreconditionError);
  EXPECT_THROW(plan.drop_messages(0, 0.5), dls::PreconditionError);
  EXPECT_THROW(plan.drop_messages(1, 1.5), dls::PreconditionError);
}

TEST(FaultPlan, RandomCrashesAreDeterministic) {
  Rng a(99), b(99);
  const FaultPlan p1 = FaultPlan::random_crashes(8, 0.5, a);
  const FaultPlan p2 = FaultPlan::random_crashes(8, 0.5, b);
  ASSERT_EQ(p1.crashes().size(), p2.crashes().size());
  for (std::size_t i = 0; i < p1.crashes().size(); ++i) {
    EXPECT_EQ(p1.crashes()[i].processor, p2.crashes()[i].processor);
    EXPECT_DOUBLE_EQ(p1.crashes()[i].at_work_fraction,
                     p2.crashes()[i].at_work_fraction);
  }
}

// ---------------------------------------------------------------------------
// Faulty chain executor.

FaultyExecutionResult run_compliant_faulty(const LinearNetwork& net,
                                           const FaultPlan& plan) {
  const auto sol = solve_linear_boundary(net);
  return execute_linear_faulty(net, ExecutionPlan::compliant(net, sol), plan);
}

TEST(ExecuteLinearFaulty, EmptyPlanReproducesFailFreeRun) {
  Rng rng(4242);
  for (int rep = 0; rep < 20; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 12));
    const LinearNetwork net =
        LinearNetwork::random(m + 1, rng, 0.5, 5.0, 0.05, 0.5);
    const auto sol = solve_linear_boundary(net);
    const ExecutionPlan plan = ExecutionPlan::compliant(net, sol);
    const auto clean = execute_linear(net, plan);
    const auto faulty = execute_linear_faulty(net, plan, FaultPlan{});
    ASSERT_EQ(faulty.base.computed.size(), clean.computed.size());
    for (std::size_t i = 0; i < net.size(); ++i) {
      EXPECT_DOUBLE_EQ(faulty.base.computed[i], clean.computed[i]) << i;
      EXPECT_DOUBLE_EQ(faulty.base.finish_time[i], clean.finish_time[i]) << i;
      EXPECT_FALSE(faulty.crashed[i]);
    }
    EXPECT_DOUBLE_EQ(faulty.base.makespan, clean.makespan);
    EXPECT_FALSE(faulty.any_crash());
    EXPECT_NEAR(faulty.lost_load(), 0.0, 1e-12);
    EXPECT_TRUE(faulty.events.empty());
  }
}

TEST(ExecuteLinearFaulty, WorkFractionCrashKeepsVerifiedPartialWork) {
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const auto sol = solve_linear_boundary(net);
  const FaultPlan plan = FaultPlan{}.crash_at_work(1, 0.5);
  const auto result = run_compliant_faulty(net, plan);
  EXPECT_TRUE(result.crashed[1]);
  EXPECT_GT(result.crash_time[1], 0.0);
  EXPECT_NEAR(result.base.computed[1], 0.5 * sol.alpha[1], 1e-9);
  EXPECT_NEAR(result.unfinished[1], 0.5 * sol.alpha[1], 1e-9);
  EXPECT_NEAR(result.lost_load(), 0.5 * sol.alpha[1], 1e-9);
  // The crash is on the forensic log.
  bool crash_logged = false;
  for (const FaultEvent& e : result.events) {
    if (e.kind == FaultEvent::Kind::kCrash && e.subject == 1) {
      crash_logged = true;
      EXPECT_DOUBLE_EQ(e.time, result.crash_time[1]);
    }
  }
  EXPECT_TRUE(crash_logged);
}

TEST(ExecuteLinearFaulty, EarlyAbsoluteCrashSeversTheChain) {
  // P1 dies at t=0: it computes nothing and can relay nothing, so only
  // the root's share survives.
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const auto sol = solve_linear_boundary(net);
  const auto result =
      run_compliant_faulty(net, FaultPlan{}.crash_at_time(1, 0.0));
  EXPECT_TRUE(result.crashed[1]);
  EXPECT_DOUBLE_EQ(result.base.computed[1], 0.0);
  EXPECT_DOUBLE_EQ(result.base.computed[2], 0.0);
  EXPECT_NEAR(result.base.computed[0], sol.alpha[0], 1e-12);
  EXPECT_NEAR(result.lost_load(), 1.0 - sol.alpha[0], 1e-9);
  EXPECT_GT(result.undelivered, 0.0);
}

TEST(ExecuteLinearFaulty, LateCrashSparesForwardedLoad) {
  // P1 forwards downstream load before it finishes computing; a crash
  // after the forward must not claw back P2's share.
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const auto sol = solve_linear_boundary(net);
  const auto result =
      run_compliant_faulty(net, FaultPlan{}.crash_at_work(1, 0.9));
  EXPECT_TRUE(result.crashed[1]);
  EXPECT_NEAR(result.base.computed[2], sol.alpha[2], 1e-9);
  EXPECT_NEAR(result.lost_load(), 0.1 * sol.alpha[1], 1e-9);
}

TEST(ExecuteLinearFaulty, CertainMessageLossStarvesTheSuffix) {
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const auto sol = solve_linear_boundary(net);
  const auto result =
      run_compliant_faulty(net, FaultPlan{}.drop_messages(1, 1.0));
  EXPECT_FALSE(result.any_crash());
  EXPECT_NEAR(result.base.computed[0], sol.alpha[0], 1e-12);
  EXPECT_DOUBLE_EQ(result.base.computed[1], 0.0);
  EXPECT_DOUBLE_EQ(result.base.computed[2], 0.0);
  EXPECT_GT(result.undelivered, 0.0);
  bool loss_logged = false;
  for (const FaultEvent& e : result.events) {
    loss_logged |= e.kind == FaultEvent::Kind::kMessageLost;
  }
  EXPECT_TRUE(loss_logged);
}

TEST(ExecuteLinearFaulty, DelayPostponesButPreservesTheLoad) {
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const auto clean = run_compliant_faulty(net, FaultPlan{});
  const auto delayed =
      run_compliant_faulty(net, FaultPlan{}.delay_messages(1, 0.5));
  EXPECT_NEAR(delayed.lost_load(), 0.0, 1e-12);
  EXPECT_GT(delayed.base.makespan, clean.base.makespan + 0.4);
  EXPECT_NEAR(delayed.base.computed[1], clean.base.computed[1], 1e-12);
}

TEST(ExecuteLinearFaulty, CorruptionTaintsTheReceiverNotTheLoad) {
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const auto result =
      run_compliant_faulty(net, FaultPlan{}.corrupt_messages(1, 1.0));
  EXPECT_TRUE(result.corrupted[1]);
  EXPECT_NEAR(result.lost_load(), 0.0, 1e-12);  // bytes still flow
}

TEST(ExecuteLinearFaulty, MeterDropoutIsFlagged) {
  const LinearNetwork net({1.0, 1.0}, {0.2});
  const auto result = run_compliant_faulty(net, FaultPlan{}.meter_dropout(1));
  EXPECT_FALSE(result.meter_ok[1]);
  EXPECT_TRUE(result.meter_ok[0]);
}

TEST(ExecuteLinearFaulty, SameSeedReplaysBitIdentically) {
  Rng rng(2026);
  const LinearNetwork net = LinearNetwork::random(6, rng, 0.5, 5.0, 0.05, 0.5);
  const auto sol = solve_linear_boundary(net);
  const ExecutionPlan plan = ExecutionPlan::compliant(net, sol);
  const FaultPlan faults =
      FaultPlan{123}.crash_at_work(2, 0.3).drop_messages(3, 0.5).delay_messages(
          1, 0.1, 0.5);
  const auto a = execute_linear_faulty(net, plan, faults);
  const auto b = execute_linear_faulty(net, plan, faults);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_DOUBLE_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].subject, b.events[i].subject);
  }
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.base.computed[i], b.base.computed[i]);
    EXPECT_DOUBLE_EQ(a.base.finish_time[i], b.base.finish_time[i]);
    EXPECT_EQ(a.crashed[i], b.crashed[i]);
    EXPECT_DOUBLE_EQ(a.crash_time[i], b.crash_time[i]);
  }
  EXPECT_DOUBLE_EQ(a.undelivered, b.undelivered);
}

// ---------------------------------------------------------------------------
// Faulty star executor. Results are indexed like the star trace: 0 is
// the root, worker i sits at index i+1 (crash specs use the same
// indexing — processor j means worker j-1).

TEST(ExecuteStarFaulty, WorkerCrashTruncatesItsChunks) {
  Rng rng(11);
  const StarNetwork star = StarNetwork::random(4, rng, 0.5, 5.0, 0.05, 0.5,
                                               /*with_root=*/false);
  const auto sol = dls::dlt::solve_star(star);
  const auto schedule =
      single_installment(star, sol.alpha_root, sol.alpha, sol.order);
  const auto clean = execute_star_faulty(star, schedule, FaultPlan{});
  EXPECT_NEAR(clean.lost_load(), 0.0, 1e-12);

  const auto result = execute_star_faulty(
      star, schedule, FaultPlan{}.crash_at_work(2, 0.5));
  EXPECT_TRUE(result.crashed[2]);
  EXPECT_NEAR(result.base.computed[2], 0.5 * sol.alpha[1], 1e-9);
  EXPECT_NEAR(result.lost_load(), 0.5 * sol.alpha[1], 1e-9);
}

TEST(ExecuteStarFaulty, RejectsRootCrash) {
  const StarNetwork star(0.0, {1.0}, {0.1});
  dls::sim::StarSchedule schedule;
  schedule.sends = {dls::sim::Installment{0, 1.0}};
  EXPECT_THROW(
      execute_star_faulty(star, schedule, FaultPlan{}.crash_at_time(0, 1.0)),
      dls::PreconditionError);
}

}  // namespace
