// Tests for the sweep helpers and experiment drivers.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "analysis/experiments.hpp"
#include "analysis/learning.hpp"
#include "analysis/multiload_grid.hpp"
#include "analysis/sweep.hpp"
#include "common/rng.hpp"
#include "net/networks.hpp"

namespace {

using namespace dls::analysis;
using dls::common::Rng;
using dls::core::MechanismConfig;
using dls::net::LinearNetwork;

TEST(Sweep, LinspaceEndpointsExact) {
  const auto xs = linspace(1.0, 3.0, 5);
  ASSERT_EQ(xs.size(), 5u);
  EXPECT_DOUBLE_EQ(xs.front(), 1.0);
  EXPECT_DOUBLE_EQ(xs.back(), 3.0);
  EXPECT_NEAR(xs[2], 2.0, 1e-12);
}

TEST(Sweep, LogspaceIsGeometric) {
  const auto xs = logspace(1.0, 100.0, 3);
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_NEAR(xs[1], 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(xs.back(), 100.0);
}

TEST(Sweep, IntLadderCoversEndpoints) {
  const auto xs = int_ladder(2, 64);
  EXPECT_EQ(xs.front(), 2u);
  EXPECT_EQ(xs.back(), 64u);
  for (std::size_t i = 1; i < xs.size(); ++i) EXPECT_GT(xs[i], xs[i - 1]);
}

TEST(Sweep, Validation) {
  EXPECT_THROW(linspace(3.0, 1.0, 5), dls::PreconditionError);
  EXPECT_THROW(logspace(0.0, 1.0, 5), dls::PreconditionError);
  EXPECT_THROW(int_ladder(5, 4), dls::PreconditionError);
}

TEST(Experiments, UtilityCurvePeaksAtTruth) {
  const LinearNetwork net({1.0, 1.2, 0.8}, {0.2, 0.2});
  const auto grid = logspace(0.3, 4.0, 61);
  const auto curve = utility_vs_bid(net, 1, grid, MechanismConfig{});
  EXPECT_EQ(curve.bids.size(), curve.utilities.size());
  EXPECT_DOUBLE_EQ(curve.true_rate, 1.2);
  EXPECT_LE(max_truth_advantage_gap(curve), 1e-9);
  EXPECT_GT(curve.utility_at_truth, 0.0);
}

TEST(Experiments, SpeedCurveIsMonotoneDown) {
  const LinearNetwork net({1.0, 1.2, 0.8}, {0.2, 0.2});
  std::vector<double> mults = {1.0, 1.25, 1.5, 2.0};
  const auto curve = utility_vs_speed(net, 2, mults, MechanismConfig{});
  for (std::size_t k = 1; k < curve.utilities.size(); ++k) {
    EXPECT_LE(curve.utilities[k], curve.utilities[k - 1] + 1e-12);
  }
}

TEST(Experiments, ParticipationSampleFields) {
  const LinearNetwork net({1.0, 1.2, 0.8}, {0.2, 0.2});
  const auto sample = truthful_participation(net, MechanismConfig{});
  EXPECT_GE(sample.min_utility, 0.0);
  EXPECT_LE(sample.min_utility, sample.mean_utility);
  EXPECT_LE(sample.mean_utility, sample.max_utility + 1e-12);
  EXPECT_GT(sample.total_payment, 0.0);
  EXPECT_GT(sample.makespan, 0.0);
}

TEST(Learning, ConvergesToTruthInOneEpoch) {
  // Dominant strategies: the best response never depends on the others,
  // so one revision round suffices from any start.
  Rng rng(99);
  for (int rep = 0; rep < 10; ++rep) {
    const auto m = static_cast<std::size_t>(rng.uniform_int(1, 8));
    const LinearNetwork net =
        LinearNetwork::random(m + 1, rng, kWLo, kWHi, kZLo, kZHi);
    LearningConfig config;
    config.seed = rng.bits();
    const LearningTrace trace = run_best_response_dynamics(net, config);
    EXPECT_TRUE(trace.converged_to_truth);
    EXPECT_EQ(trace.epochs_to_truth, 1u);
    // Everyone's converged utility is the truthful one (>= 0).
    for (const double u : trace.utilities.back()) EXPECT_GE(u, 0.0);
  }
}

TEST(Learning, TraceShapesAreConsistent) {
  const LinearNetwork net({1.0, 1.2, 0.8}, {0.2, 0.2});
  LearningConfig config;
  config.seed = 4;
  const LearningTrace trace = run_best_response_dynamics(net, config);
  ASSERT_EQ(trace.multipliers.size(), trace.epochs_run);
  ASSERT_EQ(trace.utilities.size(), trace.epochs_run);
  for (std::size_t e = 0; e < trace.epochs_run; ++e) {
    EXPECT_EQ(trace.multipliers[e].size(), net.workers());
    EXPECT_EQ(trace.utilities[e].size(), net.workers());
  }
}

TEST(Learning, RequiresTruthfulCandidate) {
  const LinearNetwork net({1.0, 1.2}, {0.2});
  LearningConfig config;
  config.candidates = {0.5, 2.0};  // no 1.0
  EXPECT_THROW(run_best_response_dynamics(net, config),
               dls::PreconditionError);
}

TEST(Experiments, BaselineComparisonOrdersCorrectly) {
  Rng rng(31);
  for (int rep = 0; rep < 10; ++rep) {
    const LinearNetwork net =
        LinearNetwork::random(8, rng, kWLo, kWHi, kZLo, kZHi);
    const auto cmp = compare_baselines(net);
    EXPECT_LE(cmp.optimal, cmp.equal_split + 1e-12);
    EXPECT_LE(cmp.optimal, cmp.speed_proportional + 1e-12);
    EXPECT_LE(cmp.optimal, cmp.root_only + 1e-12);
  }
}

MultiLoadGridConfig small_grid() {
  MultiLoadGridConfig config;
  config.chain_lengths = {3, 5};
  config.load_counts = {2, 4};
  config.mean_interarrivals = {0.0, 1.0};
  config.trials = 3;
  return config;
}

TEST(MultiLoadGrid, CoversEveryCellInAxisOrder) {
  const MultiLoadGridConfig config = small_grid();
  const auto cells = run_multiload_grid(config);
  ASSERT_EQ(cells.size(), 2u * 2u * 2u * config.policies.size());
  std::size_t i = 0;
  for (const std::size_t m : config.chain_lengths) {
    for (const std::size_t loads : config.load_counts) {
      for (const double arrival : config.mean_interarrivals) {
        for (const auto policy : config.policies) {
          EXPECT_EQ(cells[i].scenario.processors, m);
          EXPECT_EQ(cells[i].scenario.load_count, loads);
          EXPECT_EQ(cells[i].scenario.mean_interarrival, arrival);
          EXPECT_EQ(cells[i].scenario.policy, policy);
          EXPECT_EQ(cells[i].trials, config.trials);
          ++i;
        }
      }
    }
  }
}

TEST(MultiLoadGrid, DeterministicAcrossRuns) {
  const MultiLoadGridConfig config = small_grid();
  const auto first = run_multiload_grid(config);
  const auto second = run_multiload_grid(config);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].mean_speedup, second[i].mean_speedup);
    EXPECT_EQ(first[i].min_speedup, second[i].min_speedup);
    EXPECT_EQ(first[i].max_speedup, second[i].max_speedup);
    EXPECT_EQ(first[i].mean_makespan, second[i].mean_makespan);
    EXPECT_EQ(first[i].mean_throughput, second[i].mean_throughput);
  }
}

TEST(MultiLoadGrid, FifoNeverLosesToSerializedRounds) {
  // The checker's pipelining guarantee, observed end to end: FIFO
  // dispatch beats or ties strict rounds on every cell of the grid.
  for (const auto& cell : run_multiload_grid(small_grid())) {
    if (cell.scenario.policy != dls::multiload::DispatchPolicy::kFifo) {
      continue;
    }
    EXPECT_GE(cell.min_speedup, 1.0 - 1e-9)
        << "m=" << cell.scenario.processors
        << " loads=" << cell.scenario.load_count
        << " arrival=" << cell.scenario.mean_interarrival;
    EXPECT_GE(cell.max_speedup, cell.mean_speedup);
    EXPECT_GE(cell.mean_speedup, cell.min_speedup);
    EXPECT_GT(cell.mean_throughput, 0.0);
  }
}

TEST(MultiLoadGrid, PrintsOneRowPerCell) {
  const auto cells = run_multiload_grid(small_grid());
  std::ostringstream os;
  print_multiload_grid(os, cells);
  const std::string out = os.str();
  EXPECT_NE(out.find("speedup"), std::string::npos);
  std::size_t rows = 0;
  for (const char c : out) rows += c == '\n';
  EXPECT_EQ(rows, cells.size() + 1);  // header + one line per cell
}

TEST(MultiLoadGrid, RejectsZeroTrials) {
  MultiLoadGridConfig config = small_grid();
  config.trials = 0;
  EXPECT_THROW(run_multiload_grid(config), dls::PreconditionError);
}

}  // namespace
