// Multithreaded tracer stress test, designed to run under TSan: many
// pool workers emit spans and metrics concurrently; afterwards no event
// may be lost or torn, and histogram totals must match a serial
// recount of the work that was actually submitted.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/obs.hpp"

namespace {

using dls::exec::ThreadPool;
using dls::obs::MetricsRegistry;
using dls::obs::Span;
using dls::obs::SpanEvent;
using dls::obs::TraceSink;

class ObsStressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dls::obs::use_logical_clock();
    TraceSink::global().clear();
    MetricsRegistry::global().reset();
    dls::obs::set_active(true);
  }
  void TearDown() override {
    dls::obs::set_active(false);
    TraceSink::global().clear();
    MetricsRegistry::global().reset();
    dls::obs::use_steady_clock();
  }
};

TEST_F(ObsStressTest, NoLostOrTornEventsUnderContention) {
  // Drain instrumentation noise from other layers (pool dispatch spans)
  // separately from the payload below.
  constexpr std::size_t kTasks = 20000;
  std::atomic<std::uint64_t> executed{0};

  // Explicit worker count: the hardware default can be zero workers on a
  // single-core host, which would take the serial fast path and dodge the
  // contention this test exists to create.
  ThreadPool pool(8);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    Span span(i % 2 == 0 ? "stress.even" : "stress.odd");
    DLS_COUNT("stress.tasks");
    DLS_OBSERVE("stress.value", static_cast<double>(i % 10),
                {2.0, 5.0, 8.0});
    executed.fetch_add(1, std::memory_order_relaxed);
  });

  ASSERT_EQ(executed.load(), kTasks);
  const std::vector<SpanEvent> events = TraceSink::global().drain();

  // Count the payload spans; every task's span must have survived the
  // chunk sealing and the concurrent drain intact.
  std::size_t even = 0, odd = 0;
  std::map<std::uint32_t, std::uint64_t> last_seq;
  for (const SpanEvent& e : events) {
    const std::string name = e.name;
    if (name == "stress.even") ++even;
    if (name == "stress.odd") ++odd;
    // Torn events would show null names / inverted stamps.
    EXPECT_FALSE(name.empty());
    EXPECT_LE(e.start_ns, e.end_ns);
    // Canonical drain order: per-thread seqs strictly increase.
    auto it = last_seq.find(e.thread);
    if (it != last_seq.end()) {
      EXPECT_LT(it->second, e.seq) << "thread " << e.thread;
    }
    last_seq[e.thread] = e.seq;
  }
  EXPECT_EQ(even, kTasks / 2);
  EXPECT_EQ(odd, kTasks / 2);

  // Metrics: the counter total and histogram mass must equal a serial
  // recount of what the loop submitted.
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("stress.tasks"), kTasks);
  const auto& h = snap.histograms.at("stress.value");
  EXPECT_EQ(h.count, kTasks);
  std::uint64_t serial_buckets[4] = {0, 0, 0, 0};
  double serial_sum = 0.0;
  for (std::size_t i = 0; i < kTasks; ++i) {
    const double v = static_cast<double>(i % 10);
    serial_sum += v;
    if (v <= 2.0) ++serial_buckets[0];
    else if (v <= 5.0) ++serial_buckets[1];
    else if (v <= 8.0) ++serial_buckets[2];
    else ++serial_buckets[3];
  }
  ASSERT_EQ(h.counts.size(), 4u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(h.counts[b], serial_buckets[b]) << "bucket " << b;
  }
  EXPECT_DOUBLE_EQ(h.sum, serial_sum);
}

TEST_F(ObsStressTest, ConcurrentDrainsNeverDuplicateEvents) {
  // Emitters and a draining aggregator run concurrently; total events
  // seen across all drains plus the final sweep must match emissions.
  constexpr std::size_t kTasks = 8000;
  ThreadPool pool(4);
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> drained{0};

  std::thread drainer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      drained.fetch_add(TraceSink::global().drain().size(),
                        std::memory_order_relaxed);
    }
  });
  pool.parallel_for(kTasks, [&](std::size_t) { Span s("drain.race"); });
  stop.store(true, std::memory_order_release);
  drainer.join();

  std::size_t total = drained.load();
  for (const SpanEvent& e : TraceSink::global().drain()) {
    static_cast<void>(e);
    ++total;
  }
  // The pool emits its own dispatch/chunk spans on top of the payload.
  EXPECT_GE(total, kTasks);
}

TEST_F(ObsStressTest, PoolInstrumentationCountsChunksAndSteals) {
  constexpr std::size_t kTasks = 4096;
  std::atomic<std::uint64_t> sink{0};
  ThreadPool pool(4);
  pool.parallel_for(kTasks, [&](std::size_t i) {
    sink.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sink.load(), kTasks * (kTasks - 1) / 2);
  const auto snap = MetricsRegistry::global().snapshot();
  EXPECT_GE(snap.counters.at("exec.dispatches"), 1u);
  EXPECT_GE(snap.counters.at("exec.chunks"), 1u);
  EXPECT_GE(snap.histograms.at("exec.queue_depth").count, 1u);
}

}  // namespace
