// Tests for Phase I/II message construction and verification, plus the Λ
// token device and the tamper-proof meter.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/pki.hpp"
#include "dlt/linear.hpp"
#include "net/networks.hpp"
#include "protocol/messages.hpp"
#include "protocol/meter.hpp"
#include "protocol/tokens.hpp"
#include "sim/linear_execution.hpp"

namespace {

using dls::common::Rng;
using dls::crypto::Claim;
using dls::crypto::ClaimKind;
using dls::crypto::KeyRegistry;
using dls::crypto::make_signed;
using dls::crypto::SignedClaim;
using dls::crypto::Signer;
using dls::net::LinearNetwork;
using dls::protocol::AllocationMessage;
using dls::protocol::BidMessage;
using dls::protocol::TamperProofMeter;
using dls::protocol::TokenAuthority;
using dls::protocol::TokenBatch;
using dls::protocol::verify_allocation_message;
using dls::protocol::verify_bid_message;

constexpr std::uint64_t kRound = 7;

struct Fixture {
  Rng rng{11};
  KeyRegistry registry;
  std::vector<Signer> signers;
  LinearNetwork net{{1.0, 1.0, 1.0}, {0.2, 0.2}};
  dls::dlt::LinearSolution sol = dls::dlt::solve_linear_boundary(net);

  Fixture() {
    for (std::uint32_t i = 0; i < 3; ++i) {
      signers.push_back(registry.enroll(i, rng));
    }
  }

  SignedClaim claim(std::uint32_t signer, ClaimKind kind,
                    std::uint32_t subject, double value) {
    return make_signed(signers[signer], Claim{kind, subject, kRound, value});
  }

  /// A fully consistent G_i for this network.
  AllocationMessage golden_g(std::size_t i) {
    const std::uint32_t self = static_cast<std::uint32_t>(i);
    const std::uint32_t pred = self - 1;
    const std::uint32_t pred2 = i >= 2 ? self - 2 : 0;
    AllocationMessage g;
    g.received_pred =
        claim(pred2, ClaimKind::kReceivedLoad, pred, sol.received[i - 1]);
    g.received_self =
        claim(pred, ClaimKind::kReceivedLoad, self, sol.received[i]);
    g.equiv_bid_pred =
        claim(pred, ClaimKind::kEquivalentBid, pred, sol.equivalent_w[i - 1]);
    g.rate_bid_pred =
        claim(pred, ClaimKind::kBidRate, pred, net.w(i - 1));
    g.equiv_bid_self =
        claim(self, ClaimKind::kEquivalentBid, self, sol.equivalent_w[i]);
    return g;
  }
};

TEST(BidMessage, ValidBidVerifies) {
  Fixture f;
  BidMessage msg{f.claim(2, ClaimKind::kEquivalentBid, 2, 1.0)};
  EXPECT_TRUE(verify_bid_message(f.registry, msg, 2, kRound).ok);
}

TEST(BidMessage, WrongSignerRejected) {
  Fixture f;
  BidMessage msg{f.claim(1, ClaimKind::kEquivalentBid, 2, 1.0)};
  const auto result = verify_bid_message(f.registry, msg, 2, kRound);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("signer"), std::string::npos);
}

TEST(BidMessage, StaleRoundRejected) {
  Fixture f;
  BidMessage msg{
      make_signed(f.signers[2], Claim{ClaimKind::kEquivalentBid, 2, 3, 1.0})};
  EXPECT_FALSE(verify_bid_message(f.registry, msg, 2, kRound).ok);
}

TEST(BidMessage, NonPositiveBidRejected) {
  Fixture f;
  BidMessage msg{f.claim(2, ClaimKind::kEquivalentBid, 2, -1.0)};
  EXPECT_FALSE(verify_bid_message(f.registry, msg, 2, kRound).ok);
}

TEST(AllocationMessage, GoldenMessagesVerifyForEveryPosition) {
  Fixture f;
  for (std::size_t i = 1; i < f.net.size(); ++i) {
    const AllocationMessage g = f.golden_g(i);
    const auto result = verify_allocation_message(
        f.registry, g, i, f.net.z(i), g.equiv_bid_self, kRound);
    EXPECT_TRUE(result.ok) << "i=" << i << ": " << result.failure;
  }
}

TEST(AllocationMessage, MiscomputedDIsDetected) {
  Fixture f;
  AllocationMessage g = f.golden_g(2);
  // The predecessor claims to ship 10% less than Algorithm 1 prescribes.
  g.received_self = f.claim(1, ClaimKind::kReceivedLoad, 2,
                            f.sol.received[2] * 0.9);
  const auto result = verify_allocation_message(
      f.registry, g, 2, f.net.z(2), g.equiv_bid_self, kRound);
  EXPECT_FALSE(result.ok);
}

TEST(AllocationMessage, TamperedValueFailsSignatureCheck) {
  Fixture f;
  AllocationMessage g = f.golden_g(2);
  g.rate_bid_pred.claim.value *= 1.01;  // tamper without re-signing
  const auto result = verify_allocation_message(
      f.registry, g, 2, f.net.z(2), g.equiv_bid_self, kRound);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("signature"), std::string::npos);
}

TEST(AllocationMessage, SubstitutedEchoIsDetected) {
  Fixture f;
  AllocationMessage g = f.golden_g(2);
  // An attacker replaces the echoed bid with a different (validly
  // signed) one; the recipient compares against what it actually sent.
  const SignedClaim real_bid = g.equiv_bid_self;
  g.equiv_bid_self =
      f.claim(2, ClaimKind::kEquivalentBid, 2, f.sol.equivalent_w[2] * 1.1);
  const auto result = verify_allocation_message(
      f.registry, g, 2, f.net.z(2), real_bid, kRound);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("echo"), std::string::npos);
}

TEST(AllocationMessage, InvalidSplitRejected) {
  Fixture f;
  AllocationMessage g = f.golden_g(1);
  g.received_pred = f.claim(0, ClaimKind::kReceivedLoad, 0, 0.3);
  g.received_self = f.claim(0, ClaimKind::kReceivedLoad, 1, 0.5);
  const auto result = verify_allocation_message(
      f.registry, g, 1, f.net.z(1), g.equiv_bid_self, kRound);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("split"), std::string::npos);
}

// --------------------------------------------------------------------
// Λ tokens.

TEST(Tokens, IssueValidateRoundtrip) {
  Rng rng(3);
  TokenAuthority authority(1000, rng);
  TokenBatch batch = authority.issue_unit_load();
  EXPECT_EQ(batch.blocks(), 1000u);
  EXPECT_TRUE(authority.validate(batch));
  EXPECT_NEAR(authority.to_load(batch.blocks()), 1.0, 1e-12);
  EXPECT_EQ(authority.to_blocks(0.25), 250u);
}

TEST(Tokens, TakeFrontSplitsWithoutLoss) {
  Rng rng(3);
  TokenAuthority authority(100, rng);
  TokenBatch batch = authority.issue_unit_load();
  TokenBatch front = batch.take_front(30);
  EXPECT_EQ(front.blocks(), 30u);
  EXPECT_EQ(batch.blocks(), 70u);
  EXPECT_TRUE(authority.validate(front));
  EXPECT_TRUE(authority.validate(batch));
  EXPECT_THROW(front.take_front(31), dls::PreconditionError);
}

TEST(Tokens, ForgedBatchesFailValidation) {
  Rng rng(3);
  TokenAuthority authority(100, rng);
  (void)authority.issue_unit_load();
  Rng attacker(99);
  const TokenBatch forged = authority.forge(10, attacker);
  EXPECT_FALSE(authority.validate(forged));
}

TEST(Tokens, DuplicatedBlocksFailValidation) {
  Rng rng(3);
  TokenAuthority authority(100, rng);
  TokenBatch batch = authority.issue_unit_load();
  TokenBatch doubled;
  doubled.ids = {batch.ids[0], batch.ids[0]};
  EXPECT_FALSE(authority.validate(doubled));
}

// --------------------------------------------------------------------
// Tamper-proof meter.

TEST(Meter, ReadsActualRateFromTheTrace) {
  Rng rng(17);
  KeyRegistry registry;
  const Signer root = registry.enroll(0, rng);
  const LinearNetwork net({1.0, 1.0, 1.0}, {0.2, 0.2});
  const auto sol = dls::dlt::solve_linear_boundary(net);
  dls::sim::ExecutionPlan plan =
      dls::sim::ExecutionPlan::compliant(net, sol);
  plan.actual_rate[1] = 1.6;  // P1 secretly runs slow
  const auto exec = dls::sim::execute_linear(net, plan);
  const TamperProofMeter meter(root, kRound);
  const auto claim = meter.read(exec, 1, /*declared=*/1.0);
  EXPECT_NEAR(claim.claim.value, 1.6, 1e-9);  // the meter can't be fooled
  EXPECT_EQ(claim.signer, 0u);
  EXPECT_TRUE(dls::crypto::verify(registry, claim));
}

TEST(Meter, IdleProcessorFallsBackToDeclaredRate) {
  Rng rng(17);
  KeyRegistry registry;
  const Signer root = registry.enroll(0, rng);
  dls::sim::ExecutionResult exec;
  exec.computed = {0.0};
  exec.received = {0.0};
  exec.finish_time = {0.0};
  const TamperProofMeter meter(root, kRound);
  EXPECT_DOUBLE_EQ(meter.read(exec, 0, 2.5).claim.value, 2.5);
}

}  // namespace
