// End-to-end tests for the four-phase protocol: honest rounds, every
// deviation class of Lemma 5.1, and the economics of Theorems 5.1-5.4.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "agents/agent.hpp"
#include "common/rng.hpp"
#include "net/networks.hpp"
#include "protocol/runner.hpp"

namespace {

using dls::agents::Behavior;
using dls::agents::Population;
using dls::agents::StrategicAgent;
using dls::common::Rng;
using dls::net::LinearNetwork;
using dls::protocol::Incident;
using dls::protocol::ProtocolOptions;
using dls::protocol::run_protocol;
using dls::protocol::RunReport;

LinearNetwork test_network() {
  return LinearNetwork({1.0, 1.2, 0.8, 1.5}, {0.2, 0.15, 0.25});
}

Population truthful_population() {
  return Population({StrategicAgent{1, 1.2, Behavior::truthful()},
                     StrategicAgent{2, 0.8, Behavior::truthful()},
                     StrategicAgent{3, 1.5, Behavior::truthful()}});
}

Population with_behavior(std::size_t index, Behavior behavior) {
  Population pop = truthful_population();
  pop.agent(index).behavior = std::move(behavior);
  return pop;
}

RunReport run(const Population& pop, ProtocolOptions options = {}) {
  return run_protocol(test_network(), pop, options);
}

TEST(ProtocolRunner, HonestRoundHasNoIncidents) {
  const RunReport report = run(truthful_population());
  EXPECT_FALSE(report.aborted);
  EXPECT_TRUE(report.incidents.empty());
  EXPECT_TRUE(report.solution_found);
  ASSERT_TRUE(report.execution.has_value());
  // Everyone computed their assignment and ended with non-negative
  // utility (voluntary participation).
  for (std::size_t i = 1; i < report.processors.size(); ++i) {
    const auto& p = report.processors[i];
    EXPECT_NEAR(p.computed, p.assigned, 1e-9);
    EXPECT_GE(p.utility, 0.0) << "P" << i;
    EXPECT_DOUBLE_EQ(p.fines, 0.0);
  }
  EXPECT_DOUBLE_EQ(report.processors[0].utility, 0.0);
  EXPECT_NEAR(report.ledger.conservation_residual(), 0.0, 1e-9);
  EXPECT_NEAR(report.makespan, report.solution.makespan, 1e-9);
}

TEST(ProtocolRunner, HonestUtilitiesMatchCentralAssessment) {
  const RunReport report = run(truthful_population());
  for (std::size_t i = 1; i < report.processors.size(); ++i) {
    EXPECT_NEAR(report.processors[i].utility,
                report.assessment.processors[i].money.utility, 1e-9);
  }
}

TEST(ProtocolRunner, ContradictoryMessagesAbortAndFine) {
  const RunReport report = run(with_behavior(2, Behavior::contradictor()));
  EXPECT_TRUE(report.aborted);
  ASSERT_EQ(report.incidents.size(), 1u);
  const Incident& inc = report.incidents[0];
  EXPECT_EQ(inc.kind, Incident::Kind::kContradictoryMessages);
  EXPECT_EQ(inc.accused, 2u);
  EXPECT_EQ(inc.reporter, 1u);
  EXPECT_TRUE(inc.substantiated);
  // The deviant loses the fine; the reporter pockets it.
  EXPECT_LT(report.processors[2].utility, 0.0);
  EXPECT_GT(report.processors[1].utility, 0.0);
  // Bystanders get zero.
  EXPECT_DOUBLE_EQ(report.processors[3].utility, 0.0);
}

TEST(ProtocolRunner, MiscomputationDetectedByTheSuccessor) {
  const RunReport report = run(with_behavior(1, Behavior::miscomputer()));
  EXPECT_TRUE(report.aborted);
  ASSERT_EQ(report.incidents.size(), 1u);
  const Incident& inc = report.incidents[0];
  EXPECT_EQ(inc.kind, Incident::Kind::kMiscomputation);
  EXPECT_EQ(inc.accused, 1u);
  EXPECT_EQ(inc.reporter, 2u);
  EXPECT_LT(report.processors[1].utility, 0.0);
  EXPECT_GT(report.processors[2].utility, 0.0);
}

TEST(ProtocolRunner, LoadSheddingIsDetectedFinedAndUnprofitable) {
  const RunReport honest = run(truthful_population());
  const RunReport report =
      run(with_behavior(1, Behavior::load_shedder(0.4)));
  EXPECT_FALSE(report.aborted);  // the round completes; the shedder pays
  ASSERT_FALSE(report.incidents.empty());
  const Incident& inc = report.incidents[0];
  EXPECT_EQ(inc.kind, Incident::Kind::kLoadShedding);
  EXPECT_EQ(inc.accused, 1u);
  EXPECT_EQ(inc.reporter, 2u);
  EXPECT_TRUE(inc.substantiated);
  // Theorem 5.1: deviation strictly worse than compliance.
  EXPECT_LT(report.processors[1].utility, honest.processors[1].utility);
  EXPECT_LT(report.processors[1].utility, 0.0);
  // The victim is compensated for the extra work and rewarded.
  EXPECT_GE(report.processors[2].utility,
            honest.processors[2].utility - 1e-9);
}

TEST(ProtocolRunner, SlowExecutionLowersUtilityWithoutFines) {
  const RunReport honest = run(truthful_population());
  const RunReport report =
      run(with_behavior(2, Behavior::slow_execution(1.5)));
  EXPECT_FALSE(report.aborted);
  EXPECT_TRUE(report.incidents.empty());  // not a finable offence
  // Lemma 5.3 case (ii): the bonus shrinks because ŵ grows.
  EXPECT_LT(report.processors[2].utility, honest.processors[2].utility);
  EXPECT_DOUBLE_EQ(report.processors[2].fines, 0.0);
}

TEST(ProtocolRunner, OverchargeCaughtByAuditIsRuinous) {
  ProtocolOptions options;
  options.mechanism.audit_probability = 1.0;  // always challenged
  const RunReport honest = run(truthful_population(), options);
  const RunReport report =
      run(with_behavior(2, Behavior::overcharger(0.5)), options);
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].kind, Incident::Kind::kOvercharge);
  EXPECT_EQ(report.incidents[0].accused, 2u);
  // Paid the correct amount AND fined F/q.
  EXPECT_NEAR(report.processors[2].payment, honest.processors[2].payment,
              1e-9);
  EXPECT_LT(report.processors[2].utility, honest.processors[2].utility);
  EXPECT_LT(report.processors[2].utility, 0.0);
}

TEST(ProtocolRunner, OverchargeIsUnprofitableInExpectation) {
  // E[gain] = (1-q)·x − F must be negative for any x the cheat can
  // extract; across many seeds the empirical mean utility must fall
  // below the honest one.
  ProtocolOptions options;
  options.mechanism.audit_probability = 0.25;
  const RunReport honest = run(truthful_population(), options);
  double total = 0.0;
  constexpr int kRuns = 64;
  for (int s = 0; s < kRuns; ++s) {
    options.seed = static_cast<std::uint64_t>(s) + 1;
    const RunReport report =
        run(with_behavior(2, Behavior::overcharger(0.5)), options);
    total += report.processors[2].utility;
  }
  EXPECT_LT(total / kRuns, honest.processors[2].utility);
}

TEST(ProtocolRunner, FalseAccusationBackfires) {
  const RunReport report = run(with_behavior(2, Behavior::false_accuser()));
  EXPECT_FALSE(report.aborted);  // exculpation does not end the round
  ASSERT_FALSE(report.incidents.empty());
  const Incident& inc = report.incidents[0];
  EXPECT_EQ(inc.kind, Incident::Kind::kFalseAccusation);
  EXPECT_EQ(inc.reporter, 2u);
  EXPECT_EQ(inc.accused, 1u);
  EXPECT_FALSE(inc.substantiated);
  // The accuser pays, the accused is made more than whole.
  const RunReport honest = run(truthful_population());
  EXPECT_LT(report.processors[2].utility, honest.processors[2].utility);
  EXPECT_GT(report.processors[1].utility, honest.processors[1].utility);
}

TEST(ProtocolRunner, DataCorruptionCostsTheSolutionBonus) {
  ProtocolOptions options;
  options.mechanism.solution_bonus_enabled = true;
  options.mechanism.solution_bonus = 0.05;
  const RunReport honest = run(truthful_population(), options);
  const RunReport corrupt =
      run(with_behavior(2, Behavior::data_corruptor()), options);
  EXPECT_FALSE(corrupt.solution_found);
  ASSERT_FALSE(corrupt.incidents.empty());
  EXPECT_EQ(corrupt.incidents[0].kind, Incident::Kind::kDataCorruption);
  EXPECT_DOUBLE_EQ(corrupt.incidents[0].fine, 0.0);  // no fine, per Thm 5.2
  // Everybody (including the corruptor) loses S relative to the honest
  // round — which is exactly the deterrent.
  for (std::size_t i = 1; i < corrupt.processors.size(); ++i) {
    EXPECT_NEAR(corrupt.processors[i].utility,
                honest.processors[i].utility - 0.05, 1e-9)
        << "P" << i;
  }
}

TEST(ProtocolRunner, MisreportedBidsLowerUtilityThroughTheProtocol) {
  // Strategyproofness holds through the full protocol stack, not just
  // the central assessment.
  const RunReport honest = run(truthful_population());
  for (const double factor : {0.6, 0.8, 1.3, 2.0}) {
    const Behavior b = factor < 1.0 ? Behavior::underbid(factor)
                                    : Behavior::overbid(factor);
    for (std::size_t i = 1; i <= 3; ++i) {
      const RunReport report = run(with_behavior(i, b));
      EXPECT_FALSE(report.aborted);
      EXPECT_LE(report.processors[i].utility,
                honest.processors[i].utility + 1e-9)
          << "P" << i << " factor " << factor;
    }
  }
}

TEST(ProtocolRunner, AutoSizedFineExceedsCheatingProfits) {
  const RunReport report = run(with_behavior(1, Behavior::load_shedder(0.5)));
  ASSERT_FALSE(report.incidents.empty());
  // The fine must exceed anything the mechanism could ever pay out on a
  // unit load for this instance.
  EXPECT_GT(report.incidents[0].fine, report.assessment.total_payment);
}

TEST(ProtocolRunner, LedgerBalancesInEveryScenario) {
  const std::vector<Behavior> behaviors = {
      Behavior::truthful(),        Behavior::contradictor(),
      Behavior::miscomputer(),     Behavior::load_shedder(0.3),
      Behavior::overcharger(0.2),  Behavior::false_accuser(),
      Behavior::data_corruptor(),  Behavior::slow_execution(1.4),
      Behavior::underbid(0.7),     Behavior::overbid(1.5)};
  for (const auto& b : behaviors) {
    const RunReport report = run(with_behavior(2, b));
    EXPECT_NEAR(report.ledger.conservation_residual(), 0.0, 1e-9)
        << b.name;
  }
}

TEST(ProtocolRunner, RejectsMismatchedPopulation) {
  const LinearNetwork net({1.0, 1.0}, {0.2});
  const Population pop = truthful_population();  // 3 agents, needs 1
  EXPECT_THROW(run_protocol(net, pop, {}), dls::PreconditionError);
}

TEST(ProtocolRunner, TotalFinesMatchesProcessorReports) {
  const RunReport report = run(with_behavior(1, Behavior::load_shedder(0.4)));
  for (std::size_t i = 0; i < report.processors.size(); ++i) {
    EXPECT_DOUBLE_EQ(report.total_fines(i), report.processors[i].fines)
        << "P" << i;
  }
}

TEST(ProtocolRunner, TwoIndependentDeviantsBothLose) {
  // A slow executor and an overcharger in the same round: both end below
  // their honest utilities, and the honest processor in between is
  // unaffected.
  ProtocolOptions options;
  options.mechanism.audit_probability = 1.0;
  const RunReport honest = run(truthful_population(), options);
  Population pop = truthful_population();
  pop.agent(1).behavior = Behavior::slow_execution(1.5);
  pop.agent(3).behavior = Behavior::overcharger(0.3);
  const RunReport report = run(pop, options);
  EXPECT_FALSE(report.aborted);
  EXPECT_LT(report.processors[1].utility, honest.processors[1].utility);
  EXPECT_LT(report.processors[3].utility, honest.processors[3].utility);
  EXPECT_NEAR(report.processors[2].utility, honest.processors[2].utility,
              1e-9);
}

TEST(ProtocolRunner, CoarseTokensMissSmallThefts) {
  // The Λ granularity bounds what Phase III can prove: a shed smaller
  // than the published tolerance goes unpunished (and, by Lemma 5.2, the
  // honest successor is not fined either). Documents the granularity /
  // detection trade-off of footnote 1.
  ProtocolOptions coarse;
  coarse.blocks_per_unit = 4;  // tolerance 2/4 = 0.5 of the unit load
  const RunReport undetected =
      run(with_behavior(1, Behavior::load_shedder(0.2)), coarse);
  EXPECT_TRUE(undetected.incidents.empty());
  ProtocolOptions fine;
  fine.blocks_per_unit = 1 << 16;
  const RunReport detected =
      run(with_behavior(1, Behavior::load_shedder(0.2)), fine);
  ASSERT_FALSE(detected.incidents.empty());
  EXPECT_EQ(detected.incidents[0].kind, Incident::Kind::kLoadShedding);
}

TEST(ProtocolRunner, FinesDisabledStillDetects) {
  ProtocolOptions options;
  options.fines_enabled = false;
  const RunReport report =
      run(with_behavior(1, Behavior::load_shedder(0.5)), options);
  ASSERT_FALSE(report.incidents.empty());
  EXPECT_EQ(report.incidents[0].kind, Incident::Kind::kLoadShedding);
  EXPECT_DOUBLE_EQ(report.incidents[0].fine, 0.0);
  EXPECT_DOUBLE_EQ(report.processors[1].fines, 0.0);
  // Without fines the shedder keeps its (ill-gotten) surplus.
  const RunReport honest = run(truthful_population(), options);
  EXPECT_GT(report.processors[1].utility, honest.processors[1].utility);
  EXPECT_NEAR(report.ledger.conservation_residual(), 0.0, 1e-9);
}

TEST(ProtocolRunner, CollusionSuppressesTheGrievance) {
  Population pop = truthful_population();
  pop.agent(2).behavior = Behavior::load_shedder(0.5);
  pop.agent(3).behavior = Behavior::colluding_victim();
  const RunReport report = run(pop);
  // The terminal colluder swallows the overload silently.
  EXPECT_TRUE(report.incidents.empty());
  EXPECT_DOUBLE_EQ(report.processors[2].fines, 0.0);
}

TEST(ProtocolRunner, DeterministicGivenSeed) {
  ProtocolOptions options;
  options.seed = 1234;
  const RunReport a = run(truthful_population(), options);
  const RunReport b = run(truthful_population(), options);
  for (std::size_t i = 0; i < a.processors.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.processors[i].utility, b.processors[i].utility);
  }
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

}  // namespace
